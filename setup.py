"""Compatibility shim for environments without the `wheel` package.

All metadata lives in pyproject.toml; this file only enables legacy
(`--no-use-pep517`) editable installs on offline machines whose setuptools
cannot build PEP 660 wheels.
"""

from setuptools import setup

setup()
