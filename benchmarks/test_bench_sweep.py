"""Benchmark: the batched multi-world engine vs a per-world loop.

The tentpole claim of the sweep subsystem is that resolving a grid of
worlds in one :func:`simulate_find_times_batch` call — sharing each phase's
excursion draws across worlds — beats calling
:func:`simulate_find_times` once per world.  The speedup test measures
both sides on a 50-world x multi-k grid and asserts the batched engine
wins by at least 5x; the ``once`` benchmarks record absolute times for the
sweep runner in quick-experiment shape.
"""

import time

import numpy as np
import pytest

from repro.algorithms import NonUniformSearch
from repro.sim.events import simulate_find_times, simulate_find_times_batch
from repro.sim.world import place_treasure
from repro.sweep import SweepSpec, run_sweep

N_WORLDS = 50
KS = (1, 4, 16)
TRIALS = 100
DISTANCE = 64


def _worlds():
    return [place_treasure(DISTANCE, "random", seed=i) for i in range(N_WORLDS)]


def test_batched_engine_beats_per_world_loop():
    worlds = _worlds()
    # Warm both paths once so allocator/jit-cache effects don't skew either
    # side of the comparison.
    simulate_find_times(NonUniformSearch(k=1), worlds[0], 1, 10, seed=0)
    simulate_find_times_batch(NonUniformSearch(k=1), worlds[:2], 1, 10, seed=0)

    loop_means = {}
    batch_means = {}

    def time_grid(run_one):
        """Best of two rounds over the whole grid, to shrug off scheduler
        noise on shared CI runners."""
        best = float("inf")
        for _ in range(2):
            started = time.perf_counter()
            for k in KS:
                run_one(k)
            best = min(best, time.perf_counter() - started)
        return best

    def loop_once(k):
        rows = [
            simulate_find_times(NonUniformSearch(k=k), world, k, TRIALS, seed=i)
            for i, world in enumerate(worlds)
        ]
        loop_means[k] = float(np.mean([row.mean() for row in rows]))

    def batch_once(k):
        matrix = simulate_find_times_batch(
            NonUniformSearch(k=k), worlds, k, TRIALS, seed=0
        )
        batch_means[k] = float(matrix.mean())

    loop_elapsed = time_grid(loop_once)
    batch_elapsed = time_grid(batch_once)
    speedup = loop_elapsed / batch_elapsed
    print(
        f"\n50-world x ks={KS} grid: per-world loop {loop_elapsed:.2f}s, "
        f"batched {batch_elapsed:.2f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0, (
        f"batched engine only {speedup:.1f}x faster "
        f"(loop {loop_elapsed:.2f}s vs batch {batch_elapsed:.2f}s)"
    )
    # Same workload, so the grid means must agree statistically.
    for k in KS:
        assert loop_means[k] == pytest.approx(batch_means[k], rel=0.15)


def test_bench_run_sweep_cold(once, tmp_path):
    spec = SweepSpec(
        algorithm="nonuniform",
        distances=(16, 32, 64),
        ks=KS,
        trials=60,
        seed=20120716,
        require_k_le_d=True,
    )
    result = once(run_sweep, spec, cache_dir=str(tmp_path))
    assert not result.from_cache
    assert len(result) == 9


def test_bench_run_sweep_cache_hit(once, tmp_path):
    spec = SweepSpec(
        algorithm="nonuniform",
        distances=(16, 32, 64),
        ks=KS,
        trials=60,
        seed=20120716,
        require_k_le_d=True,
    )
    run_sweep(spec, cache_dir=str(tmp_path))
    result = once(run_sweep, spec, cache_dir=str(tmp_path))
    assert result.from_cache
