"""Bench E1 — regenerates the Theorem 3.1 table and asserts its shape."""

from repro.experiments.e1_optimal_known_k import run

SEED = 20120716


def test_e1_optimal_known_k(once):
    tables = once(run, quick=True, seed=SEED)
    grid, summary = tables
    print("\n" + grid.to_text())
    print(summary.to_text())

    ratios = grid.column("ratio")
    # Theorem 3.1 shape: bounded constant, flat across the whole grid.
    assert max(ratios) < 40
    assert max(ratios) / min(ratios) < 3.0
