"""Bench E12 — regenerates the generalised-worlds tables, asserts the shapes.

Puts dynamic-world throughput into ``BENCH_<rev>.json``: the dynamic
kernels (closed-form target advancement, per-world row seeding) are a
different cost profile from the legacy batch path, so regressions in
their trials/sec should be visible per commit like every other engine's.
"""

from repro.experiments.e12_dynamic_worlds import run

SEED = 20120716


def test_e12_dynamic_worlds(once, bench_info):
    mobility, arrival, count = once(run, quick=True, seed=SEED)
    print("\n" + mobility.to_text())
    print(arrival.to_text())
    print(count.to_text())
    bench_info["trials"] = sum(
        row["trials"]
        for table in (mobility, arrival, count)
        for row in table.rows
    )
    bench_info["grid"] = "3 strategies x 10 worlds"

    def rows(table, name):
        return [r for r in table.rows if r["algorithm"] == name]

    # Slow diffusion barely hurts A_k; adversarial drift is the cliff.
    a_k = rows(mobility, "A_k (knows k)")
    assert a_k[1]["vs_static"] < 2.0  # walk(0.05)
    assert a_k[3]["vs_static"] > a_k[1]["vs_static"]  # drift

    # The belief searcher keeps up with diffusing targets; the escaping
    # drift target is the adversarial cliff for it too.
    belief = rows(mobility, "grid-belief")
    assert all(row["success"] >= 0.8 for row in belief[:3])
    assert belief[3]["vs_static"] == max(r["vs_static"] for r in belief)

    # Extra targets speed everyone up: first find over n placements.
    for name in ("A_k (knows k)", "grid-belief"):
        n4 = rows(count, name)[-1]
        assert n4["n_targets"] == 4
        assert n4["vs_static"] < 1.0
