"""Bench E8 — regenerates the Section 6 memory table and asserts its shape."""

from repro.experiments.e8_memory import run

SEED = 20120716


def test_e8_memory(once):
    (table,) = once(run, quick=True, seed=SEED)
    print("\n" + table.to_text())

    for row in table.rows:
        assert abs(row["mean_distance"] - row["target"]) < 0.4 * row["target"]
        assert row["rel_spread_median3"] < row["rel_spread"]
        assert row["bits_used"] < row["exact_odometer_bits"]
