"""Bench E7 — regenerates the baseline showdown and asserts the ordering."""

from repro.experiments.e7_baselines import run

SEED = 20120716


def test_e7_baselines(once):
    (table,) = once(run, quick=True, seed=SEED)
    print("\n" + table.to_text())

    by_prefix = {}
    for row in table.rows:
        by_prefix[row["algorithm"].split(" ")[0]] = row

    known_d = by_prefix["known-D"]
    a_k = by_prefix["A_k"]
    uniform = by_prefix["A_uniform(eps=0.5)"]
    spiral = by_prefix["single"]
    control = by_prefix["k-spiral"]
    walk = by_prefix["random"]

    # The paper's ordering: information ceiling < optimal-with-k <
    # spiral/uniform; the random walk fails within the horizon sometimes.
    assert known_d["mean_time"] < a_k["mean_time"]
    assert a_k["mean_time"] < spiral["mean_time"]
    assert a_k["mean_time"] < uniform["mean_time"]
    assert control["mean_time"] == spiral["mean_time"]  # zero speed-up
    assert walk["success"] < 1.0
