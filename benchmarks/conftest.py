"""Shared benchmark configuration and the perf-history harness.

Every benchmark runs an experiment (or kernel) in quick mode exactly once
per round; experiment benches use a single round since their cost is
seconds, kernel benches let pytest-benchmark calibrate.

**Perf history** (``BENCH_<rev>.json``): when ``REPRO_BENCH_DIR`` is set,
a machine-readable record of the session's benchmarks — per-test wall
time plus whatever the test reported through the ``bench_info`` fixture
(trials, backend, model speedups; ``trials_per_sec`` is derived when
both pieces are present) — is written to
``$REPRO_BENCH_DIR/BENCH_<rev>.json``.  ``<rev>`` is ``REPRO_BENCH_REV``
or the current git short SHA.  CI uploads the file as an artifact per
commit, which is what makes sweep-throughput regressions visible across
PRs instead of anecdotal; ``benchmarks/history/`` holds committed
snapshots.
"""

import json
import os
import subprocess
import sys
import time

import pytest

#: nodeid -> record; filled during the session, flushed at session end.
_RECORDS = {}


def _record(nodeid):
    return _RECORDS.setdefault(nodeid, {})


@pytest.fixture
def bench_info(request):
    """Mutable metadata dict merged into this test's BENCH record.

    Benchmarks drop whatever makes their record interpretable:
    ``trials`` (simulated trials, enables the derived ``trials_per_sec``),
    ``backend``, model makespans, speedup ratios, grid shapes.
    """
    return _record(request.node.nodeid)


@pytest.fixture
def once(benchmark, request):
    """Run a callable exactly once under the benchmark clock."""

    def runner(fn, *args, **kwargs):
        started = time.perf_counter()
        result = benchmark.pedantic(
            fn, args=args, kwargs=kwargs, iterations=1, rounds=1, warmup_rounds=0
        )
        _record(request.node.nodeid)["wall_seconds"] = (
            time.perf_counter() - started
        )
        return result

    return runner


def pytest_runtest_logreport(report):
    """Capture every benchmark test's call duration as a fallback."""
    if report.when != "call" or not report.passed:
        return
    record = _record(report.nodeid)
    record.setdefault("wall_seconds", report.duration)


def _revision() -> str:
    env = os.environ.get("REPRO_BENCH_REV")
    if env:
        return env
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(__file__),
        ).stdout.strip() or "local"
    except (OSError, subprocess.SubprocessError):
        return "local"


def pytest_sessionfinish(session, exitstatus):
    out_dir = os.environ.get("REPRO_BENCH_DIR")
    if not out_dir or not _RECORDS:
        return
    import numpy

    rev = _revision()
    benchmarks = []
    for nodeid in sorted(_RECORDS):
        record = dict(_RECORDS[nodeid])
        wall = record.get("wall_seconds")
        trials = record.get("trials")
        if wall and trials:
            record["trials_per_sec"] = trials / wall
        benchmarks.append({"id": nodeid, **record})
    payload = {
        "rev": rev,
        "unix_time": time.time(),
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count(),
        "benchmarks": benchmarks,
    }
    try:
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, f"BENCH_{rev}.json")
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError:
        pass  # perf history is best-effort; never fail the suite over it
