"""Shared benchmark configuration.

Every benchmark runs an experiment (or kernel) in quick mode exactly once
per round; experiment benches use a single round since their cost is
seconds, kernel benches let pytest-benchmark calibrate.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under the benchmark clock."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, iterations=1, rounds=1, warmup_rounds=0
        )

    return runner
