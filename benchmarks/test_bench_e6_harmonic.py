"""Bench E6 — regenerates the Theorem 5.1 tables and asserts their shape."""

import math

from repro.experiments.e6_harmonic import run

SEED = 20120716


def test_e6_harmonic(once):
    success, sweep = once(run, quick=True, seed=SEED)
    print("\n" + success.to_text())
    print(sweep.to_text())

    rates = success.column("success_within_bound")
    # The sigmoid: low at k=1, saturated at the top of the sweep.
    assert rates[0] < 0.5
    assert rates[-1] > 0.9
    # Dominates the proof's lower bound (Monte-Carlo slack 0.08).
    for row in success.rows:
        assert row["success_within_bound"] >= row["theory_lower_bound"] - 0.08
    # Conditional time within the O() envelope.
    for row in success.rows:
        if math.isfinite(row["time_ratio"]):
            assert row["time_ratio"] <= 10.0
