"""Bench E3 — regenerates the Theorem 3.3 table and asserts its shape."""

from repro.experiments.e3_uniform_competitiveness import run

SEED = 20120716


def test_e3_uniform_competitiveness(once):
    table, fits = once(run, quick=True, seed=SEED)
    print("\n" + table.to_text())
    print(fits.to_text())

    # Theorem 3.3 shape: polylog growth — far below any power of k.  The
    # comparison starts at k=4 because log^b separates from k^0.75 only
    # past the constant-dominated head of the curve.
    for eps in {r["eps"] for r in table.rows}:
        rows = [r for r in table.rows if r["eps"] == eps and r["k"] >= 4]
        growth = rows[-1]["phi"] / rows[0]["phi"]
        assert growth < (rows[-1]["k"] / rows[0]["k"]) ** 0.75
    for fit in fits.rows:
        assert fit["r2"] > 0.8
