"""Benchmark guard: observability must be free when off, neutral when on.

The PR-9 instrumentation claim, pinned here:

* **Disabled-path overhead <= 2%.**  Every instrumentation site in the
  sweep stack costs one ``BUS.enabled`` attribute read when tracing is
  off.  The guard measures that read's cost directly (a calibrated
  microbenchmark), counts how many sites an identical traced run
  actually passes through (every emitted event is one site, so the
  event count of a traced run bounds the disabled run's checks), and
  asserts ``sites x per_check`` stays under 2% of the untraced sweep's
  wall clock.  This bounds the overhead structurally instead of
  differencing two noisy wall-clock measurements on a shared CI box.

* **Tracing is determinism-neutral.**  The same spec, traced and
  untraced, is bitwise identical on all four executor backends (serial,
  process pool, virtual clock, remote loopback) — tracing is an
  observer, never a participant.
"""

import time
import timeit

import numpy as np

from repro.obs import BUS, MemorySink, tracing, validate_event
from repro.stats import BudgetPolicy
from repro.sweep import (
    LoopbackWorker,
    RemoteExecutor,
    SweepSpec,
    VirtualExecutor,
    run_sweep,
)

SEED = 20120716
OVERHEAD_BUDGET = 0.02  # the pinned <= 2% disabled-path ceiling


def _spec(**overrides):
    base = dict(
        algorithm="nonuniform",
        distances=(8, 16, 32),
        ks=(1, 4),
        trials=40,
        seed=SEED,
        budget=BudgetPolicy.target_rel_ci(
            0.05, min_trials=32, max_trials=512
        ),
    )
    base.update(overrides)
    return SweepSpec(**base)


def _assert_equal(a, b, tag):
    assert len(a.cells) == len(b.cells)
    for x, y in zip(a.cells, b.cells):
        assert np.array_equal(x.times, y.times), (tag, x.distance, x.k)


def test_disabled_path_overhead_within_two_percent(bench_info, once):
    spec = _spec()

    # Untraced wall clock: the quantity the 2% budget is relative to.
    def untraced():
        return run_sweep(spec, cache=False)

    baseline = once(untraced)
    started = time.perf_counter()
    run_sweep(spec, cache=False)
    untraced_wall = time.perf_counter() - started

    # Site count: each emitted event of an identical traced run is one
    # `if BUS.enabled:` site the disabled run also passes through (the
    # disabled run checks strictly no more often — emission itself is
    # behind the same gate).
    sink = MemorySink()
    with tracing(sink):
        traced = run_sweep(spec, cache=False)
    _assert_equal(baseline, traced, "traced-vs-untraced")
    sites = len(sink.records)

    # Disabled-path unit cost: one attribute read + branch, measured
    # over enough iterations to be stable on a noisy box.
    assert not BUS.enabled
    iterations = 200_000
    per_check = (
        timeit.timeit("b.enabled", globals={"b": BUS}, number=iterations)
        / iterations
    )

    overhead = sites * per_check
    ratio = overhead / untraced_wall
    bench_info.update(
        trials=baseline.total_trials,
        events=sites,
        per_check_ns=per_check * 1e9,
        untraced_wall_s=untraced_wall,
        overhead_ratio=ratio,
    )
    assert ratio <= OVERHEAD_BUDGET, (
        f"instrumentation would cost {100 * ratio:.2f}% of an untraced "
        f"sweep ({sites} sites x {per_check * 1e9:.1f}ns over "
        f"{untraced_wall:.3f}s); the pinned budget is "
        f"{100 * OVERHEAD_BUDGET:.0f}%"
    )


def test_traced_bitwise_parity_on_all_backends(bench_info, once):
    spec = _spec()
    baseline = run_sweep(spec, cache=False)

    def all_backends():
        results = {}
        with tracing(MemorySink()) as _:
            results["serial"] = run_sweep(spec, cache=False)
            results["process"] = run_sweep(
                spec, cache=False, workers=2, backend="process"
            )
            with VirtualExecutor(
                workers=4, cost_fn=lambda fn, payload, result: 1.0
            ) as virtual:
                results["virtual"] = run_sweep(
                    spec, cache=False, executor=virtual
                )
            worker = LoopbackWorker()
            try:
                with RemoteExecutor([worker.address]) as remote:
                    results["remote"] = run_sweep(
                        spec, cache=False, executor=remote
                    )
            finally:
                worker.stop()
        return results

    results = once(all_backends)
    for tag, result in results.items():
        _assert_equal(baseline, result, tag)
    bench_info.update(
        trials=baseline.total_trials, backends=sorted(results)
    )


def test_traced_run_events_are_schema_valid(bench_info):
    sink = MemorySink()
    with tracing(sink):
        result = run_sweep(_spec(), cache=False)
    problems = [p for r in sink.records for p in validate_event(r)]
    assert problems == [], problems[:10]
    bench_info.update(trials=result.total_trials, events=len(sink.records))
