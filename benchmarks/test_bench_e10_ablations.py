"""Bench E10 — regenerates the ablation tables and asserts their claims."""

from repro.experiments.e10_ablations import run

SEED = 20120716


def test_e10_ablations(once):
    eps_table, place_table, disp_table, budget_table = once(
        run, quick=True, seed=SEED
    )
    print("\n" + eps_table.to_text())
    print(place_table.to_text())
    print(disp_table.to_text())
    print(budget_table.to_text())

    # Dispersion is the point: randomised A_k beats the clone control.
    assert disp_table.rows[-1]["speedup_vs_k1"] > 2.0
    # Budget constant only perturbs constants.
    phis = budget_table.column("phi")
    assert max(phis) / min(phis) < 4.0
    # phi grows with k for every eps (the uniform penalty is real).
    for eps in {r["eps"] for r in eps_table.rows}:
        rows = [r["phi"] for r in eps_table.rows if r["eps"] == eps]
        assert rows[-1] > rows[0]
