"""Benchmark guard: fault injection must be free when disarmed.

The crash-only-sweeps claim, pinned here:

* **Disarmed-path overhead <= 2%.**  Every fault seam in the sweep
  stack costs one ``FAULTS.enabled`` attribute read when no plan is
  active.  The guard measures that read's cost directly, counts how
  many seam opportunities an identical *armed* run passes through (a
  shadow plan with one never-firing ``p=0`` rule per site makes the
  injector count every :meth:`check` call), and asserts
  ``opportunities x per_check`` stays under 2% of the disarmed sweep's
  wall clock.  Structural bound, not a noisy wall-clock difference —
  same technique as ``benchmarks/test_bench_obs.py``.

* **Chaos parity is cheap.**  A run under a recoverable fault plan
  (injected cache read error + corrupt entry) is bitwise identical to
  the clean run and its wall clock lands in the perf history, so a
  recovery-path slowdown shows up across PRs instead of anecdotally.
"""

import time
import timeit

import numpy as np

from repro.faults import FAULT_SITES, FAULTS, FaultPlan, FaultRule, fault_plan
from repro.sweep import SweepSpec, run_sweep

SEED = 20120716
OVERHEAD_BUDGET = 0.02  # the pinned <= 2% disarmed-path ceiling


def _spec(**overrides):
    base = dict(
        algorithm="nonuniform",
        distances=(8, 16, 32),
        ks=(1, 4),
        trials=40,
        seed=SEED,
    )
    base.update(overrides)
    return SweepSpec(**base)


def _assert_equal(a, b, tag):
    assert len(a.cells) == len(b.cells)
    for x, y in zip(a.cells, b.cells):
        assert np.array_equal(x.times, y.times), (tag, x.distance, x.k)


def _cold_then_warm(spec, cache_dir, expect_cached=True):
    """One cache-exercising cycle: a writing run, then a reading run."""
    cold = run_sweep(spec, cache=True, cache_dir=cache_dir)
    warm = run_sweep(spec, cache=True, cache_dir=cache_dir)
    # Injected read faults legitimately turn the warm run into a
    # recompute; the bitwise assertions below still pin its payload.
    assert warm.from_cache or not expect_cached
    return cold, warm


def test_disarmed_path_overhead_within_two_percent(
    bench_info, once, tmp_path
):
    spec = _spec()

    # Disarmed wall clock: the quantity the 2% budget is relative to.
    # Cache on, so the run crosses the write seams cold and the read
    # seams warm — the sequence an armed run is compared against.
    baseline, _ = once(_cold_then_warm, spec, str(tmp_path / "disarmed"))
    started = time.perf_counter()
    _cold_then_warm(spec, str(tmp_path / "timed"))
    disarmed_wall = time.perf_counter() - started

    # Opportunity count: a shadow plan with one never-firing rule per
    # site makes the injector tally every check() call of an identical
    # run.  Each opportunity is one `FAULTS.enabled` read the disarmed
    # run also pays (the armed run checks strictly no less often —
    # every seam gates its check behind the same attribute).
    shadow = FaultPlan(
        rules=tuple(FaultRule(site=site, p=0.0) for site in FAULT_SITES),
        seed=SEED,
    )
    with fault_plan(shadow):
        armed_cold, _ = _cold_then_warm(spec, str(tmp_path / "armed"))
        opportunities = sum(FAULTS.opportunities.values())
        assert not FAULTS.injections  # p=0: the shadow plan never fires
    _assert_equal(baseline, armed_cold, "armed-vs-disarmed")
    assert opportunities > 0  # the cycle really crossed the seams

    # Disarmed-path unit cost: one attribute read + branch.
    assert not FAULTS.enabled
    iterations = 200_000
    per_check = (
        timeit.timeit("f.enabled", globals={"f": FAULTS}, number=iterations)
        / iterations
    )

    overhead = opportunities * per_check
    ratio = overhead / disarmed_wall
    bench_info.update(
        trials=baseline.total_trials,
        opportunities=opportunities,
        per_check_ns=per_check * 1e9,
        disarmed_wall_s=disarmed_wall,
        overhead_ratio=ratio,
    )
    assert ratio <= OVERHEAD_BUDGET, (
        f"fault seams would cost {100 * ratio:.2f}% of a disarmed sweep "
        f"({opportunities} opportunities x {per_check * 1e9:.1f}ns over "
        f"{disarmed_wall:.3f}s); the pinned budget is "
        f"{100 * OVERHEAD_BUDGET:.0f}%"
    )


def test_recoverable_chaos_run_is_bitwise_and_timed(
    bench_info, once, tmp_path
):
    spec = _spec()
    clean, _ = _cold_then_warm(spec, str(tmp_path / "clean"))

    # Injected cache read error on the first warm read, then a corrupt
    # entry on the retry cycle: both recover through the real fallback
    # (plain recompute), so the result must stay bitwise identical.
    plan = FaultPlan(
        rules=(
            FaultRule(site="cache.read", times=1),
            FaultRule(site="cache.corrupt", times=1, after=1),
        ),
        seed=5,
    )

    def chaos_cycle():
        with fault_plan(plan):
            return _cold_then_warm(
                spec, str(tmp_path / "chaos"), expect_cached=False
            )

    chaos_cold, chaos_warm = once(chaos_cycle)
    _assert_equal(clean, chaos_cold, "chaos-cold")
    _assert_equal(clean, chaos_warm, "chaos-warm")
    bench_info.update(trials=clean.total_trials, faulted_sites=2)
