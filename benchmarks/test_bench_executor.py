"""Benchmark: block-level work-stealing executor vs the per-cell pool.

The PR-5 executor claim: on the quick adaptive uniform grid's deep-``D``
slice — ``D in {16, 32, 64} x k in {1, 2}``, ``A_uniform(eps=0.5)`` at
``target_rel_ci(0.05)`` — scheduling *blocks* with work stealing beats
the implementation it replaced (one whole cell per pool task, uncapped
doubling blocks) by **>= 2x wall clock with 4 workers**, because the
``(64, 1)`` straggler stops monopolising one worker with a sequential
512-trial stream: its (independent, block-seeded) blocks pipeline
across the pool and the capped schedule stops it at 384 trials.

Wall-clock on shared CI boxes is noisy and needs 4 real cores, so the
pinned assertion runs on a **deterministic scheduling model**: both
schedulers execute against :class:`repro.sweep.VirtualExecutor`, a
4-worker virtual clock whose task costs are the simulated time mass of
each task's result (engine work is proportional to simulated time, so
the model tracks real wall clock).  The model's decisions and completion
order are exactly a greedy pool's, it is bitwise reproducible on any
machine, and the measured ratio (~2.2x at this seed) regresses loudly.
A real-pool wall-clock guard runs wherever >= 4 CPUs exist (CI runners
qualify) with a CI-noise-tolerant threshold.

The other halves of the acceptance criterion ride along: serial,
process-pool, and virtual runs stay bitwise identical, and v2
block-store top-ups keep working through the executor path.
"""

import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.sim.events import simulate_find_times_block
from repro.stats import BudgetPolicy, FindTimeAccumulator
from repro.sweep import SweepSpec, VirtualExecutor, build_algorithm, run_sweep
from repro.sweep.runner import _cell_world

DISTANCES = (16, 32, 64)
KS = (1, 2)
TARGET_REL_CI = 0.05
SEED = 20120716
WORKERS = 4


def _spec(max_trials=8192, budget=None, **overrides):
    if budget is None:
        budget = BudgetPolicy.target_rel_ci(
            TARGET_REL_CI, min_trials=32, max_trials=max_trials
        )
    base = dict(
        algorithm="uniform",
        params={"eps": 0.5},
        distances=DISTANCES,
        ks=KS,
        trials=60,
        placement="offaxis",
        seed=SEED,
        budget=budget,
    )
    base.update(overrides)
    return SweepSpec(**base)


def _mass(times: np.ndarray) -> float:
    """Simulated time mass — the model's engine-cost proxy."""
    return float(times[np.isfinite(times)].sum())


def _cost_fn(fn, payload, result):
    return _mass(result)


# ----------------------------------------------------------------------
# The replaced implementation, verbatim semantics: one cell = one pool
# task, blocks growing by pure doubling (the v1 schedule), consumed
# sequentially inside the task.
# ----------------------------------------------------------------------

def _v1_block_trials(block: int) -> int:
    return 32 if block == 0 else 32 << (block - 1)


def _v1_cell_task(payload) -> np.ndarray:
    spec, distance, k = payload
    policy = spec.budget
    strategy = build_algorithm(spec.algorithm, k, spec.param_dict())
    world = _cell_world(spec, distance, k)
    times = np.empty(0, dtype=np.float64)
    acc = FindTimeAccumulator(
        horizon=spec.horizon, confidence=policy.confidence
    )
    blocks = 0
    while not policy.satisfied(times.size, acc.summary(), 0.0):
        fresh = simulate_find_times_block(
            strategy, world, k, _v1_block_trials(blocks), spec.seed,
            distance=distance, block=blocks,
            horizon=spec.horizon, scenario=spec.scenario,
        )
        times = np.concatenate([times, fresh])
        acc.update(fresh)
        blocks += 1
    return times


def test_block_executor_beats_per_cell_pool_in_the_model(bench_info):
    spec = _spec()
    serial = run_sweep(spec, cache=False)

    # Replaced implementation: whole-cell tasks, grid order, greedy
    # 4-worker pool — submitting everything up front against the virtual
    # clock reproduces Pool.imap's list scheduling exactly.
    baseline = VirtualExecutor(WORKERS, cost_fn=_cost_fn)
    for cell in serial:
        baseline.submit(_v1_cell_task, (spec, cell.distance, cell.k))

    # This PR: the same sweep through the block-level scheduler, same
    # virtual 4-worker clock, same cost model.
    executor = VirtualExecutor(WORKERS, cost_fn=_cost_fn)
    modelled = run_sweep(spec, cache=False, executor=executor)
    for a, b in zip(serial.cells, modelled.cells):
        assert (a.distance, a.k) == (b.distance, b.k)
        assert np.array_equal(a.times, b.times)

    speedup = baseline.makespan / executor.makespan
    bench_info.update(
        backend="virtual",
        workers=WORKERS,
        trials=serial.total_trials,
        baseline_makespan=baseline.makespan,
        executor_makespan=executor.makespan,
        model_speedup=speedup,
    )
    print(
        f"\nquick adaptive uniform grid (D={DISTANCES} x k={KS}), "
        f"{WORKERS} virtual workers: per-cell pool makespan "
        f"{baseline.makespan / 1e6:.1f}M vs block executor "
        f"{executor.makespan / 1e6:.1f}M -> {speedup:.2f}x"
    )
    assert speedup >= 2.0, (
        f"block-level executor modelled only {speedup:.2f}x over the "
        f"per-cell pool; the acceptance pin is 2x"
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < WORKERS,
    reason=f"wall-clock comparison needs >= {WORKERS} CPUs",
)
def test_block_executor_beats_per_cell_pool_wall_clock(bench_info):
    spec = _spec()
    tasks = [(spec, cell.distance, cell.k) for cell in spec.cells()]

    started = time.perf_counter()
    with multiprocessing.Pool(WORKERS) as pool:
        baseline_cells = list(pool.imap(_v1_cell_task, tasks))
    baseline_wall = time.perf_counter() - started

    started = time.perf_counter()
    result = run_sweep(spec, cache=False, workers=WORKERS)
    executor_wall = time.perf_counter() - started

    assert len(baseline_cells) == len(result.cells)
    speedup = baseline_wall / executor_wall
    bench_info.update(
        backend="process",
        workers=WORKERS,
        trials=result.total_trials,
        wall_seconds=executor_wall,
        baseline_wall_seconds=baseline_wall,
        wall_speedup=speedup,
    )
    print(
        f"\nwall clock, {WORKERS} workers: per-cell pool "
        f"{baseline_wall:.2f}s vs block executor {executor_wall:.2f}s "
        f"-> {speedup:.2f}x"
    )
    # The model pins 2x; real pools add spawn/IPC overhead and CI boxes
    # add noise, so the wall-clock guard is deliberately looser.
    assert speedup >= 1.4


def test_executor_path_preserves_block_store_top_ups(tmp_path):
    coarse = _spec(
        budget=BudgetPolicy.target_rel_ci(
            0.10, min_trials=32, max_trials=2048
        )
    )
    fine = _spec(
        budget=BudgetPolicy.target_rel_ci(
            TARGET_REL_CI, min_trials=32, max_trials=2048
        )
    )
    first = run_sweep(coarse, cache_dir=str(tmp_path))
    topped = run_sweep(fine, cache_dir=str(tmp_path), workers=2)
    fresh = run_sweep(fine, cache=False)
    for a, b in zip(topped.cells, fresh.cells):
        assert np.array_equal(a.times, b.times)
    for a, b in zip(first.cells, topped.cells):
        assert np.array_equal(a.times, b.times[: a.trials])


def test_bench_executor_sweep_cold(once, bench_info, tmp_path):
    result = once(
        run_sweep, _spec(), cache_dir=str(tmp_path), workers=2
    )
    assert not result.from_cache
    bench_info.update(
        backend="process", workers=2, trials=result.total_trials
    )


def test_bench_modelled_remote_dispatch(bench_info):
    """Remote-dispatch scheduling model: round-trips + result transfer.

    Same sweep, same engine-cost model, three dispatch profiles: the
    local pool (zero latency), a LAN of workers (cheap round-trips),
    and a WAN (dear round-trips, thin pipe) — the
    :class:`VirtualExecutor` ``latency``/``bandwidth`` extensions that
    model :class:`repro.sweep.RemoteExecutor` hosts.  The arrays must
    stay bitwise identical across profiles (the cost model may only
    move the virtual clock), and the deterministic overhead ratios are
    recorded so a block-sizing change that quietly trades well against
    a local pool but badly against round-trip-dominated dispatch
    regresses loudly here before any socket opens.
    """
    spec = _spec(max_trials=1024)
    profiles = {
        "local": dict(latency=0.0, bandwidth=None),
        "lan": dict(latency=200.0, bandwidth=1e5),
        "wan": dict(latency=5000.0, bandwidth=1e3),
    }
    makespans = {}
    baseline = None
    for name, model in profiles.items():
        ex = VirtualExecutor(WORKERS, cost_fn=_cost_fn, **model)
        result = run_sweep(spec, cache=False, executor=ex)
        cells = [cell.times for cell in result]
        if baseline is None:
            baseline = cells
        else:
            for a, b in zip(baseline, cells):
                assert np.array_equal(a, b)
        makespans[name] = ex.makespan
    lan_overhead = makespans["lan"] / makespans["local"]
    wan_overhead = makespans["wan"] / makespans["local"]
    # Dearer dispatch can only stretch the modelled makespan.
    assert 1.0 <= lan_overhead <= wan_overhead
    bench_info.update(
        backend="virtual-remote",
        workers=WORKERS,
        local_makespan=makespans["local"],
        lan_overhead=lan_overhead,
        wan_overhead=wan_overhead,
    )
    print(
        f"\nmodelled dispatch overhead, {WORKERS} workers: "
        f"lan {lan_overhead:.3f}x, wan {wan_overhead:.3f}x"
    )
