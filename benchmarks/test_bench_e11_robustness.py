"""Bench E11 — regenerates the robustness tables and asserts their claims."""

from repro.experiments.e11_robustness import run

SEED = 20120716


def test_e11_robustness(once):
    crash_table, speed_table = once(run, quick=True, seed=SEED)
    print("\n" + crash_table.to_text())
    print(speed_table.to_text())

    # A_k keeps finding when mean lifetimes are 16x the optimal time;
    # the random walk has already fallen off the cliff at the same hazard.
    a_k = [r for r in crash_table.rows if r["algorithm"].startswith("A_k")]
    walk = [r for r in crash_table.rows if r["algorithm"] == "random walk"]
    assert a_k[1]["success"] >= 0.7
    assert walk[1]["success"] <= a_k[1]["success"] - 0.2

    # Heterogeneous speeds (total budget fixed) barely move the paper's
    # constructions: the robustness claim in its purest form.
    for row in speed_table.rows:
        if row["algorithm"].startswith(("A_k", "A_uniform")):
            assert row["degradation"] < 1.6
