"""Benchmark: the batched walker engine vs the per-step Python engine.

The tentpole claim of ``repro.sim.walkers`` is that the chunked NumPy
simulators make the memoryless baselines affordable at full trial counts:
E7's biased-walk and Lévy rows used to run a dozen step-level trials at
``horizon x k`` Python generator steps each.  The speedup test measures
both engines on E7's quick scenario (D=32, k=4, horizon=40*D^2) and
asserts the walker engine is at least 10x faster *per trial*; the
``once`` benchmarks record absolute walker-engine times at E7's full row
shape.  Runs under plain pytest, so the existing CI workflow picks it up.
"""

import time

import numpy as np

from repro.sim.engine import run_search
from repro.sim.rng import spawn_seeds
from repro.sim.walkers import BiasedWalker, LevyWalker, RandomWalker
from repro.sim.world import place_treasure

DISTANCE = 32
K = 4
HORIZON = 40 * DISTANCE * DISTANCE
TRIALS = 60  # quick-mode cfg.trials: what E7 now runs per walker row
STEP_TRIALS = 4
SEED = 20120716


def _step_engine_elapsed(walker):
    algorithm = walker.step_algorithm()
    world = place_treasure(DISTANCE, "offaxis")
    seeds = spawn_seeds(SEED, STEP_TRIALS)
    started = time.perf_counter()
    for run_seed in seeds:
        run_search(algorithm, world, K, run_seed, horizon=HORIZON)
    return time.perf_counter() - started


def _walker_engine_elapsed(walker):
    world = place_treasure(DISTANCE, "offaxis")
    walker.find_times(world, K, 4, seed=0, horizon=512)  # warm allocators
    started = time.perf_counter()
    times = walker.find_times(world, K, TRIALS, seed=SEED, horizon=HORIZON)
    elapsed = time.perf_counter() - started
    assert times.shape == (TRIALS,)
    return elapsed


def test_walker_engine_beats_step_engine_10x():
    speedups = {}
    for walker in (BiasedWalker(0.9), LevyWalker(2.0)):
        step_per_trial = _step_engine_elapsed(walker) / STEP_TRIALS
        walker_per_trial = _walker_engine_elapsed(walker) / TRIALS
        speedups[walker.name] = step_per_trial / walker_per_trial
    print(
        "\nE7 scenario per-trial speedups: "
        + ", ".join(f"{name} {s:.0f}x" for name, s in speedups.items())
    )
    for name, speedup in speedups.items():
        assert speedup >= 10.0, (
            f"{name}: walker engine only {speedup:.1f}x faster per trial"
        )


def test_bench_random_walker_full_row(once):
    world = place_treasure(DISTANCE, "offaxis")
    times = once(
        RandomWalker().find_times, world, K, TRIALS, SEED, horizon=HORIZON
    )
    assert np.isfinite(times).any()


def test_bench_biased_walker_full_row(once):
    world = place_treasure(DISTANCE, "offaxis")
    times = once(
        BiasedWalker(0.9).find_times, world, K, TRIALS, SEED, horizon=HORIZON
    )
    assert times.shape == (TRIALS,)


def test_bench_levy_walker_full_row(once):
    world = place_treasure(DISTANCE, "offaxis")
    times = once(
        LevyWalker(2.0).find_times, world, K, TRIALS, SEED, horizon=HORIZON
    )
    assert times.shape == (TRIALS,)
