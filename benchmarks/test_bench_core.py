"""Kernel benchmarks: the primitives every experiment leans on.

These guard the performance assumptions of the vectorised engine: the
closed-form spiral hit time and exact ball sampling must stay in the
tens-of-millions-of-cells-per-second range for the paper-scale sweeps to
run in minutes.
"""

import numpy as np

from repro.algorithms import NonUniformSearch
from repro.core.geometry import sample_uniform_ball
from repro.core.spiral import spiral_hit_time_array, spiral_position_array
from repro.sim.events import simulate_find_times
from repro.sim.world import place_treasure

N = 1_000_000


def test_spiral_hit_time_array(benchmark):
    rng = np.random.default_rng(0)
    dx = rng.integers(-10_000, 10_000, N)
    dy = rng.integers(-10_000, 10_000, N)
    out = benchmark(spiral_hit_time_array, dx, dy)
    assert out.shape == (N,)
    assert int(out.min()) >= 0


def test_spiral_position_array(benchmark):
    ts = np.arange(N, dtype=np.int64)
    xs, ys = benchmark(spiral_position_array, ts)
    assert xs.shape == (N,)


def test_sample_uniform_ball(benchmark):
    rng = np.random.default_rng(1)
    x, y = benchmark(sample_uniform_ball, rng, 1000, N)
    assert int(np.max(np.abs(x) + np.abs(y))) <= 1000


def test_simulate_one_cell(benchmark):
    """One full (D=64, k=16, 100 trials) cell through the fast engine."""
    world = place_treasure(64, "offaxis")
    times = benchmark(
        simulate_find_times, NonUniformSearch(k=16), world, 16, 100, 12345
    )
    assert np.all(np.isfinite(times))
