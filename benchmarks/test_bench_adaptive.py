"""Benchmark: adaptive precision targets vs fixed trial counts (E3 grid).

The tentpole claim of the adaptive layer: on a heterogeneous grid, a
``target_rel_ci`` budget reaches a target precision *everywhere* with a
fraction of the trials a fixed-count protocol needs, because a fixed
count must be sized for the noisiest cell while the adaptive allocator
only pays that price where the noise actually is.

The workload is E3's algorithm (``A_uniform(eps=0.5)``) on the quick
config grid — ``D in {16, 32, 64} x k in {1..64}`` — whose per-cell noise
varies by design: relative CI half-widths at equal trials span ~10x
between the ``(64, 1)`` tail cell and the easy ``(16, 64)`` cell.  The
speedup test:

1. runs the adaptive sweep at target ``r`` and takes ``n_max``, the
   allocation of its noisiest cell;
2. validates that a fixed-trials protocol genuinely needs about
   ``n_max`` per cell: at ``n_max`` every cell reaches ``r``, at
   ``n_max / 2`` the worst cell misses it (the capped block schedule
   stops within one 128-trial block of the true need, so half the
   allocation is always below it);
3. asserts the adaptive total is **>= 2x fewer** simulated trials than
   the fixed protocol's ``n_max x cells`` — measured ~3x at this seed
   (seeded engines are deterministic, so CI sees the same number).

The top-up test asserts the other acceptance property: tightening a
target reuses previously stored blocks bitwise instead of recomputing.
"""

import numpy as np

from repro.stats import BudgetPolicy
from repro.sweep import SweepSpec, run_sweep

DISTANCES = (16, 32, 64)
KS = (1, 2, 4, 8, 16, 32, 64)
TARGET_REL_CI = 0.05
SEED = 20120716


def _spec(budget=None, trials=60, distances=DISTANCES, ks=KS):
    return SweepSpec(
        algorithm="uniform",
        params={"eps": 0.5},
        distances=distances,
        ks=ks,
        trials=trials,
        placement="offaxis",
        seed=SEED,
        budget=budget,
    )


def test_adaptive_beats_fixed_trials_at_equal_precision(tmp_path):
    budget = BudgetPolicy.target_rel_ci(
        TARGET_REL_CI, min_trials=32, max_trials=8192
    )
    adaptive = run_sweep(_spec(budget=budget), cache_dir=str(tmp_path))
    # Every cell reached the target (none hit the allocation ceiling).
    for cell in adaptive:
        assert cell.summary().rel_ci <= TARGET_REL_CI, (
            f"cell (D={cell.distance}, k={cell.k}) missed the target"
        )
        assert cell.trials < 8192

    # A fixed-trials protocol with the same stopping granularity must run
    # every cell at what the noisiest cell needs...
    n_max = max(cell.trials for cell in adaptive)
    fixed = run_sweep(_spec(trials=n_max), cache_dir=str(tmp_path))
    assert max(c.summary().rel_ci for c in fixed) <= TARGET_REL_CI
    # ...and could not have stopped one boundary earlier:
    halved = run_sweep(_spec(trials=n_max // 2), cache_dir=str(tmp_path))
    assert max(c.summary().rel_ci for c in halved) > TARGET_REL_CI

    fixed_total = n_max * len(adaptive.cells)
    adaptive_total = adaptive.total_trials
    speedup = fixed_total / adaptive_total
    print(
        f"\nE3 quick grid ({len(adaptive.cells)} cells): fixed protocol "
        f"{fixed_total} trials ({n_max}/cell) vs adaptive "
        f"{adaptive_total} trials at rel_ci<={TARGET_REL_CI:g} -> "
        f"{speedup:.1f}x fewer trials"
    )
    assert adaptive_total * 2 <= fixed_total, (
        f"adaptive used {adaptive_total} trials vs fixed {fixed_total}: "
        f"less than the promised 2x saving"
    )


def test_top_up_reuses_cached_blocks(tmp_path):
    coarse = BudgetPolicy.target_rel_ci(1e-9, min_trials=32, max_trials=64)
    fine = BudgetPolicy.target_rel_ci(1e-9, min_trials=32, max_trials=256)
    small = dict(distances=(16, 32), ks=(1, 4))
    first = run_sweep(_spec(budget=coarse, **small), cache_dir=str(tmp_path))
    events = []
    second = run_sweep(
        _spec(budget=fine, **small),
        cache_dir=str(tmp_path),
        progress=events.append,
    )
    # Every cell topped up from 64 to 256 trials: only 192 fresh trials
    # each, and the stored 64-trial prefix is reused bitwise.
    assert all(e.new_trials == 192 and e.source == "topped-up" for e in events)
    for a, b in zip(first.cells, second.cells):
        assert np.array_equal(a.times, b.times[:64])


def test_bench_adaptive_sweep_cold(once, tmp_path):
    budget = BudgetPolicy.target_rel_ci(
        TARGET_REL_CI, min_trials=32, max_trials=8192
    )
    result = once(
        run_sweep,
        _spec(budget=budget, distances=(16, 32), ks=KS),
        cache_dir=str(tmp_path),
    )
    assert not result.from_cache
    assert len(result) == 2 * len(KS)


def test_bench_adaptive_sweep_top_up(once, tmp_path):
    run_sweep(
        _spec(
            budget=BudgetPolicy.target_rel_ci(0.12, min_trials=32,
                                              max_trials=2048),
            distances=(16, 32), ks=KS,
        ),
        cache_dir=str(tmp_path),
    )
    result = once(
        run_sweep,
        _spec(
            budget=BudgetPolicy.target_rel_ci(0.08, min_trials=32,
                                              max_trials=2048),
            distances=(16, 32), ks=KS,
        ),
        cache_dir=str(tmp_path),
    )
    assert len(result) == 2 * len(KS)
