"""Bench E2 — regenerates the Corollary 3.2 table and asserts its shape."""

from repro.experiments.e2_rho_approximation import run

SEED = 20120716


def test_e2_rho_approximation(once):
    (table,) = once(run, quick=True, seed=SEED)
    print("\n" + table.to_text())

    base = min(r["ratio"] for r in table.rows if r["rho"] == 1.0)
    for row in table.rows:
        # Corollary 3.2 envelope: at most rho^2 times the exact-k constant
        # (x3 slack for Monte-Carlo noise).
        assert row["ratio"] <= 3.0 * row["rho"] ** 2 * base
