"""Bench E4 — regenerates the Theorem 4.1 mechanism tables, asserts shapes."""

from repro.experiments.e4_lower_bound_uniform import run

SEED = 20120716


def test_e4_lower_bound_uniform(once):
    divergence, coverage, loads = once(run, quick=True, seed=SEED)
    print("\n" + divergence.to_text())
    print(coverage.to_text())
    print(loads.to_text())

    # Measured phi keeps the reciprocal sum small (the legitimacy
    # condition), and grows with k (the log penalty is real).
    assert divergence.rows[-1]["sum_measured"] < 0.5
    phis = divergence.column("phi_measured")
    assert phis[-1] > phis[0]

    # Markov premise instrumented: near balls get >= 1/2 coverage.
    for row in coverage.rows:
        if row["radius"] <= 4:
            assert row["coverage_fraction"] >= 0.5
