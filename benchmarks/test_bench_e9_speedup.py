"""Bench E9 — regenerates the speed-up curve and asserts the barrier."""

from repro.experiments.e9_speedup import run

SEED = 20120716


def test_e9_speedup(once):
    (table,) = once(run, quick=True, seed=SEED)
    print("\n" + table.to_text())

    for row in table.rows:
        # Section 2 barrier: no mean may beat max(D, D^2/4k).
        assert row["mean_time"] >= row["barrier"]
    speedups = table.column("speedup")
    assert speedups[-1] > 4.0
    # Efficiency decays once k grows past ~D (saturation).
    efficiency = table.column("efficiency")
    assert efficiency[-1] < efficiency[0]
