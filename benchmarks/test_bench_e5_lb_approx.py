"""Bench E5 — regenerates the Theorem 4.2 bracket table, asserts shapes."""

from repro.experiments.e5_lower_bound_approx import run

SEED = 20120716


def test_e5_lower_bound_approx(once):
    (table,) = once(run, quick=True, seed=SEED)
    print("\n" + table.to_text())

    first, last = table.rows[0], table.rows[-1]
    # Naive trust pays a polynomial penalty at the bottom of the range...
    assert first["naive_phi"] > 3 * first["oracle_phi"]
    # ...and recovers once the estimate is nearly exact.
    assert last["naive_phi"] < first["naive_phi"] / 2
    # Hedging stays within a log-like factor of the oracle everywhere.
    for row in table.rows:
        assert row["hedged_phi"] < 10 * row["oracle_phi"]
