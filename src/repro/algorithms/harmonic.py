"""Section 5 of the paper: the harmonic search algorithm (Theorem 5.1).

The harmonic algorithm is deliberately minimal — three actions, no loops —
to be plausible for "simple and tiny agents such as ants":

1. go to a node ``u`` drawn with probability ``p(u) = c / d(u)^(2+delta)``;
2. spiral-search for ``t(u) = d(u)^(2+delta)`` steps;
3. return to the source.

Theorem 5.1: for ``delta in (0, 0.8]`` and any ``eps > 0`` there is an
``alpha`` such that whenever ``k > alpha * D^delta``, with probability at
least ``1 - eps`` the treasure is found within ``O(D + D^(2+delta)/k)``
time.  (One-shot: each agent searches exactly once, so for small ``k`` the
treasure may never be found — the theorem trades a ``D^delta`` factor of
"surplus" agents for the absence of any iteration.)

Sampling ``p(u)`` exactly: the radius ``d(u) = r`` has probability
``4r * c / r^(2+delta) = r^-(1+delta) / zeta(1+delta)`` — precisely the
Zipf/zeta law with exponent ``1 + delta`` — and the cell is uniform on its
ring.  The normalising constant is ``c = 1 / (4 * zeta(1+delta))``.

:class:`RestartingHarmonicSearch` is the natural Las-Vegas extension
discussed around Section 6: agents repeat the three-step excursion
independently until the treasure is found, keeping the algorithm loop-free
per round while making the expected running time finite for every ``k``.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np
from scipy import stats
from scipy.special import zeta

from ..core.geometry import ring_cells_from_index_array
from .base import ExcursionAlgorithm, ExcursionFamily

__all__ = [
    "PowerLawRingFamily",
    "HarmonicSearch",
    "RestartingHarmonicSearch",
    "harmonic_normalizing_constant",
]


def harmonic_normalizing_constant(delta: float) -> float:
    """The constant ``c`` with ``sum_u c / d(u)^(2+delta) = 1``.

    Summing ring by ring: ``sum_r 4r * c * r^-(2+delta) = 4c * zeta(1+delta)``,
    so ``c = 1 / (4 * zeta(1+delta))``.
    """
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    return 1.0 / (4.0 * float(zeta(1.0 + delta)))


class PowerLawRingFamily(ExcursionFamily):
    """The harmonic excursion: ``d(u) ~ Zipf(1+delta)``, ``u`` uniform on its ring.

    The spiral budget is ``ceil(d(u)^(2+delta))``, clipped at ``budget_cap``
    to keep arithmetic in int64 (the clip only affects excursions whose
    radius exceeds ~10^9, which occur with probability ``< 10^-9`` per draw
    and are irrelevant to any measured statistic).
    """

    def __init__(self, delta: float, budget_cap: int = 2**62):
        if not 0 < delta:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = float(delta)
        self.budget_cap = int(budget_cap)

    def sample(
        self, rng: np.random.Generator, size: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        radii = stats.zipf.rvs(1.0 + self.delta, size=size, random_state=rng)
        # Clip the astronomical tail (P < 2^-40 per draw for delta >= 0.1):
        # a radius beyond 2^40 cannot hit anything within any budget anyway,
        # and 4 * radius must stay well inside int64 for the ring draw.
        radii = np.minimum(np.asarray(radii, dtype=np.int64), 2**40)
        m = (rng.random(size) * 4 * radii).astype(np.int64)
        ux, uy = ring_cells_from_index_array(radii, m)
        budgets = np.minimum(
            np.ceil(radii.astype(np.float64) ** (2.0 + self.delta)),
            float(self.budget_cap),
        ).astype(np.int64)
        return ux, uy, budgets

    def __repr__(self) -> str:
        return f"PowerLawRingFamily(delta={self.delta:g})"


class HarmonicSearch(ExcursionAlgorithm):
    """Algorithm 2: the one-shot harmonic search.

    Parameters
    ----------
    delta:
        The tail exponent; Theorem 5.1 covers ``delta in (0, 0.8]``.
        Larger ``delta`` concentrates agents near the source (better for
        small ``D``), smaller ``delta`` reaches further per agent.
    """

    uses_k = False

    def __init__(self, delta: float = 0.5):
        if not 0 < delta:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = float(delta)
        self.name = f"harmonic(delta={delta:g})"

    def families(self) -> Iterator[ExcursionFamily]:
        yield PowerLawRingFamily(self.delta)

    def describe(self) -> str:
        return (
            f"Algorithm 2 (harmonic) with delta={self.delta:g} "
            f"(Theorem 5.1: whp O(D + D^(2+delta)/k) when k > alpha*D^delta)"
        )


class RestartingHarmonicSearch(ExcursionAlgorithm):
    """Las-Vegas harmonic search: repeat the 3-step excursion until success.

    Keeps the per-round simplicity of Algorithm 2 (no nested loops, no
    counters) but has finite expected running time for every ``k``: rounds
    are i.i.d., and each round finds a distance-``D`` treasure with
    probability ``Omega(k / D^delta)`` clipped at a constant.
    """

    uses_k = False

    def __init__(self, delta: float = 0.5):
        if not 0 < delta:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = float(delta)
        self.name = f"harmonic*(delta={delta:g})"

    def families(self) -> Iterator[ExcursionFamily]:
        family = PowerLawRingFamily(self.delta)
        while True:
            yield family

    def describe(self) -> str:
        return f"Restarting harmonic search with delta={self.delta:g}"
