"""Algorithm 1 of the paper: the uniform search ``A_uniform`` (Theorem 3.3).

A *uniform* algorithm gives agents no information about their total number
``k``.  Each agent runs the triple loop::

    for l = 0, 1, ...:              # big-stage l
        for i = 0 .. l:             # stage i
            for j = 0 .. i:         # phase j
                k_j   = 2^j                       (the phase's implicit guess)
                D_ij  = sqrt(2^(i+j) / j^(1+eps))
                go to u ~ Uniform(B(D_ij))
                spiral for t_ij = 2^(i+2) / j^(1+eps) steps
                return to the source

Theorem 3.3: for every constant ``eps > 0`` this is
``O(log^(1+eps) k)``-competitive.  The price of uniformity is real:
Theorem 4.1 shows no uniform algorithm is ``O(log k)``-competitive, so the
exponent ``1 + eps`` cannot be improved to ``1``.

The proof's two assertions, which the test suite checks directly:

* Assertion 1 — stage ``i`` takes ``O(2^i)`` time, hence big-stage ``l``
  completes by ``O(2^l)``;
* Assertion 2 — once ``i >= s = ceil(log(D^2 log^(1+eps) k / k)) + 1`` and
  ``2^j <= k < 2^(j+1)``, phase ``j`` of stage ``i`` finds the treasure
  with probability ``Omega(2^-j)`` per agent, hence constant probability
  over ``k >= 2^j`` agents.
"""

from __future__ import annotations

from typing import Iterator

from ..core.schedule import PhaseSpec, uniform_schedule
from .base import ExcursionAlgorithm, ExcursionFamily, UniformBallFamily

__all__ = ["UniformSearch"]


class UniformSearch(ExcursionAlgorithm):
    """``A_uniform(eps)``: no knowledge of ``k``, ``O(log^(1+eps) k)``-competitive.

    Parameters
    ----------
    eps:
        The positive constant of Theorem 3.3.  Smaller values give better
        asymptotic competitiveness but larger constants (the schedule
        spends relatively more time on small-``j`` phases).
    """

    uses_k = False

    def __init__(self, eps: float = 0.5):
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.eps = float(eps)
        self.name = f"A_uniform(eps={eps:g})"

    def families(self) -> Iterator[ExcursionFamily]:
        for spec in uniform_schedule(self.eps):
            yield UniformBallFamily(spec.radius, spec.budget)

    def phases(self) -> Iterator[PhaseSpec]:
        """The underlying deterministic phase schedule (for tests/analysis)."""
        return uniform_schedule(self.eps)

    def describe(self) -> str:
        return (
            f"Algorithm 1 (A_uniform) with eps={self.eps:g} "
            f"(Theorem 3.3, O(log^(1+eps) k)-competitive)"
        )
