"""Baseline search strategies the paper positions itself against.

* :class:`SingleSpiralSearch` — the optimal *single-agent* strategy without
  knowledge of ``D`` (Baeza-Yates et al. [7], the cow-path lineage): spiral
  forever, finding the treasure in ``Theta(D^2)``.  Run with ``k`` agents it
  is also the "no dispersion" control: identical deterministic agents give
  **zero** speed-up, motivating the paper's randomised dispersion.

* :class:`KnownDSearch` — the Section 2 benchmark when ``D`` *is* known:
  walk to distance ``D``, then traverse the circle of radius ``D``; finds
  in ``O(D)``.

* :class:`RandomWalkSearch` — ``k`` independent simple random walks, the
  natural memoryless candidate.  The paper (Sections 1-2) notes its fatal
  flaw on ``Z^2``: the walk is null-recurrent, so the expected hitting time
  is **infinite** even for nearby treasures.  Experiments run it with a
  horizon and report success rate and truncated quantiles.

* :class:`BiasedWalkSearch` — a correlated (persistent) random walk in the
  spirit of the Harkness–Maroudas desert-ant model [24]: straight-ish
  segments with occasional reorientation.

* :class:`LevyFlightSearch` — Lévy flights with power-law step lengths
  (Reynolds [46]): directions uniform, lengths ``P(l) ~ l^-mu``.

All baselines are step-program algorithms for the exact engine;
:class:`SingleSpiralSearch` and :class:`KnownDSearch` also expose exact
closed-form find times.  The walker baselines additionally have batched
NumPy twins in :mod:`repro.sim.walkers` (``RandomWalker``,
``BiasedWalker``, ``LevyWalker``), which is what the experiments and the
sweep subsystem run; :func:`random_walk_find_times` survives as a
deprecated alias onto that engine.
"""

from __future__ import annotations

import warnings
from typing import Iterator, Tuple

import numpy as np
from scipy import stats

from ..core.spiral import spiral_hit_time, spiral_steps
from ..core.walks import diamond_tour, diamond_tour_hit_time, manhattan_path
from ..sim.world import World
from .base import Point, SearchAlgorithm

__all__ = [
    "SingleSpiralSearch",
    "KnownDSearch",
    "RandomWalkSearch",
    "BiasedWalkSearch",
    "LevyFlightSearch",
    "random_walk_find_times",
]

_DIRECTIONS: Tuple[Point, ...] = ((1, 0), (0, 1), (-1, 0), (0, -1))


class SingleSpiralSearch(SearchAlgorithm):
    """Spiral outward from the source forever (deterministic, optimal for k=1)."""

    uses_k = False
    name = "single-spiral"

    def step_program(self, rng: np.random.Generator) -> Iterator[Point]:
        x, y = 0, 0
        for dx, dy in spiral_steps():
            x, y = x + dx, y + dy
            yield x, y

    def exact_find_time(self, world: World) -> int:
        """Closed-form find time: the spiral hit time of the treasure."""
        return spiral_hit_time(world.treasure[0], world.treasure[1])

    def describe(self) -> str:
        return "Single-agent spiral search (cow-path baseline, Theta(D^2))"


class KnownDSearch(SearchAlgorithm):
    """Walk to distance ``D`` then tour the radius-``D`` circle (knows ``D``).

    The Section 2 benchmark: ``O(D)`` when the distance is known.  The walk
    heads to ``(D, 0)`` and tours counter-clockwise; a uniformly random
    starting corner would only shuffle constants.
    """

    uses_k = False

    def __init__(self, distance: int):
        if distance < 1:
            raise ValueError(f"distance must be >= 1, got {distance}")
        self.distance = int(distance)
        self.name = f"known-D(D={distance})"

    def step_program(self, rng: np.random.Generator) -> Iterator[Point]:
        start: Point = (self.distance, 0)
        yield from manhattan_path((0, 0), start)
        while True:
            yield from diamond_tour(self.distance)

    def exact_find_time(self, world: World) -> int:
        """Closed-form find time when the treasure is at distance ``D``."""
        if world.distance != self.distance:
            raise ValueError(
                f"KnownDSearch configured for D={self.distance} but treasure "
                f"is at distance {world.distance}"
            )
        return self.distance + diamond_tour_hit_time(self.distance, world.treasure)

    def describe(self) -> str:
        return f"Known-distance circle search (O(D)), D={self.distance}"


class RandomWalkSearch(SearchAlgorithm):
    """Simple symmetric random walk on ``Z^2`` (infinite expected hitting time)."""

    uses_k = False
    name = "random-walk"

    def step_program(self, rng: np.random.Generator) -> Iterator[Point]:
        x, y = 0, 0
        while True:
            dx, dy = _DIRECTIONS[int(rng.integers(0, 4))]
            x, y = x + dx, y + dy
            yield x, y

    def describe(self) -> str:
        return "k independent simple random walks (null-recurrent on Z^2)"


class BiasedWalkSearch(SearchAlgorithm):
    """Correlated random walk: keep heading with probability ``persistence``.

    A minimal stand-in for the Harkness–Maroudas [24] desert-ant trajectory
    model (straight outbound segments, tortuous local search): expected
    straight-run length is ``1 / (1 - persistence)``.
    """

    uses_k = False

    def __init__(self, persistence: float = 0.9):
        if not 0 <= persistence < 1:
            raise ValueError(f"persistence must be in [0, 1), got {persistence}")
        self.persistence = float(persistence)
        self.name = f"biased-walk(p={persistence:g})"

    def step_program(self, rng: np.random.Generator) -> Iterator[Point]:
        x, y = 0, 0
        heading = int(rng.integers(0, 4))
        while True:
            if rng.random() >= self.persistence:
                heading = int(rng.integers(0, 4))
            dx, dy = _DIRECTIONS[heading]
            x, y = x + dx, y + dy
            yield x, y

    def describe(self) -> str:
        return f"Correlated random walk, persistence={self.persistence:g}"


class LevyFlightSearch(SearchAlgorithm):
    """Lévy flight: uniform directions, power-law segment lengths ``~ l^-mu``.

    Reynolds [46] argues ``mu -> 1`` is optimal for cooperative foragers;
    ``mu`` near 3 degenerates towards Brownian behaviour.  Segments are
    walked cell by cell, so the treasure is detected en route.
    """

    uses_k = False

    def __init__(self, mu: float = 2.0, max_segment: int = 10**6):
        if not 1.0 < mu <= 4.0:
            raise ValueError(f"mu must be in (1, 4], got {mu}")
        self.mu = float(mu)
        self.max_segment = int(max_segment)
        self.name = f"levy(mu={mu:g})"

    def step_program(self, rng: np.random.Generator) -> Iterator[Point]:
        x, y = 0, 0
        while True:
            length = int(stats.zipf.rvs(self.mu, random_state=rng))
            length = min(length, self.max_segment)
            dx, dy = _DIRECTIONS[int(rng.integers(0, 4))]
            for _ in range(length):
                x, y = x + dx, y + dy
                yield x, y

    def describe(self) -> str:
        return f"Levy flight with exponent mu={self.mu:g}"


def random_walk_find_times(
    world: World,
    k: int,
    trials: int,
    horizon: int,
    rng: np.random.Generator,
    chunk: int = 4096,
) -> np.ndarray:
    """Deprecated alias for :meth:`repro.sim.walkers.RandomWalker.find_times`.

    Returns a float array of shape ``(trials,)``: the first time any of the
    ``k`` walkers stands on the treasure, or ``inf`` if none does within
    ``horizon`` steps.  Simulation is chunked; peak memory is
    ``O(live walkers * chunk)`` 64-bit entries (the per-chunk offset draw
    plus the two cumulative-position matrices), not bits.

    .. deprecated:: use :class:`repro.sim.walkers.RandomWalker` directly —
       the walker engine also covers biased and Lévy walkers and plugs into
       the sweep subsystem.  For a given ``rng`` and ``chunk`` this alias
       is bitwise identical to the engine it wraps.
    """
    warnings.warn(
        "random_walk_find_times is deprecated; use "
        "repro.sim.walkers.RandomWalker().find_times(...)",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..sim.walkers import RandomWalker

    return RandomWalker().find_times(
        world, k, trials, rng, horizon=horizon, chunk=chunk
    )
