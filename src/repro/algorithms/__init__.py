"""The paper's search algorithms and the baselines they are compared against.

Upper-bound constructions (Sections 3 and 5):

* :class:`NonUniformSearch` — Algorithm 3 (``A_k``), Theorem 3.1;
* :class:`RhoApproxSearch` — Corollary 3.2;
* :class:`UniformSearch` — Algorithm 1 (``A_uniform``), Theorem 3.3;
* :class:`HarmonicSearch` / :class:`RestartingHarmonicSearch` — Section 5;
* :class:`HedgedApproxSearch` / :class:`NaiveTrustSearch` — the
  approximate-knowledge setting of Theorem 4.2.

Baselines: :class:`SingleSpiralSearch`, :class:`KnownDSearch`,
:class:`RandomWalkSearch`, :class:`BiasedWalkSearch`,
:class:`LevyFlightSearch`.

Adaptive baseline for the generalised worlds of :mod:`repro.sim.world`:
:class:`GridBeliefSearch` (:mod:`repro.algorithms.belief`), compared in
experiment E12.
"""

from .approximate import (
    HedgedApproxSearch,
    NaiveTrustSearch,
    RhoApproxSearch,
    one_sided_guesses,
)
from .base import ExcursionAlgorithm, ExcursionFamily, SearchAlgorithm, UniformBallFamily
from .belief import AdaptiveSearcher, GridBeliefSearch
from .baselines import (
    BiasedWalkSearch,
    KnownDSearch,
    LevyFlightSearch,
    RandomWalkSearch,
    SingleSpiralSearch,
    random_walk_find_times,
)
from .harmonic import (
    HarmonicSearch,
    PowerLawRingFamily,
    RestartingHarmonicSearch,
    harmonic_normalizing_constant,
)
from .nonuniform import NonUniformSearch, ScaledBudgetSearch
from .sector import SectorSearch, sector_find_times
from .uniform import UniformSearch

__all__ = [
    "AdaptiveSearcher",
    "BiasedWalkSearch",
    "ExcursionAlgorithm",
    "ExcursionFamily",
    "GridBeliefSearch",
    "HarmonicSearch",
    "HedgedApproxSearch",
    "KnownDSearch",
    "LevyFlightSearch",
    "NaiveTrustSearch",
    "NonUniformSearch",
    "PowerLawRingFamily",
    "RandomWalkSearch",
    "RestartingHarmonicSearch",
    "RhoApproxSearch",
    "ScaledBudgetSearch",
    "SearchAlgorithm",
    "SectorSearch",
    "SingleSpiralSearch",
    "UniformBallFamily",
    "UniformSearch",
    "harmonic_normalizing_constant",
    "one_sided_guesses",
    "random_walk_find_times",
    "sector_find_times",
]
