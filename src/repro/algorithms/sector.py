"""Sector-sweep search: the engineer's obvious strategy, and why it loses.

The paper's introduction notes that to avoid overlaps, dispersed searchers
would need coordination they don't have.  The obvious coordination-free
attempt is *sector sweeping*: each agent picks a random direction and
exhaustively sweeps a wedge of fixed angular width ``w``, doubling its
sweep radius each round.  With luck the ``k`` wedges tile the plane; in
reality (no communication ⇒ independent angles) they collide, and
coverage has coupon-collector gaps: the treasure's direction is missed by
every agent with probability ``(1 - w)^k``, so per-round success saturates
while effort per round keeps doubling.

Model
-----

Angles are measured in *taxicab* form: position on the L1 ring of radius
``r`` is the ring index ``m in [0, 4r)`` (see
:func:`repro.core.geometry.ring_cell_from_index`), normalised to the
fraction ``u = m / 4r``.  A wedge is an interval ``[u0, u0 + w) mod 1``.

Rounds ``j = 1, 2, ...``: draw ``u0`` uniformly, sweep rings
``r = 1 .. 2^j`` restricted to the wedge, return to the source.  Sweeping
an arc of ``c`` cells costs ``2c`` steps (ring cells are zig-zagged
through the inner ring, as in :func:`repro.core.walks.diamond_tour`) plus
2 steps per ring transition; reaching and leaving the wedge costs one
radius each way.

This module provides a *closed-form* vectorised simulator rather than a
step program: the cost model above is exact for the intended comparisons
and keeps the strategy out of the hot engines' interface (it is a
comparator, not a paper algorithm — documented in DESIGN.md).
"""

from __future__ import annotations

import math


import numpy as np

from ..core.geometry import l1_norm
from ..sim.rng import SeedLike, make_rng
from ..sim.world import World

__all__ = [
    "SectorSearch",
    "ring_fraction",
    "sector_round_duration",
    "sector_find_times",
    "expected_covering_agents",
    "miss_probability",
]


def ring_fraction(x: int, y: int) -> float:
    """Taxicab angle of cell ``(x, y)`` as a fraction of its ring, in [0, 1).

    Inverse of the ring parameterisation: ``(r, 0) -> 0``, counter-clockwise.
    """
    r = l1_norm(x, y)
    if r == 0:
        raise ValueError("the source has no ring fraction")
    if x > 0 and y >= 0:
        m = y
    elif x <= 0 and y > 0:
        m = r - x  # q1 offset i = -x
    elif x < 0 and y <= 0:
        m = 2 * r - y
    else:
        m = 3 * r + x
    return m / (4 * r)


def _sweep_cost(reach: int, width: float) -> int:
    """Steps to sweep the wedge over rings ``1 .. reach`` (closed form).

    The wedge holds ``ceil(width * 2 * reach * (reach + 1))`` ring cells in
    total (a ``width`` fraction of ``sum 4r``); each costs two steps
    (zig-zag through the inner ring) plus two steps per ring transition.
    Closed form, so round durations stay O(1) even for the huge late
    rounds a slow-to-finish simulation walks through.
    """
    if reach < 0:
        raise ValueError(f"reach must be non-negative, got {reach}")
    cells = math.ceil(width * 2 * reach * (reach + 1))
    return 2 * cells + 2 * reach


def sector_round_duration(round_index: int, width: float) -> int:
    """Deterministic duration of round ``j``: sweep rings ``1 .. 2^j``.

    Sweep cost (see :func:`_sweep_cost`) plus the radial legs out and home.
    """
    if round_index < 1:
        raise ValueError(f"round index must be >= 1, got {round_index}")
    if not 0 < width <= 1:
        raise ValueError(f"width must be in (0, 1], got {width}")
    reach = 2**round_index
    return _sweep_cost(reach, width) + 2 * reach


class SectorSearch:
    """Doubling sector sweep with angular width ``width`` (a wedge fraction).

    Not a :class:`repro.algorithms.base.SearchAlgorithm` — it is simulated
    by the closed-form :func:`sector_find_times` under the documented cost
    model.  ``uses_k`` is False: the width is fixed, which is precisely its
    flaw (too narrow wastes rounds; too wide duplicates effort — and the
    right width would require knowing ``k``).
    """

    uses_k = False

    def __init__(self, width: float = 0.125):
        if not 0 < width <= 1:
            raise ValueError(f"width must be in (0, 1], got {width}")
        self.width = float(width)
        self.name = f"sector(w={width:g})"

    def describe(self) -> str:
        return (
            f"Doubling sector sweep, wedge width {self.width:g} of the ring "
            "(coordination-free direction splitting)"
        )


def sector_find_times(
    algorithm: SectorSearch,
    world: World,
    k: int,
    trials: int,
    seed: SeedLike = None,
    *,
    max_rounds: int = 60,
) -> np.ndarray:
    """First find times of ``k`` independent sector sweepers (vectorised).

    The treasure at taxicab fraction ``u*`` and distance ``D`` is found in
    an agent's round ``j`` iff ``2^j >= D`` and ``u*`` falls in the round's
    wedge; within the round it is reached after sweeping rings ``< D`` plus
    the partial arc of ring ``D`` up to the treasure.
    """
    if k < 1 or trials < 1:
        raise ValueError("k and trials must be >= 1")
    rng = make_rng(seed)
    width = algorithm.width
    tx, ty = world.treasure
    distance = world.distance
    u_star = ring_fraction(tx, ty)

    first_round = max(1, math.ceil(math.log2(max(distance, 1))))
    # Time to sweep rings below the treasure's, within a covering round.
    partial_sweep = _sweep_cost(distance - 1, width)

    best = np.full(trials, np.inf)
    elapsed = 0.0
    for j in range(1, max_rounds + 1):
        duration = sector_round_duration(j, width)
        if j >= first_round and 2**j >= distance:
            u0 = rng.random((trials, k))
            offset = (u_star - u0) % 1.0
            covered = offset < width
            if covered.any():
                # Steps into the treasure's arc: the wedge is swept from
                # u0 upward; two steps per cell on the treasure's ring.
                arc_steps = 2.0 * np.floor(offset * 4 * distance)
                t_hit = elapsed + distance + partial_sweep + arc_steps
                t_hit = np.where(covered, t_hit, np.inf)
                best = np.minimum(best, t_hit.min(axis=1))
        elapsed += duration
        if np.all(np.isfinite(best)) and elapsed > np.max(best):
            break
    return best


def expected_covering_agents(k: int, width: float) -> float:
    """Expected number of agents whose wedge covers a fixed direction: ``k*w``."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not 0 < width <= 1:
        raise ValueError(f"width must be in (0, 1], got {width}")
    return k * width


def miss_probability(k: int, width: float) -> float:
    """Probability a fixed direction is covered by *no* agent in one round.

    ``(1 - w)^k`` — the overlap problem in one number: even with
    ``k * w >> 1`` expected coverage, independent wedges leave
    ``e^{-kw}``-sized gaps, so sector sweeping must re-randomise every
    round and pays for full re-sweeps.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not 0 < width <= 1:
        raise ValueError(f"width must be in (0, 1], got {width}")
    return (1.0 - width) ** k
