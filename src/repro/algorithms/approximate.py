"""Search with approximate knowledge of ``k`` (Corollary 3.2, Theorem 4.2).

Three regimes of approximation are modelled:

* **Constant-factor** (Corollary 3.2): each agent ``a`` receives ``k_a``
  with ``k/rho <= k_a <= k*rho`` for a constant ``rho >= 1``.
  :class:`RhoApproxSearch` runs ``A_k`` with parameter ``k_a / rho``
  (exactly the corollary's construction); the running time grows by at most
  ``rho^2``, so the algorithm stays ``O(1)``-competitive.

* **Naive trust under polynomial approximation** (Theorem 4.2 setting):
  each agent receives a one-sided estimate ``k_tilde`` with
  ``k_tilde^(1-eps) <= k <= k_tilde``.  :class:`NaiveTrustSearch` simply
  runs ``A_{k_tilde}``.  Its spiral budgets are a factor ``k_tilde/k``
  (up to ``k_tilde^eps``) too small, so its competitiveness degrades
  *polynomially* — experiment E5 exhibits this.

* **Hedging** (our upper-bound companion to Theorem 4.2):
  :class:`HedgedApproxSearch` cycles through the ``O(eps * log k_tilde)``
  candidate magnitudes ``k_tilde^(1-eps) * 2^t`` and interleaves one
  ``A_guess`` stage for each.  Whatever the true ``k`` in the allowed
  range, one guess is within a factor 2, so the competitiveness is
  ``O(eps * log k_tilde)`` — matching the paper's ``Omega(eps(k) log k)``
  lower bound shape and showing the bound is essentially tight.
"""

from __future__ import annotations

from typing import Iterator, List

from ..core.schedule import PhaseSpec, guess_cycle_schedule, nonuniform_schedule
from .base import ExcursionAlgorithm, ExcursionFamily, UniformBallFamily

__all__ = [
    "RhoApproxSearch",
    "NaiveTrustSearch",
    "HedgedApproxSearch",
    "one_sided_guesses",
]


class RhoApproxSearch(ExcursionAlgorithm):
    """Corollary 3.2: run ``A_k`` with parameter ``k_a / rho``.

    Parameters
    ----------
    k_a:
        The approximation of ``k`` handed to the agent
        (``k/rho <= k_a <= k*rho``).
    rho:
        The guaranteed approximation ratio (``>= 1``).
    """

    uses_k = True

    def __init__(self, k_a: float, rho: float):
        if rho < 1:
            raise ValueError(f"rho must be >= 1, got {rho}")
        if k_a <= 0:
            raise ValueError(f"k_a must be positive, got {k_a}")
        self.k_a = float(k_a)
        self.rho = float(rho)
        self.effective_k = self.k_a / self.rho
        self.name = f"A_rho(k_a={k_a:g}, rho={rho:g})"

    def families(self) -> Iterator[ExcursionFamily]:
        for spec in nonuniform_schedule(self.effective_k):
            yield UniformBallFamily(spec.radius, spec.budget)

    def phases(self) -> Iterator[PhaseSpec]:
        return nonuniform_schedule(self.effective_k)

    def describe(self) -> str:
        return (
            f"Corollary 3.2: A_k with k_a/rho = {self.effective_k:g} "
            f"(O(rho^2)-competitive)"
        )


class NaiveTrustSearch(ExcursionAlgorithm):
    """Run ``A_{k_tilde}`` trusting a one-sided estimate ``k_tilde >= k``.

    Under the Theorem 4.2 approximation model
    (``k_tilde^(1-eps) <= k <= k_tilde``) this algorithm's budgets are up to
    ``k_tilde^eps`` times too small, and its competitiveness is
    ``Theta(k_tilde / k)`` — polynomially bad.  It is the strawman E5
    contrasts with :class:`HedgedApproxSearch`.
    """

    uses_k = True

    def __init__(self, k_tilde: float):
        if k_tilde <= 0:
            raise ValueError(f"k_tilde must be positive, got {k_tilde}")
        self.k_tilde = float(k_tilde)
        self.name = f"A_naive(k~={k_tilde:g})"

    def families(self) -> Iterator[ExcursionFamily]:
        for spec in nonuniform_schedule(self.k_tilde):
            yield UniformBallFamily(spec.radius, spec.budget)

    def phases(self) -> Iterator[PhaseSpec]:
        return nonuniform_schedule(self.k_tilde)

    def describe(self) -> str:
        return f"A_k run blindly with the upper estimate k~={self.k_tilde:g}"


def one_sided_guesses(k_tilde: float, eps: float) -> List[float]:
    """Candidate magnitudes for ``k`` given a one-sided ``k^eps``-approximation.

    Theorem 4.2's model guarantees ``k in [k_tilde^(1-eps), k_tilde]``; the
    doubling guesses ``k_tilde^(1-eps) * 2^t`` (clamped to ``k_tilde``) cover
    the range with ``ceil(eps * log2 k_tilde) + 1`` values, one of which is
    within a factor 2 of the true ``k``.
    """
    if k_tilde < 1:
        raise ValueError(f"k_tilde must be >= 1, got {k_tilde}")
    if not 0 < eps <= 1:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
    low = k_tilde ** (1.0 - eps)
    guesses = []
    guess = low
    while guess < k_tilde:
        guesses.append(guess)
        guess *= 2.0
    guesses.append(float(k_tilde))
    return guesses


class HedgedApproxSearch(ExcursionAlgorithm):
    """Hedge over the candidate magnitudes of a one-sided ``k^eps``-approximation.

    Stage ``m`` of the interleaved schedule runs stage ``m`` of ``A_g`` for
    every guess ``g`` in :func:`one_sided_guesses`.  Since some guess ``g*``
    satisfies ``g* <= k < 2 g*``, the sub-schedule for ``g*`` alone finds
    the treasure in expected time ``O(D + D^2/k)``, and the interleaving
    dilutes it by the number of guesses — giving competitiveness
    ``O(eps * log k_tilde)``, the matching upper bound for Theorem 4.2.
    """

    uses_k = True

    def __init__(self, k_tilde: float, eps: float):
        self.k_tilde = float(k_tilde)
        self.eps = float(eps)
        self.guesses = one_sided_guesses(k_tilde, eps)
        self.name = f"A_hedge(k~={k_tilde:g}, eps={eps:g})"

    def families(self) -> Iterator[ExcursionFamily]:
        for spec in guess_cycle_schedule(self.guesses):
            yield UniformBallFamily(spec.radius, spec.budget)

    def phases(self) -> Iterator[PhaseSpec]:
        return guess_cycle_schedule(self.guesses)

    def describe(self) -> str:
        return (
            f"Hedged A_k over {len(self.guesses)} guesses in "
            f"[{self.guesses[0]:.3g}, {self.guesses[-1]:.3g}] "
            f"(O(eps log k~)-competitive)"
        )
