"""Adaptive grid-belief searcher for dynamic and multi-target worlds.

The paper's algorithms (``A_k``, ``A_uniform``, the harmonic family) are
*oblivious*: the excursion schedule is fixed in advance and never reacts
to what the agent observes.  That obliviousness is exactly what the
lower bound of Section 4 exploits — but it also means the algorithms
ignore the one signal a non-communicating searcher does have for free:
*negative* observations ("I swept this region and found nothing").  On
static worlds the signal is worthless in expectation (the paper's setting
is adversarial in the target position), yet on the generalised worlds of
:mod:`repro.sim.world` — moving targets, late arrivals, multiple
targets — it is not, and experiment E12 quantifies the gap.

:class:`GridBeliefSearch` is the deliberately simple adaptive baseline:

* the plane is tiled by ``(2h + 1) × (2h + 1)`` boxes whose centres form
  a coarse occupancy grid out to an L1 *prior radius* ``R`` (derived
  from the horizon when not given);
* each agent keeps a **private** belief weight per cell — there is no
  communication, exactly as in the paper's model; agents differ only
  through their tie-breaking randomness, which is what decorrelates
  them;
* an excursion greedily picks the cell maximising ``belief / cost``
  (cost = round trip to the centre plus the in-box spiral sweep),
  trembling uniformly among near-maximal cells so ``k`` agents spread
  out instead of marching in lockstep;
* sweeping a box and finding nothing multiplies the cell's belief by
  ``1 - q`` (``q`` = composed detection probability; a perfect sweep
  zeroes it), and on worlds whose truth drifts — target motion or
  geometric arrival — beliefs leak back toward the uniform prior at a
  rate matched to the world's churn, so old negatives expire.

Randomness contract: tie-breaking and detection coins for agent ``a`` of
trial ``t`` come from ``derive_rng(seed, BELIEF_STREAM, t, a)`` and
target motion/arrival for trial ``t`` from
``derive_rng(seed, TARGET_STREAM, t)``.  Belief draws get their own
registered stream tag precisely because the *number* of draws depends on
the world (an adaptive searcher consumes randomness data-dependently);
interleaving them with target-motion draws would unpair the target
trajectory across otherwise-identical runs.  See DESIGN.md §10.

Detection is modelled for the spiral sweep only: travel legs to and from
the cell centre do not detect.  This is a conservative, simplifying
choice (it loses a few incidental crossings an excursion algorithm would
get) and keeps the cost/coverage bookkeeping exact: boxes tile the plane
disjointly, so one sweep observes each cell of its box exactly once.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from ..checks.registry import register_stream
from ..core.spiral import spiral_hit_time
from ..scenarios import ScenarioSpec, resolve_scenario
from ..sim.rng import SeedLike, derive_rng
from ..sim.world import (
    TARGET_STREAM,
    TargetTrack,
    World,
    WorldSpec,
    initial_targets,
    resolve_world,
)

__all__ = [
    "AdaptiveSearcher",
    "BELIEF_STREAM",
    "GridBeliefSearch",
]

#: Stream tag for adaptive-searcher decision randomness (tie-breaking,
#: detection coins), keyed ``derive_rng(seed, BELIEF_STREAM, trial,
#: agent)``.  Adaptive draws are data-dependent in *count*, so they must
#: never share a stream with target motion (``TARGET_STREAM``) or any
#: fixed-schedule engine stream.
BELIEF_STREAM = register_stream("BELIEF_STREAM", 0xBE11EF)

#: Belief mass below which a cell is considered exhausted; when every
#: cell of every agent is exhausted on a non-leaking world the trial can
#: stop early (nothing will ever be re-examined).
_EXHAUSTED = 1e-12

#: Cap on the prior radius in units of the cell side, bounding the grid
#: to a few tens of thousands of cells however large the horizon is.
_MAX_RADIUS_CELLS = 64


class AdaptiveSearcher(ABC):
    """A strategy that simulates itself batch-wise and adapts to feedback.

    Shares the :meth:`repro.sim.walkers.Walker.find_times` signature (and
    therefore the :class:`repro.sim.protocol.WalkerBatchEngine` adapter)
    but is deliberately *not* a :class:`~repro.sim.walkers.Walker`:
    walkers are memoryless step processes with a step-program twin,
    whereas adaptive searchers carry state across excursions and have no
    step-level equivalent.  ``uses_k`` mirrors the walkers: each agent
    runs the same program regardless of ``k``.
    """

    uses_k = False
    name = "adaptive"

    @abstractmethod
    def find_times(
        self,
        world: World,
        k: int,
        trials: int,
        seed: SeedLike = None,
        *,
        horizon: float,
        chunk: Optional[int] = None,
        scenario: Optional[ScenarioSpec] = None,
        start_delays=None,
        world_spec: Optional[WorldSpec] = None,
    ) -> np.ndarray:
        """First times any of ``k`` agents finds a target; ``Walker`` rules.

        Returns a ``(trials,)`` float array with ``inf`` for truncated
        trials; a hit at exactly ``horizon`` is kept.  ``chunk`` is
        accepted for signature compatibility and ignored (adaptive
        searchers simulate trial-by-trial).
        """

    def describe(self) -> str:
        return self.name


class GridBeliefSearch(AdaptiveSearcher):
    """Greedy-excursion searcher over a coarse private occupancy grid.

    ``cell`` is the half-width ``h`` of the ``(2h + 1)``-sided boxes,
    ``radius`` the L1 prior radius (``None`` derives
    ``max(2 · side, isqrt(horizon) // 2)`` capped at ``64 · side``), and
    ``tremble`` the greedy tolerance: an excursion picks uniformly among
    cells scoring at least ``(1 - tremble) ·`` the maximum
    ``belief / cost``.
    """

    name = "grid-belief"

    def __init__(
        self,
        cell: int = 4,
        radius: Optional[int] = None,
        tremble: float = 0.25,
    ) -> None:
        self.cell = int(cell)
        if self.cell < 1:
            raise ValueError(f"cell must be >= 1, got {cell}")
        self.radius = None if radius is None else int(radius)
        if self.radius is not None and self.radius < 1:
            raise ValueError(f"radius must be >= 1, got {radius}")
        self.tremble = float(tremble)
        if not 0.0 <= self.tremble < 1.0:
            raise ValueError(f"tremble must be in [0, 1), got {tremble}")

    def describe(self) -> str:
        radius = "auto" if self.radius is None else str(self.radius)
        return (
            f"GridBelief(h={self.cell}, R={radius}, "
            f"tremble={self.tremble:g})"
        )

    def _resolved_radius(self, horizon: float) -> int:
        side = 2 * self.cell + 1
        if self.radius is not None:
            return self.radius
        derived = math.isqrt(int(horizon)) // 2
        return max(2 * side, min(derived, _MAX_RADIUS_CELLS * side))

    def _grid(self, horizon: float):
        """Cell centres ``(n_cells, 2)`` and per-cell excursion costs."""
        side = 2 * self.cell + 1
        radius = self._resolved_radius(horizon)
        m = radius // side
        span = np.arange(-m, m + 1, dtype=np.int64) * side
        cx, cy = np.meshgrid(span, span, indexing="ij")
        centers = np.stack([cx.ravel(), cy.ravel()], axis=1)
        keep = np.abs(centers).sum(axis=1) <= radius
        centers = centers[keep]
        travel = np.abs(centers).sum(axis=1).astype(np.float64)
        sweep = float(side * side - 1)
        cost = 2.0 * travel + sweep
        return centers, travel, cost, sweep

    def find_times(
        self,
        world: World,
        k: int,
        trials: int,
        seed: SeedLike = None,
        *,
        horizon: float,
        chunk: Optional[int] = None,
        scenario: Optional[ScenarioSpec] = None,
        start_delays=None,
        world_spec: Optional[WorldSpec] = None,
    ) -> np.ndarray:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        if horizon is None or not np.isfinite(horizon) or horizon <= 0:
            raise ValueError(
                f"grid-belief search needs a finite positive horizon, "
                f"got {horizon}"
            )
        horizon = float(horizon)
        scn = resolve_scenario(scenario)
        if scn is not None and scn.crash_hazard > 0.0:
            raise ValueError(
                "grid-belief search does not support crash scenarios: "
                "belief state has no crash-time closed form"
            )
        wspec = resolve_world(world_spec)

        h = self.cell
        centers, travel, cost, sweep = self._grid(horizon)
        n_cells = len(centers)
        uniform = 1.0 / n_cells

        # Composed per-crossing detection probability (world x scenario).
        q = 1.0
        if wspec is not None:
            q *= wspec.detection_prob
        if scn is not None:
            q *= scn.detection_prob
        perfect = q >= 1.0

        # Belief leak rate on worlds whose truth churns: target motion
        # crosses a cell boundary roughly every side/rate time units, and
        # geometric arrival flips absent cells at the hazard rate.
        leak = 0.0
        if wspec is not None:
            if wspec.motion != "static":
                leak += wspec.motion_rate / (2 * h + 1)
            if wspec.arrival == "geometric":
                leak += wspec.arrival_hazard
        leak = min(leak, 1.0)

        if wspec is None:
            targets0 = np.array([world.treasure], dtype=np.int64)
        else:
            targets0 = initial_targets(world, wspec)
        n_targets = len(targets0)

        speeds = scn.speeds(k) if scn is not None else np.ones(k)
        base_delays = (
            scn.delays(k) if scn is not None else np.zeros(k, dtype=np.float64)
        )
        extra = None
        if start_delays is not None:
            extra = np.asarray(start_delays, dtype=np.float64)
            if extra.shape == (k,):
                extra = np.broadcast_to(extra, (trials, k))
            elif extra.shape != (trials, k):
                raise ValueError(
                    f"start_delays must have shape ({k},) or "
                    f"({trials}, {k}), got {extra.shape}"
                )

        times = np.full(trials, np.inf, dtype=np.float64)
        for trial in range(trials):
            track = None
            arrivals = np.zeros(n_targets, dtype=np.float64)
            if wspec is not None and (
                not wspec.is_static or wspec.arrival == "geometric"
            ):
                track = TargetTrack(
                    wspec, targets0, 1, derive_rng(seed, TARGET_STREAM, trial)
                )
                arrivals = track.arrival[0].astype(np.float64)
            rngs = [
                derive_rng(seed, BELIEF_STREAM, trial, agent)
                for agent in range(k)
            ]
            beliefs = np.full((k, n_cells), uniform, dtype=np.float64)
            clocks = base_delays.copy()
            if extra is not None:
                clocks = clocks + extra[trial]
            best = np.inf

            while True:
                i = int(np.argmin(clocks))
                t = clocks[i]
                if t >= min(best, horizon) or not np.isfinite(t):
                    break
                b = beliefs[i]
                if b.max() <= _EXHAUSTED:
                    if leak > 0.0:
                        b[:] = uniform
                    else:
                        clocks[i] = np.inf
                        continue
                score = b / cost
                cand = np.nonzero(
                    score >= (1.0 - self.tremble) * score.max()
                )[0]
                c = int(cand[rngs[i].integers(cand.size)])
                cx, cy = int(centers[c, 0]), int(centers[c, 1])
                duration = cost[c] / speeds[i]

                if track is not None:
                    pos = track.positions_at(t)[0]
                else:
                    pos = targets0
                hit = np.inf
                for j in range(n_targets):
                    dx = int(pos[j, 0]) - cx
                    dy = int(pos[j, 1]) - cy
                    if abs(dx) > h or abs(dy) > h:
                        continue
                    wall = t + (travel[c] + spiral_hit_time(dx, dy)) / speeds[i]
                    if wall < arrivals[j] or wall > horizon:
                        continue
                    if not perfect and not rngs[i].random() < q:
                        continue
                    hit = min(hit, wall)

                if np.isfinite(hit):
                    best = min(best, hit)
                    clocks[i] = np.inf
                    continue

                if perfect:
                    b[c] = 0.0
                else:
                    b[c] *= 1.0 - q
                if leak > 0.0:
                    mix = 1.0 - (1.0 - leak) ** duration
                    b *= 1.0 - mix
                    b += mix * uniform
                clocks[i] = t + duration

            if best <= horizon:
                times[trial] = best
        return times
