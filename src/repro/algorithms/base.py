"""Algorithm interfaces shared by both simulation engines.

The paper's agents are identical probabilistic machines (Section 2).  Two
views of an algorithm are exposed:

* a **step program** — an infinite iterator of grid positions, one per time
  unit, consumed by the exact step-level engine (:mod:`repro.sim.engine`);
* an **excursion view** — for algorithms built from go/spiral/return
  excursions, an iterator of :class:`ExcursionFamily` objects, each of which
  can sample the excursion's start node and spiral budget.  The vectorised
  engine (:mod:`repro.sim.events`) resolves excursions in closed form,
  which is exact in distribution and orders of magnitude faster.

The step program of an excursion algorithm is derived generically from its
excursion view (:meth:`ExcursionAlgorithm.step_program`), so both engines
execute literally the same excursion stream when given the same RNG —
the basis of the cross-engine validation tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Tuple

import numpy as np

from ..core.geometry import sample_uniform_ball
from ..core.spiral import spiral_steps
from ..core.walks import manhattan_path

__all__ = [
    "Point",
    "ExcursionFamily",
    "UniformBallFamily",
    "SearchAlgorithm",
    "ExcursionAlgorithm",
]

Point = Tuple[int, int]


class ExcursionFamily(ABC):
    """Distribution of one excursion: a random start node and spiral budget.

    ``sample(rng, size)`` returns integer arrays ``(ux, uy, budget)`` of the
    given size: the excursion walks from the source to ``(ux, uy)``, spirals
    for ``budget`` steps, and walks back.
    """

    @abstractmethod
    def sample(
        self, rng: np.random.Generator, size: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw ``size`` independent excursions."""

    def sample_one(self, rng: np.random.Generator) -> Tuple[Point, int]:
        """Draw a single excursion as ``((x, y), budget)``."""
        ux, uy, budget = self.sample(rng, 1)
        return (int(ux[0]), int(uy[0])), int(budget[0])


class UniformBallFamily(ExcursionFamily):
    """Excursion of the iterated algorithms: ``u ~ Uniform(B(radius))``, fixed budget."""

    def __init__(self, radius: int, budget: int):
        if radius < 1:
            raise ValueError(f"radius must be >= 1, got {radius}")
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        self.radius = radius
        self.budget = budget

    def sample(
        self, rng: np.random.Generator, size: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        ux, uy = sample_uniform_ball(rng, self.radius, size)
        budgets = np.full(size, self.budget, dtype=np.int64)
        return ux, uy, budgets

    def __repr__(self) -> str:
        return f"UniformBallFamily(radius={self.radius}, budget={self.budget})"


class SearchAlgorithm(ABC):
    """A search protocol executed identically by every agent.

    Subclasses must provide :meth:`step_program`; schedule/excursion-based
    algorithms should instead subclass :class:`ExcursionAlgorithm` and
    provide :meth:`ExcursionAlgorithm.families`.
    """

    #: Short machine-friendly identifier (used in tables and registries).
    name: str = "search"

    #: Whether the algorithm uses knowledge of the number of agents k.
    uses_k: bool = False

    @abstractmethod
    def step_program(self, rng: np.random.Generator) -> Iterator[Point]:
        """Yield the agent's position after each time step (source excluded).

        The program never terminates on its own; engines stop it when the
        treasure is found or a horizon is reached.  It must not depend on
        the treasure location — agents have no information about the target.
        """

    def describe(self) -> str:
        """One-line human description (overridden with parameters)."""
        return self.name


class ExcursionAlgorithm(SearchAlgorithm):
    """Base for algorithms that are a stream of go/spiral/return excursions."""

    @abstractmethod
    def families(self) -> Iterator[ExcursionFamily]:
        """Yield the excursion distributions in execution order.

        The iterator may be finite (one-shot algorithms such as harmonic
        search); agents that exhaust it sit at the source forever.
        """

    def step_program(self, rng: np.random.Generator) -> Iterator[Point]:
        """Generic step-level interpretation of the excursion stream."""
        source: Point = (0, 0)
        for family in self.families():
            (ux, uy), budget = family.sample_one(rng)
            target = (ux, uy)
            # Walk out.
            position = source
            for position in manhattan_path(source, target):
                yield position
            # Spiral for `budget` steps.
            x, y = position
            steps = spiral_steps()
            for _ in range(budget):
                dx, dy = next(steps)
                x, y = x + dx, y + dy
                yield x, y
            # Walk home.
            for position in manhattan_path((x, y), source):
                yield position
        # Finite excursion stream exhausted: idle at the source.
        while True:
            yield source
