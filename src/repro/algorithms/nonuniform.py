"""Algorithm 3 of the paper: the non-uniform search ``A_k`` (Theorem 3.1).

Each agent knows (a parameter standing for) the total number of agents ``k``
and runs the double loop::

    for j = 1, 2, ...:          # stage j
        for i = 1 .. j:         # phase i
            go to u ~ Uniform(B(2^i))
            spiral for t_i = 2^(2i+2) / k steps
            return to the source

Theorem 3.1: the expected time to find a treasure at distance ``D`` is
``O(D + D^2/k)`` — asymptotically optimal by the ``Omega(D + D^2/k)``
observation of Section 2.

The proof's mechanism, which experiment E1 instruments: once ``2^i >= D``,
a phase-``i`` excursion lands within distance ``sqrt(t_i)/2`` of the
treasure with probability ``Omega(t_i / |B(2^i)|) = Omega(1/k)`` (the ball
of radius ``sqrt(t_i)/2`` around the treasure overlaps ``B(2^i)`` in a
constant fraction), so ``k`` agents succeed per phase with constant
probability, and stage times ``O(2^j + 2^{2j}/k)`` form a geometric series
dominated by the first stage with ``2^j >= D``.
"""

from __future__ import annotations

from typing import Iterator

from ..core.schedule import PhaseSpec, nonuniform_schedule
from .base import ExcursionAlgorithm, ExcursionFamily, UniformBallFamily

__all__ = ["NonUniformSearch", "ScaledBudgetSearch"]


class NonUniformSearch(ExcursionAlgorithm):
    """``A_k``: optimal collaborative search with knowledge of ``k``.

    Parameters
    ----------
    k:
        The agent-count parameter used to size spiral budgets.  Theorem 3.1
        assumes it equals the true number of agents; Corollary 3.2 (see
        :class:`repro.algorithms.approximate.RhoApproxSearch`) feeds it an
        approximation instead.
    """

    uses_k = True

    def __init__(self, k: float):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = float(k)
        self.name = f"A_k(k={k:g})"

    def families(self) -> Iterator[ExcursionFamily]:
        for spec in nonuniform_schedule(self.k):
            yield UniformBallFamily(spec.radius, spec.budget)

    def phases(self) -> Iterator[PhaseSpec]:
        """The underlying deterministic phase schedule (for tests/analysis)."""
        return nonuniform_schedule(self.k)

    def describe(self) -> str:
        return f"Algorithm 3 (A_k) with k={self.k:g} (Theorem 3.1, O(D + D^2/k))"


class ScaledBudgetSearch(ExcursionAlgorithm):
    """``A_k`` with every spiral budget multiplied by ``budget_scale``.

    The E10 ablation knob (sweepable as ``nonuniform_scaled``): scaling the
    budgets perturbs the constants of Theorem 3.1 but not the
    ``O(D + D^2/k)`` shape.
    """

    uses_k = True

    def __init__(self, k: float, budget_scale: float):
        if budget_scale <= 0:
            raise ValueError(f"budget_scale must be positive, got {budget_scale}")
        self.k = float(k)
        self.budget_scale = float(budget_scale)
        self.name = f"A_k(k={k:g}, c={budget_scale:g})"

    def families(self) -> Iterator[ExcursionFamily]:
        for spec in nonuniform_schedule(self.k):
            budget = max(1, int(round(spec.budget * self.budget_scale)))
            yield UniformBallFamily(spec.radius, budget)

    def describe(self) -> str:
        return (
            f"A_k with k={self.k:g} and spiral budgets scaled by "
            f"{self.budget_scale:g} (E10 ablation)"
        )
