"""E9 — the Section 2 observation: nothing beats ``Omega(D + D^2/k)``.

Fix ``D``, sweep ``k``, and chart the speed-up ``T(1)/T(k)`` of the optimal
algorithm ``A_k``:

* in the ``k <~ D`` regime the speed-up is linear in ``k`` (the
  ``D^2/k`` term dominates);
* past ``k ~ D`` it saturates — the ``Omega(D)`` travel term is a wall no
  amount of agents crosses;
* every measured time respects the proof's explicit barrier
  ``max(D, D^2/(4k))``.

The ``k`` sweep is one :class:`repro.sweep.spec.SweepSpec` resolved by
:func:`repro.sweep.runner.run_sweep` (each ``k`` is its own group), so the
curve inherits the npz cache and the ``--workers`` pool.
"""

from __future__ import annotations

from typing import List

from ..analysis.competitiveness import optimal_time
from ..analysis.theory import lower_bound_time
from ..sweep import SweepSpec, run_sweep
from .config import scale
from .io import ResultTable

__all__ = ["run"]

EXPERIMENT_ID = "E9"
TITLE = "E9 (Sec 2): speed-up saturates at the Omega(D + D^2/k) barrier"


def run(
    quick: bool = True,
    seed: int | None = None,
    workers: int = 0,
    cache: bool = True,
    executor=None,
) -> List[ResultTable]:
    cfg = scale(quick)
    seed = cfg.seed if seed is None else seed
    distance = 32 if quick else 128
    ks = (1, 2, 4, 8, 16, 32, 64) if quick else (1, 4, 16, 64, 128, 256, 512, 1024)

    spec = SweepSpec(
        algorithm="nonuniform",
        distances=(distance,),
        ks=ks,
        trials=cfg.trials,
        placement="offaxis",
        seed=seed,
    )
    result = run_sweep(
        spec, workers=workers, cache=cache, executor=executor
    )

    table = ResultTable(
        title=f"{TITLE}  [D={distance}]",
        columns=["k", "mean_time", "optimal", "barrier", "speedup", "efficiency"],
    )
    t1 = None
    for k in ks:
        mean = result.cell(distance, k).mean
        if t1 is None:
            t1 = mean
        table.add_row(
            k=k,
            mean_time=mean,
            optimal=optimal_time(distance, k),
            barrier=lower_bound_time(distance, k),
            speedup=t1 / mean,
            efficiency=t1 / (mean * k),
        )
    table.add_note("speedup = T(1)/T(k); linear while k <~ D, saturated beyond")
    table.add_note("barrier = max(D, D^2/4k): no measured mean may beat it")
    return [table]
