"""E7 — the baseline showdown (Sections 1-2 motivation + the Omega bound).

One fixed scenario (``D``, ``k``), every strategy in the repository.

Expected ordering (the paper's narrative in one table):

* ``known-D`` finds in ``O(D)`` — the information ceiling;
* ``A_k`` lands within a constant of ``D + D^2/k`` — Theorem 3.1;
* ``A_uniform`` pays its log factor — Theorem 3.3;
* restarting harmonic is competitive when ``k >> D^delta`` — Theorem 5.1;
* the single spiral (and the k-spiral no-dispersion control — identical
  deterministic agents!) sit at ``Theta(D^2)`` regardless of ``k``;
* the correlated/Levy walkers limp with partial success by the horizon;
* the simple random walk mostly fails — on ``Z^2`` its expected hitting
  time is infinite (the paper's motivating observation).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..algorithms import (
    BiasedWalkSearch,
    KnownDSearch,
    LevyFlightSearch,
    NonUniformSearch,
    RestartingHarmonicSearch,
    SingleSpiralSearch,
    UniformSearch,
    random_walk_find_times,
)
from ..algorithms.sector import SectorSearch, sector_find_times
from ..analysis.competitiveness import optimal_time
from ..analysis.estimators import success_rate, truncated_mean
from ..sim.engine import run_search
from ..sim.events import simulate_find_times
from ..sim.rng import make_rng, spawn_seeds
from ..sim.world import place_treasure
from .config import scale
from .io import ResultTable

__all__ = ["run"]

EXPERIMENT_ID = "E7"
TITLE = "E7: every strategy, one scenario (who wins and by how much)"


def run(quick: bool = True, seed: int | None = None) -> List[ResultTable]:
    cfg = scale(quick)
    seed = cfg.seed if seed is None else seed
    distance = 32 if quick else 64
    k = 4 if quick else 8
    horizon = 40 * distance * distance  # generous cap for the stragglers
    trials = cfg.trials
    # Step-level baselines cost horizon x k x trials Python steps; a dozen
    # trials is plenty to place them on the leaderboard.
    step_trials = min(cfg.step_trials, 12)

    world = place_treasure(distance, "offaxis")
    optimal = optimal_time(distance, k)

    table = ResultTable(
        title=f"{TITLE}  [D={distance}, k={k}, horizon={horizon}]",
        columns=["algorithm", "mean_time", "vs_optimal", "success", "trials"],
    )

    seeds = spawn_seeds(seed, 8)

    # Exact closed forms first.
    t_known = KnownDSearch(distance).exact_find_time(world)
    table.add_row(
        algorithm="known-D (O(D))",
        mean_time=float(t_known),
        vs_optimal=t_known / optimal,
        success=1.0,
        trials=0,
    )
    t_spiral = SingleSpiralSearch().exact_find_time(world)
    table.add_row(
        algorithm="single spiral (k=1)",
        mean_time=float(t_spiral),
        vs_optimal=t_spiral / optimal,
        success=1.0,
        trials=0,
    )
    table.add_row(
        algorithm=f"k-spiral control (k={k})",
        mean_time=float(t_spiral),  # identical deterministic agents
        vs_optimal=t_spiral / optimal,
        success=1.0,
        trials=0,
    )

    # Vectorised engines.
    for name, alg, s in (
        (f"A_k (knows k={k})", NonUniformSearch(k=k), seeds[0]),
        ("A_uniform(eps=0.5)", UniformSearch(0.5), seeds[1]),
        ("restarting harmonic(0.5)", RestartingHarmonicSearch(0.5), seeds[2]),
    ):
        times = simulate_find_times(alg, world, k, trials, s, horizon=horizon)
        tm = truncated_mean(times, horizon)
        table.add_row(
            algorithm=name,
            mean_time=tm.mean,
            vs_optimal=tm.mean / optimal,
            success=success_rate(times, horizon),
            trials=trials,
        )

    # Random walk: vectorised chunked simulator.
    rw_times = random_walk_find_times(
        world, k, trials, horizon, make_rng(seeds[3])
    )
    tm = truncated_mean(rw_times, horizon)
    table.add_row(
        algorithm="random walk",
        mean_time=tm.mean,
        vs_optimal=tm.mean / optimal,
        success=success_rate(rw_times, horizon),
        trials=trials,
    )

    # Sector sweep: the coordination-free direction-splitting strawman.
    sector = SectorSearch(width=0.125)
    sector_times = sector_find_times(sector, world, k, trials, seeds[6])
    tm = truncated_mean(np.minimum(sector_times, horizon + 1.0), horizon)
    table.add_row(
        algorithm="sector sweep (w=1/8)",
        mean_time=tm.mean,
        vs_optimal=tm.mean / optimal,
        success=success_rate(sector_times, horizon),
        trials=trials,
    )

    # Step-level stragglers (few trials; they are slow by nature).
    for name, alg, s in (
        ("biased walk (p=0.9)", BiasedWalkSearch(0.9), seeds[4]),
        ("Levy flight (mu=2)", LevyFlightSearch(2.0), seeds[5]),
    ):
        step_seeds = spawn_seeds(s, step_trials)
        times = []
        for run_seed in step_seeds:
            result = run_search(alg, world, k, run_seed, horizon=horizon).result
            times.append(result.time)
        tm = truncated_mean(times, horizon)
        table.add_row(
            algorithm=name,
            mean_time=tm.mean,
            vs_optimal=tm.mean / optimal,
            success=success_rate(times, horizon),
            trials=step_trials,
        )

    table.add_note(f"optimal = D + D^2/k = {optimal:.1f}; capped means are lower bounds")
    table.add_note("k-spiral control: deterministic identical agents => zero speed-up")
    return [table]
