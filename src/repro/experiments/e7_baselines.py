"""E7 — the baseline showdown (Sections 1-2 motivation + the Omega bound).

One fixed scenario (``D``, ``k``), every strategy in the repository.

Expected ordering (the paper's narrative in one table):

* ``known-D`` finds in ``O(D)`` — the information ceiling;
* ``A_k`` lands within a constant of ``D + D^2/k`` — Theorem 3.1;
* ``A_uniform`` pays its log factor — Theorem 3.3;
* restarting harmonic is competitive when ``k >> D^delta`` — Theorem 5.1;
* the single spiral (and the k-spiral no-dispersion control — identical
  deterministic agents!) sit at ``Theta(D^2)`` regardless of ``k``;
* the correlated/Levy walkers limp with partial success by the horizon;
* the simple random walk mostly fails — on ``Z^2`` its expected hitting
  time is infinite (the paper's motivating observation).

Every stochastic row runs through :func:`repro.sweep.runner.run_sweep` at
full ``cfg.trials``: the excursion rows on the batched excursion engine,
the walker rows on the batched walker engine of :mod:`repro.sim.walkers`
(previously the biased/Levy walkers were capped at a dozen step-level
trials).  Each row is its own single-cell spec with a seed derived from
``(root seed, row index)``, so rows are reproducible independently of
execution order, ``--workers``, and the cache.

Capped means are *lower bounds* on the true expectation whenever any
trial was censored at the horizon; every stochastic row runs through the
streaming :class:`repro.stats.FindTimeAccumulator`, whose summary carries
the censored fraction *and* the CI half-width side by side — the
``censored`` column next to ``ci95`` makes the bound's looseness visible
instead of silently folded into ``mean_time`` (a CI around a censored
mean brackets the lower bound, not the true expectation).
"""

from __future__ import annotations

from typing import List, Mapping, Optional

from ..algorithms import KnownDSearch, SingleSpiralSearch
from ..algorithms.sector import SectorSearch, sector_find_times
from ..analysis.competitiveness import optimal_time
from ..sim.rng import derive_seed
from ..sim.world import place_treasure
from ..stats import BudgetPolicy, summarize_times
from ..sweep import SweepSpec, run_sweep
from .config import scale
from .io import ResultTable

__all__ = ["run"]

EXPERIMENT_ID = "E7"
TITLE = "E7: every strategy, one scenario (who wins and by how much)"


def run(
    quick: bool = True,
    seed: int | None = None,
    workers: int = 0,
    cache: bool = True,
    budget: Optional[BudgetPolicy] = None,
    progress=None,
    executor=None,
) -> List[ResultTable]:
    from ..sweep import ensure_executor

    cfg = scale(quick)
    seed = cfg.seed if seed is None else seed
    distance = 32 if quick else 64
    k = 4 if quick else 8
    horizon = 40 * distance * distance  # generous cap for the stragglers
    trials = cfg.trials

    world = place_treasure(distance, "offaxis")
    optimal = optimal_time(distance, k)

    table = ResultTable(
        title=f"{TITLE}  [D={distance}, k={k}, horizon={horizon}]",
        columns=[
            "algorithm", "mean_time", "ci95", "vs_optimal", "success",
            "censored", "trials",
        ],
    )

    # Exact closed forms first.
    t_known = KnownDSearch(distance).exact_find_time(world)
    table.add_row(
        algorithm="known-D (O(D))",
        mean_time=float(t_known),
        ci95=0.0,
        vs_optimal=t_known / optimal,
        success=1.0,
        censored=0.0,
        trials=0,
    )
    t_spiral = SingleSpiralSearch().exact_find_time(world)
    table.add_row(
        algorithm="single spiral (k=1)",
        mean_time=float(t_spiral),
        ci95=0.0,
        vs_optimal=t_spiral / optimal,
        success=1.0,
        censored=0.0,
        trials=0,
    )
    table.add_row(
        algorithm=f"k-spiral control (k={k})",
        mean_time=float(t_spiral),  # identical deterministic agents
        ci95=0.0,
        vs_optimal=t_spiral / optimal,
        success=1.0,
        censored=0.0,
        trials=0,
    )

    executor_scope = ensure_executor(executor, workers=workers)

    def sweep_cell(row_index: int, algorithm: str, params: Mapping[str, float]):
        """One single-cell sweep: the row's cell at its allocated trials."""
        spec = SweepSpec(
            algorithm=algorithm,
            distances=(distance,),
            ks=(k,),
            trials=trials,
            params=params,
            placement="offaxis",
            seed=derive_seed(seed, row_index),
            horizon=float(horizon),
            budget=budget,
        )
        result = run_sweep(
            spec, cache=cache, progress=progress, executor=shared
        )
        return result.cell(distance, k)

    # Excursion constructions and walker baselines, all at full trials on
    # the batched engines (walker rows were step-level before); every
    # row's sweep shares the scoped executor.
    with executor_scope as shared:
        for row_index, (name, algorithm, params) in enumerate(
            (
                (f"A_k (knows k={k})", "nonuniform", {}),
                ("A_uniform(eps=0.5)", "uniform", {"eps": 0.5}),
                ("restarting harmonic(0.5)", "restarting_harmonic",
                 {"delta": 0.5}),
                ("random walk", "random_walk", {}),
                ("biased walk (p=0.9)", "biased_walk", {"persistence": 0.9}),
                ("Levy flight (mu=2)", "levy", {"mu": 2.0}),
            )
        ):
            cell = sweep_cell(row_index, algorithm, params)
            s = cell.summary(horizon=float(horizon))
            table.add_row(
                algorithm=name,
                mean_time=s.mean,
                ci95=s.ci_halfwidth,
                vs_optimal=s.mean / optimal,
                success=s.success_rate,
                censored=s.censored_fraction,
                trials=cell.trials,
            )

    # Sector sweep: the coordination-free direction-splitting strawman.
    # Closed-form cost model, so it stays outside the sweep engine; the
    # streaming summary pins censored values at the horizon itself.
    sector = SectorSearch(width=0.125)
    sector_times = sector_find_times(
        sector, world, k, trials, derive_seed(seed, 6)
    )
    s = summarize_times(sector_times, horizon=float(horizon))
    table.add_row(
        algorithm="sector sweep (w=1/8)",
        mean_time=s.mean,
        ci95=s.ci_halfwidth,
        vs_optimal=s.mean / optimal,
        success=s.success_rate,
        censored=s.censored_fraction,
        trials=trials,
    )

    table.add_note(f"optimal = D + D^2/k = {optimal:.1f}")
    table.add_note(
        "rows with censored > 0 report a lower bound on the true mean "
        "(censored trials pinned at the horizon); their ci95 brackets "
        "that lower bound, not the true expectation"
    )
    table.add_note("k-spiral control: deterministic identical agents => zero speed-up")
    if budget is not None:
        table.add_note(f"adaptive allocation: {budget.describe()}")
    return [table]
