"""E4 — Theorem 4.1: no uniform algorithm is ``O(log k)``-competitive.

A lower bound is reproduced by exhibiting its *mechanism* on real
executions, in three parts:

1. **Markov premise** — for ``A_uniform`` run with ``k`` agents, nodes that
   the competitiveness bound forces to be found quickly are, by Markov's
   inequality, visited with probability >= 1/2 by twice their expected
   find time.  We measure union coverage of balls by the cutoff and check
   the >=1/2 premise empirically.

2. **Annulus load accounting** — the proof charges each agent
   ``Omega(T/phi(k_i))`` distinct visited cells per annulus ``S_i`` and
   derives the contradiction from summing over annuli.  We measure the
   per-agent distinct-cell loads per annulus and the total, checking it
   never exceeds the walked time (the wall the proof pushes against).

3. **Divergence witness** — with the measured ``phi(k)`` of ``A_uniform``
   (from the E3 sweep), the partial sums of ``sum_i 1/phi(2^i)`` must stay
   bounded; for the hypothetical ``phi(k) = c log k`` they grow without
   bound.  The table prints both side by side: the gap is the theorem.
"""

from __future__ import annotations

import math
from typing import List

from ..algorithms import UniformSearch
from ..analysis.fitting import fit_polylog
from ..analysis.lower_bounds import annulus_load_profile
from ..sim.engine import first_visit_times
from ..sim.metrics import ball_coverage_fraction
from ..sim.rng import derive_seed, spawn_seeds
from ..sim.world import World
from .config import scale
from .e3_uniform_competitiveness import phi_of_k
from .io import ResultTable

__all__ = ["run"]

EXPERIMENT_ID = "E4"
TITLE = "E4 (Thm 4.1): the log-k penalty of uniformity is unavoidable"

EPS = 0.5


def run(
    quick: bool = True,
    seed: int | None = None,
    workers: int = 0,
    cache: bool = True,
    executor=None,
) -> List[ResultTable]:
    cfg = scale(quick)
    seed = cfg.seed if seed is None else seed
    coverage_seed, load_seed = spawn_seeds(seed, 2)

    # --- Part 3 first: measured phi(k) and the divergence witness. -------
    distance = max(cfg.distances)
    ks = [2**i for i in range(1, 7) if 2**i <= distance]
    rows = phi_of_k(
        EPS,
        distance,
        ks,
        cfg.trials,
        derive_seed(seed, 3),
        workers=workers,
        cache=cache,
        executor=executor,
    )

    divergence = ResultTable(
        title="E4a: partial sums of 1/phi(2^i) — measured vs hypothetical log",
        columns=["k", "phi_measured", "sum_measured", "phi_log", "sum_log"],
    )
    # The hypothetical phi = c log k is anchored at the largest measured k.
    c_log = rows[-1][2] / math.log(rows[-1][0])
    sum_measured = 0.0
    sum_log = 0.0
    for k, _, phi in rows:
        phi_log = c_log * math.log(k)
        sum_measured += 1.0 / phi
        sum_log += 1.0 / phi_log
        divergence.add_row(
            k=k,
            phi_measured=phi,
            sum_measured=sum_measured,
            phi_log=phi_log,
            sum_log=sum_log,
        )
    divergence.add_note(
        "Thm 4.1: a legitimate phi must make sum_i 1/phi(2^i) converge; "
        "phi = c log k makes it the divergent harmonic series"
    )
    # The divergence is asymptotic — at k <= 64 the two curves are close.
    # Extend the hypothetical series analytically: sum_{i<=m} 1/(c i ln 2)
    # = H_m / (c ln 2) grows without bound, crossing the proof's budget.
    for m in (10**3, 10**6, 10**12):
        h_m = math.log(m) + 0.5772156649
        divergence.add_note(
            f"hypothetical log-phi partial sum after m={m:.0e} doublings: "
            f"{h_m / (c_log * math.log(2)):.3f} (unbounded as m grows)"
        )
    fit = fit_polylog([r[0] for r in rows], [r[2] for r in rows])
    divergence.add_note(
        f"measured phi fits a*log^b k with b={fit.b:.2f} (R^2={fit.r2:.2f}); "
        "Thm 3.3 predicts b -> 1+eps asymptotically, and any b > 1 makes "
        "the measured sum convergent where the log hypothesis diverges"
    )

    # --- Parts 1+2: step-level proof instrumentation (small scale). -------
    cutoff = 1200 if quick else 4000
    instrument_ks = [1, 2, 4] if quick else [1, 2, 4, 8, 16]
    boundaries = [2, 4, 8, 16, 24]

    coverage = ResultTable(
        title="E4b: Markov premise — union coverage of B(r) by the cutoff",
        columns=["k", "radius", "coverage_fraction"],
    )
    world = World((2 * cutoff + 1, 0))  # unreachable: pure exploration
    cov_seeds = spawn_seeds(coverage_seed, len(instrument_ks))
    for k, k_seed in zip(instrument_ks, cov_seeds):
        maps = first_visit_times(UniformSearch(EPS), world, k, k_seed, cutoff)
        for radius in (4, 8):
            coverage.add_row(
                k=k,
                radius=radius,
                coverage_fraction=ball_coverage_fraction(maps, radius, cutoff),
            )
    coverage.add_note(
        "proof premise: cells whose bound forces fast finds are visited "
        "w.p. >= 1/2 by twice their expected find time"
    )

    loads = ResultTable(
        title="E4c: per-agent distinct-cell load per annulus (the counting wall)",
        columns=["k", "annulus", "size", "union_coverage", "per_agent_load"],
    )
    profiles = annulus_load_profile(
        lambda k: UniformSearch(EPS), instrument_ks, boundaries, cutoff, load_seed
    )
    for profile in profiles:
        for cov in profile.coverage:
            loads.add_row(
                k=profile.k,
                annulus=f"({cov.inner},{cov.outer}]",
                size=cov.size,
                union_coverage=cov.fraction,
                per_agent_load=cov.per_agent_mean,
            )
        loads.add_note(
            f"k={profile.k}: total per-agent distinct cells = "
            f"{profile.per_agent_distinct:.0f} <= cutoff+1 = {profile.cutoff + 1}"
        )
    return [divergence, coverage, loads]
