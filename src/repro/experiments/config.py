"""Experiment sizing: every experiment runs in ``quick`` or ``full`` mode.

``quick`` keeps CI and ``pytest benchmarks/`` snappy (seconds per
experiment); ``full`` is what ``EXPERIMENTS.md`` reports (minutes overall,
still laptop-scale).  Both modes exercise identical code paths — only grid
extents and trial counts differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["ExperimentScale", "QUICK", "FULL"]


@dataclass(frozen=True)
class ExperimentScale:
    """Shared sizing knobs; experiments pick what they need."""

    name: str
    trials: int
    distances: Sequence[int]
    ks: Sequence[int]
    seed: int = 20120716  # PODC 2012 started July 16, Madeira

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError("trial counts must be >= 1")
        if not self.distances or not self.ks:
            raise ValueError("distances and ks must be non-empty")


QUICK = ExperimentScale(
    name="quick",
    trials=60,
    distances=(16, 32, 64),
    ks=(1, 4, 16),
)

FULL = ExperimentScale(
    name="full",
    trials=300,
    distances=(32, 64, 128, 256, 512),
    ks=(1, 2, 4, 8, 16, 32, 64, 128, 256),
)


def scale(quick: bool) -> ExperimentScale:
    """The canonical scale for a mode."""
    return QUICK if quick else FULL
