"""E6 — Theorem 5.1: the harmonic algorithm.

Paper prediction: for ``delta in (0, 0.8]``, if ``k > alpha * D^delta``
then with probability at least ``1 - eps`` the one-shot, loop-free
harmonic algorithm finds the treasure within ``O(D + D^(2+delta)/k)``.

Three tables:

* **success probability vs k** at fixed ``D``: a sigmoid in ``log k``
  crossing towards 1 around ``k ~ D^delta``, bounded below by the proof's
  ``1 - exp(-c k / (12 D^delta))`` envelope;
* **conditional running time** (given success) against the
  ``D + D^(2+delta)/k`` envelope: a bounded ratio;
* **delta sweep**: larger ``delta`` needs more agents (``alpha D^delta``
  grows) but yields shorter conditional times at large ``k``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..analysis.estimators import wilson_interval
from ..analysis.theory import harmonic_failure_bound, harmonic_time_bound
from ..sim.rng import derive_seed
from ..sweep import SweepSpec, run_sweep
from .config import scale
from .io import ResultTable

__all__ = ["run"]

EXPERIMENT_ID = "E6"
TITLE = "E6 (Thm 5.1): the 3-step harmonic algorithm"

DELTA = 0.5
DELTAS = (0.2, 0.5, 0.8)


def run(
    quick: bool = True,
    seed: int | None = None,
    workers: int = 0,
    cache: bool = True,
    executor=None,
) -> List[ResultTable]:
    from ..sweep import ensure_executor

    cfg = scale(quick)
    seed = cfg.seed if seed is None else seed
    trials = cfg.trials
    distance = 32 if quick else 64

    # --- success probability and conditional time vs k -------------------
    # The sigmoid saturates around k ~ alpha * D^delta (several hundred at
    # D=32), so the sweep must extend well past it.
    ks = (
        [2**i for i in range(0, 12)] if quick else [2**i for i in range(0, 14)]
    )
    # "Success" in Theorem 5.1 means finding within O(D + D^(2+delta)/k);
    # we instantiate the O() as HORIZON_FACTOR x envelope.  Without the
    # horizon, one-shot monster excursions (huge zipf radii whose spirals
    # eventually sweep everything) would count as successes at absurd times.
    HORIZON_FACTOR = 10.0
    success = ResultTable(
        title=f"{TITLE}: success probability vs k (D={distance}, delta={DELTA})",
        columns=[
            "k",
            "success_any",
            "success_within_bound",
            "wilson_lo",
            "theory_lower_bound",
            "cond_mean_time",
            "time_envelope",
            "time_ratio",
        ],
    )
    success_spec = SweepSpec(
        algorithm="harmonic",
        params={"delta": DELTA},
        distances=(distance,),
        ks=tuple(ks),
        trials=trials,
        placement="offaxis",
        seed=derive_seed(seed, 0),
    )
    # Both tables' sweeps share one executor: the pool spawned for the
    # success sweep stays warm for the delta sweep below.
    with ensure_executor(executor, workers=workers) as shared:
        success_result = run_sweep(
            success_spec, cache=cache, executor=shared
        )
        delta_times = {}
        for index, delta in enumerate(DELTAS):
            k_fixed_early = 64 if quick else 128
            delta_spec = SweepSpec(
                algorithm="harmonic",
                params={"delta": delta},
                distances=(distance,),
                ks=(k_fixed_early,),
                trials=trials,
                placement="offaxis",
                seed=derive_seed(seed, 1, index),
            )
            delta_times[delta] = (
                run_sweep(delta_spec, cache=cache, executor=shared)
                .cell(distance, k_fixed_early)
                .times
            )
    for k in ks:
        envelope = harmonic_time_bound(distance, k, DELTA)
        horizon = HORIZON_FACTOR * envelope
        times = success_result.cell(distance, k).times
        found_any = np.isfinite(times)
        found = found_any & (times <= horizon)
        rate = float(found.mean())
        lo, _ = wilson_interval(int(found.sum()), trials)
        cond_mean = float(times[found].mean()) if found.any() else float("inf")
        success.add_row(
            k=k,
            success_any=float(found_any.mean()),
            success_within_bound=rate,
            wilson_lo=lo,
            theory_lower_bound=1.0 - harmonic_failure_bound(k, distance, DELTA),
            cond_mean_time=cond_mean,
            time_envelope=envelope,
            time_ratio=cond_mean / envelope if found.any() else float("inf"),
        )
    success.add_note(
        "theory_lower_bound = 1 - exp(-c k / (12 D^delta)) from the proof; "
        "measured success_within_bound must dominate it"
    )
    success.add_note(
        f"success_within_bound uses horizon = {HORIZON_FACTOR:g} x envelope"
    )

    # --- delta sweep ------------------------------------------------------
    sweep = ResultTable(
        title="E6b: delta sweep (one-shot, fixed k)",
        columns=["delta", "k", "success_rate", "cond_mean_time", "time_envelope"],
    )
    k_fixed = 64 if quick else 128
    for delta in DELTAS:
        envelope = harmonic_time_bound(distance, k_fixed, delta)
        times = delta_times[delta]
        found = np.isfinite(times) & (times <= HORIZON_FACTOR * envelope)
        sweep.add_row(
            delta=delta,
            k=k_fixed,
            success_rate=float(found.mean()),
            cond_mean_time=float(times[found].mean()) if found.any() else float("inf"),
            time_envelope=envelope,
        )
    sweep.add_note("smaller delta reaches farther per agent; larger delta is")
    sweep.add_note("faster near home but needs k > alpha*D^delta agents")
    return [success, sweep]
