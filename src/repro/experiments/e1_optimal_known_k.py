"""E1 — Theorem 3.1: ``A_k`` is O(1)-competitive when ``k`` is known.

Paper prediction: the expected running time of Algorithm 3 is
``O(D + D^2/k)``, i.e. the competitiveness ratio
``T / (D + D^2/k)`` is bounded by a constant, *uniformly* in both ``D``
and ``k``.

Workload: treasure at the spiral-worst corner cell at distance ``D``;
``(D, k)`` grid; 60-300 trials per cell.

Shape checks (asserted by the bench):
* every ratio below a fixed constant;
* ratios essentially flat — max/min spread across the grid bounded;
* absolute times grow like ``D^2`` at ``k = 1`` and like ``D`` once
  ``k ~ D`` (power-law fits).
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.competitiveness import competitiveness, optimal_time
from ..analysis.fitting import fit_power_law
from ..stats import BudgetPolicy
from ..sweep import SweepSpec, run_sweep
from .config import scale
from .io import ResultTable

__all__ = ["run"]

EXPERIMENT_ID = "E1"
TITLE = "E1 (Thm 3.1): A_k with known k is O(1)-competitive"


def run(
    quick: bool = True,
    seed: int | None = None,
    workers: int = 0,
    cache: bool = True,
    budget: Optional[BudgetPolicy] = None,
    progress=None,
    executor=None,
) -> List[ResultTable]:
    cfg = scale(quick)
    seed = cfg.seed if seed is None else seed

    spec = SweepSpec(
        algorithm="nonuniform",
        distances=tuple(cfg.distances),
        ks=tuple(cfg.ks),
        trials=cfg.trials,
        placement="offaxis",
        seed=seed,
        require_k_le_d=True,
        budget=budget,
    )
    result = run_sweep(
        spec, workers=workers, cache=cache, progress=progress,
        executor=executor,
    )

    table = ResultTable(
        title=TITLE,
        columns=[
            "D", "k", "trials", "mean_time", "stderr", "ci95", "optimal",
            "ratio",
        ],
    )
    ratios = []
    for cell in result:
        ratio = competitiveness(cell.mean, cell.distance, cell.k)
        ratios.append(ratio)
        table.add_row(
            D=cell.distance,
            k=cell.k,
            trials=cell.trials,
            mean_time=cell.mean,
            stderr=cell.stderr,
            ci95=cell.summary().ci_halfwidth,
            optimal=optimal_time(cell.distance, cell.k),
            ratio=ratio,
        )

    summary = ResultTable(
        title="E1 summary: ratio spread (flat <=> O(1)-competitive)",
        columns=["min_ratio", "max_ratio", "spread", "cells"],
    )
    summary.add_row(
        min_ratio=min(ratios),
        max_ratio=max(ratios),
        spread=max(ratios) / min(ratios),
        cells=len(ratios),
    )

    # Scaling in D at the extreme k values present in the sweep.
    k_lo = min(cfg.ks)
    lo_cells = [c for c in result if c.k == k_lo]
    if len(lo_cells) >= 2:
        fit = fit_power_law(
            [c.distance for c in lo_cells], [c.mean for c in lo_cells]
        )
        summary.add_note(
            f"T(D) ~ D^{fit.b:.2f} at k={k_lo} (R^2={fit.r2:.3f}); theory: 2.0"
        )
    if spec.budget is not None:
        table.add_note(
            f"adaptive allocation: {spec.budget.describe()}; trials and "
            f"ci95 are per cell"
        )
    return [table, summary]
