"""Result tables: the textual "figures" every experiment produces.

The paper has no numeric tables (it is a theory paper), so each experiment
regenerates a table whose *shape* encodes the corresponding theorem.  A
:class:`ResultTable` is an ordered list of row dicts with a title and notes;
it renders to aligned ASCII for the terminal and to CSV for archival, and
``EXPERIMENTS.md`` embeds the rendered output.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

__all__ = ["ResultTable", "format_value"]


def format_value(value: Any) -> str:
    """Human-friendly cell formatting: floats trimmed, infinities explicit."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        if abs(value) >= 100:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class ResultTable:
    """An ordered table of result rows with fixed columns."""

    title: str
    columns: Sequence[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append a row; every column must be supplied (extras rejected)."""
        missing = set(self.columns) - set(values)
        extra = set(values) - set(self.columns)
        if missing:
            raise ValueError(f"missing columns: {sorted(missing)}")
        if extra:
            raise ValueError(f"unknown columns: {sorted(extra)}")
        self.rows.append(dict(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(f"no column {name!r} in {list(self.columns)}")
        return [row[name] for row in self.rows]

    def to_text(self) -> str:
        """Render as an aligned ASCII table."""
        headers = list(self.columns)
        body = [[format_value(row[c]) for c in headers] for row in self.rows]
        widths = [
            max(len(h), *(len(r[i]) for r in body)) if body else len(h)
            for i, h in enumerate(headers)
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in body:
            lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self, path: str) -> None:
        """Write rows as CSV with a header line."""
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(self.columns))
            writer.writeheader()
            for row in self.rows:
                writer.writerow(row)

    def __str__(self) -> str:
        return self.to_text()

    def __len__(self) -> int:
        return len(self.rows)
