"""E11 — robustness: the paper's algorithms survive faults, walkers don't.

The central selling point of non-communicating search (Sections 1-2) is
robustness: because agents never coordinate, there is nothing to break
when some of them fail or differ.  This experiment quantifies the claim
with the scenario layer (:mod:`repro.scenarios`) on two axes:

* **Crash failures** — agents draw geometric lifetimes with mean a given
  multiple of the universal benchmark ``D + D^2/k``.  Expected shape: the
  paper's constructions degrade *gracefully* (success stays high and the
  censored mean grows sub-linearly as lifetimes shrink toward the optimal
  time), while the random walk — already marginal — falls off a cliff,
  because its hitting times are far into the tail of any finite lifetime.
* **Speed heterogeneity** — per-agent speeds spread geometrically with
  the arithmetic mean pinned at 1 (the swarm's total edge budget is
  spread-invariant), so any change isolates heterogeneity itself.
  Expected shape: near-flat rows for the paper's algorithms — dispersed
  random excursions don't care who performs them — which is the
  robustness claim in its purest form.

Every row is one single-cell sweep on the cached engine
(:func:`repro.sweep.runner.run_sweep`), seeded by a stable
``(section, strategy)`` key so a row's stream never depends on which
other rows run; within a strategy the same seed is reused across knob
values, pairing the excursion noise so degradation columns compare like
with like.  Censored trials are pinned at the horizon by the streaming
summary (:class:`repro.stats.FindTimeAccumulator`), making every reported
mean an honest lower bound with the censored fraction and the CI
half-width printed beside it.  An adaptive ``budget``
(:class:`repro.stats.BudgetPolicy`) resolves the noisy hazard-cliff rows
to a precision target instead of a fixed trial count.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Optional

from ..analysis.competitiveness import optimal_time
from ..scenarios import ScenarioSpec
from ..sim.rng import derive_seed
from ..stats import BudgetPolicy
from ..sweep import SweepSpec, run_sweep
from .config import scale
from .io import ResultTable

__all__ = ["run"]

EXPERIMENT_ID = "E11"
TITLE = "E11: robustness — crashes and heterogeneity degrade gracefully"

#: The contenders: both paper constructions and the walker strawman.
STRATEGIES = (
    ("A_k (knows k)", "nonuniform", {}),
    ("A_uniform(eps=0.5)", "uniform", {"eps": 0.5}),
    ("random walk", "random_walk", {}),
)

#: Mean agent lifetime as a multiple of the optimal time (inf = no faults).
LIFETIMES = (math.inf, 16.0, 4.0, 1.0)

#: Speed-spread knobs: fastest/slowest ratio is (1 + spread)^2.
SPREADS = (0.0, 1.0, 3.0)


def run(
    quick: bool = True,
    seed: int | None = None,
    workers: int = 0,
    cache: bool = True,
    budget: Optional[BudgetPolicy] = None,
    progress=None,
    executor=None,
) -> List[ResultTable]:
    from ..sweep import ensure_executor

    cfg = scale(quick)
    seed = cfg.seed if seed is None else seed
    distance = 32 if quick else 64
    k = 8
    horizon = 40 * distance * distance
    trials = cfg.trials
    optimal = optimal_time(distance, k)

    with ensure_executor(executor, workers=workers) as shared:

        def row_cell(section: int, strategy_index: int, algorithm: str,
                     params: Mapping[str, float],
                     scenario: Optional[ScenarioSpec]):
            spec = SweepSpec(
                algorithm=algorithm,
                distances=(distance,),
                ks=(k,),
                trials=trials,
                params=params,
                placement="offaxis",
                seed=derive_seed(seed, section, strategy_index),
                horizon=float(horizon),
                scenario=scenario,
                budget=budget,
            )
            result = run_sweep(
                spec, cache=cache, progress=progress, executor=shared
            )
            return result.cell(distance, k)

        crash = ResultTable(
            title=(
                f"{TITLE} — crash failures  "
                f"[D={distance}, k={k}, horizon={horizon}]"
            ),
            columns=[
                "algorithm", "lifetime_x_opt", "hazard", "trials", "mean_time",
                "ci95", "success", "censored", "degradation",
            ],
        )
        for si, (name, algorithm, params) in enumerate(STRATEGIES):
            baseline_mean = None
            for lifetime in LIFETIMES:
                if math.isinf(lifetime):
                    hazard = 0.0
                    scenario = None
                else:
                    hazard = min(1.0, 1.0 / (lifetime * optimal))
                    scenario = ScenarioSpec(crash_hazard=hazard)
                cell = row_cell(0, si, algorithm, params, scenario)
                s = cell.summary(horizon=float(horizon))
                if baseline_mean is None:
                    baseline_mean = s.mean
                crash.add_row(
                    algorithm=name,
                    lifetime_x_opt=lifetime,
                    hazard=hazard,
                    trials=cell.trials,
                    mean_time=s.mean,
                    ci95=s.ci_halfwidth,
                    success=s.success_rate,
                    censored=s.censored_fraction,
                    degradation=s.mean / baseline_mean,
                )
        crash.add_note(
            f"geometric agent lifetimes, mean = lifetime_x_opt * (D + D^2/k) "
            f"= lifetime_x_opt * {optimal:.0f}"
        )
        crash.add_note(
            "mean_time pins censored trials at the horizon (lower bound, and "
            "ci95 brackets that bound); "
            "degradation = mean_time / fault-free mean_time"
        )
        if budget is not None:
            crash.add_note(f"adaptive allocation: {budget.describe()}")

        speed = ResultTable(
            title=(
                f"{TITLE} — speed heterogeneity  "
                f"[D={distance}, k={k}, horizon={horizon}]"
            ),
            columns=[
                "algorithm", "spread", "speed_ratio", "trials", "mean_time",
                "ci95", "success", "degradation",
            ],
        )
        for si, (name, algorithm, params) in enumerate(STRATEGIES):
            baseline_mean = None
            for spread in SPREADS:
                scenario = (
                    ScenarioSpec(speed_spread=spread) if spread > 0 else None
                )
                cell = row_cell(1, si, algorithm, params, scenario)
                s = cell.summary(horizon=float(horizon))
                if baseline_mean is None:
                    baseline_mean = s.mean
                speed.add_row(
                    algorithm=name,
                    spread=spread,
                    speed_ratio=(1.0 + spread) ** 2,
                    trials=cell.trials,
                    mean_time=s.mean,
                    ci95=s.ci_halfwidth,
                    success=s.success_rate,
                    degradation=s.mean / baseline_mean,
                )
        speed.add_note(
            "per-agent speeds spread geometrically (fastest/slowest = "
            "speed_ratio) with arithmetic mean pinned at 1: the swarm's total "
            "edge budget is spread-invariant"
        )
        speed.add_note("flat degradation = the paper's robustness claim")
    return [crash, speed]
