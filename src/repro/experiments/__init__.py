"""Experiment harness: one experiment per paper result (see DESIGN.md §4)."""

from .config import FULL, QUICK, ExperimentScale, scale
from .io import ResultTable

__all__ = [
    "FULL",
    "QUICK",
    "ExperimentScale",
    "ResultTable",
    "scale",
    "run_experiment",
    "list_experiments",
    "EXPERIMENTS",
]


def __getattr__(name):
    # Lazy import: registry pulls in every experiment module; keep plain
    # `import repro.experiments` cheap for users who only need ResultTable.
    if name in {"run_experiment", "list_experiments", "EXPERIMENTS"}:
        from . import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
