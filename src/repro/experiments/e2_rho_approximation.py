"""E2 — Corollary 3.2: a ``rho``-approximation of ``k`` costs at most ``rho^2``.

Paper prediction: running ``A_k`` with parameter ``k_a / rho`` where
``k/rho <= k_a <= k*rho`` multiplies the running time by at most ``rho^2``
— the competitiveness stays O(1) for constant ``rho``.

Workload: fixed true ``k``; agents receive the two extreme estimates
``k_a = rho*k`` (maximal over-estimate) and ``k_a = k/rho`` (maximal
under-estimate) for ``rho in {1, 2, 4, 8}``.

Shape checks: the ratio normalised by ``rho^2`` stays bounded by the
``rho = 1`` constant; under-estimates are the costly direction (the
effective parameter becomes ``k/rho^2``, inflating spiral budgets and phase
times), while over-estimates merely shrink budgets.
"""

from __future__ import annotations

from typing import List

from ..analysis.competitiveness import competitiveness, optimal_time
from ..sim.rng import derive_seed
from ..sweep import SweepSpec, run_sweep
from .config import scale
from .io import ResultTable

__all__ = ["run"]

EXPERIMENT_ID = "E2"
TITLE = "E2 (Cor 3.2): rho-approximate knowledge of k costs at most rho^2"

RHOS = (1.0, 2.0, 4.0, 8.0)


def run(
    quick: bool = True,
    seed: int | None = None,
    workers: int = 0,
    cache: bool = True,
    executor=None,
) -> List[ResultTable]:
    from ..sweep import ensure_executor

    cfg = scale(quick)
    seed = cfg.seed if seed is None else seed
    distance = max(cfg.distances)
    k = max(k for k in cfg.ks if k <= distance)

    table = ResultTable(
        title=TITLE,
        columns=["rho", "estimate", "k_a", "mean_time", "ratio", "ratio_over_rho2"],
    )

    index = 0
    with ensure_executor(executor, workers=workers) as ex:
        for rho in RHOS:
            for direction, k_a in (("over", k * rho), ("under", k / rho)):
                spec = SweepSpec(
                    algorithm="rho",
                    params={"k_a": k_a, "rho": rho},
                    distances=(distance,),
                    ks=(k,),
                    trials=cfg.trials,
                    placement="offaxis",
                    seed=derive_seed(seed, index),
                )
                index += 1
                cell = run_sweep(spec, cache=cache, executor=ex).cell(
                    distance, k
                )
                ratio = competitiveness(cell.mean, distance, k)
                table.add_row(
                    rho=rho,
                    estimate=direction,
                    k_a=k_a,
                    mean_time=cell.mean,
                    ratio=ratio,
                    ratio_over_rho2=ratio / rho**2,
                )
    table.add_note(f"true k={k}, D={distance}, optimal={optimal_time(distance, k):.1f}")
    table.add_note("corollary: ratio <= rho^2 * C where C is the rho=1 constant")
    return [table]
