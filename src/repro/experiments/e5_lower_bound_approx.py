"""E5 — Theorem 4.2: with a one-sided ``k^eps``-approximation, the
competitiveness is ``Omega(eps log k)`` — and that is tight.

The paper proves the lower bound; we bracket it empirically:

* **NaiveTrustSearch** (run ``A_{k_tilde}`` believing the estimate) pays a
  *polynomial* penalty ``~ k_tilde/k`` when the true ``k`` sits at the
  bottom of the allowed range — far above the lower bound, showing naive
  use of the estimate is not the right strategy.
* **HedgedApproxSearch** (interleave ``A_g`` over the
  ``O(eps log k_tilde)`` candidate magnitudes) achieves competitiveness
  proportional to the number of guesses — i.e. ``Theta(eps log k_tilde)``,
  matching the paper's lower-bound shape and witnessing its tightness.
* **Oracle** ``A_k`` (true ``k`` revealed) anchors the O(1) floor.

Workload: estimate ``k_tilde`` fixed; true ``k`` sweeps the allowed range
``[k_tilde^(1-eps), k_tilde]``.

Execution runs on :func:`repro.sweep.runner.run_sweep`: one spec per
``(strategy, true k)`` pair covering the whole ``D`` sweep, so every pair
is resolved by a single batched-engine call (shared excursion draws pair
the noise of the cross-``D`` supremum) and inherits the npz cache and
``--workers`` pool.  Seeds derive from ``(root seed, strategy index, k)``
rather than sequential consumption, so a cell's stream never shifts when
the grid changes shape.
"""

from __future__ import annotations

import math
from typing import List

from ..algorithms import HedgedApproxSearch
from ..analysis.competitiveness import competitiveness
from ..sim.rng import derive_seed
from ..sweep import SweepSpec, run_sweep
from .config import scale
from .io import ResultTable

__all__ = ["run"]

EXPERIMENT_ID = "E5"
TITLE = "E5 (Thm 4.2): polynomial estimates of k cost Theta(eps log k)"

EPS = 0.5


def run(
    quick: bool = True,
    seed: int | None = None,
    workers: int = 0,
    cache: bool = True,
    executor=None,
) -> List[ResultTable]:
    from ..sweep import ensure_executor

    cfg = scale(quick)
    seed = cfg.seed if seed is None else seed

    # The naive penalty comes from the doubling structure: with budgets a
    # factor k~/k too small, stage-level success probabilities drop to
    # ~k/k~, and reaching enough attempts costs exponentially many stages —
    # visible only when k~/k is large.  Hence a wide k~.
    k_tilde = 1024 if quick else 2048
    trials = min(cfg.trials, 100)
    # Competitiveness is a supremum over D; naive trust in a large estimate
    # hurts *nearby* treasures most (budgets too small for local search), so
    # the sweep must include distances well below k_tilde.
    distances = (4, 8, 16, 64) if quick else (4, 8, 16, 64, 256)
    k_lo = int(round(k_tilde ** (1 - EPS)))
    true_ks = []
    k = k_lo
    while k <= k_tilde:
        true_ks.append(k)
        k *= 2

    table = ResultTable(
        title=TITLE,
        columns=["true_k", "naive_phi", "naive_worst_D", "hedged_phi", "oracle_phi"],
    )

    strategies = (
        ("naive", "naive", {"k_tilde": k_tilde}),
        ("hedged", "hedged", {"k_tilde": k_tilde, "eps": EPS}),
        ("oracle", "nonuniform", {}),
    )
    with ensure_executor(executor, workers=workers) as shared:
        cells = {
            (k, name): run_sweep(
                SweepSpec(
                    algorithm=algorithm,
                    distances=distances,
                    ks=(k,),
                    trials=trials,
                    params=params,
                    placement="offaxis",
                    seed=derive_seed(seed, strategy_index, k),
                ),
                cache=cache,
                executor=shared,
            )
            for k in true_ks
            for strategy_index, (name, algorithm, params) in enumerate(
                strategies
            )
        }
    for k in true_ks:
        worst = {"naive": 0.0, "hedged": 0.0, "oracle": 0.0}
        naive_worst_d = None
        for name, _, _ in strategies:
            result = cells[(k, name)]
            for distance in distances:
                phi = competitiveness(
                    result.cell(distance, k).mean, distance, k
                )
                if phi > worst[name]:
                    worst[name] = phi
                    if name == "naive":
                        naive_worst_d = distance
        table.add_row(
            true_k=k,
            naive_phi=worst["naive"],
            naive_worst_D=naive_worst_d,
            hedged_phi=worst["hedged"],
            oracle_phi=worst["oracle"],
        )

    n_guesses = len(HedgedApproxSearch(k_tilde=k_tilde, eps=EPS).guesses)
    table.add_note(
        f"k~={k_tilde}, eps={EPS}: allowed true k in [{k_lo}, {k_tilde}], "
        f"hedged cycles {n_guesses} guesses (Theta(eps log k~))"
    )
    table.add_note(
        "phi is the worst ratio over the D sweep "
        f"{distances}; expected shapes: naive_phi ~ k~/(k + D) blows up for "
        "nearby treasures at small k; hedged_phi flat ~ #guesses x oracle; "
        "oracle_phi flat O(1)"
    )
    table.add_note(
        f"lower bound witness: eps*log(k~) = {EPS * math.log(k_tilde):.1f}"
    )
    return [table]
