"""E12 — generalised worlds: mobility, late arrival, and target count.

The paper's model (Section 2) fixes one adversarially placed, immortal,
perfectly detectable target.  The generalised world layer
(:mod:`repro.sim.world`) relaxes each assumption independently — targets
that move (lazy random walk or drift), targets that appear late
(geometric arrival), and multiple targets — and this experiment measures
how the paper's *oblivious* constructions fare against the adaptive
:class:`repro.algorithms.grid_belief <repro.algorithms.belief.GridBeliefSearch>`
baseline, which exploits the one free signal of the relaxed settings:
negative observations.

Three tables, one per relaxation axis (the off-axis static world is the
shared baseline row of each):

* **Mobility** — a lazy-random-walk target at two rates and a drifting
  target.  Expected shape: slow diffusion barely hurts anyone (the
  spiral outruns ``sqrt(rate * t)`` displacement); drift is the
  adversarial case, since the target escapes any ball the searchers
  commit to, and success rates collapse first for strategies whose
  excursion schedule thins out with radius.
* **Arrival** — a target absent until a geometric arrival time with mean
  a multiple of the optimal time ``D + D^2/k``.  Oblivious schedules
  waste their early sweeps on an empty plane; the belief searcher's
  leaky negatives re-examine old ground and should degrade less.
* **Count** — 1, 2, or 4 targets (extras uniform on the same L1 ring).
  Every strategy speeds up — the first find over ``n`` independent
  placements is a minimum over ``n`` draws — so this axis is a sanity
  check that the multi-target kernels price that minimum correctly.

Every row is one single-cell sweep on the cached engine
(:func:`repro.sweep.runner.run_sweep`) with the world spec hashed into
the cache key; rows are seeded by a stable ``(section, strategy)`` key
and reuse the same seed across world settings, so the searcher's own
draws are paired and columns compare like with like (target randomness
comes from the dedicated ``TARGET_STREAM``).  Censored trials are pinned
at the horizon by the streaming summary, making reported means honest
lower bounds.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

from ..analysis.competitiveness import optimal_time
from ..sim.rng import derive_seed
from ..sim.world import WorldSpec
from ..stats import BudgetPolicy
from ..sweep import SweepSpec, run_sweep
from .config import scale
from .io import ResultTable

__all__ = ["run"]

EXPERIMENT_ID = "E12"
TITLE = "E12: generalised worlds — moving, late, and multiple targets"

#: The contenders: two oblivious paper constructions and the adaptive
#: grid-belief searcher.  The harmonic family enters through its
#: *restarting* variant: one-shot Algorithm 2 performs a single excursion
#: per agent, so the excursion-granularity target freeze (DESIGN.md §10)
#: would degenerate its dynamic rows to the static world exactly, whereas
#: the restarting search re-freezes targets every round.
STRATEGIES = (
    ("A_k (knows k)", "nonuniform", {}),
    ("harmonic*(delta=0.5)", "restarting_harmonic", {"delta": 0.5}),
    ("grid-belief", "grid_belief", {}),
)

#: Mobility rows: (label, motion, rate).
MOTIONS = (
    ("static", None, 0.0),
    ("walk(0.05)", "walk", 0.05),
    ("walk(0.2)", "walk", 0.2),
    ("drift(0.05)", "drift", 0.05),
)

#: Arrival rows: mean arrival time as a multiple of the optimal time
#: (0 = present from the start).
ARRIVALS = (0.0, 1.0, 4.0)

#: Count rows: number of targets on the distance-D ring.
COUNTS = (1, 2, 4)


def run(
    quick: bool = True,
    seed: int | None = None,
    workers: int = 0,
    cache: bool = True,
    budget: Optional[BudgetPolicy] = None,
    progress=None,
    executor=None,
) -> List[ResultTable]:
    from ..sweep import ensure_executor

    cfg = scale(quick)
    seed = cfg.seed if seed is None else seed
    distance = 16 if quick else 32
    k = 4 if quick else 8
    horizon = (24 if quick else 40) * distance * distance
    trials = cfg.trials
    optimal = optimal_time(distance, k)

    with ensure_executor(executor, workers=workers) as shared:

        def row_cell(section: int, strategy_index: int, algorithm: str,
                     params: Mapping[str, float],
                     world: Optional[WorldSpec]):
            spec = SweepSpec(
                algorithm=algorithm,
                distances=(distance,),
                ks=(k,),
                trials=trials,
                params=params,
                placement="offaxis",
                seed=derive_seed(seed, section, strategy_index),
                horizon=float(horizon),
                world=world,
                budget=budget,
            )
            result = run_sweep(
                spec, cache=cache, progress=progress, executor=shared
            )
            return result.cell(distance, k)

        def table(title: str, columns: List[str]) -> ResultTable:
            return ResultTable(
                title=(
                    f"{TITLE} — {title}  "
                    f"[D={distance}, k={k}, horizon={horizon}]"
                ),
                columns=columns,
            )

        def add_row(tbl: ResultTable, name: str, cell, baseline_mean,
                    **extra) -> float:
            s = cell.summary(horizon=float(horizon))
            if baseline_mean is None:
                baseline_mean = s.mean
            tbl.add_row(
                algorithm=name,
                **extra,
                trials=cell.trials,
                mean_time=s.mean,
                ci95=s.ci_halfwidth,
                success=s.success_rate,
                censored=s.censored_fraction,
                vs_static=s.mean / baseline_mean,
            )
            return baseline_mean

        common = [
            "trials", "mean_time", "ci95", "success", "censored", "vs_static",
        ]

        mobility = table(
            "target mobility", ["algorithm", "motion"] + common
        )
        for si, (name, algorithm, params) in enumerate(STRATEGIES):
            baseline = None
            for label, motion, rate in MOTIONS:
                world = (
                    None
                    if motion is None
                    else WorldSpec(motion=motion, motion_rate=rate)
                )
                cell = row_cell(0, si, algorithm, params, world)
                baseline = add_row(
                    mobility, name, cell, baseline, motion=label
                )
        mobility.add_note(
            "walk = lazy random walk (rate = step probability per time "
            "unit); drift = one fixed axis direction at the given rate"
        )
        mobility.add_note(
            "mean_time pins censored trials at the horizon (lower bound); "
            "vs_static = mean_time / the strategy's static mean_time"
        )

        arrival = table(
            "late arrival",
            ["algorithm", "arrival_x_opt", "hazard"] + common,
        )
        for si, (name, algorithm, params) in enumerate(STRATEGIES):
            baseline = None
            for mult in ARRIVALS:
                if mult == 0.0:
                    hazard = 0.0
                    world = None
                else:
                    hazard = min(1.0, 1.0 / (mult * optimal))
                    world = WorldSpec(
                        arrival="geometric", arrival_hazard=hazard
                    )
                cell = row_cell(1, si, algorithm, params, world)
                baseline = add_row(
                    arrival, name, cell, baseline,
                    arrival_x_opt=mult, hazard=hazard,
                )
        arrival.add_note(
            f"geometric arrival, mean = arrival_x_opt * (D + D^2/k) = "
            f"arrival_x_opt * {optimal:.0f}; arrival gates detection only "
            f"(a hit requires the target to have arrived)"
        )

        count = table(
            "target count", ["algorithm", "n_targets"] + common
        )
        for si, (name, algorithm, params) in enumerate(STRATEGIES):
            baseline = None
            for n in COUNTS:
                world = None if n == 1 else WorldSpec(n_targets=n)
                cell = row_cell(2, si, algorithm, params, world)
                baseline = add_row(
                    count, name, cell, baseline, n_targets=n
                )
        count.add_note(
            "extra targets placed uniformly on the same L1 ring "
            "(distance D); find time is the first find of any target"
        )
        if budget is not None:
            for tbl in (mobility, arrival, count):
                tbl.add_note(f"adaptive allocation: {budget.describe()}")
    return [mobility, arrival, count]
