"""E10 — ablations over the design choices DESIGN.md calls out.

Four ablations:

* **eps sweep** (``A_uniform``): the constant-vs-asymptotics trade — small
  ``eps`` loses at small ``k`` (bigger constants) and wins at large ``k``.
* **placement**: axis vs corner vs offaxis vs random-on-ring placements;
  corner (the spiral-last cell ``(0,-D)``) maximises spiral hit times but
  sits on the agents' commuting highway (the y-axis of x-first Manhattan
  legs); offaxis is late for the spiral *and* off the highways — the true
  adversarial stand-in.
* **dispersion**: ``A_k`` vs the k-spiral control quantifies *why* the
  paper randomises start nodes — identical deterministic agents get zero
  speed-up, dispersion buys ~k.
* **budget constant**: scaling every spiral budget of ``A_k`` by ``c``
  perturbs the constant but not the O(D + D^2/k) shape (flat ratio in c
  within a small band).
"""

from __future__ import annotations

from typing import List

from ..algorithms import NonUniformSearch, SingleSpiralSearch, UniformSearch
from ..algorithms.base import ExcursionAlgorithm, UniformBallFamily
from ..analysis.competitiveness import competitiveness, optimal_time
from ..core.schedule import nonuniform_schedule
from ..sim.events import simulate_find_times
from ..sim.rng import spawn_seeds
from ..sim.world import place_treasure
from .config import scale
from .io import ResultTable

__all__ = ["run", "ScaledBudgetSearch"]

EXPERIMENT_ID = "E10"
TITLE = "E10: ablations"


class ScaledBudgetSearch(ExcursionAlgorithm):
    """``A_k`` with every spiral budget multiplied by ``c`` (ablation knob)."""

    uses_k = True

    def __init__(self, k: float, budget_scale: float):
        if budget_scale <= 0:
            raise ValueError(f"budget_scale must be positive, got {budget_scale}")
        self.k = float(k)
        self.budget_scale = float(budget_scale)
        self.name = f"A_k(k={k:g}, c={budget_scale:g})"

    def families(self):
        for spec in nonuniform_schedule(self.k):
            budget = max(1, int(round(spec.budget * self.budget_scale)))
            yield UniformBallFamily(spec.radius, budget)


def run(quick: bool = True, seed: int | None = None) -> List[ResultTable]:
    cfg = scale(quick)
    seed = cfg.seed if seed is None else seed
    trials = cfg.trials
    distance = 32 if quick else 128
    k = 8 if quick else 32
    eps_seed, place_seed, disp_seed, budget_seed = spawn_seeds(seed, 4)

    # --- eps sweep --------------------------------------------------------
    eps_table = ResultTable(
        title="E10a: A_uniform eps sweep (constant vs growth trade)",
        columns=["eps", "k", "phi"],
    )
    ks = (2, 8, 32) if quick else (2, 8, 32, 128)
    world = place_treasure(distance, "offaxis")
    seeds = spawn_seeds(eps_seed, 4 * len(ks))
    idx = 0
    for eps in (0.1, 0.3, 0.5, 1.0):
        for kk in ks:
            if kk > distance:
                continue
            times = simulate_find_times(UniformSearch(eps), world, kk, trials, seeds[idx])
            idx += 1
            eps_table.add_row(
                eps=eps,
                k=kk,
                phi=competitiveness(float(times.mean()), distance, kk),
            )

    # --- placement --------------------------------------------------------
    place_table = ResultTable(
        title="E10b: placement ablation (commuting highways vs spiral order)",
        columns=["placement", "mean_time", "vs_optimal"],
    )
    p_seeds = spawn_seeds(place_seed, 8)
    optimal = optimal_time(distance, k)
    for i, placement in enumerate(("axis", "corner", "offaxis", "random")):
        world_p = place_treasure(distance, placement, seed=p_seeds[2 * i])
        times = simulate_find_times(
            NonUniformSearch(k=k), world_p, k, trials, p_seeds[2 * i + 1]
        )
        place_table.add_row(
            placement=placement,
            mean_time=float(times.mean()),
            vs_optimal=float(times.mean()) / optimal,
        )

    # --- dispersion -------------------------------------------------------
    disp_table = ResultTable(
        title="E10c: dispersion ablation (why start nodes are randomised)",
        columns=["strategy", "k", "mean_time", "speedup_vs_k1"],
    )
    world_c = place_treasure(distance, "offaxis")
    spiral_time = float(SingleSpiralSearch().exact_find_time(world_c))
    disp_table.add_row(
        strategy="k-spiral (no dispersion)",
        k=k,
        mean_time=spiral_time,
        speedup_vs_k1=1.0,
    )
    d_seeds = spawn_seeds(disp_seed, 2)
    t1 = float(
        simulate_find_times(NonUniformSearch(k=1), world_c, 1, trials, d_seeds[0]).mean()
    )
    tk = float(
        simulate_find_times(NonUniformSearch(k=k), world_c, k, trials, d_seeds[1]).mean()
    )
    disp_table.add_row(
        strategy="A_k (dispersed)", k=1, mean_time=t1, speedup_vs_k1=1.0
    )
    disp_table.add_row(
        strategy="A_k (dispersed)", k=k, mean_time=tk, speedup_vs_k1=t1 / tk
    )
    disp_table.add_note("deterministic clones: speed-up exactly 1; dispersion: ~k")

    # --- budget-constant --------------------------------------------------
    budget_table = ResultTable(
        title="E10d: spiral-budget constant ablation (shape is robust)",
        columns=["budget_scale", "mean_time", "phi"],
    )
    b_seeds = spawn_seeds(budget_seed, 4)
    for i, c in enumerate((0.5, 1.0, 2.0, 4.0)):
        times = simulate_find_times(
            ScaledBudgetSearch(k=k, budget_scale=c), world_c, k, trials, b_seeds[i]
        )
        budget_table.add_row(
            budget_scale=c,
            mean_time=float(times.mean()),
            phi=competitiveness(float(times.mean()), distance, k),
        )
    budget_table.add_note("phi varies by small constants only across c in [0.5, 4]")

    return [eps_table, place_table, disp_table, budget_table]
