"""E10 — ablations over the design choices DESIGN.md calls out.

Four ablations:

* **eps sweep** (``A_uniform``): the constant-vs-asymptotics trade — small
  ``eps`` loses at small ``k`` (bigger constants) and wins at large ``k``.
* **placement**: axis vs corner vs offaxis vs random-on-ring placements;
  corner (the spiral-last cell ``(0,-D)``) maximises spiral hit times but
  sits on the agents' commuting highway (the y-axis of x-first Manhattan
  legs); offaxis is late for the spiral *and* off the highways — the true
  adversarial stand-in.
* **dispersion**: ``A_k`` vs the k-spiral control quantifies *why* the
  paper randomises start nodes — identical deterministic agents get zero
  speed-up, dispersion buys ~k.
* **budget constant**: scaling every spiral budget of ``A_k`` by ``c``
  perturbs the constant but not the O(D + D^2/k) shape (flat ratio in c
  within a small band).

All four run on :func:`repro.sweep.runner.run_sweep` (cached, poolable).
Every spec's seed is *derived* from the root seed plus a stable key —
``(section, knob value)`` — via :func:`repro.sim.rng.derive_seed`, never
consumed sequentially: the old ``idx``-advancing pattern silently shifted
every later cell onto a different stream whenever a cell was skipped
(``k > D``) or a grid changed shape between quick and full mode.
"""

from __future__ import annotations

from typing import List

from ..algorithms import ScaledBudgetSearch, SingleSpiralSearch
from ..analysis.competitiveness import competitiveness, optimal_time
from ..sim.rng import derive_seed
from ..sim.world import place_treasure
from ..sweep import SweepSpec, run_sweep
from .config import scale
from .io import ResultTable

__all__ = ["run", "ScaledBudgetSearch"]

EXPERIMENT_ID = "E10"
TITLE = "E10: ablations"

# Stable section keys for seed derivation (never renumber).
_EPS_SECTION, _PLACEMENT_SECTION, _DISPERSION_SECTION, _BUDGET_SECTION = range(4)


def run(
    quick: bool = True,
    seed: int | None = None,
    workers: int = 0,
    cache: bool = True,
    executor=None,
) -> List[ResultTable]:
    from ..sweep import ensure_executor

    cfg = scale(quick)
    seed = cfg.seed if seed is None else seed
    trials = cfg.trials
    distance = 32 if quick else 128
    k = 8 if quick else 32

    with ensure_executor(executor, workers=workers) as shared:

        def sweep(section: int, *key: int, **spec_kwargs):
            spec = SweepSpec(
                trials=trials,
                seed=derive_seed(seed, section, *key),
                **spec_kwargs,
            )
            return run_sweep(spec, cache=cache, executor=shared)

        # --- eps sweep --------------------------------------------------------
        eps_table = ResultTable(
            title="E10a: A_uniform eps sweep (constant vs growth trade)",
            columns=["eps", "k", "phi"],
        )
        ks = (2, 8, 32) if quick else (2, 8, 32, 128)
        for eps in (0.1, 0.3, 0.5, 1.0):
            # One spec per eps; require_k_le_d drops k > D cells without
            # disturbing any other cell's seed (the old sequential-idx bug).
            result = sweep(
                _EPS_SECTION,
                int(round(eps * 1000)),
                algorithm="uniform",
                params={"eps": eps},
                distances=(distance,),
                ks=ks,
                placement="offaxis",
                require_k_le_d=True,
            )
            for cell in result:
                eps_table.add_row(
                    eps=eps,
                    k=cell.k,
                    phi=competitiveness(cell.mean, distance, cell.k),
                )

        # --- placement --------------------------------------------------------
        place_table = ResultTable(
            title="E10b: placement ablation (commuting highways vs spiral order)",
            columns=["placement", "mean_time", "vs_optimal"],
        )
        optimal = optimal_time(distance, k)
        for i, placement in enumerate(("axis", "corner", "offaxis", "random")):
            result = sweep(
                _PLACEMENT_SECTION,
                i,
                algorithm="nonuniform",
                distances=(distance,),
                ks=(k,),
                placement=placement,
            )
            mean = result.cell(distance, k).mean
            place_table.add_row(
                placement=placement,
                mean_time=mean,
                vs_optimal=mean / optimal,
            )

        # --- dispersion -------------------------------------------------------
        disp_table = ResultTable(
            title="E10c: dispersion ablation (why start nodes are randomised)",
            columns=["strategy", "k", "mean_time", "speedup_vs_k1"],
        )
        world_c = place_treasure(distance, "offaxis")
        spiral_time = float(SingleSpiralSearch().exact_find_time(world_c))
        disp_table.add_row(
            strategy="k-spiral (no dispersion)",
            k=k,
            mean_time=spiral_time,
            speedup_vs_k1=1.0,
        )
        disp_result = sweep(
            _DISPERSION_SECTION,
            algorithm="nonuniform",
            distances=(distance,),
            ks=(1, k),
            placement="offaxis",
        )
        t1 = disp_result.cell(distance, 1).mean
        tk = disp_result.cell(distance, k).mean
        disp_table.add_row(
            strategy="A_k (dispersed)", k=1, mean_time=t1, speedup_vs_k1=1.0
        )
        disp_table.add_row(
            strategy="A_k (dispersed)", k=k, mean_time=tk, speedup_vs_k1=t1 / tk
        )
        disp_table.add_note("deterministic clones: speed-up exactly 1; dispersion: ~k")

        # --- budget-constant --------------------------------------------------
        budget_table = ResultTable(
            title="E10d: spiral-budget constant ablation (shape is robust)",
            columns=["budget_scale", "mean_time", "phi"],
        )
        for c in (0.5, 1.0, 2.0, 4.0):
            result = sweep(
                _BUDGET_SECTION,
                int(round(c * 1000)),
                algorithm="nonuniform_scaled",
                params={"budget_scale": c},
                distances=(distance,),
                ks=(k,),
                placement="offaxis",
            )
            mean = result.cell(distance, k).mean
            budget_table.add_row(
                budget_scale=c,
                mean_time=mean,
                phi=competitiveness(mean, distance, k),
            )
        budget_table.add_note("phi varies by small constants only across c in [0.5, 4]")

    return [eps_table, place_table, disp_table, budget_table]
