"""E3 — Theorem 3.3: ``A_uniform(eps)`` is ``O(log^(1+eps) k)``-competitive.

Paper prediction: without any knowledge of ``k``, the uniform algorithm's
competitiveness ``phi(k) = T/(D + D^2/k)`` grows polylogarithmically, with
exponent ``~ 1 + eps``.

Workload: ``D`` fixed at the top of the scale (the analysis assumes
``k <= D``), ``k`` sweeping powers of two, three settings of ``eps``.

Shape checks:
* ``phi(k)`` grows with ``k`` but far slower than any power
  (``phi(k_max)/phi(2)`` well below ``sqrt(k_max/2)``);
* the poly-log fit ``phi(k) = a log^b k`` explains the data (decent R^2)
  with a modest exponent ``b`` (the asymptotic ``1 + eps`` is approached
  from above at laptop scales because of the additive constants in the
  schedule);
* smaller ``eps`` trades a larger constant ``a`` for smaller growth —
  visible as a crossover in the table.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.competitiveness import competitiveness, optimal_time
from ..analysis.fitting import fit_polylog
from ..sim.rng import derive_seed
from ..stats import BudgetPolicy
from ..sweep import SweepResult, SweepSpec, run_sweep
from .config import scale
from .io import ResultTable

__all__ = ["run", "phi_of_k", "phi_sweep"]

EXPERIMENT_ID = "E3"
TITLE = "E3 (Thm 3.3): A_uniform(eps) competitiveness grows ~ log^(1+eps) k"

EPSILONS = (0.1, 0.5, 1.0)


def phi_sweep(
    eps: float,
    distance: int,
    ks,
    trials: int,
    seed: int,
    *,
    workers: int = 0,
    cache: bool = True,
    budget: Optional[BudgetPolicy] = None,
    progress=None,
    executor=None,
) -> SweepResult:
    """The ``phi(k)`` sweep for ``A_uniform(eps)`` at fixed ``D``."""
    spec = SweepSpec(
        algorithm="uniform",
        params={"eps": eps},
        distances=(distance,),
        ks=tuple(ks),
        trials=trials,
        placement="offaxis",
        seed=seed,
        budget=budget,
    )
    return run_sweep(
        spec, workers=workers, cache=cache, progress=progress,
        executor=executor,
    )


def phi_of_k(
    eps: float,
    distance: int,
    ks,
    trials: int,
    seed: int,
    *,
    workers: int = 0,
    cache: bool = True,
    budget: Optional[BudgetPolicy] = None,
    progress=None,
    executor=None,
) -> List[tuple]:
    """Measure ``phi(k)`` for ``A_uniform(eps)`` at fixed ``D``; rows of
    ``(k, mean_time, ratio)``."""
    result = phi_sweep(
        eps, distance, ks, trials, seed,
        workers=workers, cache=cache, budget=budget, progress=progress,
        executor=executor,
    )
    rows = []
    for k in ks:
        cell = result.cell(distance, k)
        rows.append((k, cell.mean, competitiveness(cell.mean, distance, k)))
    return rows


def run(
    quick: bool = True,
    seed: int | None = None,
    workers: int = 0,
    cache: bool = True,
    budget: Optional[BudgetPolicy] = None,
    progress=None,
    executor=None,
) -> List[ResultTable]:
    cfg = scale(quick)
    seed = cfg.seed if seed is None else seed
    distance = max(cfg.distances)
    # Dense power-of-two grid within the k <= D analysis regime: the
    # polylog fit needs more than a handful of points.
    k_cap = min(distance, 64 if quick else 256)
    ks = [2**i for i in range(0, k_cap.bit_length())]
    ks = [k for k in ks if k <= k_cap]

    table = ResultTable(
        title=TITLE,
        columns=["eps", "k", "trials", "mean_time", "ci95", "optimal", "phi"],
    )
    fits = ResultTable(
        title="E3 fits: phi(k) = a * log(k)^b  (theory: b ~ 1 + eps)",
        columns=["eps", "a", "b", "r2", "phi_at_kmax"],
    )

    from ..sweep import ensure_executor

    with ensure_executor(executor, workers=workers) as shared:
        results = [
            phi_sweep(
                eps,
                distance,
                ks,
                cfg.trials,
                derive_seed(seed, index),
                cache=cache,
                budget=budget,
                progress=progress,
                executor=shared,
            )
            for index, eps in enumerate(EPSILONS)
        ]
    for eps, result in zip(EPSILONS, results):
        rows = []
        for k in ks:
            cell = result.cell(distance, k)
            phi = competitiveness(cell.mean, distance, k)
            rows.append((k, cell.mean, phi))
            table.add_row(
                eps=eps,
                k=k,
                trials=cell.trials,
                mean_time=cell.mean,
                ci95=cell.summary().ci_halfwidth,
                optimal=optimal_time(distance, k),
                phi=phi,
            )
        fit_rows = [(k, phi) for k, _, phi in rows if k > 1]
        if len(fit_rows) >= 2:
            fit = fit_polylog([r[0] for r in fit_rows], [r[1] for r in fit_rows])
            fits.add_row(
                eps=eps, a=fit.a, b=fit.b, r2=fit.r2, phi_at_kmax=fit_rows[-1][1]
            )
    table.add_note(f"D={distance} (analysis regime k <= D), offaxis placement")
    if budget is not None:
        table.add_note(
            f"adaptive allocation: {budget.describe()}; trials and ci95 "
            f"are per cell"
        )
    fits.add_note("at laptop scale b tracks 1+eps from below: the additive")
    fits.add_note("constants in the schedule flatten the small-k head of the curve;")
    fits.add_note("the k=1 cell is excluded (log 1 = 0 degenerates the model)")
    return [table, fits]
