"""E8 — Section 6: straight walks of length ``2^l`` with ``O(log l)`` bits.

The discussion claims the constructions need almost no memory: a straight
leg of length ``d = 2^l`` can be driven by a randomised counter using
``O(log log d)`` bits.  We measure the Morris-counter walk:

* mean walked distance tracks ``2^l - 1`` (unbiasedness of the stopping
  rule);
* relative spread shrinks with median-of-``r`` amplification;
* bits of state used stay ``O(log l)`` — single digits where an exact
  odometer needs ``l`` bits.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..memory.counter import walk_distance_samples
from ..sim.rng import derive_rng
from .config import scale
from .io import ResultTable

__all__ = ["run"]

EXPERIMENT_ID = "E8"
TITLE = "E8 (Sec 6): randomized counting walks 2^l far on O(log l) bits"


def run(quick: bool = True, seed: int | None = None) -> List[ResultTable]:
    cfg = scale(quick)
    seed = cfg.seed if seed is None else seed
    ells = (4, 6, 8) if quick else (4, 6, 8, 10, 12)
    samples = 200 if quick else 1000

    table = ResultTable(
        title=TITLE,
        columns=[
            "ell",
            "target",
            "mean_distance",
            "rel_spread",
            "rel_spread_median3",
            "bits_used",
            "exact_odometer_bits",
        ],
    )
    # Seeds are keyed by (ell, variant) rather than consumed positionally,
    # so a row's stream is identical in quick and full mode.
    for ell in ells:
        rng = derive_rng(seed, ell, 0)
        walks = np.asarray(walk_distance_samples(rng, ell, samples))
        rng3 = derive_rng(seed, ell, 1)
        walks3 = np.asarray(walk_distance_samples(rng3, ell, samples, median_of=3))
        target = 2.0**ell - 1
        table.add_row(
            ell=ell,
            target=target,
            mean_distance=float(walks.mean()),
            rel_spread=float(walks.std() / target),
            rel_spread_median3=float(walks3.std() / target),
            bits_used=max(1, math.ceil(math.log2(ell + 1))),
            exact_odometer_bits=ell,
        )
    table.add_note("stopping rule: walk until the Morris exponent reaches ell")
    table.add_note("E[distance] = 2^ell - 1; median-of-3 tightens the spread")
    return [table]
