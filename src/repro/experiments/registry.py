"""Experiment registry: every theorem's experiment, discoverable by id.

``run_experiment("E3")`` executes the Theorem 3.3 reproduction and returns
its result tables; the CLI and the benchmark harness are thin layers over
this module.  See DESIGN.md section 4 for the experiment index.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from . import (
    e1_optimal_known_k,
    e2_rho_approximation,
    e3_uniform_competitiveness,
    e4_lower_bound_uniform,
    e5_lower_bound_approx,
    e6_harmonic,
    e7_baselines,
    e8_memory,
    e9_speedup,
    e10_ablations,
    e11_robustness,
    e12_dynamic_worlds,
)
from .io import ResultTable

__all__ = ["ExperimentInfo", "EXPERIMENTS", "run_experiment", "list_experiments"]


@dataclass(frozen=True)
class ExperimentInfo:
    """A registered experiment: id, paper anchor, and runner."""

    experiment_id: str
    paper_result: str
    title: str
    runner: Callable[..., List[ResultTable]]


_MODULES = (
    (e1_optimal_known_k, "Theorem 3.1"),
    (e2_rho_approximation, "Corollary 3.2"),
    (e3_uniform_competitiveness, "Theorem 3.3"),
    (e4_lower_bound_uniform, "Theorem 4.1"),
    (e5_lower_bound_approx, "Theorem 4.2"),
    (e6_harmonic, "Theorem 5.1"),
    (e7_baselines, "Sections 1-2"),
    (e8_memory, "Section 6"),
    (e9_speedup, "Section 2 observation"),
    (e10_ablations, "design ablations"),
    (e11_robustness, "Sections 1-2 robustness"),
    (e12_dynamic_worlds, "Section 2 model, relaxed"),
)

EXPERIMENTS: Dict[str, ExperimentInfo] = {
    module.EXPERIMENT_ID: ExperimentInfo(
        experiment_id=module.EXPERIMENT_ID,
        paper_result=anchor,
        title=module.TITLE,
        runner=module.run,
    )
    for module, anchor in _MODULES
}


def list_experiments() -> List[ExperimentInfo]:
    """All registered experiments in id order."""
    return [EXPERIMENTS[key] for key in sorted(EXPERIMENTS, key=_id_sort_key)]


def _id_sort_key(experiment_id: str) -> int:
    return int(experiment_id.lstrip("E"))


def run_experiment(
    experiment_id: str,
    quick: bool = True,
    seed: Optional[int] = None,
    **options,
) -> List[ResultTable]:
    """Run one experiment by id (e.g. ``"E3"``) and return its tables.

    Extra ``options`` (``workers``, ``cache``, ``executor``, ``budget``,
    ``progress``, ...) are forwarded to runners whose signature accepts
    them and silently dropped otherwise, so sweep execution knobs can be
    offered uniformly without forcing every experiment to grow them.
    ``executor`` is the sharing seam: the CLI passes one persistent
    :class:`repro.sweep.executor.SweepExecutor` here so every sweep of
    every requested experiment reuses the same warm worker pool.
    """
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS, key=_id_sort_key))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
    runner = EXPERIMENTS[key].runner
    accepted = inspect.signature(runner).parameters
    forwarded = {name: value for name, value in options.items() if name in accepted}
    return runner(quick=quick, seed=seed, **forwarded)
