"""Core substrate: grid geometry, the spiral primitive, walks, and schedules.

These are the building blocks Section 2 of the paper assumes of its agents:
the L1 grid metric and balls (:mod:`repro.core.geometry`), the spiral search
primitive (:mod:`repro.core.spiral`), straight-line and circle navigation
(:mod:`repro.core.walks`), and the deterministic excursion schedules of the
iterated algorithms (:mod:`repro.core.schedule`).
"""

from .geometry import (
    annulus_cells,
    annulus_size,
    ball_cells,
    ball_size,
    l1_distance,
    l1_norm,
    ring_cells,
    ring_size,
    sample_uniform_ball,
    sample_uniform_ring,
)
from .schedule import (
    PhaseSpec,
    guess_cycle_schedule,
    nonuniform_schedule,
    phase_max_duration,
    uniform_schedule,
)
from .spiral import (
    coverage_radius,
    spiral_cells,
    spiral_hit_time,
    spiral_hit_time_array,
    spiral_position,
    spiral_position_array,
    spiral_steps,
    time_to_cover_radius,
)
from .walks import diamond_tour, diamond_tour_length, manhattan_path

__all__ = [
    "PhaseSpec",
    "annulus_cells",
    "annulus_size",
    "ball_cells",
    "ball_size",
    "coverage_radius",
    "diamond_tour",
    "diamond_tour_length",
    "guess_cycle_schedule",
    "l1_distance",
    "l1_norm",
    "manhattan_path",
    "nonuniform_schedule",
    "phase_max_duration",
    "ring_cells",
    "ring_size",
    "sample_uniform_ball",
    "sample_uniform_ring",
    "spiral_cells",
    "spiral_hit_time",
    "spiral_hit_time_array",
    "spiral_position",
    "spiral_position_array",
    "spiral_steps",
    "time_to_cover_radius",
    "uniform_schedule",
]
