"""L1 (hop-distance) geometry on the integer grid ``Z^2``.

The paper works on the infinite grid with the hop metric
``d(u, v) = |u.x - v.x| + |u.y - v.y|`` (Section 2).  The ball
``B(r) = {v : d(s, v) <= r}`` around the source is the discrete L1 ball
("diamond").  This module provides exact cardinalities, iterators, and
**exact** uniform sampling from balls and rings — the only geometric
primitives the paper's algorithms need besides the spiral.

Cardinalities
-------------

* ring ``{v : d(v) = r}`` has ``4r`` cells for ``r >= 1`` (1 for ``r = 0``);
* ball ``B(r)`` has ``2r^2 + 2r + 1`` cells.

Ring parameterisation
---------------------

Ring ``r >= 1`` is indexed ``m in [0, 4r)`` counter-clockwise from
``(r, 0)``; with quadrant ``q = m // r`` and offset ``i = m % r``:

====  =================
q     cell
====  =================
0     ``(r - i,  i)``
1     ``(-i,  r - i)``
2     ``(-(r - i), -i)``
3     ``(i, -(r - i))``
====  =================

Uniform sampling from ``B(r)`` draws a ring radius by exact inverse-CDF on
the cumulative ball sizes (pure integer arithmetic, no rejection), then an
index on the ring.
"""

from __future__ import annotations

import math
from typing import Iterator, Tuple

import numpy as np

__all__ = [
    "l1_distance",
    "l1_norm",
    "ring_size",
    "ball_size",
    "ball_radius_from_index",
    "ring_cells",
    "ball_cells",
    "ring_cell_from_index",
    "ring_cells_from_index_array",
    "sample_uniform_ball",
    "sample_uniform_ring",
    "annulus_size",
    "annulus_cells",
]


def l1_distance(u: Tuple[int, int], v: Tuple[int, int]) -> int:
    """Hop distance between grid nodes ``u`` and ``v``."""
    return abs(u[0] - v[0]) + abs(u[1] - v[1])


def l1_norm(x: int, y: int) -> int:
    """Hop distance of ``(x, y)`` from the origin."""
    return abs(x) + abs(y)


def ring_size(r: int) -> int:
    """Number of cells at L1 distance exactly ``r`` from a node."""
    if r < 0:
        raise ValueError(f"radius must be non-negative, got {r}")
    return 1 if r == 0 else 4 * r


def ball_size(r: int) -> int:
    """Number of cells in the L1 ball of radius ``r``: ``2r^2 + 2r + 1``."""
    if r < 0:
        raise ValueError(f"radius must be non-negative, got {r}")
    return 2 * r * r + 2 * r + 1


def annulus_size(inner: int, outer: int) -> int:
    """Number of cells ``u`` with ``inner < d(u) <= outer``."""
    if inner > outer:
        raise ValueError(f"need inner <= outer, got {inner} > {outer}")
    return ball_size(outer) - ball_size(inner)


def ball_radius_from_index(n: int) -> int:
    """Ring radius of the ``n``-th cell in the radius-sorted enumeration of a ball.

    Cells of ``B(r)`` are enumerated ring by ring; index ``0`` is the centre,
    indices ``[2ρ² - 2ρ + 1, 2ρ² + 2ρ + 1)`` are ring ``ρ``.  Exact integer
    arithmetic (no float error); used by the exact uniform ball sampler.
    """
    if n < 0:
        raise ValueError(f"index must be non-negative, got {n}")
    if n == 0:
        return 0
    rho = (1 + math.isqrt(2 * n - 1)) // 2
    # isqrt flooring can leave rho off by one in either direction; fix up.
    while ball_size(rho) <= n:
        rho += 1
    while rho > 0 and ball_size(rho - 1) > n:
        rho -= 1
    return rho


def ring_cell_from_index(r: int, m: int) -> Tuple[int, int]:
    """The ``m``-th cell (counter-clockwise from ``(r, 0)``) of ring ``r >= 1``."""
    if r < 1:
        raise ValueError(f"ring radius must be >= 1, got {r}")
    if not 0 <= m < 4 * r:
        raise ValueError(f"ring index out of range: {m} not in [0, {4 * r})")
    q, i = divmod(m, r)
    if q == 0:
        return r - i, i
    if q == 1:
        return -i, r - i
    if q == 2:
        return -(r - i), -i
    return i, -(r - i)


def ring_cells_from_index_array(
    r: np.ndarray, m: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`ring_cell_from_index` (all radii must be ``>= 1``)."""
    r = np.asarray(r, dtype=np.int64)
    m = np.asarray(m, dtype=np.int64)
    q = m // r
    i = m % r
    x = np.select([q == 0, q == 1, q == 2], [r - i, -i, -(r - i)], i)
    y = np.select([q == 0, q == 1, q == 2], [i, r - i, -i], -(r - i))
    return x, y


def ring_cells(r: int) -> Iterator[Tuple[int, int]]:
    """Iterate over the cells of ring ``r`` (counter-clockwise; centre if r=0)."""
    if r == 0:
        yield 0, 0
        return
    for m in range(4 * r):
        yield ring_cell_from_index(r, m)


def ball_cells(r: int) -> Iterator[Tuple[int, int]]:
    """Iterate over all cells of ``B(r)``, ring by ring from the centre."""
    for rho in range(r + 1):
        yield from ring_cells(rho)


def annulus_cells(inner: int, outer: int) -> Iterator[Tuple[int, int]]:
    """Iterate over cells ``u`` with ``inner < d(u) <= outer``."""
    for rho in range(inner + 1, outer + 1):
        yield from ring_cells(rho)


def sample_uniform_ball(
    rng: np.random.Generator, radius: int, size: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw ``size`` cells uniformly (with replacement) from ``B(radius)``.

    Exact: a uniform integer index in ``[0, |B(radius)|)`` is mapped to its
    ring by integer inverse-CDF and to a position on the ring.  Returns
    ``(x, y)`` int64 arrays of length ``size``.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    total = ball_size(radius)
    n = rng.integers(0, total, size=size, dtype=np.int64)

    # rho = floor((1 + sqrt(2n - 1)) / 2) with integer fix-up, vectorised.
    with np.errstate(invalid="ignore"):
        rho = ((1 + np.sqrt(np.maximum(2 * n - 1, 0))) // 2).astype(np.int64)
    rho = np.where(n == 0, 0, rho)
    # Fix-up passes (at most one step is ever needed, two for safety).
    for _ in range(2):
        ball_lo = 2 * rho * rho - 2 * rho + 1  # ball_size(rho - 1)
        ball_hi = 2 * rho * rho + 2 * rho + 1  # ball_size(rho)
        rho = np.where((rho > 0) & (ball_lo > n), rho - 1, rho)
        rho = np.where(ball_hi <= n, rho + 1, rho)

    offset = n - (2 * rho * rho - 2 * rho + 1)
    x = np.zeros(size, dtype=np.int64)
    y = np.zeros(size, dtype=np.int64)
    on_ring = rho >= 1
    if np.any(on_ring):
        rx, ry = ring_cells_from_index_array(rho[on_ring], offset[on_ring])
        x[on_ring] = rx
        y[on_ring] = ry
    return x, y


def sample_uniform_ring(
    rng: np.random.Generator, radius: int, size: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw ``size`` cells uniformly (with replacement) from ring ``radius``."""
    if radius == 0:
        return np.zeros(size, dtype=np.int64), np.zeros(size, dtype=np.int64)
    m = rng.integers(0, 4 * radius, size=size, dtype=np.int64)
    r = np.full(size, radius, dtype=np.int64)
    return ring_cells_from_index_array(r, m)
