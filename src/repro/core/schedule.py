"""Deterministic phase schedules of the paper's iterated algorithms.

Both upper-bound constructions of the paper are *iterated excursion*
algorithms: an agent repeatedly (i) draws a node ``u`` uniformly from a ball
``B(radius)``, (ii) walks to ``u``, (iii) runs a spiral search from ``u``
for a prescribed number of steps, and (iv) walks back to the source.  The
per-phase ``(radius, budget)`` pairs form a deterministic schedule shared by
all agents; the only randomness is the drawn node.

* :func:`nonuniform_schedule` — Algorithm 3 (``A_k``, Theorem 3.1):
  stages ``j = 1, 2, ...``; within stage ``j``, phases ``i = 1..j`` with
  ball radius ``2^i`` and spiral budget ``t_i = 2^{2i+2} / k``.

* :func:`uniform_schedule` — Algorithm 1 (``A_uniform``, Theorem 3.3):
  big-stages ``l = 0, 1, ...``; stages ``i = 0..l``; phases ``j = 0..i``
  with ``D_{i,j} = sqrt(2^{i+j} / j^{1+eps})`` and budget
  ``t_{i,j} = 2^{i+2} / j^{1+eps}``.

Rounding conventions (constants only; covered by unit tests):

* real-valued radii are floored, real-valued budgets are ceiled, and both
  are clamped to be at least 1;
* the paper's ``j^{1+eps}`` at ``j = 0`` is read as ``max(j, 1)^{1+eps}``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from .spiral import spiral_position

__all__ = [
    "PhaseSpec",
    "phase_max_duration",
    "nonuniform_schedule",
    "nonuniform_stage_phases",
    "uniform_schedule",
    "uniform_stage_phases",
    "uniform_big_stage_phases",
    "guess_cycle_schedule",
]


@dataclass(frozen=True)
class PhaseSpec:
    """One excursion phase: draw from ``B(radius)``, spiral for ``budget`` steps.

    ``label`` carries the loop indices that produced the phase — ``("stage",
    j, "phase", i)`` style tuples — so tests and instrumentation can locate
    phases inside the schedule without re-deriving the loop structure.
    """

    radius: int
    budget: int
    label: Tuple = ()

    def __post_init__(self) -> None:
        if self.radius < 1:
            raise ValueError(f"phase radius must be >= 1, got {self.radius}")
        if self.budget < 1:
            raise ValueError(f"phase budget must be >= 1, got {self.budget}")


def phase_max_duration(spec: PhaseSpec) -> int:
    """Worst-case duration of one execution of ``spec``.

    Travel out (``<= radius``) + spiral (``budget``) + travel back from the
    spiral's final cell (``<= radius + |spiral_position(budget)|``).
    """
    ex, ey = spiral_position(spec.budget)
    return 2 * spec.radius + spec.budget + abs(ex) + abs(ey)


def _ceil_at_least_one(value: float) -> int:
    return max(1, math.ceil(value))


def _floor_at_least_one(value: float) -> int:
    return max(1, math.floor(value))


# ---------------------------------------------------------------------------
# Algorithm 3 (A_k) — Theorem 3.1
# ---------------------------------------------------------------------------


def nonuniform_stage_phases(stage: int, k: float) -> List[PhaseSpec]:
    """Phases of stage ``j = stage`` of ``A_k`` with agent-count parameter ``k``."""
    if stage < 1:
        raise ValueError(f"stage index must be >= 1, got {stage}")
    if k <= 0:
        raise ValueError(f"agent count parameter must be positive, got {k}")
    phases = []
    for i in range(1, stage + 1):
        radius = 2**i
        budget = _ceil_at_least_one(2 ** (2 * i + 2) / k)
        phases.append(PhaseSpec(radius, budget, label=("stage", stage, "phase", i)))
    return phases


def nonuniform_schedule(k: float) -> Iterator[PhaseSpec]:
    """Infinite phase schedule of Algorithm 3 (``A_k``).

    ``k`` is the agent-count parameter the algorithm *believes*; Corollary
    3.2 runs the same schedule with ``k_a / rho``.
    """
    stage = 0
    while True:
        stage += 1
        yield from nonuniform_stage_phases(stage, k)


# ---------------------------------------------------------------------------
# Algorithm 1 (A_uniform) — Theorem 3.3
# ---------------------------------------------------------------------------


def _uniform_denominator(j: int, eps: float) -> float:
    return float(max(j, 1)) ** (1.0 + eps)


def uniform_phase(i: int, j: int, eps: float) -> PhaseSpec:
    """Phase ``j`` of stage ``i`` of ``A_uniform(eps)``."""
    if not 0 <= j <= i:
        raise ValueError(f"need 0 <= j <= i, got i={i}, j={j}")
    denom = _uniform_denominator(j, eps)
    radius = _floor_at_least_one(math.sqrt(2 ** (i + j) / denom))
    budget = _ceil_at_least_one(2 ** (i + 2) / denom)
    return PhaseSpec(radius, budget, label=("stage", i, "phase", j))


def uniform_stage_phases(i: int, eps: float) -> List[PhaseSpec]:
    """All phases ``j = 0..i`` of stage ``i`` of ``A_uniform(eps)``."""
    if i < 0:
        raise ValueError(f"stage index must be >= 0, got {i}")
    return [uniform_phase(i, j, eps) for j in range(i + 1)]


def uniform_big_stage_phases(ell: int, eps: float) -> List[PhaseSpec]:
    """All phases of big-stage ``ell`` (stages ``i = 0..ell``) of ``A_uniform``."""
    if ell < 0:
        raise ValueError(f"big-stage index must be >= 0, got {ell}")
    phases: List[PhaseSpec] = []
    for i in range(ell + 1):
        stage = uniform_stage_phases(i, eps)
        phases.extend(
            PhaseSpec(p.radius, p.budget, label=("big-stage", ell) + p.label)
            for p in stage
        )
    return phases


def uniform_schedule(eps: float) -> Iterator[PhaseSpec]:
    """Infinite phase schedule of Algorithm 1 (``A_uniform(eps)``)."""
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    ell = -1
    while True:
        ell += 1
        yield from uniform_big_stage_phases(ell, eps)


# ---------------------------------------------------------------------------
# Guess-cycling schedule — used by HedgedApproxSearch (Theorem 4.2 companion)
# ---------------------------------------------------------------------------


def guess_cycle_schedule(guesses: List[float]) -> Iterator[PhaseSpec]:
    """Interleave ``A_k`` schedules for several candidate agent counts.

    Round ``m`` runs stage ``m`` of ``A_guess`` for each guess in turn.  With
    guesses ``k̃^{1-eps} * 2^t`` this is the natural hedging construction for
    the one-sided ``k^eps``-approximation setting of Theorem 4.2: its
    competitiveness is ``O(#guesses)= O(eps * log k̃)`` times the optimum,
    matching the paper's lower bound shape.
    """
    if not guesses:
        raise ValueError("need at least one guess")
    if any(g <= 0 for g in guesses):
        raise ValueError(f"guesses must be positive, got {guesses}")
    stage = 0
    while True:
        stage += 1
        for g_index, guess in enumerate(guesses):
            for spec in nonuniform_stage_phases(stage, guess):
                yield PhaseSpec(
                    spec.radius, spec.budget, label=("guess", g_index) + spec.label
                )
