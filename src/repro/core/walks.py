"""Navigation primitives: straight-line walks and circle (diamond) tours.

Section 2 of the paper assumes four atomic navigation procedures: choosing a
random direction, walking in a straight line to a prescribed distance,
performing a spiral search (see :mod:`repro.core.spiral`), and returning to
the source.  On the grid, "walking in a straight line" to a node ``u`` is a
shortest (Manhattan) path of exactly ``d(s, u)`` edges; "performing a circle
of radius D around the source" (the known-``D`` benchmark in Section 2) is a
tour of the L1 ring ``{v : d(v) = D}``, which on the 4-connected grid
requires a zig-zag through the adjacent ring and costs ``8D`` steps.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

__all__ = [
    "manhattan_path",
    "manhattan_path_length",
    "diamond_tour",
    "diamond_tour_length",
    "diamond_tour_hit_time",
]

Point = Tuple[int, int]


def manhattan_path_length(a: Point, b: Point) -> int:
    """Number of edges on a shortest grid path from ``a`` to ``b``."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def manhattan_path(a: Point, b: Point) -> Iterator[Point]:
    """Yield the successive nodes of a canonical shortest path from ``a`` to ``b``.

    The path moves along the x-axis first, then the y-axis (``a`` itself is
    not yielded; the final node yielded is ``b``).  Yields nothing when
    ``a == b``.  Any shortest path has the same length, so the choice is
    immaterial for the paper's time accounting; a fixed canonical choice
    keeps replays deterministic.
    """
    x, y = a
    bx, by = b
    step_x = 1 if bx > x else -1
    while x != bx:
        x += step_x
        yield x, y
    step_y = 1 if by > y else -1
    while y != by:
        y += step_y
        yield x, y


def diamond_tour_length(radius: int) -> int:
    """Number of steps of the full circle tour at L1 radius ``radius`` (``8r``)."""
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    return 8 * radius


def diamond_tour(radius: int) -> Iterator[Point]:
    """Yield the nodes of a closed tour visiting every cell of ring ``radius``.

    The tour starts by *entering* ``(radius, 0)`` — callers should first walk
    there — proceeds counter-clockwise, and zig-zags through ring
    ``radius - 1`` between consecutive ring cells (two steps per ring cell,
    ``8 * radius`` steps total), ending back at ``(radius, 0)``.

    The first yielded node is the successor of ``(radius, 0)``; the last is
    ``(radius, 0)`` itself.  For ``radius == 0`` nothing is yielded.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    if radius == 0:
        return
    # Quadrant q of the counter-clockwise tour steps from ring cell to ring
    # cell through the inner ring.  Inner-step and outer-step displacements
    # per quadrant:
    #   q0: (r - i, i)      -> inner (r-1-i, i)      -> (r-1-i, i+1) = next
    #   q1: (-i, r - i)     -> inner (-i, r-1-i)     -> (-(i+1), r-1-i)
    #   q2: (-(r - i), -i)  -> inner (-(r-1-i), -i)  -> (-(r-1-i), -(i+1))
    #   q3: (i, -(r - i))   -> inner (i, -(r-1-i))   -> (i+1, -(r-1-i))
    r = radius
    for q in range(4):
        for i in range(r):
            if q == 0:
                yield r - 1 - i, i
                yield r - 1 - i, i + 1
            elif q == 1:
                yield -i, r - 1 - i
                yield -(i + 1), r - 1 - i
            elif q == 2:
                yield -(r - 1 - i), -i
                yield -(r - 1 - i), -(i + 1)
            else:
                yield i, -(r - 1 - i)
                yield i + 1, -(r - 1 - i)


def diamond_tour_hit_time(radius: int, target: Point) -> int:
    """Steps along :func:`diamond_tour` until ``target`` is visited.

    The count starts at the tour's first step (after the walker stands on
    ``(radius, 0)``, which counts as time ``0`` if it is the target).
    Raises ``ValueError`` if the target is on neither ring ``radius`` nor the
    zig-zag cells of ring ``radius - 1`` actually traversed.
    """
    if target == (radius, 0):
        return 0
    for t, node in enumerate(diamond_tour(radius), start=1):
        if node == target:
            return t
    raise ValueError(f"target {target} is not visited by the radius-{radius} tour")


def tour_positions(radius: int) -> List[Point]:
    """Materialised :func:`diamond_tour` (convenience for tests)."""
    return list(diamond_tour(radius))
