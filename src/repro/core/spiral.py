"""Exact square spiral search on the integer grid ``Z^2``.

The paper (footnote 1, Section 2) relies on a *spiral search* primitive: a
deterministic local search starting at a node ``v`` that, after traversing
``x`` edges, has visited every node within distance ``~ sqrt(x)/2`` of ``v``.
The paper explicitly allows any concrete procedure with this asymptotic
guarantee.

This module implements the canonical counter-clockwise square spiral (an
"Ulam" spiral) with run lengths ``1, 1, 2, 2, 3, 3, ...`` and direction cycle
``E, N, W, S``.  Every cell of ``Z^2`` is visited exactly once, and the cell
first entered on step ``t`` is said to have *hit time* ``t`` (the origin has
hit time ``0``).

Three exact primitives are provided, each in scalar and vectorised form:

``spiral_hit_time(dx, dy)``
    Closed-form O(1) first-visit time of the cell at offset ``(dx, dy)``
    relative to the spiral's start.

``spiral_position(t)``
    Inverse map: the offset of the cell first entered at step ``t``.

``coverage_radius(t)`` / ``time_to_cover_radius(d)``
    The guarantee actually achieved by this spiral: after ``t`` steps all
    cells within L1 distance ``d`` are visited iff ``4*d^2 + 3*d <= t``,
    i.e. the coverage radius is ``sqrt(t)/2 - O(1)``, matching the paper's
    assumption up to an additive constant (documented in DESIGN.md).

Derivation of the closed form
-----------------------------

Runs are indexed ``r = 1, 2, 3, ...`` with direction ``(r-1) mod 4`` from
``[E, N, W, S]`` and length ``ceil(r/2)``.  Writing ``j >= 0``:

* E-run ``r = 4j+1`` sweeps ``y = -j``, ``x`` from ``-j+1`` to ``j+1``;
  the cell ``(x, -j)`` is entered at step ``4j^2 + 3j + x`` ... with
  ``j = -y`` this is ``4*y^2 - 3*y + x``.
* N-run ``r = 4j+2`` sweeps ``x = j+1``, ``y`` from ``-j+1`` to ``j+1``;
  hit time ``4*x^2 - 3*x + y``.
* W-run ``r = 4j+3`` sweeps ``y = j+1``, ``x`` from ``j`` down to ``-j-1``;
  hit time ``4*y^2 - y - x``.
* S-run ``r = 4j+4`` sweeps ``x = -j-1``, ``y`` from ``j`` down to ``-j-1``;
  hit time ``4*x^2 - x - y``.

The four sweep families partition ``Z^2 \\ {origin}``; the branch conditions
below select the correct family.  Tests verify the formulas exhaustively
against the step generator for every offset within radius 60.
"""

from __future__ import annotations

import math
from typing import Iterator, Tuple

import numpy as np

__all__ = [
    "SPIRAL_DIRECTIONS",
    "spiral_steps",
    "spiral_cells",
    "spiral_hit_time",
    "spiral_hit_time_array",
    "spiral_position",
    "spiral_position_array",
    "coverage_radius",
    "time_to_cover_radius",
    "worst_hit_time_at_distance",
    "best_hit_time_at_distance",
]

#: Direction cycle of the canonical spiral: East, North, West, South.
SPIRAL_DIRECTIONS: Tuple[Tuple[int, int], ...] = ((1, 0), (0, 1), (-1, 0), (0, -1))


def spiral_steps() -> Iterator[Tuple[int, int]]:
    """Yield the infinite sequence of unit moves of the canonical spiral.

    The n-th yielded pair is the move taken on step ``n+1``.  Run lengths
    follow the pattern 1, 1, 2, 2, 3, 3, ... with directions cycling
    E, N, W, S.
    """
    run = 0
    while True:
        run += 1
        direction = SPIRAL_DIRECTIONS[(run - 1) % 4]
        for _ in range((run + 1) // 2):
            yield direction


def spiral_cells() -> Iterator[Tuple[int, int]]:
    """Yield the spiral's cells in visit order, starting with ``(0, 0)``.

    The cell yielded at index ``t`` (0-based) is the cell whose hit time is
    ``t``; equivalently ``spiral_position(t)``.
    """
    x, y = 0, 0
    yield x, y
    for dx, dy in spiral_steps():
        x += dx
        y += dy
        yield x, y


def spiral_hit_time(dx: int, dy: int) -> int:
    """Return the exact step at which the spiral first visits offset ``(dx, dy)``.

    The spiral starts at offset ``(0, 0)`` at time 0 and traverses one grid
    edge per time unit.  ``spiral_hit_time(0, 0) == 0``.

    This is an O(1) closed form; see the module docstring for the derivation.
    """
    x, y = dx, dy
    if x == 0 and y == 0:
        return 0
    if y <= 0 and y + 1 <= x <= 1 - y:
        # East sweep along y = -j.
        return 4 * y * y - 3 * y + x
    if x >= 1 and 2 - x <= y <= x:
        # North sweep along x = j + 1.
        return 4 * x * x - 3 * x + y
    if y >= 1 and -y <= x <= y - 1:
        # West sweep along y = j + 1.
        return 4 * y * y - y - x
    # South sweep along x = -j - 1 (x <= -1 and x <= y <= -1 - x).
    return 4 * x * x - x - y


#: Largest |offset| for which the int64 closed form cannot overflow
#: (4 * x^2 fits comfortably below 2^63 for |x| <= 2^30).
SAFE_OFFSET = 2**30


def spiral_hit_time_array(dx: np.ndarray, dy: np.ndarray) -> np.ndarray:
    """Vectorised :func:`spiral_hit_time` for integer numpy arrays.

    Exact (``int64``) for offsets with ``|dx|, |dy| <= SAFE_OFFSET``;
    larger offsets would overflow, so route those through
    :func:`spiral_hit_time_float_array` instead.
    """
    x = np.asarray(dx, dtype=np.int64)
    y = np.asarray(dy, dtype=np.int64)
    if np.any(np.abs(x) > SAFE_OFFSET) or np.any(np.abs(y) > SAFE_OFFSET):
        raise OverflowError(
            f"offsets beyond {SAFE_OFFSET} overflow int64; "
            f"use spiral_hit_time_float_array"
        )
    east = (y <= 0) & (y + 1 <= x) & (x <= 1 - y)
    north = (x >= 1) & (2 - x <= y) & (y <= x)
    west = (y >= 1) & (-y <= x) & (x <= y - 1)
    # The remaining cells (other than the origin) are on south sweeps.
    origin = (x == 0) & (y == 0)
    t_east = 4 * y * y - 3 * y + x
    t_north = 4 * x * x - 3 * x + y
    t_west = 4 * y * y - y - x
    t_south = 4 * x * x - x - y
    out = np.select([origin, east, north, west], [0, t_east, t_north, t_west], t_south)
    return out


def spiral_hit_time_float_array(dx: np.ndarray, dy: np.ndarray) -> np.ndarray:
    """The hit-time closed form in float64, safe for arbitrarily far offsets.

    Relative error is at most a few ULPs (~1e-16); used by the excursion
    engine for the astronomically distant draws a heavy-tailed sampler can
    produce, where absolute exactness is irrelevant but overflow would
    corrupt minima.
    """
    x = np.asarray(dx, dtype=np.float64)
    y = np.asarray(dy, dtype=np.float64)
    east = (y <= 0) & (y + 1 <= x) & (x <= 1 - y)
    north = (x >= 1) & (2 - x <= y) & (y <= x)
    west = (y >= 1) & (-y <= x) & (x <= y - 1)
    origin = (x == 0) & (y == 0)
    t_east = 4.0 * y * y - 3.0 * y + x
    t_north = 4.0 * x * x - 3.0 * x + y
    t_west = 4.0 * y * y - y - x
    t_south = 4.0 * x * x - x - y
    return np.select(
        [origin, east, north, west], [0.0, t_east, t_north, t_west], t_south
    )


def _position_after_odd_run(q: int) -> Tuple[int, int]:
    """Position after run ``2q + 1`` (an E- or W-run), ``q >= 0``."""
    if q % 2 == 0:
        return q // 2 + 1, -(q // 2)
    return -((q + 1) // 2), (q + 1) // 2


def _position_after_even_run(q: int) -> Tuple[int, int]:
    """Position after run ``2q`` (an N- or S-run), ``q >= 1``."""
    if q % 2 == 1:
        return (q + 1) // 2, (q + 1) // 2
    return -(q // 2), -(q // 2)


def spiral_position(t: int) -> Tuple[int, int]:
    """Return the offset of the cell whose hit time is ``t`` (O(1)).

    Inverse of :func:`spiral_hit_time`: ``spiral_position(spiral_hit_time(x, y))
    == (x, y)`` for every cell, and ``spiral_hit_time(*spiral_position(t)) == t``
    for every ``t >= 0``.
    """
    if t < 0:
        raise ValueError(f"spiral time must be non-negative, got {t}")
    if t == 0:
        return 0, 0
    v = math.isqrt(t)
    # Step-count boundaries: after odd run 2v-1 the total is v*v; after even
    # run 2v it is v*v + v; after odd run 2v+1 it is (v+1)^2.
    if t == v * v:
        return _position_after_odd_run(v - 1)
    if t <= v * v + v:
        # Inside even run 2v (N-run for odd v, S-run for even v).
        x0, y0 = _position_after_odd_run(v - 1)
        steps = t - v * v
        if v % 2 == 1:
            return x0, y0 + steps
        return x0, y0 - steps
    # Inside odd run 2v+1 (E-run for even v, W-run for odd v).
    x0, y0 = _position_after_even_run(v)
    steps = t - v * v - v
    if v % 2 == 0:
        return x0 + steps, y0
    return x0 - steps, y0


def spiral_position_array(t: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`spiral_position`.

    Returns a pair of ``int64`` arrays ``(x, y)`` with the same shape as
    ``t``.
    """
    t = np.asarray(t, dtype=np.int64)
    if np.any(t < 0):
        raise ValueError("spiral times must be non-negative")
    v = np.asarray(np.floor(np.sqrt(t.astype(np.float64))), dtype=np.int64)
    # Guard against floating-point error around perfect squares.
    v = np.where((v + 1) * (v + 1) <= t, v + 1, v)
    v = np.where(v * v > t, v - 1, v)

    # Position after odd run 2q+1 with q = v - 1 (valid for v >= 1).
    q = v - 1
    q_even = q % 2 == 0
    ox = np.where(q_even, q // 2 + 1, -((q + 1) // 2))
    oy = np.where(q_even, -(q // 2), (q + 1) // 2)

    # Position after even run 2v.
    v_odd = v % 2 == 1
    ex = np.where(v_odd, (v + 1) // 2, -(v // 2))
    ey = np.where(v_odd, (v + 1) // 2, -(v // 2))

    in_even_run = (t > v * v) & (t <= v * v + v)
    in_odd_run = t > v * v + v

    steps_even = t - v * v
    steps_odd = t - v * v - v

    x = ox.copy()
    y = oy.copy()
    # Even run 2v: N for odd v, S for even v.
    x = np.where(in_even_run, ox, x)
    y = np.where(in_even_run, np.where(v_odd, oy + steps_even, oy - steps_even), y)
    # Odd run 2v+1: E for even v, W for odd v.
    x = np.where(in_odd_run, np.where(v_odd, ex - steps_odd, ex + steps_odd), x)
    y = np.where(in_odd_run, ey, y)
    # Origin.
    x = np.where(t == 0, 0, x)
    y = np.where(t == 0, 0, y)
    return x, y


def time_to_cover_radius(d: int) -> int:
    """Steps after which *every* cell within L1 distance ``d`` is visited.

    For this spiral the last cell of the L1 ball of radius ``d`` to be
    visited is ``(0, -d)`` with hit time ``4*d^2 + 3*d``.  This is the exact
    analogue of the paper's ``x = 4*d^2`` (its ``sqrt(x)/2`` convention);
    the ``+3d`` slack changes constants only.
    """
    if d < 0:
        raise ValueError(f"radius must be non-negative, got {d}")
    return 4 * d * d + 3 * d


def coverage_radius(t: int) -> int:
    """Largest ``d`` such that all cells with L1 distance ``<= d`` are visited by step ``t``.

    Exact inverse of :func:`time_to_cover_radius`:
    ``coverage_radius(t) = max{d : 4d^2 + 3d <= t}``, which is
    ``sqrt(t)/2 - O(1)``.
    """
    if t < 0:
        raise ValueError(f"spiral time must be non-negative, got {t}")
    d = (math.isqrt(9 + 16 * t) - 3) // 8
    # Integer sqrt flooring can undershoot by one; fix up exactly.
    while time_to_cover_radius(d + 1) <= t:
        d += 1
    while d > 0 and time_to_cover_radius(d) > t:
        d -= 1
    return d


def worst_hit_time_at_distance(d: int) -> int:
    """Maximum hit time over cells at L1 distance exactly ``d``.

    Attained at ``(0, -d)``; equals :func:`time_to_cover_radius`.
    """
    return time_to_cover_radius(d)


def best_hit_time_at_distance(d: int) -> int:
    """Minimum hit time over cells at L1 distance exactly ``d``.

    The earliest-visited cells of an L1 ring lie on the spiral's diagonal
    "seam": for odd ``d`` the cell ``((d+1)/2, -(d-1)/2)`` on an E-run with
    hit time ``d^2``; for even ``d >= 2`` the corner ``(d/2, d/2)`` on an
    N-run with hit time ``d^2 - d``.  So the spiral first *touches* L1
    distance ``d`` around time ``d^2`` but only *completes* the ring at
    ``4*d^2 + 3*d`` — the factor-4 spread the paper's ``sqrt(x)/2``
    convention glosses over.
    """
    if d < 0:
        raise ValueError(f"distance must be non-negative, got {d}")
    if d == 0:
        return 0
    if d % 2 == 1:
        return d * d
    return d * d - d
