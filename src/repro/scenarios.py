"""Declarative fault/heterogeneity scenarios for every simulation engine.

The paper's model (Section 2) assumes perfect, identical, immortal agents
that start simultaneously — and then argues (Sections 1-2) that the
*point* of non-communicating search is robustness: the algorithms keep
working when agents crash, start late, or differ.  This module makes that
axis first-class: a :class:`ScenarioSpec` declares per-agent perturbations
as plain serialisable data, and all engines
(:mod:`repro.sim.events`, :mod:`repro.sim.engine`, :mod:`repro.sim.walkers`)
accept one through their ``scenario`` keyword.  The sweep subsystem hashes
the scenario into its cache key and the CLI exposes the knobs as flags;
experiment E11 sweeps them.

Perturbation semantics (shared by every engine; see DESIGN.md §6):

* **Crash failures** (``crash_hazard``): each agent draws an independent
  geometric lifetime with per-time-unit hazard ``h`` — the discrete
  constant-hazard-rate model — measured from the agent's own start.  The
  agent behaves normally until its crash time; treasure hits strictly
  after it do not count and the agent never moves again.  Excursion
  engines apply the lifetime in closed form at excursion granularity
  (a hit counts iff its wall-clock time is within the lifetime), which is
  exact: no per-step coin flipping is ever needed.
* **Heterogeneous speeds** (``speed_spread``): agent ``i`` of ``k`` gets
  a speed from a deterministic geometric ladder with fastest/slowest
  ratio ``(1 + spread) ** 2``, normalised so the *arithmetic* mean speed
  is exactly 1 — the swarm's total edge budget per unit time is
  spread-invariant, so any change in find times is attributable to
  heterogeneity rather than a hidden collective speed bonus.  An edge
  traversal costs ``1 / speed`` time units; find times remain wall-clock.
* **Start delays** (``start_stagger``): agent ``i`` begins at time
  ``i * stagger`` (the paper's asynchronous-start remark, generalising
  the events-engine-only ``start_delays`` array to every engine; explicit
  arrays remain supported alongside and the two add).
* **Lossy detection** (``detection_prob``): every time an agent walks
  over the treasure it *notices* it only with probability ``q``,
  independently per crossing — a sensor-failure model.  Engines that
  resolve whole legs in closed form flip one coin per potential crossing
  (outbound leg, spiral, return leg), which is exact because each leg
  crosses a fixed cell at most once.

Seed policy: scenario randomness (crash lifetimes, detection coins) is
drawn from the engine's own stream *after* scenario activation is checked,
so the zero-perturbation path consumes exactly the random numbers it
always did and stays bitwise identical to the pre-scenario engines
(enforced by ``tests/test_scenarios.py``).  The step engine draws
per-agent scenario randomness from ``derive_rng(seed, agent,
SCENARIO_STREAM)`` so an agent's *trajectory* stream stays untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from .checks.registry import register_stream

__all__ = [
    "AgentProfile",
    "ScenarioSpec",
    "SCENARIO_STREAM",
    "resolve_scenario",
    "steps_within",
]

#: Key appended to ``derive_rng(seed, agent, SCENARIO_STREAM)`` for per-agent
#: scenario randomness in the step engine, keeping trajectory streams
#: untouched.  An arbitrary constant far outside plausible agent/trial keys.
SCENARIO_STREAM = register_stream("SCENARIO_STREAM", 0x5CE7A510)


@dataclass(frozen=True)
class AgentProfile:
    """The resolved perturbations of one agent: its slice of a scenario.

    ``speed`` multiplies edge-traversal rate (an edge costs ``1 / speed``
    time units), ``start_delay`` is the wall-clock time at which the agent
    begins, ``crash_hazard`` the per-time-unit failure probability, and
    ``detection_prob`` the probability of noticing the treasure per
    crossing.
    """

    speed: float = 1.0
    start_delay: float = 0.0
    crash_hazard: float = 0.0
    detection_prob: float = 1.0

    @property
    def is_default(self) -> bool:
        return (
            self.speed == 1.0
            and self.start_delay == 0.0
            and self.crash_hazard == 0.0
            and self.detection_prob == 1.0
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative per-agent perturbation layer, serialisable and hashable.

    All-default fields mean "the paper's model"; engines treat that case
    as exactly equivalent to passing no scenario at all (same code path,
    same random-number consumption, bitwise-identical output).
    """

    crash_hazard: float = 0.0
    speed_spread: float = 0.0
    start_stagger: float = 0.0
    detection_prob: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "crash_hazard", float(self.crash_hazard))
        object.__setattr__(self, "speed_spread", float(self.speed_spread))
        object.__setattr__(self, "start_stagger", float(self.start_stagger))
        object.__setattr__(self, "detection_prob", float(self.detection_prob))
        if not 0.0 <= self.crash_hazard <= 1.0:
            raise ValueError(
                f"crash_hazard must be in [0, 1], got {self.crash_hazard}"
            )
        if self.speed_spread < 0.0:
            raise ValueError(
                f"speed_spread must be >= 0, got {self.speed_spread}"
            )
        if self.start_stagger < 0.0:
            raise ValueError(
                f"start_stagger must be >= 0, got {self.start_stagger}"
            )
        if not 0.0 <= self.detection_prob <= 1.0:
            raise ValueError(
                f"detection_prob must be in [0, 1], got {self.detection_prob}"
            )

    @property
    def is_default(self) -> bool:
        """Whether this scenario is the unperturbed paper model."""
        return (
            self.crash_hazard == 0.0
            and self.speed_spread == 0.0
            and self.start_stagger == 0.0
            and self.detection_prob == 1.0
        )

    def speeds(self, k: int) -> np.ndarray:
        """Per-agent speed ladder, shape ``(k,)``, arithmetic mean exactly 1.

        Geometrically spaced with fastest/slowest ratio
        ``(1 + spread) ** 2``, rescaled so the speeds sum to ``k`` (the
        swarm's total edge budget per unit time is spread-invariant).
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if k == 1 or self.speed_spread == 0.0:
            return np.ones(k, dtype=np.float64)
        exponents = 2.0 * np.arange(k, dtype=np.float64) / (k - 1) - 1.0
        ladder = (1.0 + self.speed_spread) ** exponents
        return ladder * (k / ladder.sum())

    def delays(self, k: int) -> np.ndarray:
        """Per-agent start delays, shape ``(k,)``: ``i * start_stagger``."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return np.arange(k, dtype=np.float64) * self.start_stagger

    def profile(self, agent: int, k: int) -> AgentProfile:
        """The resolved :class:`AgentProfile` of agent ``agent`` of ``k``."""
        if not 0 <= agent < k:
            raise ValueError(f"agent must be in [0, {k}), got {agent}")
        return AgentProfile(
            speed=float(self.speeds(k)[agent]),
            start_delay=float(agent * self.start_stagger),
            crash_hazard=self.crash_hazard,
            detection_prob=self.detection_prob,
        )

    def profiles(self, k: int) -> Tuple[AgentProfile, ...]:
        """All ``k`` resolved agent profiles."""
        speeds = self.speeds(k)
        return tuple(
            AgentProfile(
                speed=float(speeds[i]),
                start_delay=float(i * self.start_stagger),
                crash_hazard=self.crash_hazard,
                detection_prob=self.detection_prob,
            )
            for i in range(k)
        )

    def describe(self) -> str:
        """Compact human-readable knob summary (only non-default knobs)."""
        parts = []
        if self.crash_hazard > 0:
            parts.append(f"crash_hazard={self.crash_hazard:g}")
        if self.speed_spread > 0:
            parts.append(f"speed_spread={self.speed_spread:g}")
        if self.start_stagger > 0:
            parts.append(f"start_stagger={self.start_stagger:g}")
        if self.detection_prob < 1:
            parts.append(f"detection_prob={self.detection_prob:g}")
        return ", ".join(parts) if parts else "default"

    def to_dict(self) -> Dict[str, float]:
        """Canonical JSON-able form (the sweep-cache hashing basis)."""
        return {
            "crash_hazard": self.crash_hazard,
            "speed_spread": self.speed_spread,
            "start_stagger": self.start_stagger,
            "detection_prob": self.detection_prob,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        return cls(
            crash_hazard=float(data.get("crash_hazard", 0.0)),
            speed_spread=float(data.get("speed_spread", 0.0)),
            start_stagger=float(data.get("start_stagger", 0.0)),
            detection_prob=float(data.get("detection_prob", 1.0)),
        )


def steps_within(budget, speed=1.0):
    """Largest step count whose wall-clock cost fits in ``budget`` at ``speed``.

    The single source of the horizon/crash-time boundary rule shared by
    the step and walker engines: step ``t`` happens at wall-clock
    ``t / speed``, a hit at exactly the boundary is kept, and the tiny
    relative slack absorbs float round-off so integral boundaries are
    never lost to rounding.  Accepts scalars or arrays; returns floats
    (callers cast to their step-counter type).
    """
    return np.floor(
        np.maximum(budget, 0.0) * speed * (1.0 + 1e-12) + 1e-9
    )


def resolve_scenario(
    scenario: Optional[ScenarioSpec],
) -> Optional[ScenarioSpec]:
    """Canonicalise: a ``None`` or all-default scenario resolves to ``None``.

    Engines branch on the result — ``None`` means "take the exact legacy
    code path" — so the zero-perturbation guarantee is structural rather
    than a property of careful arithmetic.
    """
    if scenario is None:
        return None
    if not isinstance(scenario, ScenarioSpec):
        raise TypeError(
            f"scenario must be a ScenarioSpec or None, "
            f"got {type(scenario).__name__}"
        )
    return None if scenario.is_default else scenario
