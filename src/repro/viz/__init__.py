"""Terminal visualisation of searches (ASCII maps)."""

from .ascii_map import render_trajectory, render_visit_map

__all__ = ["render_trajectory", "render_visit_map"]
