"""ASCII rendering of searches: visit maps and single-agent trajectories.

Useful for eyeballing what an algorithm actually does — the examples print
these, and they double as cheap sanity checks (the spiral looks like a
spiral, dispersed excursions look like spokes with local blobs).

Maps are drawn in grid coordinates with y growing upwards; the source is
``o``, the treasure ``X`` (``$`` once found).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

__all__ = ["render_visit_map", "render_trajectory"]

Point = Tuple[int, int]

#: Shade ramp from rarely- to often-visited.
_RAMP = " .:-=+*#%@"


def _bounds(
    cells: Iterable[Point], radius: Optional[int]
) -> Tuple[int, int, int, int]:
    if radius is not None:
        return -radius, radius, -radius, radius
    xs, ys = zip(*cells) if cells else ((0,), (0,))
    return min(xs), max(xs), min(ys), max(ys)


def render_visit_map(
    visit_counts: Mapping[Point, float],
    *,
    radius: Optional[int] = None,
    source: Point = (0, 0),
    treasure: Optional[Point] = None,
    found: bool = False,
) -> str:
    """Render per-cell visit intensity as an ASCII shade map.

    ``visit_counts`` maps cells to any non-negative intensity (visit counts,
    probabilities, first-visit recency).  ``radius`` clips the viewport to
    ``[-radius, radius]^2``; otherwise the bounding box of the data is used.
    """
    if any(v < 0 for v in visit_counts.values()):
        raise ValueError("visit intensities must be non-negative")
    x_lo, x_hi, y_lo, y_hi = _bounds(list(visit_counts), radius)
    peak = max(visit_counts.values(), default=0.0)
    lines = []
    for y in range(y_hi, y_lo - 1, -1):
        row = []
        for x in range(x_lo, x_hi + 1):
            cell = (x, y)
            if cell == source:
                row.append("o")
            elif treasure is not None and cell == treasure:
                row.append("$" if found else "X")
            elif cell in visit_counts and peak > 0:
                level = visit_counts[cell] / peak
                index = min(int(level * (len(_RAMP) - 1) + 0.5), len(_RAMP) - 1)
                # Visited cells never render as blank (blank = unvisited).
                row.append(_RAMP[max(index, 1)])
            else:
                row.append(" ")
        lines.append("".join(row))
    return "\n".join(lines)


def render_trajectory(
    positions: Sequence[Point],
    *,
    radius: Optional[int] = None,
    source: Point = (0, 0),
    treasure: Optional[Point] = None,
) -> str:
    """Render one agent's path; later cells shade darker (recency map)."""
    counts: Dict[Point, float] = {}
    for t, cell in enumerate(positions, start=1):
        counts[cell] = float(t)
    found = treasure is not None and treasure in counts
    return render_visit_map(
        counts,
        radius=radius,
        source=source,
        treasure=treasure,
        found=found,
    )
