"""Low-memory navigation extensions from the paper's discussion (Section 6)."""

from .counter import MorrisCounter, randomized_straight_walk, walk_distance_samples

__all__ = ["MorrisCounter", "randomized_straight_walk", "walk_distance_samples"]
