"""Randomised counting: walking distance ``2^l`` with ``O(log l)`` bits.

Section 6 of the paper observes that its constructions need little memory:
"going in a straight line for a distance of d = 2^l can be implemented
using O(log log d) memory bits, by employing a randomized counting
technique".  This module implements the classic technique — a Morris
approximate counter [Morris 1978] — and the induced straight-walk
primitive, so the claim can be tested quantitatively (experiment E8).

A Morris counter stores only an exponent ``X`` (hence
``O(log X) = O(log log n)`` bits for counts up to ``n``) and increments it
with probability ``2^-X`` per event.  After ``n`` events,
``E[2^X] = n + 2``, so ``2^X - 2`` is an unbiased estimate of ``n``.
Dually, *walking until* ``X`` reaches ``l`` yields an expected distance of
``2^l - ... ~ 2^l``: the walk consumes one coin per step, and reaching
exponent ``l`` takes ``sum_{i<l} 2^i = 2^l - 1`` steps in expectation.

Concentration of a single counter is coarse (constant relative error with
constant probability); :func:`walk_distance_samples` also exposes the
standard median-of-independent-copies amplification.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

__all__ = ["MorrisCounter", "randomized_straight_walk", "walk_distance_samples"]


class MorrisCounter:
    """Approximate event counter holding only an exponent.

    ``add()`` registers one event; ``estimate`` is the unbiased count
    estimate ``2^X - 2``; ``bits_used`` is the storage actually needed —
    ``ceil(log2(X+1))`` bits, i.e. ``O(log log n)``.
    """

    def __init__(self, rng: np.random.Generator):
        self._rng = rng
        self.exponent = 0

    def add(self) -> None:
        """Register one event: increment the exponent w.p. ``2^-exponent``."""
        if self._rng.random() < 2.0**-self.exponent:
            self.exponent += 1

    @property
    def estimate(self) -> float:
        """Unbiased estimate of the number of ``add()`` calls: ``2^X - 2``."""
        return 2.0**self.exponent - 2.0

    @property
    def bits_used(self) -> int:
        """Bits needed to store the exponent."""
        return max(1, math.ceil(math.log2(self.exponent + 1)))


def randomized_straight_walk(rng: np.random.Generator, ell: int) -> int:
    """Walk straight until a Morris counter's exponent reaches ``ell``.

    Returns the number of steps taken.  The expected distance is
    ``sum_{i=0}^{ell-1} 2^i = 2^ell - 1`` (each exponent level ``i`` takes
    ``2^i`` expected steps to leave), using ``O(log ell)`` bits of state —
    exactly the Section 6 claim with ``d = 2^ell``.
    """
    if ell < 0:
        raise ValueError(f"ell must be non-negative, got {ell}")
    counter = MorrisCounter(rng)
    steps = 0
    while counter.exponent < ell:
        counter.add()
        steps += 1
    return steps


def walk_distance_samples(
    rng: np.random.Generator, ell: int, samples: int, median_of: int = 1
) -> List[int]:
    """Sample walk distances, optionally amplified by median-of-``median_of``.

    With ``median_of > 1`` each sample is the median of that many
    independent walks — the standard accuracy amplification, still using
    ``O(median_of * log ell)`` bits.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    if median_of < 1 or median_of % 2 == 0:
        raise ValueError(f"median_of must be odd and >= 1, got {median_of}")
    out: List[int] = []
    for _ in range(samples):
        walks = sorted(
            randomized_straight_walk(rng, ell) for _ in range(median_of)
        )
        out.append(walks[median_of // 2])
    return out
