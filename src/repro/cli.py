"""Command-line interface: ``repro-ants`` / ``python -m repro``.

Examples::

    repro-ants list                      # show the experiment index
    repro-ants run E1 E3 --quick         # run experiments, print tables
    repro-ants run all --full --csv out/ # full scale, archive CSVs
    repro-ants run E1 --workers 4        # fan sweep groups out to a pool
    repro-ants sweep nonuniform --distances 16,32,64 --ks 1,4,16 --trials 60
    repro-ants sweep uniform --param eps=0.5 --distances 64 --ks 1,2,4,8
    repro-ants sweep levy --param mu=2 --distances 32 --ks 4 --horizon 40960
    repro-ants demo                      # 30-second guided demo

Experiment runs and ad-hoc sweeps share the cached sweep engine: re-running
the same grid hits the on-disk cache (disable with ``--no-cache``; relocate
with ``$REPRO_SWEEP_CACHE`` or ``--cache-dir``).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ants",
        description=(
            "Reproduction of 'Collaborative Search on the Plane without "
            "Communication' (Feinerman, Korman, Lotker, Sereni; PODC 2012)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run experiments and print their tables")
    run_p.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (E1..E11) or 'all'",
    )
    mode = run_p.add_mutually_exclusive_group()
    mode.add_argument("--quick", action="store_true", help="small grids (default)")
    mode.add_argument("--full", action="store_true", help="paper-scale grids")
    run_p.add_argument("--seed", type=int, default=None, help="override root seed")
    run_p.add_argument(
        "--csv", metavar="DIR", default=None, help="also write tables as CSV here"
    )
    run_p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="sweep worker processes (0/1 = serial)",
    )
    run_p.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk sweep cache",
    )

    sweep_p = sub.add_parser(
        "sweep", help="run one ad-hoc D x k sweep and print the cell table"
    )
    sweep_p.add_argument(
        "algorithm",
        help=(
            "registered sweep strategy (nonuniform, uniform, harmonic, "
            "random_walk, biased_walk, levy, ...); walker baselines "
            "require --horizon"
        ),
    )
    sweep_p.add_argument(
        "--distances",
        required=True,
        help="comma-separated treasure distances, e.g. 16,32,64",
    )
    sweep_p.add_argument(
        "--ks", required=True, help="comma-separated agent counts, e.g. 1,4,16"
    )
    sweep_p.add_argument("--trials", type=int, default=60)
    sweep_p.add_argument("--seed", type=int, default=0)
    sweep_p.add_argument(
        "--placement",
        default="offaxis",
        choices=("axis", "corner", "offaxis", "random"),
    )
    sweep_p.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="algorithm parameter (repeatable), e.g. --param eps=0.5",
    )
    sweep_p.add_argument("--horizon", type=float, default=None)
    sweep_p.add_argument(
        "--require-k-le-d",
        action="store_true",
        help="skip cells with k > D (the paper's analysis regime)",
    )
    scenario_g = sweep_p.add_argument_group(
        "scenario", "fault/heterogeneity perturbations (see DESIGN.md §6)"
    )
    scenario_g.add_argument(
        "--crash-hazard",
        type=float,
        default=0.0,
        help="per-time-unit crash hazard (geometric agent lifetimes)",
    )
    scenario_g.add_argument(
        "--speed-spread",
        type=float,
        default=0.0,
        help="speed heterogeneity: fastest/slowest = (1+spread)^2, mean 1",
    )
    scenario_g.add_argument(
        "--start-stagger",
        type=float,
        default=0.0,
        help="agent i starts at time i * stagger (asynchronous starts)",
    )
    scenario_g.add_argument(
        "--detection-prob",
        type=float,
        default=1.0,
        help="probability of noticing the treasure per crossing",
    )
    sweep_p.add_argument("--workers", type=int, default=0)
    sweep_p.add_argument("--no-cache", action="store_true")
    sweep_p.add_argument("--cache-dir", default=None)
    sweep_p.add_argument(
        "--csv", metavar="FILE", default=None, help="also write the table as CSV"
    )

    sub.add_parser("list", help="list registered experiments")
    sub.add_parser("demo", help="run a small end-to-end demonstration")
    return parser


def _cmd_list() -> int:
    from .experiments.registry import list_experiments

    for info in list_experiments():
        print(f"{info.experiment_id:<4} [{info.paper_result}] {info.title}")
    return 0


def _cmd_run(
    ids: List[str],
    quick: bool,
    seed: Optional[int],
    csv_dir: Optional[str],
    workers: int = 0,
    cache: bool = True,
) -> int:
    from .experiments.registry import list_experiments, run_experiment

    if any(x.lower() == "all" for x in ids):
        ids = [info.experiment_id for info in list_experiments()]
    if csv_dir:
        os.makedirs(csv_dir, exist_ok=True)
    for experiment_id in ids:
        started = time.perf_counter()
        tables = run_experiment(
            experiment_id, quick=quick, seed=seed, workers=workers, cache=cache
        )
        elapsed = time.perf_counter() - started
        for i, table in enumerate(tables):
            print(table.to_text())
            print()
            if csv_dir:
                name = f"{experiment_id.lower()}_{i}.csv"
                table.to_csv(os.path.join(csv_dir, name))
        print(f"[{experiment_id} completed in {elapsed:.1f}s]")
        print()
    return 0


def _parse_int_list(text: str, label: str) -> tuple:
    try:
        return tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise SystemExit(f"--{label} expects comma-separated integers, got {text!r}")


def _cmd_sweep(args) -> int:
    from .analysis.competitiveness import competitiveness
    from .scenarios import ScenarioSpec
    from .sweep import ALGORITHM_BUILDERS, SweepSpec, run_sweep
    from .experiments.io import ResultTable

    if args.algorithm not in ALGORITHM_BUILDERS:
        known = ", ".join(sorted(ALGORITHM_BUILDERS))
        raise SystemExit(
            f"unknown sweep algorithm {args.algorithm!r}; known: {known}"
        )

    params = {}
    for item in args.param:
        name, sep, value = item.partition("=")
        if not sep or not name:
            raise SystemExit(f"--param expects NAME=VALUE, got {item!r}")
        try:
            params[name] = float(value)
        except ValueError:
            raise SystemExit(
                f"--param {name} expects a numeric value, got {value!r}"
            )

    try:
        scenario = ScenarioSpec(
            crash_hazard=args.crash_hazard,
            speed_spread=args.speed_spread,
            start_stagger=args.start_stagger,
            detection_prob=args.detection_prob,
        )
        spec = SweepSpec(
            algorithm=args.algorithm,
            distances=_parse_int_list(args.distances, "distances"),
            ks=_parse_int_list(args.ks, "ks"),
            trials=args.trials,
            params=params,
            placement=args.placement,
            seed=args.seed,
            horizon=args.horizon,
            require_k_le_d=args.require_k_le_d,
            scenario=scenario,
        )
    except (TypeError, ValueError) as error:
        raise SystemExit(str(error))
    started = time.perf_counter()
    try:
        result = run_sweep(
            spec,
            workers=args.workers,
            cache=not args.no_cache,
            cache_dir=args.cache_dir,
        )
    except ValueError as error:  # e.g. walker strategy without --horizon
        raise SystemExit(str(error))
    elapsed = time.perf_counter() - started

    title = f"sweep {args.algorithm}"
    if params:
        rendered = ", ".join(f"{k}={v:g}" for k, v in sorted(params.items()))
        title += f" ({rendered})"
    table = ResultTable(
        title=title,
        columns=["D", "k", "trials", "mean_time", "stderr", "success", "ratio"],
    )
    for cell in result:
        table.add_row(
            D=cell.distance,
            k=cell.k,
            trials=cell.trials,
            mean_time=cell.mean,
            stderr=cell.stderr,
            success=cell.success_rate,
            ratio=competitiveness(cell.mean, cell.distance, cell.k),
        )
    table.add_note("ratio = mean_time / (D + D^2/k), the universal benchmark")
    if spec.scenario is not None:
        table.add_note(f"scenario: {spec.scenario.describe()}")
    source = "cache" if result.from_cache else f"computed in {elapsed:.1f}s"
    table.add_note(f"spec {spec.spec_hash()} ({source})")
    print(table.to_text())
    if args.csv:
        table.to_csv(args.csv)
    return 0


def _cmd_demo() -> int:
    from .algorithms import HarmonicSearch, NonUniformSearch, UniformSearch
    from .analysis.competitiveness import optimal_time
    from .sim.events import simulate_find_times
    from .sim.world import place_treasure

    distance, k = 64, 16
    world = place_treasure(distance, "corner")
    print(f"Treasure at distance D={distance}; k={k} agents; 100 trials each.")
    print(f"Optimal benchmark D + D^2/k = {optimal_time(distance, k):.0f}\n")
    for alg in (NonUniformSearch(k=k), UniformSearch(0.5), HarmonicSearch(0.5)):
        times = simulate_find_times(alg, world, k, 100, seed=0)
        import numpy as np

        found = np.isfinite(times)
        mean = times[found].mean() if found.any() else float("inf")
        print(
            f"{alg.describe():<75} "
            f"mean={mean:9.1f}  success={found.mean():.2f}"
        )
    print("\nSee `repro-ants list` for the full experiment index.")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "run":
        quick = not args.full
        return _cmd_run(
            args.experiments,
            quick,
            args.seed,
            args.csv,
            workers=args.workers,
            cache=not args.no_cache,
        )
    if args.command == "sweep":
        return _cmd_sweep(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
