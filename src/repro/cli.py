"""Command-line interface: ``repro-ants`` / ``python -m repro``.

Examples::

    repro-ants list                      # show the experiment index
    repro-ants run E1 E3 --quick         # run experiments, print tables
    repro-ants run all --full --csv out/ # full scale, archive CSVs
    repro-ants demo                      # 30-second guided demo
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ants",
        description=(
            "Reproduction of 'Collaborative Search on the Plane without "
            "Communication' (Feinerman, Korman, Lotker, Sereni; PODC 2012)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run experiments and print their tables")
    run_p.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (E1..E10) or 'all'",
    )
    mode = run_p.add_mutually_exclusive_group()
    mode.add_argument("--quick", action="store_true", help="small grids (default)")
    mode.add_argument("--full", action="store_true", help="paper-scale grids")
    run_p.add_argument("--seed", type=int, default=None, help="override root seed")
    run_p.add_argument(
        "--csv", metavar="DIR", default=None, help="also write tables as CSV here"
    )

    sub.add_parser("list", help="list registered experiments")
    sub.add_parser("demo", help="run a small end-to-end demonstration")
    return parser


def _cmd_list() -> int:
    from .experiments.registry import list_experiments

    for info in list_experiments():
        print(f"{info.experiment_id:<4} [{info.paper_result}] {info.title}")
    return 0


def _cmd_run(
    ids: List[str], quick: bool, seed: Optional[int], csv_dir: Optional[str]
) -> int:
    from .experiments.registry import list_experiments, run_experiment

    if any(x.lower() == "all" for x in ids):
        ids = [info.experiment_id for info in list_experiments()]
    if csv_dir:
        os.makedirs(csv_dir, exist_ok=True)
    for experiment_id in ids:
        started = time.perf_counter()
        tables = run_experiment(experiment_id, quick=quick, seed=seed)
        elapsed = time.perf_counter() - started
        for i, table in enumerate(tables):
            print(table.to_text())
            print()
            if csv_dir:
                name = f"{experiment_id.lower()}_{i}.csv"
                table.to_csv(os.path.join(csv_dir, name))
        print(f"[{experiment_id} completed in {elapsed:.1f}s]")
        print()
    return 0


def _cmd_demo() -> int:
    from .algorithms import HarmonicSearch, NonUniformSearch, UniformSearch
    from .analysis.competitiveness import optimal_time
    from .sim.events import simulate_find_times
    from .sim.world import place_treasure

    distance, k = 64, 16
    world = place_treasure(distance, "corner")
    print(f"Treasure at distance D={distance}; k={k} agents; 100 trials each.")
    print(f"Optimal benchmark D + D^2/k = {optimal_time(distance, k):.0f}\n")
    for alg in (NonUniformSearch(k=k), UniformSearch(0.5), HarmonicSearch(0.5)):
        times = simulate_find_times(alg, world, k, 100, seed=0)
        import numpy as np

        found = np.isfinite(times)
        mean = times[found].mean() if found.any() else float("inf")
        print(
            f"{alg.describe():<75} "
            f"mean={mean:9.1f}  success={found.mean():.2f}"
        )
    print("\nSee `repro-ants list` for the full experiment index.")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "run":
        quick = not args.full
        return _cmd_run(args.experiments, quick, args.seed, args.csv)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
