"""Command-line interface: ``repro-ants`` / ``python -m repro``.

Examples::

    repro-ants list                      # show the experiment index
    repro-ants run E1 E3 --quick         # run experiments, print tables
    repro-ants run all --full --csv out/ # full scale, archive CSVs
    repro-ants run E1 --workers 4        # fan sweep work out to a pool
    repro-ants run all --workers auto    # autotune workers to the CPUs
    repro-ants sweep uniform --param eps=0.5 --distances 64 --ks 1,4 \
        --workers 4 --backend process    # force the process backend
    repro-ants sweep nonuniform --distances 16,32,64 --ks 1,4,16 --trials 60
    repro-ants sweep uniform --param eps=0.5 --distances 64 --ks 1,2,4,8
    repro-ants sweep levy --param mu=2 --distances 32 --ks 4 --horizon 40960
    repro-ants sweep grid_belief --distances 16 --ks 4 --horizon 6144 \
        --n-targets 2 --target-motion walk --motion-rate 0.1
    repro-ants sweep uniform --param eps=0.5 --distances 64 --ks 1,4,16 \
        --target-rel-ci 0.05 --max-trials 2048 --progress
    repro-ants run E3 --target-rel-ci 0.03   # precision-targeted trials
    repro-ants cache list                    # inspect the sweep cache
    repro-ants cache prune --older-than 30   # drop entries > 30 days old
    repro-ants sweep nonuniform --distances 16,32 --ks 1,4 \
        --trace sweep.trace.jsonl        # record a structured trace
    repro-ants trace report sweep.trace.jsonl   # wall-clock breakdown
    repro-ants trace export sweep.trace.jsonl --chrome -o sweep.chrome.json
    repro-ants trace validate sweep.trace.jsonl # schema-check every event
    repro-ants demo                      # 30-second guided demo

Experiment runs and ad-hoc sweeps share the cached sweep engine: re-running
the same grid hits the on-disk cache (disable with ``--no-cache``; relocate
with ``$REPRO_SWEEP_CACHE`` or ``--cache-dir``; inspect with
``repro-ants cache``).  ``--target-rel-ci`` switches trial allocation from
a fixed count to a per-cell precision target (see DESIGN.md §7): easy
cells stop early, noisy cells run until their mean's relative CI
half-width reaches the target, and cached cells top up instead of
recomputing.  ``--progress`` prints one line per finished cell with the
allocated trials and the achieved CI half-width.

``--workers``/``--backend`` select the execution backend (DESIGN.md §8):
``--workers N`` fans work out to a persistent process pool shared by
every sweep of the invocation, ``--workers auto`` sizes it to the usable
CPUs, and ``--backend serial|process`` overrides the automatic choice.
``--backend remote --hosts a:7077,b:7077`` fans work out to ``repro-ants
worker`` processes on other hosts instead (DESIGN.md §11)::

    repro-ants worker --port 7077        # on each worker host
    repro-ants sweep nonuniform --distances 16,32 --ks 1,4 \
        --backend remote --hosts hostA:7077,hostB:7077

Serial, pooled, and remote runs produce bitwise-identical results.

``--trace FILE`` (run + sweep) records a JSONL trace of the sweep
stack's structured events — spans, counters, gauges (DESIGN.md §12) —
which ``repro-ants trace report`` turns into a wall-clock breakdown and
``trace export --chrome`` into a ``chrome://tracing`` / Perfetto
timeline.  ``$REPRO_TRACE_FILE`` does the same for library callers.
Tracing is observational only: traced and untraced runs are
bitwise identical.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ants",
        description=(
            "Reproduction of 'Collaborative Search on the Plane without "
            "Communication' (Feinerman, Korman, Lotker, Sereni; PODC 2012)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run experiments and print their tables")
    run_p.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (E1..E12) or 'all'",
    )
    mode = run_p.add_mutually_exclusive_group()
    mode.add_argument("--quick", action="store_true", help="small grids (default)")
    mode.add_argument("--full", action="store_true", help="paper-scale grids")
    run_p.add_argument("--seed", type=int, default=None, help="override root seed")
    run_p.add_argument(
        "--csv", metavar="DIR", default=None, help="also write tables as CSV here"
    )
    _add_executor_arguments(run_p)
    run_p.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk sweep cache",
    )
    _add_budget_arguments(run_p)

    sweep_p = sub.add_parser(
        "sweep", help="run one ad-hoc D x k sweep and print the cell table"
    )
    sweep_p.add_argument(
        "algorithm",
        help=(
            "registered sweep strategy (nonuniform, uniform, harmonic, "
            "random_walk, biased_walk, levy, grid_belief, ...); walker "
            "baselines, adaptive searchers and dynamic worlds require "
            "--horizon"
        ),
    )
    sweep_p.add_argument(
        "--distances",
        required=True,
        help="comma-separated treasure distances, e.g. 16,32,64",
    )
    sweep_p.add_argument(
        "--ks", required=True, help="comma-separated agent counts, e.g. 1,4,16"
    )
    sweep_p.add_argument("--trials", type=int, default=60)
    sweep_p.add_argument("--seed", type=int, default=0)
    sweep_p.add_argument(
        "--placement",
        default="offaxis",
        choices=("axis", "corner", "offaxis", "random"),
    )
    sweep_p.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="algorithm parameter (repeatable), e.g. --param eps=0.5",
    )
    sweep_p.add_argument("--horizon", type=float, default=None)
    sweep_p.add_argument(
        "--require-k-le-d",
        action="store_true",
        help="skip cells with k > D (the paper's analysis regime)",
    )
    scenario_g = sweep_p.add_argument_group(
        "scenario", "fault/heterogeneity perturbations (see DESIGN.md §6)"
    )
    scenario_g.add_argument(
        "--crash-hazard",
        type=float,
        default=0.0,
        help="per-time-unit crash hazard (geometric agent lifetimes)",
    )
    scenario_g.add_argument(
        "--speed-spread",
        type=float,
        default=0.0,
        help="speed heterogeneity: fastest/slowest = (1+spread)^2, mean 1",
    )
    scenario_g.add_argument(
        "--start-stagger",
        type=float,
        default=0.0,
        help="agent i starts at time i * stagger (asynchronous starts)",
    )
    scenario_g.add_argument(
        "--detection-prob",
        type=float,
        default=1.0,
        help="probability of noticing the treasure per crossing",
    )
    world_g = sweep_p.add_argument_group(
        "world process",
        "generalised target worlds (see DESIGN.md §10); any non-default "
        "knob requires --horizon",
    )
    world_g.add_argument(
        "--n-targets",
        type=int,
        default=1,
        help="number of targets on the distance ring (extras uniform)",
    )
    world_g.add_argument(
        "--target-motion",
        choices=("static", "drift", "walk"),
        default="static",
        help="target motion process (drift/walk need --motion-rate)",
    )
    world_g.add_argument(
        "--motion-rate",
        type=float,
        default=0.0,
        help="expected target steps per time unit for drift/walk motion",
    )
    world_g.add_argument(
        "--arrival-hazard",
        type=float,
        default=0.0,
        help=(
            "per-time-unit geometric arrival hazard (0 = targets present "
            "from t=0)"
        ),
    )
    world_g.add_argument(
        "--target-detection-prob",
        type=float,
        default=1.0,
        help=(
            "world-level detection probability per crossing (composes "
            "multiplicatively with the scenario's --detection-prob)"
        ),
    )
    _add_executor_arguments(sweep_p)
    sweep_p.add_argument("--no-cache", action="store_true")
    sweep_p.add_argument("--cache-dir", default=None)
    sweep_p.add_argument(
        "--resume",
        action="store_true",
        help=(
            "recover an interrupted sweep from its checkpoint journal "
            "(bitwise identical to an uninterrupted run; needs the cache)"
        ),
    )
    sweep_p.add_argument(
        "--checkpoint",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help=(
            "seconds between checkpoint journal writes while the sweep "
            "runs (0 = after every chunk; negative disables; default 5)"
        ),
    )
    sweep_p.add_argument(
        "--csv", metavar="FILE", default=None, help="also write the table as CSV"
    )
    _add_budget_arguments(sweep_p)

    cache_p = sub.add_parser(
        "cache", help="inspect and prune the on-disk sweep cache"
    )
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)
    cache_list = cache_sub.add_parser(
        "list", help="list cache entries (specs, shapes, sizes, ages)"
    )
    cache_list.add_argument("--cache-dir", default=None)
    cache_prune = cache_sub.add_parser(
        "prune", help="delete cache entries older than a cutoff"
    )
    cache_prune.add_argument(
        "--older-than",
        type=float,
        required=True,
        metavar="DAYS",
        help="age cutoff in days (0 prunes everything)",
    )
    cache_prune.add_argument("--cache-dir", default=None)
    cache_prune.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be deleted without deleting",
    )
    cache_path_p = cache_sub.add_parser(
        "path", help="print the resolved cache directory"
    )
    cache_path_p.add_argument("--cache-dir", default=None)

    trace_p = sub.add_parser(
        "trace",
        help=(
            "inspect JSONL traces recorded with --trace / "
            "$REPRO_TRACE_FILE (see DESIGN.md §12)"
        ),
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)
    trace_report = trace_sub.add_parser(
        "report",
        help=(
            "wall-clock breakdown: top cells by time, worker "
            "utilization, cache hit rate, steal/speculation efficacy"
        ),
    )
    trace_report.add_argument("file", help="JSONL trace file")
    trace_report.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="number of cells in the per-cell table (default 10)",
    )
    trace_export = trace_sub.add_parser(
        "export",
        help="convert a trace for external timeline viewers",
    )
    trace_export.add_argument("file", help="JSONL trace file")
    trace_export.add_argument(
        "--chrome",
        action="store_true",
        required=True,
        help=(
            "emit Chrome trace-event JSON (load in chrome://tracing "
            "or https://ui.perfetto.dev)"
        ),
    )
    trace_export.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="output path (default: stdout)",
    )
    trace_validate = trace_sub.add_parser(
        "validate",
        help="schema-check every event; exit 1 on any invalid record",
    )
    trace_validate.add_argument("file", help="JSONL trace file")

    check_p = sub.add_parser(
        "check",
        help=(
            "run the determinism contract checks (AST lint R001-R004, "
            "stream registry scan, spec hash manifest)"
        ),
    )
    check_p.add_argument(
        "roots",
        nargs="*",
        metavar="DIR",
        help=(
            "directories to lint (default: the installed package plus the "
            "checkout's tests/, examples/ and benchmarks/ trees)"
        ),
    )
    check_p.add_argument(
        "--fix-manifest",
        action="store_true",
        help=(
            "re-pin the SweepSpec hash manifest after a deliberate "
            "spec-identity change (requires the matching version bump)"
        ),
    )

    worker_p = sub.add_parser(
        "worker",
        help=(
            "serve sweep tasks to remote drivers (the --backend remote "
            "worker process; see DESIGN.md §11)"
        ),
    )
    worker_p.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default loopback; use 0.0.0.0 for LAN)",
    )
    worker_p.add_argument(
        "--port",
        type=int,
        default=None,
        help="port to bind (default 7077; 0 picks an ephemeral port)",
    )
    worker_p.add_argument(
        "--slots",
        type=int,
        default=1,
        help="tasks executed concurrently per driver connection",
    )

    sub.add_parser("list", help="list registered experiments")
    sub.add_parser("demo", help="run a small end-to-end demonstration")
    return parser


def _workers_argument(value: str):
    """Parse ``--workers``: a count, or ``auto`` for CPU autotuning."""
    if value.strip().lower() == "auto":
        return "auto"
    try:
        count = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--workers expects an integer or 'auto', got {value!r}"
        )
    if count < 0:
        raise argparse.ArgumentTypeError(
            f"--workers expects a count >= 0 or 'auto', got {value!r}"
        )
    return count


def _add_executor_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared execution-backend flags (run + sweep)."""
    group = parser.add_argument_group(
        "execution backend",
        "where sweep work runs (see DESIGN.md §8); one persistent worker "
        "pool serves every sweep of the invocation",
    )
    group.add_argument(
        "--workers",
        type=_workers_argument,
        default=0,
        metavar="N",
        help=(
            "sweep worker processes (0/1 = serial; 'auto' = one per "
            "usable CPU)"
        ),
    )
    group.add_argument(
        "--backend",
        choices=("auto", "serial", "process", "remote"),
        default="auto",
        help=(
            "execution backend: 'auto' picks the process pool when "
            "--workers > 1, 'serial'/'process' force the choice, "
            "'remote' fans out to repro-ants worker hosts (needs "
            "--hosts or $REPRO_REMOTE_HOSTS)"
        ),
    )
    group.add_argument(
        "--hosts",
        default=None,
        metavar="HOST[:PORT],...",
        help=(
            "comma-separated worker endpoints for --backend remote "
            "(default port 7077)"
        ),
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help=(
            "record a JSONL trace of the sweep stack's structured "
            "events (inspect with 'repro-ants trace report'); "
            "observational only — results are unaffected"
        ),
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="FILE",
        help=(
            "activate a repro.faults chaos plan (JSON file, or inline "
            "JSON) injecting failures at instrumented seams; recoverable "
            "faults leave results bitwise unchanged (DESIGN.md §13)"
        ),
    )


def _add_budget_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared adaptive-precision and progress flags (run + sweep)."""
    group = parser.add_argument_group(
        "adaptive precision",
        "trial allocation driven by a precision target instead of a "
        "fixed count (see DESIGN.md §7)",
    )
    group.add_argument(
        "--target-rel-ci",
        type=float,
        default=None,
        metavar="R",
        help=(
            "per-cell precision target: keep adding trial blocks until "
            "the mean's relative 95%% CI half-width is <= R"
        ),
    )
    group.add_argument(
        "--max-trials",
        type=int,
        default=None,
        help="stop a cell at/above this many trials even short of the target",
    )
    group.add_argument(
        "--min-trials",
        type=int,
        default=None,
        help="never stop a cell below this many trials (default 32)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print one line per finished cell (trials, CI half-width)",
    )


def _budget_from_args(args):
    """Build the BudgetPolicy the flags describe (None = fixed trials)."""
    from .stats import BudgetPolicy
    from .stats.policy import DEFAULT_MAX_TRIALS, DEFAULT_MIN_TRIALS

    if args.target_rel_ci is None:
        if args.max_trials is not None or args.min_trials is not None:
            raise SystemExit(
                "--max-trials/--min-trials need --target-rel-ci (without a "
                "precision target, trial counts come from --trials)"
            )
        return None
    try:
        return BudgetPolicy.target_rel_ci(
            args.target_rel_ci,
            min_trials=(
                args.min_trials if args.min_trials is not None
                else DEFAULT_MIN_TRIALS
            ),
            max_trials=(
                args.max_trials if args.max_trials is not None
                else DEFAULT_MAX_TRIALS
            ),
        )
    except ValueError as error:
        raise SystemExit(str(error))


def _progress_printer(event) -> None:
    """Render one ProgressEvent as a table-adjacent status line."""
    from .experiments.io import format_value

    print(
        f"  cell D={event.distance} k={event.k}: "
        f"trials={event.trials} (+{event.new_trials}) "
        f"ci={format_value(event.ci_halfwidth)} [{event.source}]"
    )


def _cmd_list() -> int:
    from .experiments.registry import list_experiments

    for info in list_experiments():
        print(f"{info.experiment_id:<4} [{info.paper_result}] {info.title}")
    return 0


def _cmd_run(
    ids: List[str],
    quick: bool,
    seed: Optional[int],
    csv_dir: Optional[str],
    workers=0,
    backend: str = "auto",
    hosts=None,
    cache: bool = True,
    budget=None,
    progress=None,
    trace_file: Optional[str] = None,
    fault_plan: Optional[str] = None,
) -> int:
    import contextlib
    import inspect

    from .experiments.registry import EXPERIMENTS, list_experiments, run_experiment
    from .obs import tracing
    from .sweep.executor import make_executor, resolve_workers

    _activate_fault_plan(fault_plan)
    if any(x.lower() == "all" for x in ids):
        ids = [info.experiment_id for info in list_experiments()]
    if csv_dir:
        os.makedirs(csv_dir, exist_ok=True)
    # One persistent executor serves every sweep of every experiment in
    # this invocation: warm workers carry over from E1 to E11 instead of
    # each sweep paying pool spawn-up.  (The pool itself is lazy — an
    # all-cache run never forks, and the remote backend only connects
    # on first submit.)
    try:
        executor = make_executor(
            workers=resolve_workers(workers), backend=backend, hosts=hosts
        )
    except ValueError as error:
        raise SystemExit(str(error))
    recorder = (
        tracing(trace_file) if trace_file else contextlib.nullcontext()
    )
    with recorder, executor:
        for experiment_id in ids:
            started = time.perf_counter()
            info = EXPERIMENTS.get(experiment_id.upper())
            if info is not None and (budget is not None or progress is not None):
                # Don't let a flag look honoured when it isn't: the
                # registry's signature-based forwarding silently drops
                # kwargs a runner doesn't accept.
                accepted = inspect.signature(info.runner).parameters
                ignored = []
                if budget is not None and "budget" not in accepted:
                    ignored.append("--target-rel-ci")
                if progress is not None and "progress" not in accepted:
                    ignored.append("--progress")
                if ignored:
                    print(
                        f"[{info.experiment_id} has no adaptive allocation; "
                        f"{'/'.join(ignored)} ignored, running at fixed trials]"
                    )
            tables = run_experiment(
                experiment_id, quick=quick, seed=seed, workers=workers,
                cache=cache, budget=budget, progress=progress,
                executor=executor,
            )
            elapsed = time.perf_counter() - started
            for i, table in enumerate(tables):
                print(table.to_text())
                print()
                if csv_dir:
                    name = f"{experiment_id.lower()}_{i}.csv"
                    table.to_csv(os.path.join(csv_dir, name))
            print(f"[{experiment_id} completed in {elapsed:.1f}s]")
            print()
    return 0


def _activate_fault_plan(source: Optional[str]) -> None:
    """Arm ``--fault-plan`` on the process singleton (and, via the
    environment, on every worker process this run spawns)."""
    if not source:
        return
    from .faults import FAULT_PLAN_ENV, activate, load_plan

    try:
        activate(load_plan(source))
    except (OSError, ValueError) as error:
        raise SystemExit(f"--fault-plan {source!r}: {error}")
    # Workers re-load the plan from the environment (ensure_env_plan in
    # the task wrapper), so worker-side seams see the same schedule.
    os.environ[FAULT_PLAN_ENV] = source


def _parse_int_list(text: str, label: str) -> tuple:
    try:
        return tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise SystemExit(f"--{label} expects comma-separated integers, got {text!r}")


def _cmd_sweep(args) -> int:
    import contextlib

    from .analysis.competitiveness import competitiveness
    from .obs import tracing
    from .scenarios import ScenarioSpec
    from .sim.world import WorldSpec
    from .sweep import ALGORITHM_BUILDERS, SweepSpec, run_sweep
    from .sweep.executor import make_executor, resolve_workers
    from .experiments.io import ResultTable

    if args.algorithm not in ALGORITHM_BUILDERS:
        known = ", ".join(sorted(ALGORITHM_BUILDERS))
        raise SystemExit(
            f"unknown sweep algorithm {args.algorithm!r}; known: {known}"
        )

    params = {}
    for item in args.param:
        name, sep, value = item.partition("=")
        if not sep or not name:
            raise SystemExit(f"--param expects NAME=VALUE, got {item!r}")
        try:
            params[name] = float(value)
        except ValueError:
            raise SystemExit(
                f"--param {name} expects a numeric value, got {value!r}"
            )

    budget = _budget_from_args(args)
    try:
        scenario = ScenarioSpec(
            crash_hazard=args.crash_hazard,
            speed_spread=args.speed_spread,
            start_stagger=args.start_stagger,
            detection_prob=args.detection_prob,
        )
        world = WorldSpec(
            n_targets=args.n_targets,
            motion=args.target_motion,
            motion_rate=args.motion_rate,
            arrival=("geometric" if args.arrival_hazard > 0 else "present"),
            arrival_hazard=args.arrival_hazard,
            detection_prob=args.target_detection_prob,
        )
        spec = SweepSpec(
            algorithm=args.algorithm,
            distances=_parse_int_list(args.distances, "distances"),
            ks=_parse_int_list(args.ks, "ks"),
            trials=args.trials,
            params=params,
            placement=args.placement,
            seed=args.seed,
            horizon=args.horizon,
            require_k_le_d=args.require_k_le_d,
            scenario=scenario,
            budget=budget,
            world=world,
        )
    except (TypeError, ValueError) as error:
        raise SystemExit(str(error))
    _activate_fault_plan(args.fault_plan)
    started = time.perf_counter()
    try:
        executor = make_executor(
            workers=resolve_workers(args.workers),
            backend=args.backend,
            hosts=args.hosts,
        )
    except ValueError as error:  # e.g. --hosts without --backend remote
        raise SystemExit(str(error))
    recorder = (
        tracing(args.trace) if args.trace else contextlib.nullcontext()
    )
    try:
        with recorder, executor:
            result = run_sweep(
                spec,
                executor=executor,
                cache=not args.no_cache,
                cache_dir=args.cache_dir,
                progress=_progress_printer if args.progress else None,
                resume=args.resume,
                checkpoint_s=(
                    None if args.checkpoint < 0 else args.checkpoint
                ),
            )
    except ValueError as error:  # e.g. walker strategy without --horizon
        raise SystemExit(str(error))
    elapsed = time.perf_counter() - started

    title = f"sweep {args.algorithm}"
    if params:
        rendered = ", ".join(f"{k}={v:g}" for k, v in sorted(params.items()))
        title += f" ({rendered})"
    table = ResultTable(
        title=title,
        columns=[
            "D", "k", "trials", "mean_time", "stderr", "ci95", "success",
            "censored", "ratio",
        ],
    )
    any_censored = False
    for cell in result:
        summary = cell.summary(horizon=spec.horizon)
        any_censored = any_censored or summary.censored_fraction > 0
        table.add_row(
            D=cell.distance,
            k=cell.k,
            trials=cell.trials,
            mean_time=cell.mean,
            stderr=cell.stderr,
            ci95=summary.ci_halfwidth,
            success=cell.success_rate,
            censored=summary.censored_fraction,
            ratio=competitiveness(cell.mean, cell.distance, cell.k),
        )
    table.add_note("ratio = mean_time / (D + D^2/k), the universal benchmark")
    if any_censored:
        table.add_note(
            "rows with censored > 0: ci95 brackets the censoring-aware "
            "mean (horizon-truncated when a horizon is set — a lower "
            "bound; over finding trials only otherwise), not the "
            "mean_time column's inf-propagating estimator"
        )
    if spec.scenario is not None:
        table.add_note(f"scenario: {spec.scenario.describe()}")
    if spec.world is not None:
        table.add_note(f"world: {spec.world.describe()}")
    if spec.budget is not None:
        table.add_note(
            f"adaptive allocation: {spec.budget.describe()} — "
            f"{result.total_trials} trials total"
        )
    source = "cache" if result.from_cache else f"computed in {elapsed:.1f}s"
    table.add_note(f"spec {spec.spec_hash()} ({source})")
    print(table.to_text())
    if args.csv:
        table.to_csv(args.csv)
    return 0


def _cmd_cache(args) -> int:
    from .experiments.io import ResultTable
    from .sweep import default_cache_dir, list_entries, prune_entries

    directory = args.cache_dir if args.cache_dir else default_cache_dir()
    if args.cache_command == "path":
        print(directory)
        return 0
    if args.cache_command == "list":
        entries = list_entries(directory)
        table = ResultTable(
            title=f"sweep cache at {directory}",
            columns=[
                "file", "kind", "algorithm", "cells", "trials", "size_kb",
                "age_days",
            ],
        )
        now = time.time()
        for entry in entries:
            table.add_row(
                file=os.path.basename(entry.path),
                kind=entry.kind,
                algorithm=entry.algorithm,
                cells=entry.cells,
                trials=entry.trials,
                size_kb=entry.size_bytes / 1024.0,
                age_days=max(0.0, (now - entry.mtime) / 86400.0),
            )
        table.add_note(
            f"{len(entries)} entries, "
            f"{sum(e.size_bytes for e in entries) / 1024.0:.1f} KiB total; "
            "kind: sweep = fixed-trials matrix (v1), "
            "blocks = adaptive block store (v2)"
        )
        print(table.to_text())
        return 0
    if args.cache_command == "prune":
        if args.older_than < 0:
            raise SystemExit(
                f"--older-than expects a non-negative number of days, "
                f"got {args.older_than}"
            )
        from .sweep.cache import clean_stale_files

        reclaimed = [] if args.dry_run else clean_stale_files(directory)
        pruned = prune_entries(
            directory, older_than_days=args.older_than, dry_run=args.dry_run
        )
        verb = "would prune" if args.dry_run else "pruned"
        freed = sum(e.size_bytes for e in pruned) / 1024.0
        print(
            f"{verb} {len(pruned)} entries ({freed:.1f} KiB) older than "
            f"{args.older_than:g} days from {directory}"
        )
        for entry in pruned:
            print(f"  {os.path.basename(entry.path)}")
        if reclaimed:
            print(
                f"reclaimed {len(reclaimed)} stale temp/quarantine "
                f"file(s) left by crashed writers"
            )
        return 0
    raise AssertionError(f"unhandled cache command {args.cache_command!r}")


def _cmd_trace(args) -> int:
    import json

    from .obs import (
        SCHEMA_VERSION,
        build_report,
        read_trace,
        to_chrome,
        validate_event,
    )

    try:
        records = read_trace(args.file)
    except FileNotFoundError:
        raise SystemExit(f"no such trace file: {args.file}")
    except ValueError as error:  # malformed JSONL
        raise SystemExit(str(error))

    if args.trace_command == "report":
        if args.top < 1:
            raise SystemExit(f"--top expects a count >= 1, got {args.top}")
        print(build_report(records).render(top=args.top))
        return 0
    if args.trace_command == "export":
        document = json.dumps(to_chrome(records), indent=2)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(document + "\n")
            print(
                f"wrote {len(records)} events to {args.output} "
                f"(load in chrome://tracing or https://ui.perfetto.dev)"
            )
        else:
            print(document)
        return 0
    if args.trace_command == "validate":
        invalid = 0
        for index, record in enumerate(records, start=1):
            for problem in validate_event(record):
                invalid += 1
                print(f"{args.file}:{index}: {problem}")
        if invalid:
            print(f"{invalid} invalid event(s) in {len(records)} records")
            return 1
        print(
            f"{len(records)} events, all schema-valid "
            f"(schema v{SCHEMA_VERSION})"
        )
        return 0
    raise AssertionError(f"unhandled trace command {args.trace_command!r}")


def _cmd_check(args) -> int:
    from .checks import format_findings, run_checks
    from .checks.manifest import DEFAULT_MANIFEST_PATH, write_manifest

    if args.fix_manifest:
        write_manifest()
        print(f"re-pinned spec hash manifest at {DEFAULT_MANIFEST_PATH}")
    findings = run_checks(args.roots if args.roots else None)
    if not findings:
        print("determinism checks: 0 findings")
        return 0
    print(format_findings(findings))
    return 1


def _cmd_worker(args) -> int:
    from .sweep.remote import DEFAULT_PORT, PROTOCOL_VERSION, serve_worker
    from .sweep.spec import BLOCK_SCHEDULE_VERSION, SPEC_VERSION

    if args.slots < 1:
        raise SystemExit(f"--slots expects a count >= 1, got {args.slots}")
    port = DEFAULT_PORT if args.port is None else args.port

    def ready(host: str, bound_port: int) -> None:
        # Parseable by drivers launching workers with --port 0.
        print(
            f"repro-ants worker listening on {host}:{bound_port} "
            f"(protocol {PROTOCOL_VERSION}, spec v{SPEC_VERSION}, "
            f"blocks v{BLOCK_SCHEDULE_VERSION}, slots {args.slots})",
            flush=True,
        )

    try:
        serve_worker(args.host, port, slots=args.slots, ready=ready)
    except OSError as error:  # port in use, unresolvable bind address, ...
        raise SystemExit(f"worker failed to bind {args.host}:{port}: {error}")
    return 0


def _cmd_demo() -> int:
    from .algorithms import HarmonicSearch, NonUniformSearch, UniformSearch
    from .analysis.competitiveness import optimal_time
    from .sim.events import simulate_find_times
    from .sim.world import place_treasure

    distance, k = 64, 16
    world = place_treasure(distance, "corner")
    print(f"Treasure at distance D={distance}; k={k} agents; 100 trials each.")
    print(f"Optimal benchmark D + D^2/k = {optimal_time(distance, k):.0f}\n")
    for alg in (NonUniformSearch(k=k), UniformSearch(0.5), HarmonicSearch(0.5)):
        times = simulate_find_times(alg, world, k, 100, seed=0)
        import numpy as np

        found = np.isfinite(times)
        mean = times[found].mean() if found.any() else float("inf")
        print(
            f"{alg.describe():<75} "
            f"mean={mean:9.1f}  success={found.mean():.2f}"
        )
    print("\nSee `repro-ants list` for the full experiment index.")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "run":
        quick = not args.full
        return _cmd_run(
            args.experiments,
            quick,
            args.seed,
            args.csv,
            workers=args.workers,
            backend=args.backend,
            hosts=args.hosts,
            cache=not args.no_cache,
            budget=_budget_from_args(args),
            progress=_progress_printer if args.progress else None,
            trace_file=args.trace,
            fault_plan=args.fault_plan,
        )
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "worker":
        return _cmd_worker(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
