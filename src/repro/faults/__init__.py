"""``repro.faults``: deterministic fault injection and graceful retry.

The harness-side mirror of the paper's robustness claim (DESIGN.md §13):
searchers make progress when peers fail, and the sweep stack must make
progress when disks, pools, and networks fail.  Three pieces live here:

* :class:`FaultPlan` / :class:`FaultRule` — a declarative, serialisable
  description of *which* instrumented seams fail, *when*, and *how*.
  Plans are scheduled from a dedicated registered RNG stream
  (``FAULT_STREAM``) keyed by the plan's own seed, so every chaos run is
  exactly reproducible — and the plan is hashed *outside* spec identity,
  so faulted and unfaulted runs share cache entries.
* :data:`FAULTS` — the process singleton every seam consults, with the
  same one-attribute-read disabled path as ``repro.obs.BUS``: when no
  plan is active (the production default), a seam costs exactly one
  ``FAULTS.enabled`` read.  Activation comes from the
  ``REPRO_FAULT_PLAN`` environment variable, the ``--fault-plan`` CLI
  flag, or :func:`activate` / :func:`fault_plan` programmatically.
* :func:`retry_call` / :func:`backoff_delays` — the unified jittered,
  capped, obs-counted retry/backoff helper adopted by cache lock waits
  and remote connects.

Every recoverable fault class is covered by the chaos parity property
tests (``tests/test_faults.py``): a seeded plan run completes bitwise
identical to the unfaulted run on all four executor backends.
"""

from .plan import (
    FAULT_PLAN_ENV,
    FAULT_SITES,
    FAULT_STREAM,
    FAULTS,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultRule,
    activate,
    deactivate,
    ensure_env_plan,
    fault_plan,
    load_plan,
)
from .retry import backoff_delays, retry_call

__all__ = [
    "FAULT_PLAN_ENV",
    "FAULT_SITES",
    "FAULT_STREAM",
    "FAULTS",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "activate",
    "deactivate",
    "ensure_env_plan",
    "fault_plan",
    "load_plan",
    "backoff_delays",
    "retry_call",
]
