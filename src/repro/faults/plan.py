"""Declarative fault plans and the process-local injector singleton.

A :class:`FaultPlan` names instrumented *seams* (``FAULT_SITES``) and
attaches rules: fire with probability ``p``, skip the first ``after``
opportunities, fire at most ``times`` times, optionally carry a
``delay`` (slow links) or a ``mode`` refining *how* the seam fails.
Rules draw from ``derive_rng(plan.seed, FAULT_STREAM, rule, occurrence)``
— the plan's own seed, never the spec's — so chaos schedules are exactly
reproducible and simulation RNG draw order is untouched.  The plan is
deliberately **outside** spec identity: ``SweepSpec.spec_hash`` /
``data_hash`` never see it, so faulted and clean runs share cache
entries (which is what the bitwise chaos-parity tests compare).

The injector mirrors ``repro.obs.BUS``: seams read ``FAULTS.enabled``
and nothing else when no plan is active, keeping the production-path
cost to one attribute read (pinned by ``benchmarks/test_bench_faults.py``).
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from ..checks.registry import register_stream
from ..sim.rng import derive_rng

__all__ = [
    "FAULT_PLAN_ENV",
    "FAULT_SITES",
    "FAULT_STREAM",
    "FAULTS",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "activate",
    "deactivate",
    "ensure_env_plan",
    "fault_plan",
    "load_plan",
]

#: Environment activation: a path to a plan JSON file, or the JSON text
#: itself (anything starting with ``{``).  Read once per process by
#: :func:`ensure_env_plan`; inherited by pool workers, which is how
#: worker-side seams (shm attach, pool kill) see the same plan.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: The dedicated chaos-scheduling stream (``repro.checks`` registry).
FAULT_STREAM = register_stream("FAULT_STREAM", 0xFA017)

#: Every instrumented seam.  A plan naming an unknown site is rejected
#: at construction — a typo must not silently disable a chaos suite.
FAULT_SITES = (
    "cache.read",      # cache open/read raises (injected I/O error)
    "cache.corrupt",   # cache archive reads as truncated/corrupt
    "cache.write",     # cache write fails (mode "crash" orphans the tmp)
    "shm.attach",      # worker-side shared-memory attach fails
    "pool.kill",       # process-pool worker hard-exits mid-task
    "executor.process", # process tier unreachable (degradation chain)
    "remote.connect",  # connect refused (retried with backoff)
    "remote.disconnect",  # established worker connection drops mid-task
    "remote.blackhole",   # worker stops answering heartbeats
    "remote.slow",     # dispatch pays an injected latency (``delay``)
)


class FaultError(ConnectionError):
    """The exception injected seams raise.

    Subclasses :class:`ConnectionError` (itself an :class:`OSError`) so
    the *real* recovery handlers — cache best-effort ``except OSError``,
    remote ``except ConnectionError`` resubmission — catch it without
    any injection-aware code on the recovery paths.
    """


@dataclass(frozen=True)
class FaultRule:
    """One seam's failure schedule."""

    site: str
    mode: str = "error"  # seam-specific refinement (e.g. cache.write "crash")
    p: float = 1.0  # per-opportunity firing probability
    after: int = 0  # skip the first N opportunities
    times: Optional[int] = None  # fire at most N times (None = unlimited)
    delay: float = 0.0  # seconds, for "remote.slow"

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known: "
                f"{', '.join(FAULT_SITES)}"
            )
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"rule p must be in [0, 1], got {self.p!r}")
        if self.after < 0:
            raise ValueError(f"rule after must be >= 0, got {self.after!r}")
        if self.times is not None and self.times < 0:
            raise ValueError(f"rule times must be >= 0, got {self.times!r}")
        if self.delay < 0:
            raise ValueError(f"rule delay must be >= 0, got {self.delay!r}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "site": self.site, "mode": self.mode, "p": self.p,
            "after": self.after, "times": self.times, "delay": self.delay,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultRule":
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(f"unknown fault rule keys: {sorted(unknown)}")
        if "site" not in data:
            raise ValueError("fault rule needs a 'site'")
        return cls(
            site=str(data["site"]),
            mode=str(data.get("mode", "error")),
            p=float(data.get("p", 1.0)),  # type: ignore[arg-type]
            after=int(data.get("after", 0)),  # type: ignore[arg-type]
            times=(
                None if data.get("times") is None
                else int(data["times"])  # type: ignore[arg-type]
            ),
            delay=float(data.get("delay", 0.0)),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault rules — the unit of chaos reproducibility."""

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": int(self.seed),
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ValueError(f"fault plan must be an object, got {data!r}")
        rules = data.get("rules", [])
        if not isinstance(rules, (list, tuple)):
            raise ValueError("fault plan 'rules' must be a list")
        return cls(
            rules=tuple(FaultRule.from_dict(r) for r in rules),
            seed=int(data.get("seed", 0)),  # type: ignore[arg-type]
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


def load_plan(source: str) -> FaultPlan:
    """Load a plan from a JSON file path, or inline JSON text."""
    text = source
    if not source.lstrip().startswith("{"):
        with open(source) as handle:
            text = handle.read()
    return FaultPlan.from_json(text)


class FaultInjector:
    """The process singleton seams consult (see :data:`FAULTS`).

    ``enabled`` is the whole disabled-path cost.  With a plan active,
    :meth:`check` counts the opportunity against every rule matching the
    site, draws the rule's firing decision from the fault stream, and
    returns the first rule that fires (or ``None``).  Opportunity
    counters are per ``(rule, process)``: driver-side seams see a
    deterministic opportunity sequence by construction, and worker-side
    seams only ever fire recoverable faults whose fallback is bitwise
    identical, so parity never depends on cross-process ordering.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._plan: Optional[FaultPlan] = None
        self._lock = threading.Lock()
        self._seen: Dict[int, int] = {}  # rule index -> opportunities
        self._fired: Dict[int, int] = {}  # rule index -> injections
        self.injections: Dict[str, int] = {}  # site -> injections (telemetry)
        #: site -> :meth:`check` calls while armed.  Telemetry only —
        #: the disabled-path benchmark uses it as the structural bound
        #: on how many ``FAULTS.enabled`` reads a disarmed run pays.
        self.opportunities: Dict[str, int] = {}
        self._armed_crash_file: Optional[str] = None
        self._prior_crash_env: Optional[str] = None

    @property
    def plan(self) -> Optional[FaultPlan]:
        return self._plan

    def activate(self, plan: FaultPlan) -> None:
        with self._lock:
            self._plan = plan
            self._seen = {}
            self._fired = {}
            self.injections = {}
            self.opportunities = {}
            self.enabled = bool(plan.rules)
        self._arm_pool_kill(plan)

    def deactivate(self) -> None:
        with self._lock:
            self._plan = None
            self._seen = {}
            self._fired = {}
            self.opportunities = {}
            self.enabled = False
        self._disarm_pool_kill()

    # ``pool.kill`` budgets must be shared across worker *processes*: a
    # per-process counter would re-fire in every rebuilt worker and burn
    # the pool's whole restart budget on one rule.  The executor already
    # solved exactly this with its file-backed crash hook (a count that
    # workers atomically decrement before hard-exiting), so pool.kill
    # rules arm that hook rather than reimplementing it.  The env name
    # is ``repro.sweep.executor.CRASH_ENV`` — spelled literally here to
    # keep the fault layer importable below the executor.
    _CRASH_ENV = "REPRO_EXECUTOR_CRASH"

    def _arm_pool_kill(self, plan: FaultPlan) -> None:
        self._disarm_pool_kill()
        kills = sum(
            (rule.times if rule.times is not None else 1)
            for rule in plan.rules
            if rule.site == "pool.kill"
        )
        if not kills:
            return
        import tempfile

        fd, path = tempfile.mkstemp(prefix="repro_fault_kill_", suffix=".txt")
        with os.fdopen(fd, "w") as handle:
            handle.write(str(kills))
        self._armed_crash_file = path
        self._prior_crash_env = os.environ.get(self._CRASH_ENV)
        os.environ[self._CRASH_ENV] = path

    def _disarm_pool_kill(self) -> None:
        path = getattr(self, "_armed_crash_file", None)
        if path is None:
            return
        prior = getattr(self, "_prior_crash_env", None)
        if prior is None:
            os.environ.pop(self._CRASH_ENV, None)
        else:
            os.environ[self._CRASH_ENV] = prior
        try:
            os.unlink(path)
        except OSError:
            pass
        self._armed_crash_file = None

    def check(self, site: str) -> Optional[FaultRule]:
        """One opportunity at ``site``: the firing rule, or ``None``."""
        with self._lock:
            plan = self._plan
            if plan is None:
                return None
            self.opportunities[site] = self.opportunities.get(site, 0) + 1
            hit: Optional[FaultRule] = None
            hit_index = -1
            for index, rule in enumerate(plan.rules):
                if rule.site != site:
                    continue
                occurrence = self._seen.get(index, 0)
                self._seen[index] = occurrence + 1
                if hit is not None:
                    continue  # still count the opportunity for later rules
                if occurrence < rule.after:
                    continue
                fired = self._fired.get(index, 0)
                if rule.times is not None and fired >= rule.times:
                    continue
                if rule.p < 1.0:
                    draw = derive_rng(
                        plan.seed, FAULT_STREAM, index, occurrence
                    ).random()
                    if draw >= rule.p:
                        continue
                self._fired[index] = fired + 1
                self.injections[site] = self.injections.get(site, 0) + 1
                hit, hit_index = rule, index
        if hit is not None:
            from ..obs import BUS

            if BUS.enabled:
                BUS.counter(
                    "fault.inject", site=site, mode=hit.mode, rule=hit_index,
                )
        return hit


#: The process singleton every instrumented seam reads.
FAULTS = FaultInjector()


def activate(plan: FaultPlan) -> None:
    """Activate ``plan`` on the process singleton (resets counters)."""
    FAULTS.activate(plan)


def deactivate() -> None:
    """Deactivate any active plan."""
    FAULTS.deactivate()


@contextmanager
def fault_plan(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Scope a plan to a ``with`` block (deactivated on exit)."""
    FAULTS.activate(plan)
    try:
        yield FAULTS
    finally:
        FAULTS.deactivate()


#: Guard so the environment is consulted once per process.
_ENV_LOADED = False


def ensure_env_plan() -> None:
    """Honour :data:`FAULT_PLAN_ENV` (idempotent; cheap after first call).

    Called by ``run_sweep`` on the driver and by the pool-worker task
    wrapper, so one exported variable arms every process of a run.  A
    malformed plan raises — chaos testing with a silently ignored plan
    would report vacuous green.
    """
    global _ENV_LOADED
    if _ENV_LOADED:
        return
    _ENV_LOADED = True
    source = os.environ.get(FAULT_PLAN_ENV)
    if not source:
        return
    FAULTS.activate(load_plan(source))
