"""Unified retry/backoff: jittered, capped, obs-counted.

One schedule serves every degradation path that waits and tries again —
cache lock acquisition, remote connect attempts — so backoff behaviour
is tuned (and observable, via ``retry.attempt`` counters) in exactly one
place.  The jitter source is the monotonic clock's sub-millisecond
residue: cheap, free of any RNG stream, and structurally incapable of
reaching seed derivation (backoff timing is execution layout; rule R004
keeps the vocabulary out of specs).
"""

from __future__ import annotations

import time
from typing import Callable, Iterator, Optional, Tuple, Type

__all__ = ["backoff_delays", "retry_call"]

#: Default schedule: 3 attempts, 50 ms doubling to a 2 s cap.
DEFAULT_ATTEMPTS = 3
DEFAULT_BASE_DELAY = 0.05
DEFAULT_MAX_DELAY = 2.0

#: Fraction of each delay randomised away by jitter (de-synchronises
#: herds of writers polling one lockfile or redialling one host).
_JITTER_FRACTION = 0.25


def _jitter(delay: float) -> float:
    """Shave up to ``_JITTER_FRACTION`` of ``delay``, clock-derived."""
    residue = (time.monotonic_ns() % 1_000_000) / 1_000_000.0
    return delay * (1.0 - _JITTER_FRACTION * residue)


def backoff_delays(
    attempts: int = DEFAULT_ATTEMPTS,
    base_delay: float = DEFAULT_BASE_DELAY,
    max_delay: float = DEFAULT_MAX_DELAY,
) -> Iterator[float]:
    """The sleep before each retry: exponential, capped, jittered.

    Yields ``attempts - 1`` delays (nothing precedes the first attempt).
    Callers that loop on a deadline rather than an attempt budget pass
    ``attempts=None``-like large counts and break out themselves.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts!r}")
    if base_delay < 0 or max_delay < 0:
        raise ValueError("delays must be >= 0")
    delay = base_delay
    for _ in range(attempts - 1):
        yield _jitter(min(delay, max_delay))
        delay *= 2.0


def retry_call(
    fn: Callable[[], object],
    *,
    site: str,
    attempts: int = DEFAULT_ATTEMPTS,
    base_delay: float = DEFAULT_BASE_DELAY,
    max_delay: float = DEFAULT_MAX_DELAY,
    retry_on: Tuple[Type[BaseException], ...] = (OSError,),
    sleep: Callable[[float], None] = time.sleep,
) -> object:
    """Call ``fn`` up to ``attempts`` times, backing off between tries.

    Exceptions outside ``retry_on`` propagate immediately; the last
    retryable failure propagates once the attempt budget is spent.
    Every retry emits a ``retry.attempt`` counter tagged with ``site``,
    so ``trace report`` can show where a run spent its patience.
    """
    from ..obs import BUS

    delays = backoff_delays(attempts, base_delay, max_delay)
    attempt = 1
    while True:
        try:
            return fn()
        except retry_on:
            delay: Optional[float] = next(delays, None)
            if delay is None:
                raise
            if BUS.enabled:
                BUS.counter("retry.attempt", site=site, attempt=attempt)
            sleep(delay)
            attempt += 1
