"""Pluggable sweep execution backends with persistent pools.

The sweep runner used to open an ad-hoc ``multiprocessing.Pool`` inside
every ``run_sweep`` call.  That conflated three separable concerns —
*where* tasks run, *how long* the workers live, and *how* results travel
back — and re-paid pool spawn-up for every sweep of a multi-sweep
experiment.  This module owns all three:

* :class:`SerialExecutor` — in-process, zero-overhead execution.  Tasks
  are queued at :meth:`~SweepExecutor.submit` and executed lazily when
  :meth:`~SweepExecutor.next_completed` asks for them, which is what
  makes the adaptive scheduler's speculative submissions free in serial
  mode (a block that is never collected is never simulated).
* :class:`ProcessExecutor` — a **persistent** ``ProcessPoolExecutor``
  that outlives individual sweeps: experiments (and the CLI, across
  experiments) create one executor and pass it to every ``run_sweep``
  call, so back-to-back sweeps reuse warm workers.  The pool is created
  lazily on first submit — a sweep resolved entirely from cache never
  forks.  Worker crashes are survived: the pool is rebuilt and every
  uncollected task resubmitted (tasks are deterministic, so a retry is
  bitwise identical), up to ``max_restarts`` rebuilds.
* :class:`VirtualExecutor` — serial execution under a simulated parallel
  clock with ``workers`` virtual workers and a caller-supplied cost
  model.  Scheduling decisions and completion *order* are exactly those
  of a real pool with the modelled task durations, which gives
  deterministic, machine-independent regression tests for scheduling
  quality (``benchmarks/test_bench_executor.py`` pins the block-level
  scheduler's speedup over the old per-cell pool this way).  Its
  optional ``latency``/``bandwidth`` knobs model remote dispatch, so
  distributed scheduling policies are benchmarkable offline too.
* :class:`repro.sweep.remote.RemoteExecutor` (module
  :mod:`repro.sweep.remote`, selected with ``backend="remote"``) — the
  same seam stretched across machines: tasks fan out to ``repro-ants
  worker`` processes over a small TCP protocol, with handshake version
  checks, heartbeats, and crash/timeout resubmission riding the same
  determinism argument as the process pool's rebuilds.

Results are 1-D or 2-D ``float64`` arrays.  The process backend ships
them back through ``multiprocessing.shared_memory`` when the result is
big enough to be worth it: the parent allocates the segment (it knows
every task's result shape up front), the worker writes the block in
place and returns only a tiny ``("shm", shape)`` descriptor, and the
parent copies the block out and unlinks the segment.  Pickle therefore
carries descriptors, not data.  Anything that goes wrong with shared
memory — platform without it, ``/dev/shm`` full or unwritable, the
``REPRO_SWEEP_SHM=0`` kill switch — degrades per task to the inline
pickle path, bitwise identically.

Determinism contract: executors only move arrays; they never change
them.  Every backend returns, for the same submitted task, the same
bytes — the property tests in ``tests/test_executor.py`` assert serial
== process bitwise for both engines and both budget kinds, including
across injected worker crashes.
"""

from __future__ import annotations

import heapq
import itertools
import os
import queue
import threading
import time
import warnings
from concurrent.futures import BrokenExecutor, CancelledError, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

import numpy as np

from ..faults import FAULTS, ensure_env_plan
from ..obs import BUS

__all__ = [
    "SweepExecutor",
    "SerialExecutor",
    "ProcessExecutor",
    "VirtualExecutor",
    "make_executor",
    "ensure_executor",
    "resolve_workers",
    "BACKENDS",
]

#: Known backend names (``auto`` resolves on the worker count; it never
#: picks ``remote`` — distributing a sweep is always an explicit ask).
BACKENDS = ("auto", "serial", "process", "remote")

#: Environment kill switch for shared-memory transport ("0" disables).
SHM_ENV = "REPRO_SWEEP_SHM"

#: Results below this many bytes ride the pickle path even when shared
#: memory is available — a 32-trial block is cheaper to pickle than to
#: mmap.  One 128-trial block (1 KiB of float64) is the break-even.
DEFAULT_SHM_MIN_BYTES = 1024

#: Fault-injection hook for the crash/restart tests: when this variable
#: names a file holding an integer ``n > 0``, the next task execution in
#: a worker decrements it and hard-kills the worker (``os._exit``).
#: Production runs never set it.
CRASH_ENV = "REPRO_EXECUTOR_CRASH"

#: How many pool rebuilds a ProcessExecutor tolerates before giving up.
DEFAULT_MAX_RESTARTS = 3

TaskFn = Callable[[object], np.ndarray]

#: The ``--workers`` knob: a count, ``-1``, or ``"auto"``.
WorkersLike = Union[int, str]


def resolve_workers(workers: WorkersLike) -> int:
    """Normalise a worker-count knob to a concrete integer.

    ``"auto"`` (or ``-1``) autotunes to the usable CPU count — the
    scheduling affinity mask where the platform exposes it, so a
    container limited to 4 of 64 cores gets 4 workers, not 64.  Plain
    integers pass through (``0``/``1`` mean serial).
    """
    if workers in ("auto", -1):
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except (AttributeError, OSError):
            return max(1, os.cpu_count() or 1)
    count = int(workers)
    if count < 0:
        raise ValueError(f"workers must be >= 0 or 'auto', got {workers!r}")
    return count


def _shm_default() -> bool:
    return os.environ.get(SHM_ENV, "1") != "0"


def _maybe_crash() -> None:
    """Honour the crash-injection hook (test-only; see :data:`CRASH_ENV`)."""
    path = os.environ.get(CRASH_ENV)
    if not path or not os.path.exists(path):
        return
    try:
        with open(path) as handle:
            remaining = int(handle.read().strip() or 0)
    except (OSError, ValueError):
        return
    if remaining <= 0:
        return
    try:
        with open(path, "w") as handle:
            handle.write(str(remaining - 1))
    except OSError:
        pass
    os._exit(37)


#: Serialises the pre-3.13 resource-tracker monkeypatch in
#: :func:`_attach_untracked`.  Without it, two threads attaching
#: concurrently interleave their save/patch/restore sequences: the
#: second thread saves the first thread's no-op lambda as "original"
#: and restores *that*, permanently disabling resource tracking for the
#: whole process.  Pool workers attach one segment at a time today, but
#: the remote worker runs tasks on a ``slots``-wide thread pool — and a
#: process-global patch must be safe regardless of who calls it.
_TRACKER_PATCH_LOCK = threading.Lock()


def _attach_untracked(name: str):
    """Pre-3.13 fallback: attach with resource tracking suppressed.

    Older interpreters register every attach unconditionally — into
    whichever tracker the caller happens to talk to (its own after a
    bare fork, or the parent's inherited one), producing spurious leak
    warnings or double-unregister noise at shutdown.  Registration is
    suppressed by briefly swapping in a no-op; the swap mutates
    process-global state, so it runs under :data:`_TRACKER_PATCH_LOCK`
    to keep concurrent attaches from clobbering the real function.
    """
    from multiprocessing import resource_tracker, shared_memory

    with _TRACKER_PATCH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _attach_shm(name: str):
    """Attach to an existing segment; the parent owns its lifetime.

    The parent created, registered, and will unlink the segment, so the
    worker's attach must stay out of resource tracking entirely: Python
    >= 3.13 has ``track=False`` for exactly this; older interpreters go
    through :func:`_attach_untracked`.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        return _attach_untracked(name)


def _invoke_task(fn: TaskFn, payload, shm_name: Optional[str]):
    """Worker-side wrapper: run the task, ship the result (pool target).

    Returns ``("shm", shape, exec_s)`` after writing the array into the
    parent's pre-allocated segment, or ``("inline", array, exec_s)``
    when no segment was offered or attaching/fitting failed.  The third
    element is the measured execution time: the worker's own event bus
    is disabled by design (process-local; DESIGN.md §12), so timing
    travels back as result metadata and the *driver* emits it.
    """
    ensure_env_plan()  # pool workers inherit REPRO_FAULT_PLAN
    _maybe_crash()
    started = time.perf_counter()
    result = np.ascontiguousarray(np.asarray(fn(payload), dtype=np.float64))
    exec_s = time.perf_counter() - started
    if shm_name is not None:
        try:
            if FAULTS.enabled and FAULTS.check("shm.attach") is not None:
                raise OSError("injected shm attach failure")
            segment = _attach_shm(shm_name)
        except (OSError, ValueError, ImportError):
            return ("inline", result, exec_s)
        try:
            if result.nbytes <= segment.size:
                view = np.ndarray(
                    result.shape, dtype=np.float64, buffer=segment.buf
                )
                view[...] = result
                return ("shm", result.shape, exec_s)
        finally:
            segment.close()
    return ("inline", result, exec_s)


class SweepExecutor:
    """Abstract executor: submit picklable tasks, collect float64 arrays.

    The contract is deliberately tiny — it is the seam future backends
    (threads, remote shards) plug into:

    * :meth:`submit` registers ``fn(payload)`` and returns a ticket;
    * :meth:`next_completed` blocks until *some* submitted task is done
      and returns ``(ticket, result)``;
    * :attr:`pending` counts submitted-but-uncollected tasks;
    * :meth:`close` releases pools and transport resources.

    ``fn`` must be a module-level function and ``payload`` picklable
    (the serial backends do not care, but tasks must stay portable
    across backends for results to be backend-independent).
    """

    backend: str = "?"
    workers: int = 1

    def submit(
        self,
        fn: TaskFn,
        payload: object,
        result_shape: Optional[Tuple[int, ...]] = None,
    ) -> int:
        raise NotImplementedError

    def next_completed(self) -> Tuple[int, np.ndarray]:
        raise NotImplementedError

    def discard(self, tickets: Iterable[int]) -> None:
        """Abandon submitted tasks without collecting their results.

        The failure-cleanup seam: a caller whose run dies mid-flight
        must discard its outstanding tickets so a *shared* executor
        hands nothing stale to the next run.  Results of discarded
        tasks (including ones already computed) are dropped and their
        transport resources released; never-started serial tasks are
        simply never executed.
        """
        raise NotImplementedError

    @property
    def pending(self) -> int:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(SweepExecutor):
    """In-process execution; tasks run lazily at collection time."""

    backend = "serial"
    workers = 1

    def __init__(self) -> None:
        self._tasks: Dict[int, Tuple[TaskFn, object]] = {}
        self._order: List[int] = []
        self._tickets = itertools.count()

    def submit(
        self,
        fn: TaskFn,
        payload: object,
        result_shape: Optional[Tuple[int, ...]] = None,
    ) -> int:
        ticket = next(self._tickets)
        self._tasks[ticket] = (fn, payload)
        self._order.append(ticket)
        if BUS.enabled:
            BUS.counter("executor.submit", ticket=ticket, backend=self.backend)
            BUS.gauge(
                "executor.queue_depth", len(self._order), backend=self.backend
            )
        return ticket

    def next_completed(self) -> Tuple[int, np.ndarray]:
        if not self._order:
            raise RuntimeError("next_completed() with no pending tasks")
        ticket = self._order.pop(0)
        fn, payload = self._tasks.pop(ticket)
        started = time.perf_counter()
        result = np.asarray(fn(payload), dtype=np.float64)
        if BUS.enabled:
            BUS.counter(
                "executor.complete", ticket=ticket, backend=self.backend,
                exec_s=time.perf_counter() - started,
            )
        return ticket, result

    def discard(self, tickets: Iterable[int]) -> None:
        dropped = {t for t in tickets if t in self._tasks}
        for ticket in dropped:
            del self._tasks[ticket]
        self._order = [t for t in self._order if t not in dropped]

    @property
    def pending(self) -> int:
        return len(self._order)


class VirtualExecutor(SweepExecutor):
    """Serial execution under a simulated ``workers``-way parallel clock.

    ``cost_fn(fn, payload, result)`` models a task's duration in
    arbitrary units (e.g. the sum of simulated find times, a proxy for
    engine work).  Tasks execute eagerly at submit time — results are
    exact, only *time* is simulated — and are handed back in modelled
    completion order: a task starts at ``max(submit clock, earliest free
    virtual worker)`` exactly like a greedy pool, so schedulers driven
    by this executor make the same decisions they would against real
    hardware with those durations.  :attr:`makespan` is then a
    deterministic, machine-independent measure of scheduling quality.

    ``latency`` and ``bandwidth`` extend the cost model to remote
    workers: each task pays a flat ``latency`` (dispatch round-trip) and,
    when ``bandwidth`` is set, ``result.nbytes / bandwidth`` for the
    result transfer — so remote-scheduling policies (block sizing vs
    round-trip overhead) are benchmarkable deterministically before any
    socket opens.  The defaults (``0.0`` / ``None``) model the local
    pool and leave existing behaviour bit-for-bit unchanged.
    """

    backend = "virtual"

    def __init__(
        self,
        workers: int,
        cost_fn,
        *,
        latency: float = 0.0,
        bandwidth: Optional[float] = None,
    ) -> None:
        self.workers = max(1, int(workers))
        self._cost_fn = cost_fn
        self._latency = float(latency)
        if self._latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency!r}")
        self._bandwidth = None if bandwidth is None else float(bandwidth)
        if self._bandwidth is not None and self._bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {bandwidth!r}")
        self._clock = 0.0
        self._free = [0.0] * self.workers
        self._heap: list = []
        self._tickets = itertools.count()
        self._seq = itertools.count()  # FIFO tie-break for equal finishes

    def submit(
        self,
        fn: TaskFn,
        payload: object,
        result_shape: Optional[Tuple[int, ...]] = None,
    ) -> int:
        ticket = next(self._tickets)
        result = np.asarray(fn(payload), dtype=np.float64)
        cost = float(self._cost_fn(fn, payload, result))
        if cost < 0:
            raise ValueError(f"cost_fn returned a negative cost: {cost}")
        cost += self._latency
        if self._bandwidth is not None:
            cost += result.nbytes / self._bandwidth
        worker = min(range(self.workers), key=self._free.__getitem__)
        start = max(self._clock, self._free[worker])
        finish = start + cost
        self._free[worker] = finish
        heapq.heappush(
            self._heap, (finish, next(self._seq), ticket, result, cost)
        )
        if BUS.enabled:
            BUS.counter("executor.submit", ticket=ticket, backend=self.backend)
            BUS.gauge(
                "executor.queue_depth", len(self._heap), backend=self.backend
            )
        return ticket

    def next_completed(self) -> Tuple[int, np.ndarray]:
        if not self._heap:
            raise RuntimeError("next_completed() with no pending tasks")
        finish, _, ticket, result, cost = heapq.heappop(self._heap)
        self._clock = max(self._clock, finish)
        if BUS.enabled:
            # exec_s is in the virtual clock's modelled units.
            BUS.counter(
                "executor.complete", ticket=ticket, backend=self.backend,
                exec_s=cost,
            )
        return ticket, result

    def discard(self, tickets: Iterable[int]) -> None:
        dropped = set(tickets)
        self._heap = [
            entry for entry in self._heap if entry[2] not in dropped
        ]
        heapq.heapify(self._heap)

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def makespan(self) -> float:
        """Virtual time at which the last scheduled task finishes."""
        return max(self._free)


class _Record:
    __slots__ = ("ticket", "fn", "payload", "shm", "done", "failed")

    def __init__(self, ticket, fn, payload, shm) -> None:
        self.ticket = ticket
        self.fn = fn
        self.payload = payload
        self.shm = shm
        self.done = False
        #: True when the queued outcome is an exception — the segment is
        #: then dead weight (no collect path reads it) and the restart
        #: orphan sweep may unlink it early.
        self.failed = False


class ProcessExecutor(SweepExecutor):
    """Persistent worker pool with crash recovery and shm transport.

    The pool is created lazily on first :meth:`submit` and lives until
    :meth:`close` — one executor serves every sweep of an experiment (or
    of a whole CLI invocation).  A dead worker breaks a
    ``ProcessPoolExecutor`` wholesale; this class absorbs that by
    rebuilding the pool and resubmitting every uncollected task, at most
    ``max_restarts`` times.  Because tasks are pure functions of their
    payloads, a resubmitted task returns byte-identical results — crash
    recovery is invisible in the output, which the fault-injection tests
    assert.
    """

    backend = "process"

    def __init__(
        self,
        workers: int,
        *,
        max_restarts: int = DEFAULT_MAX_RESTARTS,
        use_shm: Optional[bool] = None,
        shm_min_bytes: int = DEFAULT_SHM_MIN_BYTES,
        mp_context=None,
    ) -> None:
        self.workers = max(1, int(workers))
        self._max_restarts = int(max_restarts)
        self._use_shm = _shm_default() if use_shm is None else bool(use_shm)
        self._shm_min_bytes = int(shm_min_bytes)
        self._mp_context = mp_context
        self._lock = threading.RLock()
        self._ready: "queue.SimpleQueue" = queue.SimpleQueue()
        self._records: Dict[int, _Record] = {}
        self._tickets = itertools.count()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._generation = 0
        self._restarts = 0
        self._closed = False

    # -- pool lifecycle ------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._mp_context
            )
        return self._pool

    @property
    def restarts(self) -> int:
        """Pool rebuilds performed so far (crash-recovery telemetry)."""
        return self._restarts

    # -- shared-memory transport ---------------------------------------
    def _allocate_shm(self, result_shape):
        if not self._use_shm or result_shape is None:
            return None
        nbytes = 8 * int(np.prod(result_shape, dtype=np.int64))
        if nbytes < self._shm_min_bytes:
            return None
        try:
            from multiprocessing import shared_memory

            return shared_memory.SharedMemory(create=True, size=nbytes)
        except (ImportError, OSError, ValueError):
            return None

    @staticmethod
    def _release_shm(record: _Record) -> None:
        if record.shm is None:
            return
        try:
            record.shm.close()
            record.shm.unlink()
        except (OSError, FileNotFoundError):
            pass
        record.shm = None

    # -- submission / completion ---------------------------------------
    def submit(
        self,
        fn: TaskFn,
        payload: object,
        result_shape: Optional[Tuple[int, ...]] = None,
    ) -> int:
        with self._lock:
            if self._closed:
                raise RuntimeError("executor is closed")
            ticket = next(self._tickets)
            record = _Record(
                ticket, fn, payload, self._allocate_shm(result_shape)
            )
            self._records[ticket] = record
            self._launch(record)
            depth = len(self._records)
        if BUS.enabled:
            BUS.counter("executor.submit", ticket=ticket, backend=self.backend)
            BUS.gauge("executor.queue_depth", depth, backend=self.backend)
        return ticket

    def _launch(self, record: _Record) -> None:
        """Submit one record to the current pool (lock held)."""
        generation = self._generation
        shm_name = record.shm.name if record.shm is not None else None
        try:
            future = self._ensure_pool().submit(
                _invoke_task, record.fn, record.payload, shm_name
            )
        except Exception:
            # Covers a broken pool, but also pool *creation* failing
            # (fork EAGAIN under memory pressure).  Escalate through the
            # rebuild path: each attempt burns a restart, so a machine
            # that cannot fork surfaces a RuntimeError to the caller
            # instead of hanging a callback thread.
            self._rebuild(generation)
            return
        future.add_done_callback(
            lambda f, r=record, g=generation: self._on_done(r, g, f)
        )

    def _on_done(self, record: _Record, generation: int, future) -> None:
        try:
            error = future.exception()
        except CancelledError:
            return  # superseded by a rebuild's resubmission
        with self._lock:
            if record.done or self._closed:
                return
            if isinstance(error, (BrokenProcessPool, BrokenExecutor)):
                # The worker died under this task; rebuild once per
                # generation and resubmit everything uncollected.
                self._rebuild(generation)
                return
            record.done = True
            outcome = error if error is not None else future.result()
            record.failed = isinstance(outcome, BaseException)
        self._ready.put((record.ticket, outcome))

    def _rebuild(self, generation: int) -> None:
        with self._lock:
            if self._closed or generation != self._generation:
                return  # another failure already handled this generation
            self._generation += 1
            self._restarts += 1
            pool, self._pool = self._pool, None
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            if self._restarts > self._max_restarts:
                failure = RuntimeError(
                    f"sweep worker pool crashed {self._restarts} times; "
                    f"giving up (max_restarts={self._max_restarts})"
                )
                for record in self._records.values():
                    if not record.done:
                        record.done = True
                        record.failed = True
                        # The outcome is an exception: no collect path
                        # will ever read this record's segment, and a
                        # caller that stops collecting after the first
                        # failure would leak it until close().  Unlink
                        # now, while the record is still ours.
                        self._release_shm(record)
                        self._ready.put((record.ticket, failure))
                return
            resubmitted = 0
            for record in self._records.values():
                if record.done:
                    # Orphan sweep: a *failed* record still holding a
                    # segment (exception queued, maybe never collected)
                    # has no remaining path that needs it — reclaim it
                    # during the restart instead of at close().  A
                    # successful shm result keeps its segment: the
                    # collector still has to read it.
                    if record.failed:
                        self._release_shm(record)
                else:
                    if BUS.enabled:
                        BUS.counter(
                            "executor.resubmit",
                            ticket=record.ticket, cause="pool_crash",
                        )
                    self._launch(record)
                    resubmitted += 1
            if BUS.enabled:
                BUS.counter(
                    "executor.restart",
                    generation=self._generation, resubmitted=resubmitted,
                )

    def next_completed(self) -> Tuple[int, np.ndarray]:
        while True:
            with self._lock:
                if not self._records:
                    raise RuntimeError(
                        "next_completed() with no pending tasks"
                    )
            ticket, outcome = self._ready.get()
            with self._lock:
                record = self._records.pop(ticket, None)
            if record is None:
                continue  # outcome of a discarded task; drop it
            try:
                if isinstance(outcome, BaseException):
                    raise outcome
                kind, value, exec_s = outcome
                if BUS.enabled:
                    BUS.counter(
                        "executor.complete", ticket=ticket,
                        backend=self.backend, exec_s=exec_s,
                    )
                if kind == "shm":
                    view = np.ndarray(
                        tuple(value), dtype=np.float64, buffer=record.shm.buf
                    )
                    return ticket, np.array(view)
                return ticket, value
            finally:
                self._release_shm(record)

    def discard(self, tickets: Iterable[int]) -> None:
        with self._lock:
            records = [
                self._records.pop(t)
                for t in set(tickets)
                if t in self._records
            ]
            for record in records:
                record.done = True  # late callbacks must not re-deliver
        for record in records:
            self._release_shm(record)

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._records)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
            records = list(self._records.values())
            self._records.clear()
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        for record in records:
            self._release_shm(record)


def _degrade(tier: str, fallback: str, reason: str) -> None:
    """Announce one degradation step: a single warning plus one event."""
    warnings.warn(
        f"backend tier {tier!r} unavailable ({reason}); "
        f"degrading to {fallback!r}",
        RuntimeWarning,
        stacklevel=4,
    )
    if BUS.enabled:
        BUS.counter("fault.degrade", tier=tier, fallback=fallback, reason=reason)


#: Constructor options consumed by the remote tier; the degradation
#: chain forwards these to RemoteExecutor and the rest to the local
#: tiers, so one ``make_executor(backend="auto", ...)`` call can carry
#: knobs for whichever tier ends up serving it.
_REMOTE_OPTIONS = frozenset({
    "slots", "connect_timeout", "heartbeat_interval", "heartbeat_misses",
    "task_timeout", "max_attempts",
})


def make_executor(
    workers: WorkersLike = 0, backend: str = "auto", **options: object
) -> SweepExecutor:
    """Build an executor from the ``--workers`` / ``--backend`` knobs.

    ``backend="auto"`` resolves down a documented **degradation chain**
    — remote → process → serial (DESIGN.md §13).  The remote tier is
    considered only when hosts are configured (the ``hosts`` option or
    ``REPRO_REMOTE_HOSTS``); it is probed eagerly, and unreachable
    workers degrade to the process tier with a single
    ``RuntimeWarning`` and a ``fault.degrade`` event instead of failing
    the run.  The process tier serves resolved worker counts above one
    and degrades to serial the same way if the pool cannot be built.
    Results are backend-independent by the determinism contract, so a
    degraded run returns bitwise-identical data, just slower.

    Explicit ``"serial"`` / ``"process"`` / ``"remote"`` force the
    choice and *fail* rather than degrade (``"process"`` with one
    worker still exercises the full IPC path; ``"remote"`` without
    reachable hosts raises).  ``workers`` accepts an integer or
    ``"auto"`` (see :func:`resolve_workers`).  Remaining ``options``
    are forwarded to the chosen executor class.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; known: {', '.join(BACKENDS)}"
        )
    count = resolve_workers(workers)
    if backend in ("remote", "auto"):
        from .remote import HOSTS_ENV, RemoteExecutor

        hosts = options.pop("hosts", None) or os.environ.get(HOSTS_ENV)
        if backend == "remote":
            if not hosts:
                raise ValueError(
                    "remote backend needs hosts: pass hosts=... "
                    f"(CLI: --hosts) or set {HOSTS_ENV}"
                )
            return RemoteExecutor(hosts, **options)  # type: ignore[arg-type]
        if hosts:
            remote_options = {
                k: v for k, v in options.items() if k in _REMOTE_OPTIONS
            }
            options = {
                k: v for k, v in options.items() if k not in _REMOTE_OPTIONS
            }
            fallback = "process" if count > 1 else "serial"
            executor = RemoteExecutor(hosts, **remote_options)  # type: ignore[arg-type]
            try:
                # Probe eagerly: the lazy connect would surface an
                # unreachable fleet as a mid-sweep submit failure,
                # past the point where degrading is cheap.
                executor._ensure_started()
            except RuntimeError as error:
                executor.close()
                _degrade("remote", fallback, str(error))
            else:
                return executor
    elif options.pop("hosts", None):
        raise ValueError("hosts= only applies to backend='remote'")
    if backend == "serial" or (backend == "auto" and count <= 1):
        return SerialExecutor()
    try:
        if FAULTS.enabled and FAULTS.check("executor.process") is not None:
            raise RuntimeError("injected process tier failure")
        return ProcessExecutor(count, **options)
    except Exception as error:
        if backend == "process":
            raise
        _degrade("process", "serial", str(error))
        return SerialExecutor()


@contextmanager
def ensure_executor(
    executor: Optional[SweepExecutor],
    workers: WorkersLike = 0,
    backend: str = "auto",
) -> Iterator[SweepExecutor]:
    """Yield ``executor`` as-is, or an ephemeral one closed on exit.

    The sharing seam: experiments call this with their ``executor``
    parameter, so a caller-provided (persistent) executor is reused
    across every sweep in scope while bare ``workers=N`` calls still get
    a pool — scoped to the ``with`` block — without managing one.
    """
    if executor is not None:
        yield executor
        return
    ephemeral = make_executor(workers=workers, backend=backend)
    try:
        yield ephemeral
    finally:
        ephemeral.close()
