"""Distributed sweep shards: the ``remote`` executor backend.

The paper's central object is ``k`` searchers making progress with *no
communication*; this repo's analogue is the determinism contract —
independent workers compute bitwise-identical shards with no
coordination beyond seeds.  That contract is what makes a distributed
backend almost boring to add: because every task is a pure function of
its payload (DESIGN.md §8), a remote worker needs no shared state, no
ordering protocol, and no consensus — just the task bytes out and the
result bytes back.  A lost worker is handled by resubmitting its tasks
anywhere else, and the retry is bitwise-invisible in the results.

Two halves live here, both speaking one tiny TCP protocol:

* :class:`RemoteExecutor` — the driver side, a
  :class:`repro.sweep.executor.SweepExecutor` backend
  (``submit``/``next_completed``/``pending``/``discard``/``close``)
  that fans tasks out to ``repro-ants worker`` processes on other
  hosts.  An asyncio event loop on a background thread owns every
  socket; the executor surface stays synchronous and identical to the
  serial/process/virtual backends, so ``run_sweep`` cannot tell the
  difference — the parity property tests assert
  serial == process == remote, bitwise.
* :func:`serve_worker` — the worker side (the ``repro-ants worker``
  subcommand): an asyncio server that executes tasks from a driver and
  streams results back.  :class:`LoopbackWorker` runs the same server
  on a background thread of the current process — real sockets, real
  handshake, no subprocess management — for tests and single-machine
  smoke runs.

Wire protocol (version :data:`PROTOCOL_VERSION`)
------------------------------------------------

Every message is a *frame*: an 8-byte big-endian prefix (two uint32:
header length, payload length), a JSON header, and an optional raw
payload.  Arrays ride the payload exactly as the PR-5 shared-memory
transport ships them — a tiny descriptor (shape, dtype) in the header
and the contiguous float64 buffer as raw bytes; pickle never carries
array data.  Task payloads (the spec-plus-seeds tuples the runner
builds) are pickled, which is fine between mutually trusted hosts
running the same code — the handshake enforces exactly that.

===========  =========  ==================================================
type         direction  contents
===========  =========  ==================================================
``hello``    d -> w     ``versions``: protocol + determinism versions
``welcome``  w -> d     ``versions``, ``slots``, ``pid``
``reject``   w -> d     ``reason`` (version mismatch); connection closes
``task``     d -> w     ``id``, ``fn`` (dotted name), payload = pickle
``result``   w -> d     ``id``, ``shape``/``dtype``, payload = array bytes
``error``    w -> d     ``id``, ``error`` (the task raised; not a crash)
``ping``     d -> w     heartbeat probe
``pong``     w -> d     heartbeat reply
``bye``      d -> w     driver is done; worker keeps serving others
===========  =========  ==================================================

**Handshake.**  Results must be bitwise-identical to a local run, so a
worker running different *code identity* is useless — worse, silently
wrong.  Both sides therefore exchange and verify
:func:`version_record`: the protocol version, ``SPEC_VERSION`` and
``BLOCK_SCHEDULE_VERSION`` (the spec-manifest versions pinned by
``repro.checks``), and the package version.  Any mismatch rejects the
connection with the offending key in the reason.

**Liveness and resubmission.**  The driver pings every worker on a
fixed interval; a worker that stays silent for
``heartbeat_interval * heartbeat_misses`` — or holds a task past
``task_timeout`` — is declared lost: its connection is dropped and its
in-flight tasks are requeued to the surviving workers (each task at
most ``max_attempts`` times).  Because tasks are pure and results fold
strictly in schedule order on the driver, a resubmitted task returns
byte-identical data and a lost worker is invisible in the output — the
same argument that makes :class:`~repro.sweep.executor.ProcessExecutor`
crash rebuilds invisible, now at network scale.  Workers execute tasks
on a thread pool (``slots`` wide) so the event loop keeps answering
pings mid-task.

**Determinism.**  Host lists, worker counts, and slot counts never
reach seed derivation or spec fields (rule R004 polices the names);
which worker ran a task is unobservable in the result.  Task selection
is the runner's (backend-independent) job; this module only moves
bytes.
"""

from __future__ import annotations

import asyncio
import importlib
import itertools
import json
import math
import os
import pickle
import queue
import struct
import threading
import time
from collections import deque
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..faults import FAULTS, FaultError, backoff_delays
from ..obs import BUS
from .executor import SweepExecutor, TaskFn, _maybe_crash
from .spec import BLOCK_SCHEDULE_VERSION, SPEC_VERSION

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_PORT",
    "HOSTS_ENV",
    "RemoteExecutor",
    "RemoteTaskError",
    "LoopbackWorker",
    "serve_worker",
    "parse_hosts",
    "version_record",
    "version_mismatch",
    "encode_frame",
    "read_frame",
    "encode_array",
    "decode_array",
]

#: Wire protocol version; bumped on any frame/semantics change.
PROTOCOL_VERSION = 1

#: Default worker port (the CLI's ``--port`` default).
DEFAULT_PORT = 7077

#: Environment fallback for ``--hosts`` / ``make_executor(hosts=...)``.
HOSTS_ENV = "REPRO_REMOTE_HOSTS"

#: Connect attempts per host before giving up (jittered backoff between
#: tries; see :func:`repro.faults.backoff_delays`).  A refused or
#: flaky dial is retried; a *rejected handshake* (version mismatch) is
#: deterministic and never retried.
CONNECT_ATTEMPTS = 3

#: Frame prefix: header length, payload length (both uint32, big-endian).
_PREFIX = struct.Struct(">II")

#: Upper bound on either frame part — a corrupted prefix must not make
#: the reader try to allocate terabytes.
MAX_FRAME_BYTES = 1 << 31

#: Only module-level functions under this package may run as tasks: the
#: worker executes whatever the driver names, and the determinism
#: handshake only vouches for code shipped with the package.
_TASK_PACKAGE = "repro"

HostLike = Union[str, Tuple[str, int], Sequence[object]]


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------

def encode_frame(header: Dict[str, object], payload: bytes = b"") -> bytes:
    """One wire frame: prefix + JSON header + raw payload."""
    raw = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return _PREFIX.pack(len(raw), len(payload)) + raw + payload


async def read_frame(
    reader: asyncio.StreamReader,
) -> Tuple[Dict[str, object], bytes]:
    """Read one frame; raises ``IncompleteReadError`` on a closed peer."""
    header_len, payload_len = _PREFIX.unpack(await reader.readexactly(8))
    if header_len > MAX_FRAME_BYTES or payload_len > MAX_FRAME_BYTES:
        raise ConnectionError(
            f"oversized frame ({header_len}+{payload_len} bytes): "
            f"corrupt stream or not a repro-ants peer"
        )
    header = json.loads((await reader.readexactly(header_len)).decode("utf-8"))
    if not isinstance(header, dict):
        raise ConnectionError("malformed frame header (not a JSON object)")
    payload = await reader.readexactly(payload_len) if payload_len else b""
    return header, payload


def encode_array(array: np.ndarray) -> Tuple[Dict[str, object], bytes]:
    """The shm-descriptor encoding, serialised: (shape, dtype) + bytes."""
    data = np.ascontiguousarray(np.asarray(array, dtype=np.float64))
    return {"shape": list(data.shape), "dtype": "float64"}, data.tobytes()


def decode_array(header: Dict[str, object], payload: bytes) -> np.ndarray:
    """Rebuild an array from its descriptor header + raw payload."""
    if header.get("dtype") != "float64":
        raise ValueError(f"unsupported wire dtype {header.get('dtype')!r}")
    shape = tuple(int(n) for n in header.get("shape", ()))
    if 8 * math.prod(shape) != len(payload):
        raise ValueError(
            f"array payload size {len(payload)} does not match shape {shape}"
        )
    return np.frombuffer(payload, dtype=np.float64).reshape(shape).copy()


def version_record() -> Dict[str, object]:
    """The code-identity record both handshake sides must agree on."""
    from .. import __version__

    return {
        "protocol": PROTOCOL_VERSION,
        "spec": SPEC_VERSION,
        "block_schedule": BLOCK_SCHEDULE_VERSION,
        "repro": __version__,
    }


def version_mismatch(
    mine: Dict[str, object], theirs: Dict[str, object]
) -> Optional[str]:
    """First disagreeing version key, or ``None`` when compatible."""
    for key in ("protocol", "spec", "block_schedule", "repro"):
        if mine.get(key) != theirs.get(key):
            return (
                f"{key} version mismatch: ours {mine.get(key)!r}, "
                f"peer {theirs.get(key)!r}"
            )
    return None


def parse_hosts(hosts: Union[str, Iterable[HostLike]]) -> List[Tuple[str, int]]:
    """Normalise a host list: ``"a:7077,b"`` or ``[("a", 7077), ...]``.

    A bare hostname gets :data:`DEFAULT_PORT`.  The same endpoint may
    appear more than once — each occurrence is one connection, which is
    how a many-core host offers several shards.
    """
    if isinstance(hosts, str):
        items: List[HostLike] = [p for p in hosts.split(",") if p.strip()]
    else:
        items = list(hosts)
    parsed: List[Tuple[str, int]] = []
    for item in items:
        if isinstance(item, (tuple, list)):
            if len(item) != 2:
                raise ValueError(f"host entry {item!r} is not (host, port)")
            host, port = str(item[0]), item[1]
        else:
            text = str(item).strip()
            host, sep, tail = text.rpartition(":")
            if sep:
                port = tail
            else:
                host, port = text, DEFAULT_PORT
        if not host:
            raise ValueError(f"host entry {item!r} has an empty hostname")
        try:
            port = int(port)
        except (TypeError, ValueError):
            raise ValueError(f"host entry {item!r} has a non-integer port")
        if not 0 < port < 65536:
            raise ValueError(f"host entry {item!r} has an out-of-range port")
        parsed.append((host, port))
    return parsed


def _task_name(fn: TaskFn) -> str:
    """Dotted wire name of a task function (module-level functions only)."""
    name = getattr(fn, "__qualname__", "")
    module = getattr(fn, "__module__", "")
    if not module or not name or "." in name:
        raise ValueError(
            f"remote tasks must be module-level functions, got {fn!r}"
        )
    return f"{module}.{name}"


def _resolve_task_fn(name: str) -> TaskFn:
    """Worker-side inverse of :func:`_task_name`, package-restricted."""
    module_name, sep, attr = name.rpartition(".")
    if not sep or not (
        module_name == _TASK_PACKAGE
        or module_name.startswith(_TASK_PACKAGE + ".")
    ):
        raise ValueError(
            f"refusing task fn {name!r}: only module-level functions under "
            f"the {_TASK_PACKAGE!r} package may run remotely"
        )
    fn = getattr(importlib.import_module(module_name), attr, None)
    if not callable(fn):
        raise ValueError(f"task fn {name!r} does not resolve to a callable")
    return fn


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

def _run_payload(fn: TaskFn, payload: object) -> Tuple[np.ndarray, float]:
    """Execute one task on a worker thread (shares the crash-test hook).

    Returns the result plus its measured execution time: the worker
    never emits events itself (the bus is process-local), so timing
    rides the result header back to the driver, which emits it.
    """
    _maybe_crash()
    started = time.perf_counter()
    result = np.ascontiguousarray(np.asarray(fn(payload), dtype=np.float64))
    return result, time.perf_counter() - started


async def _handle_connection(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    slots: int,
) -> None:
    """Serve one driver connection: handshake, then tasks until EOF/bye."""
    from concurrent.futures import ThreadPoolExecutor

    wlock = asyncio.Lock()

    async def send(header: Dict[str, object], payload: bytes = b"") -> None:
        async with wlock:
            writer.write(encode_frame(header, payload))
            await writer.drain()

    pool: Optional[ThreadPoolExecutor] = None
    running: set = set()
    try:
        try:
            header, _ = await asyncio.wait_for(read_frame(reader), 30.0)
        except (asyncio.IncompleteReadError, ConnectionError, OSError,
                asyncio.TimeoutError, ValueError):
            return
        if header.get("type") != "hello":
            return
        theirs = header.get("versions")
        mismatch = version_mismatch(
            version_record(), theirs if isinstance(theirs, dict) else {}
        )
        if mismatch is not None:
            await send({"type": "reject", "reason": mismatch})
            return
        await send({
            "type": "welcome",
            "versions": version_record(),
            "slots": int(slots),
            "pid": os.getpid(),
        })

        loop = asyncio.get_running_loop()
        pool = ThreadPoolExecutor(
            max_workers=max(1, int(slots)),
            thread_name_prefix="repro-worker-task",
        )

        async def run_task(ticket: object, fn_name: str, blob: bytes) -> None:
            try:
                fn = _resolve_task_fn(str(fn_name))
                payload = pickle.loads(blob)
                result, exec_s = await loop.run_in_executor(
                    pool, _run_payload, fn, payload
                )
                head, body = encode_array(result)
                head.update({"type": "result", "id": ticket, "exec_s": exec_s})
                await send(head, body)
            except asyncio.CancelledError:
                raise
            except ConnectionError:
                pass  # driver went away; nothing left to tell it
            except Exception as error:
                try:
                    await send({
                        "type": "error",
                        "id": ticket,
                        "error": f"{type(error).__name__}: {error}",
                    })
                except ConnectionError:
                    pass

        while True:
            try:
                header, payload = await read_frame(reader)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                break
            kind = header.get("type")
            if kind == "task":
                task = asyncio.ensure_future(
                    run_task(header.get("id"), str(header.get("fn")), payload)
                )
                running.add(task)
                task.add_done_callback(running.discard)
            elif kind == "ping":
                await send({"type": "pong"})
            elif kind == "bye":
                break
            # Unknown types are ignored: forward-compatible by default.
    finally:
        for task in running:
            task.cancel()
        if pool is not None:
            pool.shutdown(wait=False)
        try:
            writer.close()
        except Exception:
            pass


async def _serve(
    host: str,
    port: int,
    slots: int,
    ready: Optional[Callable[[str, int], None]],
    stop: Optional[asyncio.Event],
) -> None:
    server = await asyncio.start_server(
        lambda r, w: _handle_connection(r, w, slots), host, port
    )
    bound_host, bound_port = server.sockets[0].getsockname()[:2]
    if ready is not None:
        ready(bound_host, bound_port)
    async with server:
        if stop is None:
            await server.serve_forever()
        else:
            await stop.wait()


def serve_worker(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    *,
    slots: int = 1,
    ready: Optional[Callable[[str, int], None]] = None,
) -> None:
    """Run a sweep worker server until interrupted.

    ``port=0`` binds an ephemeral port; ``ready(host, port)`` is called
    with the bound address (the CLI prints it so drivers — and tests —
    can find an ephemeral worker).  ``slots`` is the number of tasks the
    worker executes concurrently per connection; the driver mirrors it
    as its per-worker queue depth.  The worker outlives drivers: a
    finished (or dead) driver's connection closes and the server keeps
    accepting new ones, the worker-side analogue of the persistent
    process pool.
    """
    try:
        asyncio.run(_serve(host, port, slots, ready, None))
    except KeyboardInterrupt:
        pass


class LoopbackWorker:
    """A worker served from a background thread of this process.

    Exercises the full wire path — sockets, handshake, framing, the
    thread-pool task runner — without subprocess management, which is
    what the parity property tests (and quick local demos) want.  The
    bound ``(host, port)`` is available as :attr:`address` once the
    constructor returns.
    """

    def __init__(self, host: str = "127.0.0.1", slots: int = 1) -> None:
        self.address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, args=(host, slots),
            name="repro-loopback-worker", daemon=True,
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("loopback worker failed to start")

    def _run(self, host: str, slots: int) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()

            def ready(bound_host: str, bound_port: int) -> None:
                self.address = (bound_host, bound_port)
                self._started.set()

            await _serve(host, 0, slots, ready, self._stop)

        try:
            asyncio.run(main())
        finally:
            self._started.set()  # unblock a waiting constructor on failure

    def stop(self) -> None:
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=10.0)

    def __enter__(self) -> "LoopbackWorker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------

class RemoteTaskError(RuntimeError):
    """A task *raised* on a worker (as opposed to the worker dying).

    Mirrors the process backend, where a task exception propagates to
    the collector while a worker crash triggers a resubmit: raising code
    is deterministic, so retrying it elsewhere would fail identically.
    """


class _RemoteTask:
    __slots__ = ("ticket", "fn_name", "payload", "attempts", "delivered")

    def __init__(self, ticket: int, fn_name: str, payload: bytes) -> None:
        self.ticket = ticket
        self.fn_name = fn_name
        self.payload = payload
        self.attempts = 0
        self.delivered = False


class _Conn:
    __slots__ = (
        "name", "reader", "writer", "wlock", "slots", "inflight",
        "alive", "last_seen", "last_ping", "reader_task", "hb_task",
    )

    def __init__(self, name, reader, writer, slots) -> None:
        self.name = name
        self.reader = reader
        self.writer = writer
        self.wlock = asyncio.Lock()
        self.slots = slots
        self.inflight: Dict[int, float] = {}  # ticket -> deadline
        self.alive = True
        self.last_seen = time.monotonic()
        self.last_ping: Optional[float] = None  # heartbeat RTT probe
        self.reader_task: Optional[asyncio.Task] = None
        self.hb_task: Optional[asyncio.Task] = None


class RemoteExecutor(SweepExecutor):
    """Distributed sweep execution across ``repro-ants worker`` hosts.

    Connections open lazily on the first :meth:`submit` — a sweep
    resolved entirely from cache never touches the network, mirroring
    the lazy process pool.  At least one host must complete the
    version handshake or the first submit raises; workers lost later
    have their tasks requeued to the survivors, and only when *all*
    workers are gone do outstanding tasks fail (delivered as exceptions
    through :meth:`next_completed`, exactly like the process backend's
    give-up path, so `run_sweep`'s discard-on-failure cleanup applies
    unchanged).
    """

    backend = "remote"

    def __init__(
        self,
        hosts: Union[str, Iterable[HostLike]],
        *,
        slots: int = 1,
        connect_timeout: float = 10.0,
        heartbeat_interval: float = 2.0,
        heartbeat_misses: int = 3,
        task_timeout: Optional[float] = None,
        max_attempts: int = 3,
    ) -> None:
        self._hosts = parse_hosts(hosts)
        if not self._hosts:
            raise ValueError("remote backend needs at least one host")
        self._slots = max(1, int(slots))
        #: Scheduling width for the runner (never affects results).
        self.workers = len(self._hosts) * self._slots
        self._connect_timeout = float(connect_timeout)
        self._hb_interval = float(heartbeat_interval)
        self._hb_misses = max(1, int(heartbeat_misses))
        self._task_timeout = (
            None if task_timeout is None else float(task_timeout)
        )
        self._max_attempts = max(1, int(max_attempts))
        self._lock = threading.Lock()
        self._records: Dict[int, _RemoteTask] = {}
        self._ready: "queue.SimpleQueue" = queue.SimpleQueue()
        self._tickets = itertools.count()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._conns: List[_Conn] = []
        self._backlog: Deque[int] = deque()
        self._closed = False
        self._broken: Optional[str] = None
        # concurrent.futures.Future for the in-flight _connect_all, kept
        # so close() can cancel a dial blocked on an unresponsive host.
        self._connect_future: Optional[object] = None

    # -- lifecycle -----------------------------------------------------
    def _ensure_started(self) -> None:
        with self._lock:
            if self._closed:
                raise RuntimeError("executor is closed")
            if self._broken is not None:
                raise RuntimeError(self._broken)
            if self._thread is not None:
                return
            loop = asyncio.new_event_loop()
            thread = threading.Thread(
                target=loop.run_forever,
                name="repro-remote-driver",
                daemon=True,
            )
            self._loop, self._thread = loop, thread
            thread.start()
        future = asyncio.run_coroutine_threadsafe(self._connect_all(), loop)
        with self._lock:
            self._connect_future = future
        try:
            future.result(
                timeout=self._connect_timeout * CONNECT_ATTEMPTS + 10.0
            )
        except BaseException as error:
            message = (
                "remote backend failed to start: "
                f"{error or type(error).__name__}"
            )
            with self._lock:
                self._broken = message
            raise RuntimeError(message) from error
        finally:
            with self._lock:
                self._connect_future = None

    async def _connect_all(self) -> None:
        attempts = await asyncio.gather(
            *[self._connect(host, port) for host, port in self._hosts],
            return_exceptions=True,
        )
        if not self._conns:
            reasons = "; ".join(str(a) for a in attempts if a is not None)
            raise RuntimeError(f"no remote workers reachable: {reasons}")

    async def _connect(self, host: str, port: int) -> None:
        """Dial one worker, retrying transient failures with backoff.

        Refused/timed-out dials and connections lost mid-handshake are
        transient: they retry up to :data:`CONNECT_ATTEMPTS` times on
        the unified jittered schedule (each retry obs-counted).
        Deterministic rejections — version mismatches, a peer that is
        not a worker — raise immediately as ``RuntimeError``.
        """
        name = f"{host}:{port}"
        delays = backoff_delays(attempts=CONNECT_ATTEMPTS)
        attempt = 1
        while True:
            try:
                await self._connect_once(name, host, port)
                return
            except RuntimeError:
                raise  # deterministic rejection: retrying cannot help
            except (OSError, asyncio.TimeoutError) as error:
                delay = next(delays, None)
                if delay is None:
                    raise RuntimeError(f"{name}: {error or 'connect timeout'}")
                if BUS.enabled:
                    BUS.counter(
                        "retry.attempt", site="remote.connect",
                        attempt=attempt,
                    )
                attempt += 1
                await asyncio.sleep(delay)

    async def _connect_once(self, name: str, host: str, port: int) -> None:
        if FAULTS.enabled and FAULTS.check("remote.connect") is not None:
            raise FaultError("injected connect refusal")
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), self._connect_timeout
        )
        try:
            writer.write(encode_frame(
                {"type": "hello", "versions": version_record()}
            ))
            await writer.drain()
            header, _ = await asyncio.wait_for(
                read_frame(reader), self._connect_timeout
            )
        except (asyncio.IncompleteReadError, ConnectionError, OSError,
                asyncio.TimeoutError) as error:
            writer.close()
            # A connection lost mid-handshake is as transient as a
            # refused dial: surface it as OSError so _connect retries.
            raise OSError(f"{name}: handshake failed ({error!r})")
        if header.get("type") == "reject":
            writer.close()
            raise RuntimeError(
                f"{name}: rejected handshake: {header.get('reason')}"
            )
        if header.get("type") != "welcome":
            writer.close()
            raise RuntimeError(
                f"{name}: unexpected handshake reply {header.get('type')!r}"
            )
        theirs = header.get("versions")
        mismatch = version_mismatch(
            version_record(), theirs if isinstance(theirs, dict) else {}
        )
        if mismatch is not None:
            writer.close()
            raise RuntimeError(f"{name}: {mismatch}")
        slots = min(self._slots, max(1, int(header.get("slots", 1))))
        conn = _Conn(name, reader, writer, slots)
        self._conns.append(conn)
        conn.reader_task = asyncio.ensure_future(self._reader_loop(conn))
        conn.hb_task = asyncio.ensure_future(self._heartbeat_loop(conn))

    # -- loop-thread machinery -----------------------------------------
    def _enqueue(self, ticket: int) -> None:
        self._backlog.append(ticket)
        self._pump()

    def _pump(self) -> None:
        """Assign backlog tickets to the least-loaded live workers."""
        while self._backlog:
            live = [
                c for c in self._conns
                if c.alive and len(c.inflight) < c.slots
            ]
            if not live:
                return
            ticket = self._backlog.popleft()
            with self._lock:
                record = self._records.get(ticket)
            if record is None or record.delivered:
                continue  # discarded (or already failed) while queued
            conn = min(live, key=lambda c: len(c.inflight))
            deadline = (
                math.inf if self._task_timeout is None
                else time.monotonic() + self._task_timeout
            )
            conn.inflight[ticket] = deadline
            asyncio.ensure_future(self._send_task(conn, ticket, record))

    async def _send_task(
        self, conn: _Conn, ticket: int, record: _RemoteTask
    ) -> None:
        if FAULTS.enabled:
            rule = FAULTS.check("remote.slow")
            if rule is not None and rule.delay > 0.0:
                await asyncio.sleep(rule.delay)
            if FAULTS.check("remote.disconnect") is not None:
                # The link drops mid-dispatch: the worker never saw the
                # task, so the normal lost-worker path must requeue it.
                self._worker_failed(conn, "injected disconnect")
                return
        frame = encode_frame(
            {"type": "task", "id": ticket, "fn": record.fn_name},
            record.payload,
        )
        try:
            async with conn.wlock:
                conn.writer.write(frame)
                await conn.writer.drain()
        except (ConnectionError, OSError):
            self._worker_failed(conn, "send failed")
            return
        if BUS.enabled:
            BUS.counter("remote.dispatch", ticket=ticket, worker=conn.name)

    async def _reader_loop(self, conn: _Conn) -> None:
        try:
            while conn.alive:
                header, payload = await read_frame(conn.reader)
                conn.last_seen = time.monotonic()
                kind = header.get("type")
                if kind == "result":
                    ticket = int(header["id"])  # type: ignore[arg-type]
                    conn.inflight.pop(ticket, None)
                    try:
                        value = decode_array(header, payload)
                    except (ValueError, TypeError) as error:
                        self._finish(ticket, RemoteTaskError(
                            f"undecodable result from {conn.name}: {error}"
                        ))
                    else:
                        if BUS.enabled:
                            exec_s = header.get("exec_s")
                            BUS.counter(
                                "executor.complete", ticket=ticket,
                                backend=self.backend, worker=conn.name,
                                exec_s=(
                                    float(exec_s)
                                    if isinstance(exec_s, (int, float))
                                    else None
                                ),
                            )
                        self._finish(ticket, value)
                    self._pump()
                elif kind == "error":
                    ticket = int(header["id"])  # type: ignore[arg-type]
                    conn.inflight.pop(ticket, None)
                    self._finish(ticket, RemoteTaskError(
                        f"task failed on {conn.name}: "
                        f"{header.get('error', 'unknown error')}"
                    ))
                    self._pump()
                elif kind == "pong":
                    if BUS.enabled and conn.last_ping is not None:
                        BUS.gauge(
                            "remote.heartbeat",
                            time.monotonic() - conn.last_ping,
                            worker=conn.name,
                        )
                # Unknown types: last_seen is already updated.
        except asyncio.CancelledError:
            return
        except (asyncio.IncompleteReadError, ConnectionError, OSError) as err:
            self._worker_failed(
                conn, f"connection lost ({type(err).__name__})"
            )

    async def _heartbeat_loop(self, conn: _Conn) -> None:
        try:
            while conn.alive:
                await asyncio.sleep(self._hb_interval)
                if not conn.alive:
                    return
                if (
                    FAULTS.enabled
                    and FAULTS.check("remote.blackhole") is not None
                ):
                    # The worker has gone silent: exactly what a missed
                    # heartbeat budget detects, declared immediately.
                    self._worker_failed(
                        conn, "injected heartbeat blackhole"
                    )
                    return
                now = time.monotonic()
                if now - conn.last_seen > self._hb_interval * self._hb_misses:
                    self._worker_failed(conn, "heartbeat timeout")
                    return
                if any(now > deadline for deadline in conn.inflight.values()):
                    self._worker_failed(conn, "task timeout")
                    return
                try:
                    conn.last_ping = time.monotonic()
                    async with conn.wlock:
                        conn.writer.write(encode_frame({"type": "ping"}))
                        await conn.writer.drain()
                except (ConnectionError, OSError):
                    self._worker_failed(conn, "ping failed")
                    return
        except asyncio.CancelledError:
            return

    def _finish(self, ticket: int, outcome: object) -> None:
        """Deliver a ticket's outcome exactly once (first result wins)."""
        with self._lock:
            record = self._records.get(ticket)
            if record is None or record.delivered:
                return  # discarded, or a resubmit raced its original
            record.delivered = True
        self._ready.put((ticket, outcome))

    def _worker_failed(self, conn: _Conn, reason: str) -> None:
        """Declare a worker lost and requeue its in-flight tasks."""
        if not conn.alive:
            return
        conn.alive = False
        for task in (conn.reader_task, conn.hb_task):
            if task is not None and task is not asyncio.current_task():
                task.cancel()
        try:
            conn.writer.close()
        except Exception:
            pass
        inflight = list(conn.inflight)
        conn.inflight.clear()
        if BUS.enabled:
            BUS.counter(
                "remote.worker_lost", worker=conn.name, reason=reason,
                inflight=len(inflight),
            )
        for ticket in inflight:
            with self._lock:
                record = self._records.get(ticket)
            if record is None or record.delivered:
                continue
            record.attempts += 1
            if record.attempts >= self._max_attempts:
                self._finish(ticket, RuntimeError(
                    f"remote task resubmitted {record.attempts} times "
                    f"without completing (last worker {conn.name}: {reason})"
                ))
            else:
                if BUS.enabled:
                    BUS.counter(
                        "remote.resubmit", ticket=ticket, worker=conn.name,
                        cause=reason,
                    )
                self._backlog.append(ticket)
        if any(c.alive for c in self._conns):
            self._pump()
            return
        # No workers left: fail every outstanding ticket so collectors
        # wake up, and poison future submits with the reason.
        message = f"all remote workers lost (last: {conn.name}: {reason})"
        with self._lock:
            self._broken = message
            outstanding = [
                t for t, r in self._records.items() if not r.delivered
            ]
        self._backlog.clear()
        for ticket in outstanding:
            self._finish(ticket, RuntimeError(message))

    # -- executor surface ----------------------------------------------
    def submit(
        self,
        fn: TaskFn,
        payload: object,
        result_shape: Optional[Tuple[int, ...]] = None,
    ) -> int:
        name = _task_name(fn)
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        self._ensure_started()
        with self._lock:
            if self._closed:
                raise RuntimeError("executor is closed")
            ticket = next(self._tickets)
            self._records[ticket] = _RemoteTask(ticket, name, blob)
            depth = len(self._records)
        if BUS.enabled:
            BUS.counter("executor.submit", ticket=ticket, backend=self.backend)
            BUS.gauge("executor.queue_depth", depth, backend=self.backend)
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self._enqueue, ticket)
        return ticket

    def next_completed(self) -> Tuple[int, np.ndarray]:
        while True:
            with self._lock:
                if not self._records:
                    raise RuntimeError(
                        "next_completed() with no pending tasks"
                    )
            ticket, outcome = self._ready.get()
            with self._lock:
                record = self._records.pop(ticket, None)
            if record is None:
                continue  # outcome of a discarded task; drop it
            if isinstance(outcome, BaseException):
                raise outcome
            return ticket, outcome

    def discard(self, tickets: Iterable[int]) -> None:
        with self._lock:
            for ticket in set(tickets):
                self._records.pop(ticket, None)
        # Backlog/in-flight remnants resolve lazily: the pump skips
        # tickets without records, and arriving results are dropped.

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._records)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._records.clear()
            loop, thread = self._loop, self._thread
            connect = self._connect_future
            self._loop = self._thread = None
        if connect is not None:
            # A dial can sit inside wait_for against an unresponsive
            # host for the full connect budget.  Cancelling the
            # threadsafe future cancels the loop-side _connect_all
            # task, which unblocks any _ensure_started() caller — so
            # close() stays bounded even mid-handshake.
            connect.cancel()  # type: ignore[attr-defined]
        if loop is None:
            return
        try:
            asyncio.run_coroutine_threadsafe(
                self._shutdown(), loop
            ).result(timeout=5.0)
        except Exception:
            pass
        loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=5.0)
            if not thread.is_alive():
                loop.close()

    async def _shutdown(self) -> None:
        for conn in self._conns:
            conn.alive = False
            for task in (conn.reader_task, conn.hb_task):
                if task is not None:
                    task.cancel()
            try:
                conn.writer.write(encode_frame({"type": "bye"}))
                await asyncio.wait_for(conn.writer.drain(), 1.0)
            except Exception:
                pass
            try:
                conn.writer.close()
            except Exception:
                pass
