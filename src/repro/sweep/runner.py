"""Sweep execution: cached, batched, optionally multiprocess.

:func:`run_sweep` turns a :class:`repro.sweep.spec.SweepSpec` into a
:class:`SweepResult`:

1. the on-disk cache is consulted (keyed by the spec's content hash) —
   a hit returns immediately, which is what makes repeated experiment runs
   and quick/full mode switches cheap;
2. on a miss, each ``k``-group of the grid is resolved by a single batched
   engine call over all of the group's worlds (one per distance):
   :func:`repro.sim.events.simulate_find_times_batch` for excursion
   algorithms (sharing every phase's excursion draws across the group) or
   :func:`repro.sim.walkers.walker_find_times_batch` for walker baselines
   (one child seed per world);
3. groups are independent, so with ``workers > 1`` they are fanned out to a
   ``multiprocessing`` pool (each task ships the picklable spec plus its
   spawned child seed, so results are bitwise identical to a serial run);
4. the raw ``(cells, trials)`` find-time matrix is written back to the
   cache.

Seed policy: one child seed per group via
:func:`repro.sim.rng.spawn_seeds` on the spec's root seed; within a group
the first grandchild seeds the simulation and the rest seed the (possibly
random) treasure placements, one per distance.
"""

from __future__ import annotations

import math
import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..sim.events import find_time_statistics, simulate_find_times_batch
from ..sim.rng import spawn_seeds
from ..sim.walkers import Walker, walker_find_times_batch
from ..sim.world import place_treasure
from .cache import cache_path, load_result, save_result
from .spec import SweepCell, SweepSpec, build_algorithm

__all__ = ["CellResult", "SweepResult", "run_sweep"]


@dataclass(frozen=True)
class CellResult:
    """Measured outcome of one ``(D, k)`` cell: the raw per-trial times.

    Summary statistics are derived properties so that cached and freshly
    computed cells behave identically; mean/stderr (and their sentinels)
    come from :func:`repro.sim.events.find_time_statistics`, the same rule
    ``expected_find_time`` reports.
    """

    distance: int
    k: int
    times: np.ndarray

    @property
    def trials(self) -> int:
        return int(self.times.size)

    @property
    def mean(self) -> float:
        """Mean find time; ``inf`` when any trial failed to find."""
        return find_time_statistics(self.times)[0]

    @property
    def stderr(self) -> float:
        return find_time_statistics(self.times)[1]

    @property
    def success_rate(self) -> float:
        """Fraction of trials that found the treasure at all."""
        return float(np.isfinite(self.times).mean())

    @property
    def finite_mean(self) -> float:
        """Mean over finding trials only (``inf`` when none found)."""
        finite = self.times[np.isfinite(self.times)]
        return float(finite.mean()) if finite.size else math.inf


@dataclass
class SweepResult:
    """All cells of one executed (or cache-loaded) sweep."""

    spec: SweepSpec
    cells: List[CellResult]
    from_cache: bool = False
    _index: Dict[Tuple[int, int], CellResult] = field(
        init=False, repr=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        self._index = {(c.distance, c.k): c for c in self.cells}

    def cell(self, distance: int, k: int) -> CellResult:
        """Look up one cell; raises ``KeyError`` for off-grid queries."""
        try:
            return self._index[(int(distance), int(k))]
        except KeyError:
            raise KeyError(
                f"no cell (D={distance}, k={k}) in sweep over "
                f"D={self.spec.distances} x k={self.spec.ks}"
            ) from None

    def __iter__(self):
        return iter(self.cells)

    def __len__(self) -> int:
        return len(self.cells)


def _execute_group(task) -> np.ndarray:
    """Resolve one k-group; module-level so the pool can pickle it."""
    spec, k, distances, group_seed = task
    strategy = build_algorithm(spec.algorithm, k, spec.param_dict())
    child_seeds = spawn_seeds(group_seed, 1 + len(distances))
    sim_seed, placement_seeds = child_seeds[0], child_seeds[1:]
    worlds = [
        place_treasure(distance, spec.placement, seed=placement_seed)
        for distance, placement_seed in zip(distances, placement_seeds)
    ]
    if isinstance(strategy, Walker):
        return walker_find_times_batch(
            strategy, worlds, k, spec.trials, sim_seed,
            horizon=spec.horizon, scenario=spec.scenario,
        )
    return simulate_find_times_batch(
        strategy, worlds, k, spec.trials, sim_seed,
        horizon=spec.horizon, scenario=spec.scenario,
    )


def run_sweep(
    spec: SweepSpec,
    *,
    workers: int = 0,
    cache: bool = True,
    cache_dir: Optional[str] = None,
) -> SweepResult:
    """Execute a sweep spec (or load it from the cache).

    ``workers`` <= 1 runs the groups serially in-process; larger values fan
    them out to a ``multiprocessing`` pool (capped at the group count).
    Serial and pooled runs produce bitwise-identical results.  ``cache``
    toggles both lookup and write-back; ``cache_dir`` overrides the default
    cache location (see :func:`repro.sweep.cache.default_cache_dir`).

    Walker strategies (``random_walk``, ``biased_walk``, ``levy``) require
    the spec to carry a finite ``horizon``: memoryless walks on ``Z^2``
    have infinite expected hitting times, so an uncapped walker sweep
    need not terminate.
    """
    probe = build_algorithm(spec.algorithm, spec.ks[0], spec.param_dict())
    if isinstance(probe, Walker) and spec.horizon is None:
        raise ValueError(
            f"sweep algorithm {spec.algorithm!r} is a walker baseline and "
            f"needs a finite spec horizon (walks on Z^2 have infinite "
            f"expected hitting time)"
        )
    path = cache_path(spec, cache_dir) if cache else None
    if path is not None:
        loaded = load_result(spec, path)
        if loaded is not None:
            cached_cells, times = loaded
            cells = [
                CellResult(distance=c.distance, k=c.k, times=times[i])
                for i, c in enumerate(cached_cells)
            ]
            return SweepResult(spec=spec, cells=cells, from_cache=True)

    groups = spec.groups()
    group_seeds = spawn_seeds(spec.seed, len(groups))
    tasks = [
        (spec, group.k, group.distances, group_seed)
        for group, group_seed in zip(groups, group_seeds)
    ]
    if workers > 1 and len(tasks) > 1:
        with multiprocessing.Pool(min(workers, len(tasks))) as pool:
            matrices = pool.map(_execute_group, tasks)
    else:
        matrices = [_execute_group(task) for task in tasks]

    cells: List[CellResult] = []
    for group, matrix in zip(groups, matrices):
        for row, distance in enumerate(group.distances):
            cells.append(
                CellResult(distance=distance, k=group.k, times=matrix[row])
            )

    if path is not None and cells:
        save_result(
            spec,
            path,
            [SweepCell(distance=c.distance, k=c.k) for c in cells],
            np.stack([c.times for c in cells]),
        )
    return SweepResult(spec=spec, cells=cells, from_cache=False)
