"""Sweep execution: cached, batched, executor-backed, adaptive.

:func:`run_sweep` turns a :class:`repro.sweep.spec.SweepSpec` into a
:class:`SweepResult` along one of two paths, selected by the spec's
``budget``.  Both paths hand their work units to a pluggable
:class:`repro.sweep.executor.SweepExecutor` (serial, persistent process
pool, the distributed :class:`repro.sweep.remote.RemoteExecutor`, or
the virtual-clock test double) instead of spawning ad-hoc pools;
callers can share one executor across many sweeps (see ``executor=``),
which is what the experiments do.

**Fixed path** (``budget is None`` — including canonicalised
``fixed(n)`` policies):

1. the on-disk v1 cache is consulted (keyed by the spec's content hash) —
   a hit returns immediately, which is what makes repeated experiment runs
   and quick/full mode switches cheap;
2. on a miss, each ``k``-group of the grid resolves via the batched
   engines — :func:`repro.sim.events.simulate_find_times_batch` for
   excursion algorithms (sharing every phase's excursion draws across
   the group) or per-world-seeded walker rows for walker baselines.
   Groups whose distance axis exceeds
   :data:`repro.sweep.spec.FIXED_CHUNK_THRESHOLD` split into
   deterministic chunks (:func:`repro.sweep.spec.group_chunks`) so a
   one-``k``-many-``D`` grid no longer serialises on a single worker;
   the chunk layout is a function of the spec alone, never of the
   worker count, because excursion chunk streams are part of the
   result's identity.  Walker rows are seeded per world, so walker
   groups additionally split into worker-count-sized chunks with no
   effect on results;
3. chunk tasks are independent, so the executor fans them out; every
   task ships the picklable spec plus its pre-spawned seeds, making
   results bitwise identical to a serial run;
4. the raw ``(cells, trials)`` find-time matrix is written back to the
   cache.

Fixed-path seed policy: one child seed per group via
:func:`repro.sim.rng.spawn_seeds` on the spec's root seed; within a group
the first grandchild seeds the simulation and the rest seed the (possibly
random) treasure placements, one per distance.  Unsplit groups are
byte-for-byte the pre-executor runner — the ``fixed(n)``-parity
guarantee; split groups seed chunk ``c`` with
``derive_seed(group_seed, GROUP_CHUNK_STREAM, c)``.

**Adaptive path** (``target_rel_ci`` / ``wall`` budgets): cells consume
deterministic trial *blocks* (sizes from the capped doubling schedule in
:mod:`repro.sweep.spec`, content from the block-seeded engine entry
points), fold them into a streaming
:class:`repro.stats.FindTimeAccumulator`, and stop as soon as their
:class:`repro.stats.BudgetPolicy` is satisfied.  Scheduling is at
**block granularity** with work stealing: every pending block of every
cell feeds one queue, a cell that satisfies its policy early simply
stops contributing blocks and its worker slots flow to the stragglers,
and when fewer live cells than workers remain the scheduler submits a
cell's *future* blocks speculatively (block content depends only on
``(root seed, D, k, block index)``, so speculation can never change
results — a block past the stopping point is just discarded).  This
removes the whole-cell straggler of the old per-cell fan-out, where one
noisy cell ran its entire stream on a single worker while the rest of
the pool idled.

Because a block's content never depends on how many blocks ran before,
which process ran it, or which other cells exist, a cell's sample is a
deterministic prefix of an infinite trial stream: cached blocks (v2
block store, keyed by the spec's *data* hash) are reused verbatim and
new blocks are appended — across runs, grids, and precision targets.
Serial and pooled runs are bitwise identical for the ``fixed`` and
``target_rel_ci`` policies.  ``wall`` budgets stop on wall-clock time,
so *how many* blocks a cell gets depends on machine speed and load —
the blocks themselves are still the deterministic stream (two wall runs
agree on every shared prefix), but trial counts are not reproducible by
design.

``progress`` (both paths) is called once per finished cell with a
:class:`ProgressEvent` — allocated trials, newly simulated trials, and
the achieved CI half-width — so long adaptive sweeps are not silent.
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..algorithms.belief import AdaptiveSearcher
from ..checks import trace
from ..checks.registry import register_stream
from ..faults import ensure_env_plan
from ..obs import BUS, ensure_env_tracing
from ..sim.events import (
    find_time_statistics,
    simulate_find_times,
    simulate_find_times_batch,
    simulate_find_times_block,
)
from ..sim.rng import derive_seed, spawn_seeds
from ..sim.walkers import Walker, walker_find_times_block
from ..sim.world import place_targets, place_treasure
from ..stats import FindTimeAccumulator, FindTimeSummary, summarize_times
from .cache import (
    append_blocks,
    block_store_path,
    cache_path,
    clean_stale_files,
    clear_journal,
    journal_path,
    load_blocks,
    load_journal,
    load_result,
    save_journal,
    save_result,
)
from .executor import SweepExecutor, ensure_executor
from .spec import (
    GROUP_CHUNK_STREAM,
    SweepCell,
    SweepSpec,
    block_trials,
    build_algorithm,
    completed_trials,
    group_chunks,
    whole_blocks,
)

__all__ = [
    "CellResult",
    "SweepResult",
    "ProgressEvent",
    "run_sweep",
    "reference_cell_times",
]

#: Leading key of the per-cell treasure-placement stream on the adaptive
#: path: ``derive_seed(root, PLACEMENT_STREAM, distance, k)``.  A cell's
#: world must not depend on which other cells are swept (the fixed path's
#: per-group spawn chain does depend on the grid), or cached blocks could
#: not be shared across grids.
PLACEMENT_STREAM = register_stream("PLACEMENT_STREAM", 0x97ACE5)

ProgressCallback = Callable[["ProgressEvent"], None]


@dataclass(frozen=True)
class ProgressEvent:
    """One finished sweep cell, as reported to a ``progress`` callback."""

    distance: int
    k: int
    trials: int  # total trials now backing the cell
    new_trials: int  # trials simulated by *this* run (0 = pure cache hit)
    ci_halfwidth: float  # achieved CI half-width of the (truncated) mean
    rel_ci: float  # ci_halfwidth / mean (inf when undefined)
    source: str  # "cache" | "computed" | "topped-up"


@dataclass(frozen=True)
class CellResult:
    """Measured outcome of one ``(D, k)`` cell: the raw per-trial times.

    Summary statistics are derived properties so that cached and freshly
    computed cells behave identically; mean/stderr (and their sentinels)
    come from :func:`repro.sim.events.find_time_statistics`, the same rule
    ``expected_find_time`` reports.  Adaptive sweeps allocate per cell, so
    ``trials`` varies across cells of one result.
    """

    distance: int
    k: int
    times: np.ndarray

    @property
    def trials(self) -> int:
        return int(self.times.size)

    @property
    def mean(self) -> float:
        """Mean find time; ``inf`` when any trial failed to find."""
        return find_time_statistics(self.times)[0]

    @property
    def stderr(self) -> float:
        return find_time_statistics(self.times)[1]

    @property
    def success_rate(self) -> float:
        """Fraction of trials that found the treasure at all."""
        return float(np.isfinite(self.times).mean())

    @property
    def finite_mean(self) -> float:
        """Mean over finding trials only (``inf`` when none found)."""
        finite = self.times[np.isfinite(self.times)]
        return float(finite.mean()) if finite.size else math.inf

    def summary(
        self, horizon: Optional[float] = None, confidence: float = 0.95
    ) -> FindTimeSummary:
        """Censoring-aware streaming summary (see :mod:`repro.stats`)."""
        return summarize_times(
            self.times, horizon=horizon, confidence=confidence
        )


@dataclass
class SweepResult:
    """All cells of one executed (or cache-loaded) sweep."""

    spec: SweepSpec
    cells: List[CellResult]
    from_cache: bool = False
    _index: Dict[Tuple[int, int], CellResult] = field(
        init=False, repr=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        self._index = {(c.distance, c.k): c for c in self.cells}

    def cell(self, distance: int, k: int) -> CellResult:
        """Look up one cell; raises ``KeyError`` for off-grid queries."""
        try:
            return self._index[(int(distance), int(k))]
        except KeyError:
            raise KeyError(
                f"no cell (D={distance}, k={k}) in sweep over "
                f"D={self.spec.distances} x k={self.spec.ks}"
            ) from None

    @property
    def total_trials(self) -> int:
        """Trials backing the whole result (adaptive cells vary)."""
        return sum(c.trials for c in self.cells)

    def __iter__(self):
        return iter(self.cells)

    def __len__(self) -> int:
        return len(self.cells)


class _ProgressGuard:
    """Shield a sweep from a raising progress callback.

    Progress consumers are observers: a callback that raises must not
    poison the (possibly shared) executor mid-sweep by unwinding through
    the scheduler's submit/collect loop — that would discard every
    outstanding ticket of a run whose *results* are perfectly healthy.
    The guard swallows callback exceptions, keeps the first one, and
    ``run_sweep`` surfaces it once as a ``RuntimeWarning`` at sweep end.
    """

    __slots__ = ("callback", "first_error", "errors")

    def __init__(self, callback: ProgressCallback) -> None:
        self.callback = callback
        self.first_error: Optional[BaseException] = None
        self.errors = 0

    def __call__(self, event: "ProgressEvent") -> None:
        try:
            self.callback(event)
        except Exception as error:
            if self.first_error is None:
                self.first_error = error
            self.errors += 1

    def warn_if_failed(self) -> None:
        if not self.errors:
            return
        warnings.warn(
            f"progress callback raised {self.errors} time(s) during the "
            f"sweep (first: {type(self.first_error).__name__}: "
            f"{self.first_error}); sweep results are unaffected",
            RuntimeWarning,
            stacklevel=3,
        )


def _emit(
    progress: Optional[ProgressCallback],
    spec: SweepSpec,
    cell: CellResult,
    new_trials: int,
) -> None:
    """Report one finished cell: progress callback + obs event."""
    if progress is None and not BUS.enabled:
        return
    summary = cell.summary(horizon=spec.horizon)
    if new_trials == 0:
        source = "cache"
    elif new_trials < cell.trials:
        source = "topped-up"
    else:
        source = "computed"
    if BUS.enabled:
        BUS.counter(
            "cell.finish", distance=cell.distance, k=cell.k,
            trials=cell.trials, new_trials=new_trials, source=source,
        )
    if progress is None:
        return
    progress(
        ProgressEvent(
            distance=cell.distance,
            k=cell.k,
            trials=cell.trials,
            new_trials=new_trials,
            ci_halfwidth=summary.ci_halfwidth,
            rel_ci=summary.rel_ci,
            source=source,
        )
    )


# ----------------------------------------------------------------------
# Fixed path (budget is None): group chunks through the executor.
# ----------------------------------------------------------------------

def _execute_chunk(payload) -> np.ndarray:
    """Resolve one fixed-path chunk; module-level so pools can pickle it.

    Returns the ``(len(distances), trials)`` find-time matrix for the
    chunk's cells.  Excursion chunks run one batched engine call under
    ``sim_seed`` (draws shared across the chunk's worlds — common random
    numbers); walker chunks run one pre-seeded row per world, which is
    bitwise identical however the group was split.
    """
    spec, k, distances, placement_seeds, sim_seed, world_seeds = payload
    with trace.trace_scope(k=k, distances=tuple(distances)):
        strategy = build_algorithm(spec.algorithm, k, spec.param_dict())
        if spec.world is not None:
            # Dynamic-world rows resolve one per-world-seeded engine
            # call per distance (walker-style), so results are
            # independent of the chunk layout.
            targets = [
                place_targets(
                    distance, spec.placement, spec.world.n_targets,
                    seed=placement_seed,
                )
                for distance, placement_seed in zip(
                    distances, placement_seeds
                )
            ]
            rows = []
            for world, world_seed in zip(targets, world_seeds):
                if isinstance(strategy, (Walker, AdaptiveSearcher)):
                    rows.append(strategy.find_times(
                        world, k, spec.trials, world_seed,
                        horizon=spec.horizon, scenario=spec.scenario,
                        world_spec=spec.world,
                    ))
                else:
                    rows.append(simulate_find_times(
                        strategy, world, k, spec.trials, world_seed,
                        horizon=spec.horizon, scenario=spec.scenario,
                        world_spec=spec.world,
                    ))
            return np.stack(rows)
        worlds = [
            place_treasure(distance, spec.placement, seed=placement_seed)
            for distance, placement_seed in zip(distances, placement_seeds)
        ]
        if isinstance(strategy, (Walker, AdaptiveSearcher)):
            rows = [
                strategy.find_times(
                    world, k, spec.trials, world_seed,
                    horizon=spec.horizon, scenario=spec.scenario,
                )
                for world, world_seed in zip(worlds, world_seeds)
            ]
            return np.stack(rows)
        return simulate_find_times_batch(
            strategy, worlds, k, spec.trials, sim_seed,
            horizon=spec.horizon, scenario=spec.scenario,
        )


def _fixed_tasks(spec: SweepSpec, workers: int) -> List[tuple]:
    """Chunk payloads for the fixed path, in grid (cell) order.

    Seeds are spawned in the parent so that the layout a worker sees is
    entirely determined by the spec: per group, grandchild 0 is the
    simulation seed and grandchildren 1.. seed the treasure placements.
    Excursion groups split only by the content-deterministic
    :func:`repro.sweep.spec.group_chunks` layout; walker groups (whose
    rows are independently seeded per world) additionally split to about
    twice the worker count for stealing-friendly granularity.
    """
    groups = spec.groups()
    group_seeds = spawn_seeds(spec.seed, len(groups))
    tasks: List[tuple] = []
    for group, group_seed in zip(groups, group_seeds):
        child_seeds = spawn_seeds(group_seed, 1 + len(group.distances))
        sim_seed, placement_seeds = child_seeds[0], child_seeds[1:]
        strategy = build_algorithm(spec.algorithm, group.k, spec.param_dict())
        offsets = {d: i for i, d in enumerate(group.distances)}
        rowwise = (
            isinstance(strategy, (Walker, AdaptiveSearcher))
            or spec.world is not None
        )
        if rowwise:
            world_seeds = spawn_seeds(sim_seed, len(group.distances))
            if workers > 1:
                per_task = max(
                    1,
                    -(-len(group.distances) * len(groups) // (2 * workers)),
                )
                chunks = [
                    group.distances[i : i + per_task]
                    for i in range(0, len(group.distances), per_task)
                ]
            else:
                chunks = [group.distances]
            for chunk in chunks:
                rows = [offsets[d] for d in chunk]
                tasks.append((
                    spec, group.k, chunk,
                    [placement_seeds[r] for r in rows], None,
                    [world_seeds[r] for r in rows],
                ))
            continue
        chunks = group_chunks(group.distances)
        for index, chunk in enumerate(chunks):
            chunk_seed = (
                sim_seed
                if len(chunks) == 1
                else derive_seed(group_seed, GROUP_CHUNK_STREAM, index)
            )
            rows = [offsets[d] for d in chunk]
            tasks.append((
                spec, group.k, chunk,
                [placement_seeds[r] for r in rows], chunk_seed, None,
            ))
    return tasks


def _run_fixed(
    spec: SweepSpec,
    executor: SweepExecutor,
    cache: bool,
    cache_dir: Optional[str],
    progress: Optional[ProgressCallback],
    resume: bool = False,
    checkpoint_s: Optional[float] = 5.0,
) -> SweepResult:
    path = cache_path(spec, cache_dir) if cache else None
    if path is not None:
        loaded = load_result(spec, path)
        if loaded is not None:
            cached_cells, times = loaded
            cells = [
                CellResult(distance=c.distance, k=c.k, times=times[i])
                for i, c in enumerate(cached_cells)
            ]
            for cell in cells:
                _emit(progress, spec, cell, 0)
            return SweepResult(spec=spec, cells=cells, from_cache=True)

    tasks = _fixed_tasks(spec, executor.workers)
    layout = [(task[1], list(task[2])) for task in tasks]
    journal = (
        journal_path(spec, cache_dir)
        if path is not None and (resume or checkpoint_s is not None)
        else None
    )
    #: Completed task matrices, by task index — the checkpoint unit.
    done: Dict[int, np.ndarray] = {}
    if journal is not None and resume:
        done = load_journal(spec, journal, layout)
    tickets = {}
    cells_by_task: List[List[CellResult]] = [[] for _ in tasks]
    span_starts: Dict[int, float] = {}
    if done:
        # Recovered tasks surface like cache hits: their cells emit with
        # zero *new* trials, and their chunks are never resubmitted — a
        # resumed run simulates strictly less than it lost.
        if BUS.enabled:
            BUS.counter(
                "sweep.resume", algorithm=spec.algorithm, kind="fixed",
                tasks=len(done),
                trials=sum(int(m.size) for m in done.values()),
            )
        for index in sorted(done):
            _, k, distances, *_ = tasks[index]
            for row, distance in enumerate(distances):
                cell = CellResult(
                    distance=distance, k=k, times=done[index][row]
                )
                cells_by_task[index].append(cell)
                _emit(progress, spec, cell, 0)
    last_checkpoint = time.monotonic()
    try:
        for index, task in enumerate(tasks):
            if index in done:
                continue
            ticket = executor.submit(
                _execute_chunk, task,
                result_shape=(len(task[2]), spec.trials),
            )
            tickets[ticket] = index
            if BUS.enabled:
                span_starts[ticket] = BUS.span_start(
                    "cell.block", ticket=ticket, kind="chunk",
                    k=task[1], distances=list(task[2]), block=index,
                )
        while tickets:
            ticket, matrix = executor.next_completed()
            index = tickets.pop(ticket)
            _, k, distances, *_ = tasks[index]
            if BUS.enabled and ticket in span_starts:
                BUS.span_end(
                    "cell.block", span_starts.pop(ticket), ticket=ticket,
                    kind="chunk", k=k, distances=list(distances),
                    block=index,
                )
            done[index] = np.asarray(matrix)
            for row, distance in enumerate(distances):
                cell = CellResult(distance=distance, k=k, times=matrix[row])
                cells_by_task[index].append(cell)
                _emit(progress, spec, cell, cell.trials)
            if journal is not None and checkpoint_s is not None and tickets:
                now = time.monotonic()
                if now - last_checkpoint >= checkpoint_s:
                    if (
                        save_journal(spec, journal, done, layout)
                        and BUS.enabled
                    ):
                        BUS.counter(
                            "sweep.checkpoint", algorithm=spec.algorithm,
                            kind="fixed", tasks=len(done),
                        )
                    last_checkpoint = now
    except BaseException:
        # Leave nothing of this sweep behind in a (possibly shared)
        # executor: a stale ticket would surface in the next caller's
        # next_completed() as an unrelated failure.
        executor.discard(tickets)
        raise

    cells = [cell for task_cells in cells_by_task for cell in task_cells]
    if path is not None and cells:
        save_result(
            spec,
            path,
            [SweepCell(distance=c.distance, k=c.k) for c in cells],
            np.stack([c.times for c in cells]),
        )
        if journal is not None:
            # The v1 entry now owns these results; a surviving journal
            # would only re-feed them to the next resume.
            clear_journal(journal)
    return SweepResult(spec=spec, cells=cells, from_cache=False)


# ----------------------------------------------------------------------
# Adaptive path: block-granular work stealing driven by the budget.
# ----------------------------------------------------------------------

def _cell_world(spec: SweepSpec, distance: int, k: int):
    """The cell's world, seeded independently of every other cell.

    Dynamic-world specs get an ``(n_targets, 2)`` initial-position array
    (the form every engine accepts alongside a non-default world spec)
    from the same per-cell placement stream.
    """
    placement_seed = derive_seed(spec.seed, PLACEMENT_STREAM, distance, k)
    if spec.world is not None:
        return place_targets(
            distance, spec.placement, spec.world.n_targets,
            seed=placement_seed,
        )
    return place_treasure(distance, spec.placement, seed=placement_seed)


def _usable_prefix(existing: Optional[np.ndarray]) -> np.ndarray:
    """Cached times truncated to a whole-block schedule boundary."""
    if existing is None:
        return np.empty(0, dtype=np.float64)
    existing = np.asarray(existing, dtype=np.float64)
    return existing[: completed_trials(whole_blocks(existing.size))]


def _execute_block(payload) -> np.ndarray:
    """Simulate one trial block of one cell; module-level for pickling."""
    spec, distance, k, block = payload
    with trace.trace_scope(cell=(distance, k), block=block):
        strategy = build_algorithm(spec.algorithm, k, spec.param_dict())
        world = _cell_world(spec, distance, k)
        trials = block_trials(block)
        if isinstance(strategy, (Walker, AdaptiveSearcher)):
            return walker_find_times_block(
                strategy, world, k, trials, spec.seed,
                distance=distance, block=block,
                horizon=spec.horizon, scenario=spec.scenario,
                world_spec=spec.world,
            )
        return simulate_find_times_block(
            strategy, world, k, trials, spec.seed,
            distance=distance, block=block,
            horizon=spec.horizon, scenario=spec.scenario,
            world_spec=spec.world,
        )


def reference_cell_times(
    spec: SweepSpec,
    distance: int,
    k: int,
    existing: Optional[np.ndarray] = None,
) -> np.ndarray:
    """One cell's policy-satisfied times, computed sequentially.

    This is the *reference semantics* of the adaptive path — the usable
    cached prefix plus blocks in schedule order until the first decision
    point at which the budget policy is satisfied — against which the
    block-level scheduler is property-tested (and which the executor
    benchmark uses as its per-cell-pool baseline).
    """
    policy = spec.budget
    times = _usable_prefix(existing)
    blocks = whole_blocks(times.size)
    acc = FindTimeAccumulator(
        horizon=spec.horizon, confidence=policy.confidence
    )
    if times.size:
        acc.update(times)
    started = time.perf_counter()
    while not policy.satisfied(
        times.size, acc.summary(), time.perf_counter() - started
    ):
        fresh = _execute_block((spec, distance, k, blocks))
        times = np.concatenate([times, fresh])
        acc.update(fresh)
        blocks += 1
    return times


def _run_cell_reference(task) -> np.ndarray:
    """Pool-picklable whole-cell task (benchmark baseline; see above)."""
    spec, distance, k, existing = task
    return reference_cell_times(spec, distance, k, existing)


class _CellState:
    """Scheduler-side state of one adaptive cell."""

    __slots__ = (
        "distance", "k", "parts", "count", "cached", "blocks", "acc",
        "pending", "inflight", "next_submit", "done", "started", "cost",
        "need",
    )

    def __init__(self, spec: SweepSpec, distance: int, k: int, prefix) -> None:
        self.distance = distance
        self.k = k
        self.parts: List[np.ndarray] = [prefix] if prefix.size else []
        self.count = int(prefix.size)
        self.cached = int(prefix.size)
        self.blocks = whole_blocks(prefix.size)  # folded schedule frontier
        self.acc = FindTimeAccumulator(
            horizon=spec.horizon, confidence=spec.budget.confidence
        )
        if prefix.size:
            self.acc.update(prefix)
        self.pending: Dict[int, np.ndarray] = {}  # completed, unfolded
        self.inflight: set = set()  # submitted block indices
        self.next_submit = self.blocks
        self.done = False
        self.started: Optional[float] = None
        self.cost = _times_cost(prefix, spec.horizon)
        self.need = (
            _estimate_need(spec.budget, self.count, self.acc.summary())
            if self.count
            else spec.budget.min_trials
        )

    def elapsed(self) -> float:
        if self.started is None:
            return 0.0
        return time.perf_counter() - self.started

    def weight(self) -> float:
        """Estimated engine cost of one trial of this cell.

        Simulation cost tracks the simulated time mass, so the measured
        per-trial mass of the folded prefix is the best predictor of
        what the next block costs; before any trials land, the universal
        benchmark ``D + D^2/k`` (the paper's optimal time) sets the
        prior.  Only scheduling *order* depends on this — results never
        do — so a rough estimate is plenty.
        """
        if self.count:
            return max(self.cost / self.count, 1.0)
        return float(self.distance) + self.distance * self.distance / self.k

    def times(self) -> np.ndarray:
        if not self.parts:
            return np.empty(0, dtype=np.float64)
        if len(self.parts) == 1:
            return self.parts[0]
        return np.concatenate(self.parts)


def _times_cost(times: np.ndarray, horizon: Optional[float]) -> float:
    """Simulated-time mass of a batch (censored trials pay the horizon)."""
    if not times.size:
        return 0.0
    finite = np.isfinite(times)
    mass = float(times[finite].sum())
    censored = int(times.size - finite.sum())
    if censored and horizon is not None:
        mass += censored * float(horizon)
    return mass


def _estimate_need(policy, count: int, summary) -> int:
    """Predicted total trials this cell wants, from its current summary.

    CLT scaling: the relative CI half-width shrinks like ``1/sqrt(n)``,
    so a cell at ``rel`` with target ``r`` needs about
    ``n * (rel / r)^2`` trials.  This only throttles *speculation* — how
    far past the decision frontier the scheduler may run ahead — so an
    estimate off by a block costs one discarded block of work, never
    correctness.  Non-``target_rel_ci`` policies (``wall``) have no
    usable predictor and fall back to the policy ceiling.
    """
    if policy.kind != "target_rel_ci":
        return policy.max_trials
    rel = summary.rel_ci
    if not math.isfinite(rel) or rel <= 0:
        return policy.max_trials
    # The 0.9 shrink biases the estimate below the next block boundary
    # when the cell will stop on it (the common case): an underestimate
    # costs one submit-collect round trip of pipelining, an overestimate
    # costs a whole discarded block of engine work.
    need = 0.9 * count * (rel / policy.rel_ci) ** 2
    return int(min(policy.max_trials, max(policy.min_trials, need)))


def _fold_ready(state: _CellState, policy) -> None:
    """Fold contiguous completed blocks, re-checking the policy per block.

    Decisions happen strictly in schedule order on the folded prefix, so
    they are independent of completion order, worker count, and
    speculation — the bitwise serial/parallel guarantee.
    """
    while not state.done and state.blocks in state.pending:
        fresh = state.pending.pop(state.blocks)
        state.parts.append(fresh)
        state.count += int(fresh.size)
        state.cost += _times_cost(fresh, state.acc.horizon)
        state.acc.update(fresh)
        state.blocks += 1
        summary = state.acc.summary()
        if policy.satisfied(state.count, summary, state.elapsed()):
            state.done = True
            state.pending.clear()
            if BUS.enabled:
                BUS.counter(
                    "cell.stop", distance=state.distance, k=state.k,
                    trials=state.count, blocks=state.blocks,
                    reason="satisfied",
                )
        else:
            state.need = _estimate_need(policy, state.count, summary)


def _run_adaptive(
    spec: SweepSpec,
    executor: SweepExecutor,
    cache: bool,
    cache_dir: Optional[str],
    progress: Optional[ProgressCallback],
    resume: bool = False,
    checkpoint_s: Optional[float] = 5.0,
) -> SweepResult:
    policy = spec.budget
    path = block_store_path(spec, cache_dir) if cache else None
    store = load_blocks(spec, path) if path is not None else {}

    states = [
        _CellState(
            spec, cell.distance, cell.k,
            _usable_prefix(store.get((cell.distance, cell.k))),
        )
        for cell in spec.cells()
    ]
    def finish(state: _CellState) -> None:
        cell = CellResult(
            distance=state.distance, k=state.k, times=state.times()
        )
        _emit(progress, spec, cell, state.count - state.cached)

    for state in states:
        if policy.satisfied(state.count, state.acc.summary(), 0.0):
            state.done = True
            if BUS.enabled:
                BUS.counter(
                    "cell.stop", distance=state.distance, k=state.k,
                    trials=state.count, blocks=state.blocks,
                    reason="cached",
                )
            finish(state)

    if resume and BUS.enabled:
        # The block store *is* the adaptive path's journal: everything a
        # crashed run flushed is already in ``states`` as cached trials.
        recovered_cells = sum(1 for s in states if s.cached)
        if recovered_cells:
            BUS.counter(
                "sweep.resume", algorithm=spec.algorithm, kind="adaptive",
                tasks=recovered_cells,
                trials=sum(s.cached for s in states),
            )

    tickets: Dict[int, object] = {}
    last_flush = time.monotonic()
    flushed: Dict[Tuple[int, int], int] = {}  # cell -> trials on disk

    def flush_partial() -> None:
        """Rate-limited mid-sweep block-store flush (the checkpoint)."""
        nonlocal last_flush
        if path is None or checkpoint_s is None:
            return
        now = time.monotonic()
        if now - last_flush < checkpoint_s:
            return
        last_flush = now
        partial = {
            (s.distance, s.k): s.times()
            for s in states
            if s.count > s.cached
            and s.count > flushed.get((s.distance, s.k), 0)
        }
        if not partial:
            return
        merged = dict(store)
        merged.update(partial)
        if append_blocks(spec, path, merged):
            for key, times in partial.items():
                flushed[key] = int(times.size)
            if BUS.enabled:
                BUS.counter(
                    "sweep.checkpoint", algorithm=spec.algorithm,
                    kind="adaptive", tasks=len(partial),
                )

    try:
        if policy.kind == "wall":
            # Wall cells land whole; there is no mid-cell prefix worth
            # journaling (counts are machine-dependent by design).
            _schedule_wall_cells(spec, executor, states, tickets, finish)
        else:
            _schedule_blocks(
                spec, executor, states, tickets, finish,
                checkpoint=flush_partial,
            )
    except BaseException:
        # Leave nothing of this sweep behind in a (possibly shared)
        # executor: a stale ticket would surface in the next caller's
        # next_completed() as an unrelated failure.
        executor.discard(tickets)
        raise

    cells: List[CellResult] = []
    updated: Dict[Tuple[int, int], np.ndarray] = {}
    any_new = False
    for state in states:
        if not state.done and BUS.enabled:
            # The scheduler drained without the policy reporting
            # satisfaction — the cell ran out of submittable blocks.
            BUS.counter(
                "cell.stop", distance=state.distance, k=state.k,
                trials=state.count, blocks=state.blocks,
                reason="exhausted",
            )
        times = state.times()
        cells.append(CellResult(distance=state.distance, k=state.k, times=times))
        if state.count > state.cached:
            any_new = True
            updated[(state.distance, state.k)] = times

    if path is not None and any_new:
        store.update(updated)
        append_blocks(spec, path, store)
    return SweepResult(
        spec=spec,
        cells=cells,
        from_cache=bool(cells) and not any_new,
    )


def _schedule_wall_cells(
    spec: SweepSpec,
    executor: SweepExecutor,
    states: List[_CellState],
    tickets: Dict[int, object],
    finish,
) -> None:
    """Resolve ``wall``-budget cells as whole-cell tasks.

    A per-cell wall budget charges a cell only its *own* simulation
    time, which the parent cannot observe at block granularity (between
    a cell's blocks the pool is busy with other cells).  So the worker
    runs the cell's entire sequential reference loop and times itself —
    exactly the pre-executor semantics — at cell-level parallelism.
    Wall allocations are machine-dependent by design, so the block
    scheduler's determinism machinery has nothing to protect here.
    """
    span_starts: Dict[int, float] = {}
    for state in states:
        if state.done:
            continue
        ticket = executor.submit(
            _run_cell_reference,
            (spec, state.distance, state.k, state.times()),
        )
        tickets[ticket] = state
        if BUS.enabled:
            span_starts[ticket] = BUS.span_start(
                "cell.block", ticket=ticket, kind="cell",
                distance=state.distance, k=state.k, block=0,
            )
    while tickets:
        ticket, times = executor.next_completed()
        state = tickets.pop(ticket)
        if BUS.enabled and ticket in span_starts:
            BUS.span_end(
                "cell.block", span_starts.pop(ticket), ticket=ticket,
                kind="cell", distance=state.distance, k=state.k, block=0,
            )
        state.parts = [times]
        state.count = int(times.size)
        state.done = True
        finish(state)


def _schedule_blocks(
    spec: SweepSpec,
    executor: SweepExecutor,
    states: List[_CellState],
    tickets: Dict[int, object],
    finish,
    checkpoint=None,
) -> None:
    """The block-granular work-stealing scheduler (see module docstring).

    ``checkpoint`` (optional, rate-limited by the caller) runs after
    every fold so an interrupted adaptive sweep loses at most one
    checkpoint interval of folded blocks, not the whole run.
    """
    policy = spec.budget
    span_starts: Dict[int, float] = {}
    while True:
        # Fill the pool greedily: each free slot goes to the live cell
        # with the highest estimated per-trial cost *per in-flight
        # block* — weighted fair queuing over the block queue.  A heavy
        # straggler therefore pipelines several of its (independent,
        # speculatively submitted) blocks at once while cheap cells hold
        # one slot each, which is what removes the whole-cell straggler:
        # blocks only *decide* sequentially, they never have to *run*
        # sequentially.  Cells that satisfy their policy drop out of the
        # candidate set, releasing their slots to whoever is left.
        while len(tickets) < executor.workers:
            # A cell's frontier block (nothing outstanding) is always
            # needed; blocks beyond it are speculation, allowed only up
            # to the cell's estimated total need so an early stop never
            # discards more than the block straddling the estimate.
            candidates = [
                s
                for s in states
                if not s.done
                and completed_trials(s.next_submit) < policy.max_trials
                and (
                    s.next_submit == s.blocks
                    or completed_trials(s.next_submit) < s.need
                )
            ]
            if not candidates:
                break
            state = max(
                candidates,
                key=lambda s: s.weight() / (len(s.inflight) + 1),
            )
            block = state.next_submit
            speculative = block > state.blocks  # past the decision frontier
            steal = bool(state.inflight)  # another block already pipelining
            state.next_submit += 1
            state.inflight.add(block)
            if state.started is None:
                state.started = time.perf_counter()
            ticket = executor.submit(
                _execute_block,
                (spec, state.distance, state.k, block),
                result_shape=(block_trials(block),),
            )
            tickets[ticket] = (state, block)
            if BUS.enabled:
                if speculative:
                    BUS.counter(
                        "executor.speculate",
                        distance=state.distance, k=state.k, block=block,
                    )
                if steal:
                    BUS.counter(
                        "executor.steal",
                        distance=state.distance, k=state.k, block=block,
                    )
                span_starts[ticket] = BUS.span_start(
                    "cell.block", ticket=ticket, kind="block",
                    distance=state.distance, k=state.k, block=block,
                    speculative=speculative, steal=steal,
                )
        if not tickets:
            break
        ticket, times = executor.next_completed()
        state, block = tickets.pop(ticket)
        state.inflight.discard(block)
        if state.done:
            # Speculative overshoot of an already-satisfied cell.
            if BUS.enabled:
                BUS.counter(
                    "executor.discard",
                    distance=state.distance, k=state.k, block=block,
                )
                if ticket in span_starts:
                    BUS.span_end(
                        "cell.block", span_starts.pop(ticket),
                        ticket=ticket, kind="block",
                        distance=state.distance, k=state.k, block=block,
                        discarded=True,
                    )
            continue
        if BUS.enabled and ticket in span_starts:
            BUS.span_end(
                "cell.block", span_starts.pop(ticket), ticket=ticket,
                kind="block", distance=state.distance, k=state.k,
                block=block, discarded=False,
            )
        state.pending[block] = times
        _fold_ready(state, policy)
        if state.done:
            finish(state)
        if checkpoint is not None:
            checkpoint()


def run_sweep(
    spec: SweepSpec,
    *,
    workers: int = 0,
    backend: str = "auto",
    executor: Optional[SweepExecutor] = None,
    cache: bool = True,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
    resume: bool = False,
    checkpoint_s: Optional[float] = 5.0,
) -> SweepResult:
    """Execute a sweep spec (or load/top it up from the cache).

    Execution goes through a :class:`repro.sweep.executor.SweepExecutor`.
    Pass ``executor=`` to reuse a persistent one across many sweeps (the
    experiments do; worker pools then spawn once per experiment, not once
    per sweep); otherwise an ephemeral executor is built from ``workers``
    and ``backend`` (``"auto"`` picks a process pool when ``workers > 1``
    and in-process serial execution otherwise — exactly the historical
    semantics) and closed before returning.

    Serial and pooled runs produce bitwise-identical results — except
    under a ``wall`` budget, whose per-cell trial *counts* are wall-clock
    dependent by design (the underlying block streams stay
    deterministic).  ``cache`` toggles both lookup and write-back;
    ``cache_dir`` overrides the default cache location (see
    :func:`repro.sweep.cache.default_cache_dir`).  ``progress`` is
    called once per finished cell with a :class:`ProgressEvent`.

    Crash recovery (DESIGN.md §13): while a cached fixed-path sweep
    runs, completed chunks checkpoint every ``checkpoint_s`` seconds
    into an atomic per-spec journal (``0`` checkpoints after every
    chunk; ``None`` disables); adaptive sweeps flush folded blocks to
    the block store on the same cadence.  After a driver crash,
    ``resume=True`` (CLI: ``repro-ants sweep --resume``) reloads the
    journal, re-simulates only what never completed, and produces a
    result bitwise identical to an uninterrupted run.  The journal is
    deleted once the final result is cached.

    Walker strategies (``random_walk``, ``biased_walk``, ``levy``) require
    the spec to carry a finite ``horizon``: memoryless walks on ``Z^2``
    have infinite expected hitting times, so an uncapped walker sweep
    need not terminate.
    """
    probe = build_algorithm(spec.algorithm, spec.ks[0], spec.param_dict())
    if isinstance(probe, Walker) and spec.horizon is None:
        raise ValueError(
            f"sweep algorithm {spec.algorithm!r} is a walker baseline and "
            f"needs a finite spec horizon (walks on Z^2 have infinite "
            f"expected hitting time)"
        )
    if isinstance(probe, AdaptiveSearcher) and spec.horizon is None:
        raise ValueError(
            f"sweep algorithm {spec.algorithm!r} is an adaptive searcher "
            f"and needs a finite spec horizon"
        )
    if spec.world is not None and spec.horizon is None:
        raise ValueError(
            "sweeps over a non-default world spec need a finite horizon: "
            "moving or late-arriving targets make unbounded searches "
            "non-terminating"
        )
    ensure_env_tracing()
    ensure_env_plan()
    if cache:
        # Reclaim droppings of crashed writers (orphaned *.tmp from a
        # kill mid-save, aged-out quarantined entries) before this run
        # adds its own files to the same directory.
        clean_stale_files(cache_dir)
    with ensure_executor(executor, workers=workers, backend=backend) as ex:
        guard = _ProgressGuard(progress) if progress is not None else None
        span_started: Optional[float] = None
        busy0 = 0.0
        if BUS.enabled:
            busy0 = BUS.metrics.total("executor.complete.exec_s")
            span_started = BUS.span_start(
                "sweep",
                algorithm=spec.algorithm,
                spec=spec.spec_hash(),
                cells=len(spec.cells()),
                backend=ex.backend,
                workers=ex.workers,
                budget=(spec.budget.kind if spec.budget else None),
                cache=cache,
            )
        try:
            if spec.budget is None:
                result = _run_fixed(
                    spec, ex, cache, cache_dir, guard,
                    resume=resume, checkpoint_s=checkpoint_s,
                )
            else:
                result = _run_adaptive(
                    spec, ex, cache, cache_dir, guard,
                    resume=resume, checkpoint_s=checkpoint_s,
                )
        finally:
            if guard is not None:
                guard.warn_if_failed()
        if span_started is not None and BUS.enabled:
            wall = time.perf_counter() - span_started
            busy = BUS.metrics.total("executor.complete.exec_s") - busy0
            slots = max(1, int(ex.workers))
            BUS.gauge(
                "worker.utilization",
                busy / (slots * wall) if wall > 0 else 0.0,
                busy_s=busy, wall_s=wall, workers=slots,
                backend=ex.backend,
            )
            BUS.span_end(
                "sweep", span_started,
                algorithm=spec.algorithm,
                spec=spec.spec_hash(),
                cells=len(result.cells),
                total_trials=result.total_trials,
                from_cache=result.from_cache,
            )
        return result
