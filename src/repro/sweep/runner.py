"""Sweep execution: cached, batched, optionally multiprocess, adaptive.

:func:`run_sweep` turns a :class:`repro.sweep.spec.SweepSpec` into a
:class:`SweepResult` along one of two paths, selected by the spec's
``budget``:

**Fixed path** (``budget is None`` — including canonicalised
``fixed(n)`` policies):

1. the on-disk v1 cache is consulted (keyed by the spec's content hash) —
   a hit returns immediately, which is what makes repeated experiment runs
   and quick/full mode switches cheap;
2. on a miss, each ``k``-group of the grid is resolved by a single batched
   engine call over all of the group's worlds (one per distance):
   :func:`repro.sim.events.simulate_find_times_batch` for excursion
   algorithms (sharing every phase's excursion draws across the group) or
   :func:`repro.sim.walkers.walker_find_times_batch` for walker baselines
   (one child seed per world);
3. groups are independent, so with ``workers > 1`` they are fanned out to a
   ``multiprocessing`` pool (each task ships the picklable spec plus its
   spawned child seed, so results are bitwise identical to a serial run);
4. the raw ``(cells, trials)`` find-time matrix is written back to the
   cache.

Fixed-path seed policy: one child seed per group via
:func:`repro.sim.rng.spawn_seeds` on the spec's root seed; within a group
the first grandchild seeds the simulation and the rest seed the (possibly
random) treasure placements, one per distance.  This path is byte-for-byte
the pre-adaptive runner — the ``fixed(n)``-parity guarantee.

**Adaptive path** (``target_rel_ci`` / ``wall`` budgets): cells are
independent units.  Each cell consumes deterministic trial *blocks*
(sizes from the doubling schedule in :mod:`repro.sweep.spec`, content
from the block-seeded engine entry points
:func:`repro.sim.events.simulate_find_times_block` /
:func:`repro.sim.walkers.walker_find_times_block`), folds every block
into a streaming :class:`repro.stats.FindTimeAccumulator`, and stops as
soon as its :class:`repro.stats.BudgetPolicy` is satisfied.  Because a
block's content depends only on ``(root seed, D, k, block index)``, a
cell's sample is a deterministic prefix of an infinite trial stream:
cached blocks (v2 block store, keyed by the spec's *data* hash) are
reused verbatim and new blocks are appended — across runs, grids, and
precision targets.  With ``workers > 1`` cells are fanned out to a pool;
per-cell streams make pooled and serial runs bitwise identical for the
``fixed`` and ``target_rel_ci`` policies.  ``wall`` budgets stop on
wall-clock time, so *how many* blocks a cell gets depends on machine
speed and load — the blocks themselves are still the deterministic
stream (two wall runs agree on every shared prefix), but trial counts
are not reproducible by design.

``progress`` (both paths) is called once per finished cell with a
:class:`ProgressEvent` — allocated trials, newly simulated trials, and
the achieved CI half-width — so long adaptive sweeps are not silent.
"""

from __future__ import annotations

import math
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..sim.events import (
    find_time_statistics,
    simulate_find_times_batch,
    simulate_find_times_block,
)
from ..sim.rng import derive_seed, spawn_seeds
from ..sim.walkers import Walker, walker_find_times_batch, walker_find_times_block
from ..sim.world import place_treasure
from ..stats import FindTimeAccumulator, FindTimeSummary, summarize_times
from .cache import (
    block_store_path,
    cache_path,
    load_blocks,
    load_result,
    save_blocks,
    save_result,
)
from .spec import (
    SweepCell,
    SweepSpec,
    block_trials,
    build_algorithm,
    completed_trials,
    whole_blocks,
)

__all__ = ["CellResult", "SweepResult", "ProgressEvent", "run_sweep"]

#: Leading key of the per-cell treasure-placement stream on the adaptive
#: path: ``derive_seed(root, PLACEMENT_STREAM, distance, k)``.  A cell's
#: world must not depend on which other cells are swept (the fixed path's
#: per-group spawn chain does depend on the grid), or cached blocks could
#: not be shared across grids.
PLACEMENT_STREAM = 0x97ACE5

ProgressCallback = Callable[["ProgressEvent"], None]


@dataclass(frozen=True)
class ProgressEvent:
    """One finished sweep cell, as reported to a ``progress`` callback."""

    distance: int
    k: int
    trials: int  # total trials now backing the cell
    new_trials: int  # trials simulated by *this* run (0 = pure cache hit)
    ci_halfwidth: float  # achieved CI half-width of the (truncated) mean
    rel_ci: float  # ci_halfwidth / mean (inf when undefined)
    source: str  # "cache" | "computed" | "topped-up"


@dataclass(frozen=True)
class CellResult:
    """Measured outcome of one ``(D, k)`` cell: the raw per-trial times.

    Summary statistics are derived properties so that cached and freshly
    computed cells behave identically; mean/stderr (and their sentinels)
    come from :func:`repro.sim.events.find_time_statistics`, the same rule
    ``expected_find_time`` reports.  Adaptive sweeps allocate per cell, so
    ``trials`` varies across cells of one result.
    """

    distance: int
    k: int
    times: np.ndarray

    @property
    def trials(self) -> int:
        return int(self.times.size)

    @property
    def mean(self) -> float:
        """Mean find time; ``inf`` when any trial failed to find."""
        return find_time_statistics(self.times)[0]

    @property
    def stderr(self) -> float:
        return find_time_statistics(self.times)[1]

    @property
    def success_rate(self) -> float:
        """Fraction of trials that found the treasure at all."""
        return float(np.isfinite(self.times).mean())

    @property
    def finite_mean(self) -> float:
        """Mean over finding trials only (``inf`` when none found)."""
        finite = self.times[np.isfinite(self.times)]
        return float(finite.mean()) if finite.size else math.inf

    def summary(
        self, horizon: Optional[float] = None, confidence: float = 0.95
    ) -> FindTimeSummary:
        """Censoring-aware streaming summary (see :mod:`repro.stats`)."""
        return summarize_times(
            self.times, horizon=horizon, confidence=confidence
        )


@dataclass
class SweepResult:
    """All cells of one executed (or cache-loaded) sweep."""

    spec: SweepSpec
    cells: List[CellResult]
    from_cache: bool = False
    _index: Dict[Tuple[int, int], CellResult] = field(
        init=False, repr=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        self._index = {(c.distance, c.k): c for c in self.cells}

    def cell(self, distance: int, k: int) -> CellResult:
        """Look up one cell; raises ``KeyError`` for off-grid queries."""
        try:
            return self._index[(int(distance), int(k))]
        except KeyError:
            raise KeyError(
                f"no cell (D={distance}, k={k}) in sweep over "
                f"D={self.spec.distances} x k={self.spec.ks}"
            ) from None

    @property
    def total_trials(self) -> int:
        """Trials backing the whole result (adaptive cells vary)."""
        return sum(c.trials for c in self.cells)

    def __iter__(self):
        return iter(self.cells)

    def __len__(self) -> int:
        return len(self.cells)


def _emit(
    progress: Optional[ProgressCallback],
    spec: SweepSpec,
    cell: CellResult,
    new_trials: int,
) -> None:
    """Report one finished cell to the progress callback, if any."""
    if progress is None:
        return
    summary = cell.summary(horizon=spec.horizon)
    if new_trials == 0:
        source = "cache"
    elif new_trials < cell.trials:
        source = "topped-up"
    else:
        source = "computed"
    progress(
        ProgressEvent(
            distance=cell.distance,
            k=cell.k,
            trials=cell.trials,
            new_trials=new_trials,
            ci_halfwidth=summary.ci_halfwidth,
            rel_ci=summary.rel_ci,
            source=source,
        )
    )


# ----------------------------------------------------------------------
# Fixed path (budget is None): the pre-adaptive runner, byte for byte.
# ----------------------------------------------------------------------

def _execute_group(task) -> np.ndarray:
    """Resolve one k-group; module-level so the pool can pickle it."""
    spec, k, distances, group_seed = task
    strategy = build_algorithm(spec.algorithm, k, spec.param_dict())
    child_seeds = spawn_seeds(group_seed, 1 + len(distances))
    sim_seed, placement_seeds = child_seeds[0], child_seeds[1:]
    worlds = [
        place_treasure(distance, spec.placement, seed=placement_seed)
        for distance, placement_seed in zip(distances, placement_seeds)
    ]
    if isinstance(strategy, Walker):
        return walker_find_times_batch(
            strategy, worlds, k, spec.trials, sim_seed,
            horizon=spec.horizon, scenario=spec.scenario,
        )
    return simulate_find_times_batch(
        strategy, worlds, k, spec.trials, sim_seed,
        horizon=spec.horizon, scenario=spec.scenario,
    )


def _run_fixed(
    spec: SweepSpec,
    workers: int,
    cache: bool,
    cache_dir: Optional[str],
    progress: Optional[ProgressCallback],
) -> SweepResult:
    path = cache_path(spec, cache_dir) if cache else None
    if path is not None:
        loaded = load_result(spec, path)
        if loaded is not None:
            cached_cells, times = loaded
            cells = [
                CellResult(distance=c.distance, k=c.k, times=times[i])
                for i, c in enumerate(cached_cells)
            ]
            for cell in cells:
                _emit(progress, spec, cell, 0)
            return SweepResult(spec=spec, cells=cells, from_cache=True)

    groups = spec.groups()
    group_seeds = spawn_seeds(spec.seed, len(groups))
    tasks = [
        (spec, group.k, group.distances, group_seed)
        for group, group_seed in zip(groups, group_seeds)
    ]
    if workers > 1 and len(tasks) > 1:
        with multiprocessing.Pool(min(workers, len(tasks))) as pool:
            matrices = pool.map(_execute_group, tasks)
    else:
        matrices = [_execute_group(task) for task in tasks]

    cells: List[CellResult] = []
    for group, matrix in zip(groups, matrices):
        for row, distance in enumerate(group.distances):
            cell = CellResult(distance=distance, k=group.k, times=matrix[row])
            cells.append(cell)
            _emit(progress, spec, cell, cell.trials)

    if path is not None and cells:
        save_result(
            spec,
            path,
            [SweepCell(distance=c.distance, k=c.k) for c in cells],
            np.stack([c.times for c in cells]),
        )
    return SweepResult(spec=spec, cells=cells, from_cache=False)


# ----------------------------------------------------------------------
# Adaptive path: per-cell block streams driven by the budget policy.
# ----------------------------------------------------------------------

def _cell_world(spec: SweepSpec, distance: int, k: int):
    """The cell's world, seeded independently of every other cell."""
    placement_seed = derive_seed(spec.seed, PLACEMENT_STREAM, distance, k)
    return place_treasure(distance, spec.placement, seed=placement_seed)


def _usable_prefix(existing: Optional[np.ndarray]) -> np.ndarray:
    """Cached times truncated to a whole-block schedule boundary."""
    if existing is None:
        return np.empty(0, dtype=np.float64)
    existing = np.asarray(existing, dtype=np.float64)
    return existing[: completed_trials(whole_blocks(existing.size))]


def _run_cell_adaptive(task) -> np.ndarray:
    """Top one cell up to its policy's satisfaction; pool-picklable.

    Returns the cell's full times array: the usable cached prefix plus
    every block appended by this run.
    """
    spec, distance, k, existing = task
    policy = spec.budget
    strategy = build_algorithm(spec.algorithm, k, spec.param_dict())
    world = _cell_world(spec, distance, k)
    times = _usable_prefix(existing)
    blocks = whole_blocks(times.size)
    acc = FindTimeAccumulator(
        horizon=spec.horizon, confidence=policy.confidence
    )
    if times.size:
        acc.update(times)
    started = time.perf_counter()
    while not policy.satisfied(
        times.size, acc.summary(), time.perf_counter() - started
    ):
        trials = block_trials(blocks)
        if isinstance(strategy, Walker):
            fresh = walker_find_times_block(
                strategy, world, k, trials, spec.seed,
                distance=distance, block=blocks,
                horizon=spec.horizon, scenario=spec.scenario,
            )
        else:
            fresh = simulate_find_times_block(
                strategy, world, k, trials, spec.seed,
                distance=distance, block=blocks,
                horizon=spec.horizon, scenario=spec.scenario,
            )
        times = np.concatenate([times, fresh])
        acc.update(fresh)
        blocks += 1
    return times


def _run_adaptive(
    spec: SweepSpec,
    workers: int,
    cache: bool,
    cache_dir: Optional[str],
    progress: Optional[ProgressCallback],
) -> SweepResult:
    path = block_store_path(spec, cache_dir) if cache else None
    store = load_blocks(spec, path) if path is not None else {}

    grid = [(cell.distance, cell.k) for cell in spec.cells()]
    tasks = [
        (spec, distance, k, store.get((distance, k)))
        for distance, k in grid
    ]
    if workers > 1 and len(tasks) > 1:
        with multiprocessing.Pool(min(workers, len(tasks))) as pool:
            results = list(pool.imap(_run_cell_adaptive, tasks))
    else:
        results = [_run_cell_adaptive(task) for task in tasks]

    cells: List[CellResult] = []
    any_new = False
    for (distance, k, *_), times in zip([t[1:] for t in tasks], results):
        cached = _usable_prefix(store.get((distance, k)))
        new_trials = int(times.size - cached.size)
        cell = CellResult(distance=distance, k=k, times=times)
        cells.append(cell)
        _emit(progress, spec, cell, new_trials)
        if new_trials > 0:
            any_new = True
            store[(distance, k)] = times

    if path is not None and any_new:
        # The store was loaded at sweep start; another process may have
        # appended cells since.  Re-read and keep the longer array per
        # cell before the atomic replace, so concurrent sweeps sharing a
        # data identity lose at most a racing window, not each other's
        # whole contribution.  (Blocks are deterministic prefixes of one
        # stream, so "longer" strictly supersedes "shorter".)
        for key, times in load_blocks(spec, path).items():
            if key not in store or times.size > store[key].size:
                store[key] = times
        save_blocks(spec, path, store)
    return SweepResult(
        spec=spec,
        cells=cells,
        from_cache=bool(cells) and not any_new,
    )


def run_sweep(
    spec: SweepSpec,
    *,
    workers: int = 0,
    cache: bool = True,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
) -> SweepResult:
    """Execute a sweep spec (or load/top it up from the cache).

    ``workers`` <= 1 runs the work units (fixed path: k-groups; adaptive
    path: cells) serially in-process; larger values fan them out to a
    ``multiprocessing`` pool (capped at the unit count).  Serial and
    pooled runs produce bitwise-identical results — except under a
    ``wall`` budget, whose per-cell trial *counts* are wall-clock
    dependent by design (the underlying block streams stay
    deterministic).  ``cache`` toggles
    both lookup and write-back; ``cache_dir`` overrides the default cache
    location (see :func:`repro.sweep.cache.default_cache_dir`).
    ``progress`` is called once per finished cell with a
    :class:`ProgressEvent`.

    Walker strategies (``random_walk``, ``biased_walk``, ``levy``) require
    the spec to carry a finite ``horizon``: memoryless walks on ``Z^2``
    have infinite expected hitting times, so an uncapped walker sweep
    need not terminate.
    """
    probe = build_algorithm(spec.algorithm, spec.ks[0], spec.param_dict())
    if isinstance(probe, Walker) and spec.horizon is None:
        raise ValueError(
            f"sweep algorithm {spec.algorithm!r} is a walker baseline and "
            f"needs a finite spec horizon (walks on Z^2 have infinite "
            f"expected hitting time)"
        )
    if spec.budget is None:
        return _run_fixed(spec, workers, cache, cache_dir, progress)
    return _run_adaptive(spec, workers, cache, cache_dir, progress)
