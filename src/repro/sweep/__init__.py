"""Sweep subsystem: declarative, cached, batched parameter sweeps.

The paper's questions are all of the form "how does the find time behave
as a function of ``D`` and ``k``?", so the natural unit of work is a grid
of worlds, not a single treasure.  This package turns that grid into one
fast primitive:

* :class:`SweepSpec` — a serialisable description of an
  ``algorithm x D x k x trials`` sweep (see :mod:`repro.sweep.spec`);
* :func:`run_sweep` — the executor: consults the on-disk cache, resolves
  each ``k``-group with one batched engine call, optionally fans groups
  out to a process pool (see :mod:`repro.sweep.runner`);
* the cache itself lives in :mod:`repro.sweep.cache`.

Experiments (E1/E2/E3/E6) and the ``repro-ants sweep`` CLI are thin
consumers of :func:`run_sweep`.
"""

from .cache import cache_path, default_cache_dir, load_result, save_result
from .runner import CellResult, SweepResult, run_sweep
from .spec import (
    ALGORITHM_BUILDERS,
    SweepCell,
    SweepGroup,
    SweepSpec,
    build_algorithm,
    register_algorithm,
)

__all__ = [
    "ALGORITHM_BUILDERS",
    "CellResult",
    "SweepCell",
    "SweepGroup",
    "SweepResult",
    "SweepSpec",
    "build_algorithm",
    "cache_path",
    "default_cache_dir",
    "load_result",
    "register_algorithm",
    "run_sweep",
    "save_result",
]
