"""Sweep subsystem: declarative, cached, batched parameter sweeps.

The paper's questions are all of the form "how does the find time behave
as a function of ``D`` and ``k``?", so the natural unit of work is a grid
of worlds, not a single treasure.  This package turns that grid into one
fast primitive:

* :class:`SweepSpec` — a serialisable description of an
  ``algorithm x D x k x trials`` sweep, optionally carrying a
  :class:`repro.stats.BudgetPolicy` for adaptive per-cell trial
  allocation (see :mod:`repro.sweep.spec`);
* :func:`run_sweep` — the driver: consults the on-disk cache, resolves
  fixed sweeps with batched engine calls per ``k``-group chunk and
  adaptive sweeps with block-granular work stealing, and reports
  per-cell :class:`ProgressEvent`s (see :mod:`repro.sweep.runner`);
* the execution backends — in-process serial, persistent process pools
  with shared-memory result transport and crash recovery, and the
  virtual-clock scheduling model — live in :mod:`repro.sweep.executor`;
  one :class:`SweepExecutor` can be shared across many sweeps; the
  distributed backend (:class:`RemoteExecutor` driving ``repro-ants
  worker`` hosts over TCP, with handshake version checks, heartbeats,
  and bitwise-invisible crash resubmission) lives in
  :mod:`repro.sweep.remote`;
* the cache — v1 full-matrix entries plus the v2 append-only block
  store — lives in :mod:`repro.sweep.cache`.

Experiments and the ``repro-ants sweep``/``cache`` CLI are thin
consumers of this package; DESIGN.md §7 documents the adaptive layer
and §8 the executor architecture.
"""

from ..stats import BudgetPolicy
from .cache import (
    CacheEntry,
    append_blocks,
    block_store_path,
    cache_path,
    default_cache_dir,
    list_entries,
    load_blocks,
    load_result,
    prune_entries,
    save_blocks,
    save_result,
)
from .executor import (
    ProcessExecutor,
    SerialExecutor,
    SweepExecutor,
    VirtualExecutor,
    ensure_executor,
    make_executor,
    resolve_workers,
)
from .remote import (
    LoopbackWorker,
    RemoteExecutor,
    RemoteTaskError,
    parse_hosts,
    serve_worker,
)
from .runner import (
    CellResult,
    ProgressEvent,
    SweepResult,
    reference_cell_times,
    run_sweep,
)
from .spec import (
    ALGORITHM_BUILDERS,
    SweepCell,
    SweepGroup,
    SweepSpec,
    block_trials,
    build_algorithm,
    completed_trials,
    group_chunks,
    register_algorithm,
    whole_blocks,
)

__all__ = [
    "ALGORITHM_BUILDERS",
    "BudgetPolicy",
    "CacheEntry",
    "CellResult",
    "LoopbackWorker",
    "ProcessExecutor",
    "ProgressEvent",
    "RemoteExecutor",
    "RemoteTaskError",
    "SerialExecutor",
    "SweepCell",
    "SweepExecutor",
    "SweepGroup",
    "SweepResult",
    "SweepSpec",
    "VirtualExecutor",
    "append_blocks",
    "block_store_path",
    "block_trials",
    "build_algorithm",
    "cache_path",
    "completed_trials",
    "default_cache_dir",
    "ensure_executor",
    "group_chunks",
    "list_entries",
    "load_blocks",
    "load_result",
    "make_executor",
    "parse_hosts",
    "prune_entries",
    "reference_cell_times",
    "register_algorithm",
    "resolve_workers",
    "run_sweep",
    "serve_worker",
    "save_blocks",
    "save_result",
    "whole_blocks",
]
