"""Sweep subsystem: declarative, cached, batched parameter sweeps.

The paper's questions are all of the form "how does the find time behave
as a function of ``D`` and ``k``?", so the natural unit of work is a grid
of worlds, not a single treasure.  This package turns that grid into one
fast primitive:

* :class:`SweepSpec` — a serialisable description of an
  ``algorithm x D x k x trials`` sweep, optionally carrying a
  :class:`repro.stats.BudgetPolicy` for adaptive per-cell trial
  allocation (see :mod:`repro.sweep.spec`);
* :func:`run_sweep` — the executor: consults the on-disk cache, resolves
  fixed sweeps with one batched engine call per ``k``-group and adaptive
  sweeps with per-cell seeded trial blocks, optionally fans work out to a
  process pool, and reports per-cell :class:`ProgressEvent`s (see
  :mod:`repro.sweep.runner`);
* the cache — v1 full-matrix entries plus the v2 append-only block
  store — lives in :mod:`repro.sweep.cache`.

Experiments and the ``repro-ants sweep``/``cache`` CLI are thin
consumers of this package; DESIGN.md §7 documents the adaptive layer.
"""

from ..stats import BudgetPolicy
from .cache import (
    CacheEntry,
    block_store_path,
    cache_path,
    default_cache_dir,
    list_entries,
    load_blocks,
    load_result,
    prune_entries,
    save_blocks,
    save_result,
)
from .runner import CellResult, ProgressEvent, SweepResult, run_sweep
from .spec import (
    ALGORITHM_BUILDERS,
    SweepCell,
    SweepGroup,
    SweepSpec,
    block_trials,
    build_algorithm,
    completed_trials,
    register_algorithm,
    whole_blocks,
)

__all__ = [
    "ALGORITHM_BUILDERS",
    "BudgetPolicy",
    "CacheEntry",
    "CellResult",
    "ProgressEvent",
    "SweepCell",
    "SweepGroup",
    "SweepResult",
    "SweepSpec",
    "block_store_path",
    "block_trials",
    "build_algorithm",
    "cache_path",
    "completed_trials",
    "default_cache_dir",
    "list_entries",
    "load_blocks",
    "load_result",
    "prune_entries",
    "register_algorithm",
    "run_sweep",
    "save_blocks",
    "save_result",
    "whole_blocks",
]
