"""On-disk result cache for sweeps: v1 full-matrix entries + v2 block stores.

Two entry formats share one directory:

* **v1 — full-matrix entries** (``sweep_<algorithm>_<spec_hash>.npz``):
  one fixed-trials sweep = one file keyed by the spec's content hash,
  holding the complete ``(cells, trials)`` find-time matrix plus a JSON
  metadata record (the spec dict and the cell list).  This is the format
  every release has written; fixed-budget sweeps still write it, so old
  entries keep hitting (v1 read compatibility is a contract, enforced by
  ``tests/test_adaptive_sweep.py``).

* **v2 — block stores** (``blocks_<algorithm>_<data_hash>.npz``): the
  adaptive runner's append-only cache, keyed by the spec's *data* hash
  (:meth:`repro.sweep.spec.SweepSpec.data_hash` — everything that fixes
  block content, nothing that fixes allocation).  A store holds one 1-D
  time array per cell ever simulated under that data identity; cells
  accumulate across runs, across grids, and across precision targets, so
  a 200-trial cell tops up to 1000 by appending blocks rather than
  recomputing.  ``format: 2`` in the metadata marks the layout.

Storing raw times rather than summary statistics means cached sweeps can
answer *new* questions (quantiles, success rates under a different
horizon) without recomputation.

The cache directory resolves, in order, to the ``REPRO_SWEEP_CACHE``
environment variable or ``~/.cache/repro-ants/sweeps``.  All cache I/O is
best-effort: a missing, unreadable or stale entry silently falls back to
recomputation, and writes go through a temp file + atomic rename so that a
crashed run never leaves a truncated entry behind.  The ``repro-ants
cache`` CLI (``list`` / ``prune`` / ``path``) is a thin layer over
:func:`list_entries` and :func:`prune_entries`.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import zipfile
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..faults import FAULTS, FaultError, backoff_delays
from ..obs import BUS
from .spec import SweepCell, SweepSpec

__all__ = [
    "default_cache_dir",
    "cache_path",
    "load_result",
    "save_result",
    "block_store_path",
    "load_blocks",
    "save_blocks",
    "append_blocks",
    "journal_path",
    "load_journal",
    "save_journal",
    "clear_journal",
    "clean_stale_files",
    "CacheEntry",
    "list_entries",
    "prune_entries",
]

#: Sidecar manifest suffix: ``<entry>.npz`` pairs with
#: ``<entry>.npz.manifest.json`` holding just the listing metadata
#: (kind, algorithm, cell/trial counts) plus the npz byte size it was
#: derived from, so ``repro-ants cache list`` is O(entries) — it never
#: opens an archive whose sidecar is present and consistent.
MANIFEST_SUFFIX = ".manifest.json"

#: Lockfile suffix serialising block-store read-merge-write cycles:
#: ``<entry>.npz`` pairs with ``<entry>.npz.lock`` while a writer is
#: inside :func:`append_blocks`.
LOCK_SUFFIX = ".lock"

#: A lockfile older than this is presumed abandoned (its writer died
#: between acquire and release) and is taken over.  Merges are a few
#: milliseconds of JSON + array copying, so half a minute is orders of
#: magnitude past any live holder.
LOCK_STALE_SECONDS = 30.0

#: How long a writer waits for the lock before proceeding *unlocked*.
#: The cache is best-effort by contract — blocking a sweep on a cache
#: serialisation would invert its priorities — and the unlocked merge
#: degrades exactly to the pre-lock behaviour (worst case: one racing
#: top-up lost, never a foreign cell).
LOCK_TIMEOUT_SECONDS = 10.0

#: Poll interval while waiting on a held lock (the backoff base; waits
#: grow from here via :func:`repro.faults.backoff_delays`).
_LOCK_POLL_SECONDS = 0.01

#: Longest single backoff while polling a held lock.
_LOCK_POLL_MAX_SECONDS = 0.25

#: Temp-file prefix shared by every atomic write in this directory; a
#: crash between write and rename leaves one of these behind, reclaimed
#: by :func:`clean_stale_files`.
TMP_PREFIX = ".sweep_tmp_"

#: A corrupt entry is renamed aside with this suffix (quarantined)
#: instead of being retried forever; :func:`clean_stale_files` reclaims
#: old quarantines.
QUARANTINE_SUFFIX = ".quarantine"

#: Temp droppings and quarantined entries older than this are presumed
#: abandoned.  Live atomic writes last milliseconds, so five minutes is
#: orders of magnitude past any writer that is still coming back.
STALE_FILE_SECONDS = 300.0

CellKey = Tuple[int, int]


def _quarantine(path: str, kind: str) -> bool:
    """Rename a corrupt entry aside so the slot can be rebuilt cleanly.

    A corrupt archive would otherwise be re-opened (and re-fail) on
    every lookup, and — worse for block stores — a fresh merge would
    race the broken file's name.  Renaming is atomic, keeps the bytes
    for forensics, and frees the path for the recomputed entry.
    """
    try:
        os.replace(path, path + QUARANTINE_SUFFIX)
    except OSError:
        return False
    try:
        os.unlink(path + MANIFEST_SUFFIX)
    except OSError:
        pass
    if BUS.enabled:
        BUS.counter(
            "cache.quarantine", kind=kind, path=os.path.basename(path)
        )
    return True


def default_cache_dir() -> str:
    """Resolve the sweep cache directory (env override, then XDG-ish home)."""
    env = os.environ.get("REPRO_SWEEP_CACHE")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-ants", "sweeps")


def cache_path(spec: SweepSpec, cache_dir: Optional[str] = None) -> str:
    """The v1 cache file a spec maps to (which need not exist yet)."""
    directory = cache_dir if cache_dir is not None else default_cache_dir()
    return os.path.join(directory, f"sweep_{spec.algorithm}_{spec.spec_hash()}.npz")


def load_result(
    spec: SweepSpec, path: str
) -> Optional[Tuple[List[SweepCell], np.ndarray]]:
    """Load a cached sweep, or ``None`` when absent, corrupt, or stale.

    The stored spec dict is compared against ``spec`` (not just the hash) so
    a hash collision or a hand-edited file can never smuggle in results for
    a different sweep.
    """
    loaded = None
    try:
        if FAULTS.enabled:
            _check_read_faults()
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
            times = np.asarray(archive["times"], dtype=np.float64)
    except OSError:
        # Missing file or transient I/O (incl. injected read errors):
        # a plain miss, recomputed — never quarantined.
        meta, times = None, None
    except (KeyError, ValueError, EOFError, zipfile.BadZipFile):
        # The file is present but its content is broken: quarantine it
        # so the slot rebuilds instead of re-failing every lookup.
        meta, times = None, None
        if os.path.exists(path):
            _quarantine(path, kind="sweep")
    if meta is not None and meta.get("spec") == spec.to_dict():
        cells = [SweepCell(distance=d, k=k) for d, k in meta.get("cells", [])]
        if times.ndim == 2 and times.shape == (len(cells), spec.trials):
            loaded = (cells, times)
    if BUS.enabled:
        if loaded is None:
            BUS.counter("cache.miss", kind="sweep", algorithm=spec.algorithm)
        else:
            BUS.counter(
                "cache.hit", kind="sweep", algorithm=spec.algorithm,
                cells=len(loaded[0]), trials=int(loaded[1].size),
            )
    return loaded


def save_result(
    spec: SweepSpec, path: str, cells: List[SweepCell], times: np.ndarray
) -> bool:
    """Persist a fixed-trials sweep result; returns whether it succeeded."""
    meta = {
        "spec": spec.to_dict(),
        "cells": [[cell.distance, cell.k] for cell in cells],
    }
    return _atomic_savez(path, meta, {"times": times})


def block_store_path(spec: SweepSpec, cache_dir: Optional[str] = None) -> str:
    """The v2 block-store file a spec's data identity maps to."""
    directory = cache_dir if cache_dir is not None else default_cache_dir()
    return os.path.join(
        directory, f"blocks_{spec.algorithm}_{spec.data_hash()}.npz"
    )


def load_blocks(spec: SweepSpec, path: str) -> Dict[CellKey, np.ndarray]:
    """Load every cached cell of a spec's block store.

    Returns ``{(distance, k): times}`` with each times array holding the
    cell's concatenated trial blocks in schedule order.  Absent, corrupt,
    or foreign stores (a different data identity behind the same file
    name) load as empty — the adaptive runner then just simulates.
    """
    out = _load_blocks(spec, path)
    if BUS.enabled:
        # Only runner-initiated lookups count toward the hit rate;
        # append_blocks' internal merge-read goes through _load_blocks.
        if out:
            BUS.counter(
                "cache.hit", kind="blocks", algorithm=spec.algorithm,
                cells=len(out),
                trials=int(sum(times.size for times in out.values())),
            )
        else:
            BUS.counter("cache.miss", kind="blocks", algorithm=spec.algorithm)
    return out


def _load_blocks(spec: SweepSpec, path: str) -> Dict[CellKey, np.ndarray]:
    """:func:`load_blocks` without the cache hit/miss accounting."""
    out: Dict[CellKey, np.ndarray] = {}
    try:
        if FAULTS.enabled:
            _check_read_faults()
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
            if meta.get("format") != 2:
                return {}
            if meta.get("data") != spec.data_dict():
                return {}
            for index, (distance, k, trials) in enumerate(meta.get("cells", [])):
                times = np.asarray(archive[f"times_{index}"], dtype=np.float64)
                if times.ndim != 1 or times.size != trials:
                    continue  # truncated entry; drop just this cell
                out[(int(distance), int(k))] = times
    except OSError:
        return {}  # missing or transiently unreadable: plain miss
    except (KeyError, ValueError, EOFError, zipfile.BadZipFile):
        if os.path.exists(path):
            _quarantine(path, kind="blocks")
        return {}
    return out


def _check_read_faults() -> None:
    """The injection seam shared by every cache read path.

    ``cache.read`` simulates the I/O error class (plain miss),
    ``cache.corrupt`` the truncated-archive class (quarantine + rebuild)
    — each raises into the *real* recovery handler above, so chaos runs
    exercise production code, not injection-aware shims.
    """
    if FAULTS.check("cache.read") is not None:
        raise FaultError("injected cache read failure")
    if FAULTS.check("cache.corrupt") is not None:
        raise zipfile.BadZipFile("injected cache corruption")


def save_blocks(
    spec: SweepSpec, path: str, blocks: Mapping[CellKey, np.ndarray]
) -> bool:
    """Persist a block store (all cells, atomically); returns success.

    Callers pass the *full* merged cell map — load, extend, save — so a
    store never loses cells another grid contributed.
    """
    ordered = sorted(blocks.items())
    meta = {
        "format": 2,
        "data": spec.data_dict(),
        "cells": [
            [distance, k, int(times.size)] for (distance, k), times in ordered
        ],
    }
    arrays = {
        f"times_{index}": np.asarray(times, dtype=np.float64)
        for index, (_, times) in enumerate(ordered)
    }
    return _atomic_savez(path, meta, arrays)


@contextmanager
def _store_lock(path: str) -> Iterator[bool]:
    """Serialise one store's read-merge-write cycle with an O_EXCL lockfile.

    Creating ``<path>.lock`` with ``O_CREAT | O_EXCL`` is atomic on every
    platform and filesystem the cache targets, including NFS mounts that
    remote shards share.  The file records ``pid host time`` for
    debugging.  Three exits:

    * acquired — yields ``True``; the lockfile is removed on exit.
    * stale takeover — a lock older than :data:`LOCK_STALE_SECONDS`
      (by mtime) is unlinked and acquisition retried; a crashed writer
      therefore stalls successors for at most the stale window.
    * timeout — after :data:`LOCK_TIMEOUT_SECONDS` the writer proceeds
      *without* the lock (yields ``False``): the cache is best-effort,
      and an unserialised merge is strictly better than a blocked sweep.
    """
    lock_path = path + LOCK_SUFFIX
    directory = os.path.dirname(path)
    waited_from = time.monotonic()
    deadline = waited_from + LOCK_TIMEOUT_SECONDS
    # Unified backoff (repro.faults): polls start at the historical
    # 10 ms and grow, jittered, to a cap — herds of writers contending
    # for one store de-synchronise instead of stampeding each retry.
    delays = backoff_delays(
        attempts=1 << 16,
        base_delay=_LOCK_POLL_SECONDS,
        max_delay=_LOCK_POLL_MAX_SECONDS,
    )
    acquired = False
    while True:
        try:
            if directory:
                os.makedirs(directory, exist_ok=True)
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                age = time.time() - os.stat(lock_path).st_mtime
            except OSError:
                continue  # holder released between open and stat; retry
            if age > LOCK_STALE_SECONDS:
                try:
                    os.unlink(lock_path)  # abandoned: take it over
                except OSError:
                    pass  # someone else's takeover won; retry
                continue
            if time.monotonic() >= deadline:
                break  # proceed unlocked; see docstring
            time.sleep(next(delays, _LOCK_POLL_MAX_SECONDS))
        except OSError:
            break  # unwritable cache dir: the save will no-op anyway
        else:
            acquired = True
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(
                        f"{os.getpid()} {os.uname().nodename} {time.time()}\n"
                    )
            except OSError:
                pass  # contents are debug-only
            break
    if BUS.enabled:
        BUS.gauge(
            "cache.lock_wait",
            time.monotonic() - waited_from,
            acquired=acquired,
        )
    try:
        yield acquired
    finally:
        if acquired:
            try:
                os.unlink(lock_path)
            except OSError:
                pass


def append_blocks(
    spec: SweepSpec, path: str, blocks: Mapping[CellKey, np.ndarray]
) -> bool:
    """Merge executor results into a block store (read-modify-write).

    ``blocks`` is the writer's view: the cells it loaded at sweep start
    plus every cell the executor extended.  The read-merge-write cycle
    runs under the store's lockfile (:func:`_store_lock`), so concurrent
    writers — parallel experiment processes, remote shards syncing one
    store — serialise and every writer's cells survive; per cell, the
    longer array wins.  (Blocks are deterministic prefixes of one
    stream, so "longer" strictly supersedes "shorter".)  If the lock
    cannot be acquired within the timeout the merge proceeds unlocked,
    degrading to the historical best-effort behaviour: at worst a racing
    window of one cell's *top-up* is lost, never another writer's whole
    contribution.
    """
    with _store_lock(path):
        merged: Dict[CellKey, np.ndarray] = dict(blocks)
        for key, times in _load_blocks(spec, path).items():
            if key not in merged or times.size > merged[key].size:
                merged[key] = times
        saved = save_blocks(spec, path, merged)
    if BUS.enabled:
        BUS.counter(
            "cache.append", kind="blocks", algorithm=spec.algorithm,
            cells=len(merged),
        )
    return saved


# ----------------------------------------------------------------------
# Checkpoint journals (crash-only fixed-path sweeps; DESIGN.md §13)
# ----------------------------------------------------------------------

def journal_path(spec: SweepSpec, cache_dir: Optional[str] = None) -> str:
    """The checkpoint journal a fixed-path sweep writes while running.

    Keyed by the *full* spec hash (like the v1 entry it will become).
    Task indices alone do not identify work — walker groups chunk by
    worker count — so each journal entry also records its ``(k,
    distances)`` identity, and :func:`load_journal` drops entries that
    do not match the resuming run's layout.
    """
    directory = cache_dir if cache_dir is not None else default_cache_dir()
    return os.path.join(
        directory, f"journal_{spec.algorithm}_{spec.spec_hash()}.npz"
    )


def load_journal(
    spec: SweepSpec,
    path: str,
    layout: Optional[Sequence[Tuple[int, Sequence[int]]]] = None,
) -> Dict[int, np.ndarray]:
    """Completed task matrices of an interrupted sweep, by task index.

    Absent, corrupt, or foreign journals load as empty — the sweep then
    simply runs cold.  The stored spec dict is compared against ``spec``
    so a resumed run can never splice in another sweep's chunks, and
    ``layout`` (the resuming run's task list as ``(k, distances)``
    pairs) drops any entry whose recorded identity no longer matches —
    e.g. a walker sweep resumed with a different worker count.
    """
    out: Dict[int, np.ndarray] = {}
    try:
        if FAULTS.enabled:
            _check_read_faults()
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
            if meta.get("format") != "journal":
                return {}
            if meta.get("spec") != spec.to_dict():
                return {}
            for entry in meta.get("tasks", []):
                index, k, distances = entry
                index = int(index)
                if layout is not None:
                    if not 0 <= index < len(layout):
                        continue
                    want_k, want_distances = layout[index]
                    if int(k) != int(want_k) or (
                        [int(d) for d in distances]
                        != [int(d) for d in want_distances]
                    ):
                        continue  # layout drifted; recompute this task
                times = np.asarray(archive[f"task_{index}"], dtype=np.float64)
                if times.ndim != 2 or times.shape[1] != spec.trials:
                    continue  # truncated entry; recompute just this task
                if times.shape[0] != len(distances):
                    continue
                out[index] = times
    except OSError:
        return {}
    except (KeyError, TypeError, ValueError, EOFError, zipfile.BadZipFile):
        if os.path.exists(path):
            _quarantine(path, kind="journal")
        return {}
    return out


def save_journal(
    spec: SweepSpec,
    path: str,
    done: Mapping[int, np.ndarray],
    layout: Sequence[Tuple[int, Sequence[int]]],
) -> bool:
    """Atomically persist the completed-task map of a running sweep.

    ``layout`` is the full task list as ``(k, distances)`` pairs; each
    journal entry records its own identity from it (see
    :func:`load_journal`).  Each write replaces the whole journal via
    the same temp-file + rename path as every other entry, so a driver
    killed mid-checkpoint leaves either the previous journal or the new
    one — never a torn file (the SIGKILL property test in
    ``tests/test_resume.py``).
    """
    ordered = sorted(done.items())
    meta = {
        "format": "journal",
        "spec": spec.to_dict(),
        "tasks": [
            [index, int(layout[index][0]), [int(d) for d in layout[index][1]]]
            for index, _ in ordered
        ],
    }
    arrays = {
        f"task_{index}": np.asarray(times, dtype=np.float64)
        for index, times in ordered
    }
    return _atomic_savez(path, meta, arrays)


def clear_journal(path: str) -> None:
    """Remove a completed sweep's journal (and its manifest sidecar)."""
    for target in (path, path + MANIFEST_SUFFIX):
        try:
            os.unlink(target)
        except OSError:
            pass


def clean_stale_files(
    cache_dir: Optional[str] = None,
    *,
    max_age_s: float = STALE_FILE_SECONDS,
    now: Optional[float] = None,
) -> List[str]:
    """Reclaim crash droppings: stale temp files and old quarantines.

    A writer killed between temp write and rename orphans a
    ``.sweep_tmp_*`` file forever (nothing else ever looks at it), and
    quarantined entries keep their bytes only for forensics.  Both are
    removed once older than ``max_age_s`` — young files are left alone
    so a *live* concurrent writer's temp is never pulled out from under
    it.  Called at sweep startup and by ``repro-ants cache prune``;
    returns the removed paths.
    """
    directory = cache_dir if cache_dir is not None else default_cache_dir()
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    cutoff = (now if now is not None else time.time()) - max_age_s
    removed: List[str] = []
    for name in sorted(names):
        if not (
            name.startswith(TMP_PREFIX) or name.endswith(QUARANTINE_SUFFIX)
        ):
            continue
        path = os.path.join(directory, name)
        try:
            if os.stat(path).st_mtime > cutoff:
                continue
            os.unlink(path)
        except OSError:
            continue  # vanished or unwritable; best-effort
        removed.append(path)
    if removed and BUS.enabled:
        BUS.counter("cache.tmp_clean", removed=len(removed))
    return removed


def _manifest_record(meta: Dict, npz_size: int) -> Dict:
    """The listing-facing summary of one entry's metadata."""
    if meta.get("format") == "journal":
        spec = meta.get("spec", {})
        tasks = meta.get("tasks", [])
        return {
            "kind": "journal",
            "algorithm": spec.get("algorithm", "?"),
            "cells": len(tasks),
            "trials": 0,  # partial work; counted when it becomes a v1 entry
            "npz_size": npz_size,
        }
    if meta.get("format") == 2:
        cells = meta.get("cells", [])
        return {
            "kind": "blocks",
            "algorithm": meta.get("data", {}).get("algorithm", "?"),
            "cells": len(cells),
            "trials": sum(int(cell[2]) for cell in cells),
            "npz_size": npz_size,
        }
    spec = meta.get("spec", {})
    cells = meta.get("cells", [])
    return {
        "kind": "sweep",
        "algorithm": spec.get("algorithm", "?"),
        "cells": len(cells),
        "trials": len(cells) * int(spec.get("trials", 0)),
        "npz_size": npz_size,
    }


def _atomic_savez(path: str, meta: Dict, arrays: Dict[str, np.ndarray]) -> bool:
    """Write an npz with a JSON ``meta`` record via temp file + rename.

    A consistent sidecar manifest (see :data:`MANIFEST_SUFFIX`) is
    written after the rename; it is pure derived data, so a failed or
    missing sidecar only costs ``list_entries`` an archive open.
    """
    crash_before_rename = False
    if FAULTS.enabled:
        rule = FAULTS.check("cache.write")
        if rule is not None:
            if rule.mode != "crash":
                return False  # the ENOSPC/EIO class: write just fails
            # The kill-between-write-and-rename class: the temp file is
            # deliberately orphaned, exactly what a dead writer leaves
            # for clean_stale_files to reclaim.
            crash_before_rename = True
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=TMP_PREFIX, suffix=".npz"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(
                    handle, meta=np.asarray(json.dumps(meta)), **arrays
                )
            if crash_before_rename:
                return False
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
    except OSError:
        return False
    try:
        manifest = _manifest_record(meta, os.path.getsize(path))
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=TMP_PREFIX, suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(manifest, handle)
            os.replace(tmp, path + MANIFEST_SUFFIX)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
    except OSError:
        pass  # best-effort: listing falls back to opening the npz
    return True


@dataclass(frozen=True)
class CacheEntry:
    """One cache file as seen by ``repro-ants cache list``."""

    path: str
    kind: str  # "sweep" (v1), "blocks" (v2), "journal", or "unreadable"
    algorithm: str
    cells: int
    trials: int  # total trials stored across cells
    size_bytes: int
    mtime: float


def _read_manifest(path: str, npz_size: int) -> Optional[Dict]:
    """Load the sidecar manifest if it matches the npz it describes.

    The stored ``npz_size`` is the consistency check: a store rewritten
    by an older tool (or a partially copied pair) has a size mismatch
    and the sidecar is ignored in favour of the archive itself.
    """
    try:
        with open(path + MANIFEST_SUFFIX) as handle:
            manifest = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(manifest, dict):
        return None
    if manifest.get("npz_size") != npz_size:
        return None
    if manifest.get("kind") not in ("sweep", "blocks", "journal"):
        return None
    return manifest


def _inspect_entry(path: str) -> Optional[CacheEntry]:
    """Describe one entry, metadata-only when possible.

    The sidecar manifest (written alongside every save) answers the
    listing in one small JSON read; only entries without a consistent
    sidecar — pre-manifest caches, hand-copied files — fall back to
    opening the archive (and even then only its ``meta`` member is
    decompressed, never the time arrays).
    """
    try:
        stat = os.stat(path)
    except OSError:
        return None  # vanished between listdir and stat; best-effort
    manifest = _read_manifest(path, stat.st_size)
    if manifest is not None:
        try:
            return CacheEntry(
                path=path, kind=str(manifest["kind"]),
                algorithm=str(manifest["algorithm"]),
                cells=int(manifest["cells"]), trials=int(manifest["trials"]),
                size_bytes=stat.st_size, mtime=stat.st_mtime,
            )
        except (KeyError, TypeError, ValueError):
            pass  # malformed sidecar: fall through to the archive
    name = os.path.basename(path)
    algorithm = "?"
    parts = name[:-len(".npz")].split("_")
    if len(parts) >= 3:
        algorithm = "_".join(parts[1:-1])
    try:
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
    except (OSError, KeyError, ValueError, EOFError, zipfile.BadZipFile):
        return CacheEntry(
            path=path, kind="unreadable", algorithm=algorithm, cells=0,
            trials=0, size_bytes=stat.st_size, mtime=stat.st_mtime,
        )
    record = _manifest_record(meta, stat.st_size)
    if record["algorithm"] == "?":
        record["algorithm"] = algorithm
    return CacheEntry(
        path=path, kind=record["kind"], algorithm=record["algorithm"],
        cells=record["cells"], trials=record["trials"],
        size_bytes=stat.st_size, mtime=stat.st_mtime,
    )


def list_entries(cache_dir: Optional[str] = None) -> List[CacheEntry]:
    """All cache entries in a directory, newest first."""
    directory = cache_dir if cache_dir is not None else default_cache_dir()
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return []
    entries = [
        entry
        for name in names
        if name.endswith(".npz") and not name.startswith(".")
        for entry in [_inspect_entry(os.path.join(directory, name))]
        if entry is not None
    ]
    entries.sort(key=lambda e: e.mtime, reverse=True)
    return entries


def prune_entries(
    cache_dir: Optional[str] = None,
    *,
    older_than_days: float = 0.0,
    now: Optional[float] = None,
    dry_run: bool = False,
) -> List[CacheEntry]:
    """Delete (or, with ``dry_run``, just report) entries older than a cutoff.

    ``older_than_days=0`` prunes everything.  Returns the pruned
    entries.  Crash droppings — stale temp files, old quarantines —
    are reclaimed alongside (see :func:`clean_stale_files`) unless
    ``dry_run`` is set.
    """
    import time as _time

    if older_than_days < 0:
        raise ValueError(f"older_than_days must be >= 0, got {older_than_days}")
    if not dry_run:
        clean_stale_files(cache_dir, now=now)
    cutoff = (now if now is not None else _time.time()) - older_than_days * 86400
    pruned = []
    for entry in list_entries(cache_dir):
        if entry.mtime <= cutoff:
            if not dry_run:
                try:
                    os.unlink(entry.path)
                except OSError:
                    continue
                try:
                    os.unlink(entry.path + MANIFEST_SUFFIX)
                except OSError:
                    pass  # no sidecar (pre-manifest entry) is fine
            pruned.append(entry)
    return pruned
