"""On-disk result cache for sweeps.

One sweep = one ``.npz`` file named by the spec's content hash, holding the
full ``(cells, trials)`` find-time matrix plus a JSON metadata record (the
spec dict and the cell list).  Storing raw times rather than summary
statistics means cached sweeps can answer *new* questions (quantiles,
success rates under a different horizon) without recomputation.

The cache directory resolves, in order, to the ``REPRO_SWEEP_CACHE``
environment variable or ``~/.cache/repro-ants/sweeps``.  All cache I/O is
best-effort: a missing, unreadable or stale entry silently falls back to
recomputation, and writes go through a temp file + atomic rename so that a
crashed run never leaves a truncated entry behind.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
from typing import List, Optional, Tuple

import numpy as np

from .spec import SweepCell, SweepSpec

__all__ = ["default_cache_dir", "cache_path", "load_result", "save_result"]


def default_cache_dir() -> str:
    """Resolve the sweep cache directory (env override, then XDG-ish home)."""
    env = os.environ.get("REPRO_SWEEP_CACHE")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-ants", "sweeps")


def cache_path(spec: SweepSpec, cache_dir: Optional[str] = None) -> str:
    """The cache file a spec maps to (which need not exist yet)."""
    directory = cache_dir if cache_dir is not None else default_cache_dir()
    return os.path.join(directory, f"sweep_{spec.algorithm}_{spec.spec_hash()}.npz")


def load_result(
    spec: SweepSpec, path: str
) -> Optional[Tuple[List[SweepCell], np.ndarray]]:
    """Load a cached sweep, or ``None`` when absent, corrupt, or stale.

    The stored spec dict is compared against ``spec`` (not just the hash) so
    a hash collision or a hand-edited file can never smuggle in results for
    a different sweep.
    """
    try:
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
            times = np.asarray(archive["times"], dtype=np.float64)
    except (OSError, KeyError, ValueError, EOFError, zipfile.BadZipFile):
        return None
    if meta.get("spec") != spec.to_dict():
        return None
    cells = [SweepCell(distance=d, k=k) for d, k in meta.get("cells", [])]
    if times.ndim != 2 or times.shape != (len(cells), spec.trials):
        return None
    return cells, times


def save_result(
    spec: SweepSpec, path: str, cells: List[SweepCell], times: np.ndarray
) -> bool:
    """Persist a sweep result; returns whether the write succeeded."""
    meta = {
        "spec": spec.to_dict(),
        "cells": [[cell.distance, cell.k] for cell in cells],
    }
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".sweep_tmp_", suffix=".npz"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(
                    handle, meta=np.asarray(json.dumps(meta)), times=times
                )
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
    except OSError:
        return False
    return True
