"""Declarative sweep specifications.

A :class:`SweepSpec` names everything a parameter sweep depends on — the
algorithm (by registry name), its parameters, the ``D x k`` grid, trial
count, treasure placement, root seed and optional horizon — as plain
serialisable data.  Two properties follow from that:

* the spec has a stable content hash (:meth:`SweepSpec.spec_hash`), which
  keys the on-disk result cache: the same spec always maps to the same
  file, and any change to any knob maps to a different one;
* the spec can be shipped to a worker process verbatim, which is what the
  :func:`repro.sweep.runner.run_sweep` multiprocessing pool does.

Execution is organised in *groups*: all distances that share a ``k`` form
one group.  Excursion algorithms resolve a group with a single
:func:`repro.sim.events.simulate_find_times_batch` call that shares each
phase's excursion draws across the group's worlds (common random numbers —
per-cell means stay unbiased while cross-distance comparisons see paired
noise); walker baselines (:mod:`repro.sim.walkers`) resolve it with
:func:`repro.sim.walkers.walker_find_times_batch`, one child seed per
world.  The runner dispatches on the built strategy's type.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..algorithms import (
    HarmonicSearch,
    HedgedApproxSearch,
    NaiveTrustSearch,
    NonUniformSearch,
    RestartingHarmonicSearch,
    RhoApproxSearch,
    ScaledBudgetSearch,
    UniformSearch,
)
from ..algorithms.base import ExcursionAlgorithm
from ..scenarios import ScenarioSpec
from ..sim.walkers import BiasedWalker, LevyWalker, RandomWalker, Walker

__all__ = [
    "SPEC_VERSION",
    "ALGORITHM_BUILDERS",
    "register_algorithm",
    "build_algorithm",
    "SweepCell",
    "SweepGroup",
    "SweepSpec",
    "SweepStrategy",
]

#: Bumped whenever the execution semantics change in a way that invalidates
#: cached results (seed derivation, engine semantics, npz layout).
#: v2: the spec dict gained the scenario layer (fault/heterogeneity knobs).
SPEC_VERSION = 2

ParamsLike = Union[Mapping[str, float], Sequence[Tuple[str, float]]]

#: What a builder may return: an excursion algorithm (resolved by the
#: batched excursion engine) or a walker baseline (resolved by the batched
#: walker engine of :mod:`repro.sim.walkers`).  The runner dispatches on
#: the instance type.
SweepStrategy = Union[ExcursionAlgorithm, Walker]

#: name -> builder(k, params) for every strategy a sweep can name.
#: Builders receive the true agent count ``k`` so that k-aware algorithms
#: (``A_k``) can use it; k-oblivious algorithms and walkers ignore it.
ALGORITHM_BUILDERS: Dict[
    str, Callable[[int, Mapping[str, float]], SweepStrategy]
] = {}


def register_algorithm(
    name: str, builder: Callable[[int, Mapping[str, float]], SweepStrategy]
) -> None:
    """Register a sweepable strategy under ``name`` (overwrites quietly)."""
    ALGORITHM_BUILDERS[name] = builder


def build_algorithm(
    name: str, k: int, params: Mapping[str, float]
) -> SweepStrategy:
    """Instantiate the registered strategy ``name`` for ``k`` agents."""
    if name not in ALGORITHM_BUILDERS:
        known = ", ".join(sorted(ALGORITHM_BUILDERS))
        raise KeyError(f"unknown sweep algorithm {name!r}; known: {known}")
    return ALGORITHM_BUILDERS[name](k, params)


register_algorithm("nonuniform", lambda k, p: NonUniformSearch(k=p.get("k", k)))
register_algorithm(
    "nonuniform_scaled",
    lambda k, p: ScaledBudgetSearch(
        k=p.get("k", k), budget_scale=p.get("budget_scale", 1.0)
    ),
)
register_algorithm("uniform", lambda k, p: UniformSearch(p.get("eps", 0.5)))
register_algorithm("harmonic", lambda k, p: HarmonicSearch(p.get("delta", 0.5)))
register_algorithm(
    "restarting_harmonic",
    lambda k, p: RestartingHarmonicSearch(p.get("delta", 0.5)),
)
register_algorithm("rho", lambda k, p: RhoApproxSearch(k_a=p["k_a"], rho=p["rho"]))
register_algorithm("naive", lambda k, p: NaiveTrustSearch(k_tilde=p["k_tilde"]))
register_algorithm(
    "hedged",
    lambda k, p: HedgedApproxSearch(
        k_tilde=p["k_tilde"], eps=p.get("eps", 0.5)
    ),
)

# Walker baselines (require a spec horizon; see repro.sim.walkers).
register_algorithm("random_walk", lambda k, p: RandomWalker())
register_algorithm(
    "biased_walk", lambda k, p: BiasedWalker(p.get("persistence", 0.9))
)
register_algorithm(
    "levy",
    lambda k, p: LevyWalker(p.get("mu", 2.0), int(p.get("max_segment", 10**6))),
)


@dataclass(frozen=True)
class SweepCell:
    """One ``(D, k)`` cell of a sweep grid."""

    distance: int
    k: int


@dataclass(frozen=True)
class SweepGroup:
    """All cells sharing one ``k`` — the unit of batched execution."""

    k: int
    distances: Tuple[int, ...]


@dataclass(frozen=True)
class SweepSpec:
    """A fully-described ``algorithm x D x k x trials`` sweep.

    ``params`` accepts a mapping or key/value pairs and is normalised to a
    sorted tuple so that equal specs hash equally.  ``seed`` must be a plain
    integer (serialisable); derive one from a structured key with
    :func:`repro.sim.rng.derive_seed`.

    ``scenario`` (:class:`repro.scenarios.ScenarioSpec`, a mapping, or
    ``None``) is the fault/heterogeneity layer and participates in the
    content hash — two sweeps that differ only in scenario cache
    separately.  The all-default scenario is canonicalised to ``None``, so
    "no scenario" and "explicitly unperturbed" are the *same* spec (and
    the same cache entry, which the zero-perturbation engine guarantee
    makes sound).
    """

    algorithm: str
    distances: Tuple[int, ...]
    ks: Tuple[int, ...]
    trials: int
    params: Tuple[Tuple[str, float], ...] = ()
    placement: str = "offaxis"
    seed: int = 0
    horizon: Optional[float] = None
    require_k_le_d: bool = False
    scenario: Optional[ScenarioSpec] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "distances", tuple(int(d) for d in self.distances)
        )
        object.__setattr__(self, "ks", tuple(int(k) for k in self.ks))
        params = self.params
        if isinstance(params, Mapping):
            items = params.items()
        else:
            items = params
        object.__setattr__(
            self,
            "params",
            tuple(sorted((str(name), float(value)) for name, value in items)),
        )
        if not self.distances or not self.ks:
            raise ValueError("distances and ks must be non-empty")
        if any(d < 1 for d in self.distances):
            raise ValueError("distances must be >= 1")
        if any(k < 1 for k in self.ks):
            raise ValueError("ks must be >= 1")
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        if not isinstance(self.seed, int):
            raise TypeError(
                f"spec seed must be a plain int, got {type(self.seed).__name__}"
            )
        scenario = self.scenario
        if isinstance(scenario, Mapping):
            scenario = ScenarioSpec.from_dict(scenario)
        if scenario is not None and not isinstance(scenario, ScenarioSpec):
            raise TypeError(
                f"spec scenario must be a ScenarioSpec, mapping or None, "
                f"got {type(scenario).__name__}"
            )
        # Canonicalise: the all-default scenario IS the absent scenario, so
        # specs that mean the same sweep hash (and cache) identically.
        if scenario is not None and scenario.is_default:
            scenario = None
        object.__setattr__(self, "scenario", scenario)

    def param_dict(self) -> Dict[str, float]:
        return dict(self.params)

    def groups(self) -> List[SweepGroup]:
        """Batched execution units, in deterministic (k-major) order.

        With ``require_k_le_d``, cells with ``k > D`` are dropped (the
        regime the paper's analyses reduce away); a ``k`` whose distances
        all drop contributes no group.
        """
        groups: List[SweepGroup] = []
        for k in self.ks:
            distances = tuple(
                d
                for d in self.distances
                if not (self.require_k_le_d and k > d)
            )
            if distances:
                groups.append(SweepGroup(k=k, distances=distances))
        return groups

    def cells(self) -> List[SweepCell]:
        """All grid cells in group (k-major) order."""
        return [
            SweepCell(distance=d, k=group.k)
            for group in self.groups()
            for d in group.distances
        ]

    def to_dict(self) -> Dict:
        """Canonical JSON-able form (the hashing and cache-metadata basis)."""
        return {
            "version": SPEC_VERSION,
            "algorithm": self.algorithm,
            "params": [list(pair) for pair in self.params],
            "distances": list(self.distances),
            "ks": list(self.ks),
            "trials": self.trials,
            "placement": self.placement,
            "seed": self.seed,
            "horizon": self.horizon,
            "require_k_le_d": self.require_k_le_d,
            "scenario": (
                self.scenario.to_dict() if self.scenario is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepSpec":
        return cls(
            algorithm=data["algorithm"],
            distances=tuple(data["distances"]),
            ks=tuple(data["ks"]),
            trials=int(data["trials"]),
            params=tuple((name, value) for name, value in data["params"]),
            placement=data["placement"],
            seed=int(data["seed"]),
            horizon=data["horizon"],
            require_k_le_d=bool(data["require_k_le_d"]),
            scenario=data.get("scenario"),
        )

    def spec_hash(self) -> str:
        """Stable content hash over every result-determining knob."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:20]
