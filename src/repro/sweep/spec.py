"""Declarative sweep specifications.

A :class:`SweepSpec` names everything a parameter sweep depends on — the
algorithm (by registry name), its parameters, the ``D x k`` grid, trial
count, treasure placement, root seed and optional horizon — as plain
serialisable data.  Two properties follow from that:

* the spec has a stable content hash (:meth:`SweepSpec.spec_hash`), which
  keys the on-disk result cache: the same spec always maps to the same
  file, and any change to any knob maps to a different one;
* the spec can be shipped to a worker process verbatim, which is what the
  :func:`repro.sweep.runner.run_sweep` multiprocessing pool does.

Execution is organised in *groups*: all distances that share a ``k`` form
one group.  Excursion algorithms resolve a group with a single
:func:`repro.sim.events.simulate_find_times_batch` call that shares each
phase's excursion draws across the group's worlds (common random numbers —
per-cell means stay unbiased while cross-distance comparisons see paired
noise); walker baselines (:mod:`repro.sim.walkers`) resolve it with
:func:`repro.sim.walkers.walker_find_times_batch`, one child seed per
world.  The runner dispatches on the built strategy's type.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..algorithms import (
    GridBeliefSearch,
    HarmonicSearch,
    HedgedApproxSearch,
    NaiveTrustSearch,
    NonUniformSearch,
    RestartingHarmonicSearch,
    RhoApproxSearch,
    ScaledBudgetSearch,
    UniformSearch,
)
from ..algorithms.base import ExcursionAlgorithm
from ..algorithms.belief import AdaptiveSearcher
from ..checks.registry import register_stream
from ..scenarios import ScenarioSpec
from ..sim.walkers import BiasedWalker, LevyWalker, RandomWalker, Walker
from ..sim.world import WorldSpec, resolve_world
from ..stats import BudgetPolicy

__all__ = [
    "SPEC_VERSION",
    "BLOCK_SCHEDULE_VERSION",
    "FIRST_BLOCK_TRIALS",
    "MAX_BLOCK_TRIALS",
    "FIXED_CHUNK_THRESHOLD",
    "FIXED_CHUNK_SIZE",
    "GROUP_CHUNK_STREAM",
    "block_trials",
    "completed_trials",
    "group_chunks",
    "whole_blocks",
    "ALGORITHM_BUILDERS",
    "register_algorithm",
    "build_algorithm",
    "SweepCell",
    "SweepGroup",
    "SweepSpec",
    "SweepStrategy",
]

#: Bumped whenever the execution semantics change in a way that invalidates
#: cached results (seed derivation, engine semantics, npz layout).
#: v2: the spec dict gained the scenario layer (fault/heterogeneity knobs).
#: (The adaptive ``budget`` field is serialised only when present, so
#: budget-less specs keep their v2 identity and their cache entries.)
SPEC_VERSION = 2

#: Version of the deterministic trial-block schedule below.  Part of the
#: block store's data identity: changing the schedule re-keys every
#: adaptive cache entry instead of mixing incompatible block layouts.
#: v2: block growth is capped at :data:`MAX_BLOCK_TRIALS`, so a heavy
#: cell decomposes into many equal-sized blocks that the block-level
#: executor can run concurrently (v1's pure doubling made the last block
#: half the cell — an unsplittable straggler).
BLOCK_SCHEDULE_VERSION = 2

#: Size of the first trial block; later blocks double up to the cap, so
#: the schedule is 32, 32, 64, 128, 128, 128, ...  Doubling keeps small
#: allocations cheap (few engine calls); the cap keeps large cells
#: parallelisable and the stopping rule's granularity bounded.
FIRST_BLOCK_TRIALS = 32

#: Ceiling on the size of a single trial block (see above).
MAX_BLOCK_TRIALS = 128


def block_trials(block: int) -> int:
    """Trials in block ``block`` of the schedule (32, 32, 64, 128, 128, ...)."""
    if block < 0:
        raise ValueError(f"block index must be >= 0, got {block}")
    if block == 0:
        return FIRST_BLOCK_TRIALS
    return min(FIRST_BLOCK_TRIALS << (block - 1), MAX_BLOCK_TRIALS)


#: First block index at the cap: doubling stops there.
_CAP_BLOCK = (MAX_BLOCK_TRIALS // FIRST_BLOCK_TRIALS).bit_length()


def completed_trials(blocks: int) -> int:
    """Total trials after ``blocks`` whole blocks of the schedule."""
    if blocks < 0:
        raise ValueError(f"block count must be >= 0, got {blocks}")
    if blocks == 0:
        return 0
    if blocks <= _CAP_BLOCK:
        return FIRST_BLOCK_TRIALS << (blocks - 1)
    return (FIRST_BLOCK_TRIALS << (_CAP_BLOCK - 1)) + (
        blocks - _CAP_BLOCK
    ) * MAX_BLOCK_TRIALS


def whole_blocks(trials: int) -> int:
    """Largest block count whose cumulative size is ``<= trials``.

    A cached cell is usable up to this boundary; any ragged tail beyond
    it (from a crashed writer or foreign file) is discarded so appended
    blocks always start at a schedule boundary.
    """
    blocks = 0
    while completed_trials(blocks + 1) <= trials:
        blocks += 1
    return blocks


#: Fixed-path group chunking (see :func:`group_chunks`).  A k-group with
#: more distances than the threshold is split into chunks of
#: ``FIXED_CHUNK_SIZE`` so a grid with few ``k`` values but many
#: distances stops serialising on a single worker.  The layout is a
#: function of the spec alone — never of the worker count — because for
#: excursion algorithms the batch engine shares draws across a chunk, so
#: the chunk layout is part of the result's identity (serial and pooled
#: runs must stay bitwise identical).  Specs whose groups actually split
#: carry the layout in their canonical dict (see ``SweepSpec.to_dict``).
FIXED_CHUNK_THRESHOLD = 8
FIXED_CHUNK_SIZE = 4

#: Leading key of the per-chunk simulation stream when a group splits:
#: chunk ``c`` of a group is seeded ``derive_seed(group_seed,
#: GROUP_CHUNK_STREAM, c)``.
GROUP_CHUNK_STREAM = register_stream("GROUP_CHUNK_STREAM", 0xC4A9C)


def group_chunks(distances: Sequence[int]) -> List[Tuple[int, ...]]:
    """Deterministic chunk layout of one group's distances.

    Groups at or under :data:`FIXED_CHUNK_THRESHOLD` distances stay whole
    (byte-for-byte the pre-executor execution, preserving every existing
    cache entry); larger groups split into :data:`FIXED_CHUNK_SIZE`-sized
    chunks in distance order.
    """
    items = tuple(distances)
    if len(items) <= FIXED_CHUNK_THRESHOLD:
        return [items]
    return [
        items[i : i + FIXED_CHUNK_SIZE]
        for i in range(0, len(items), FIXED_CHUNK_SIZE)
    ]

ParamsLike = Union[Mapping[str, float], Sequence[Tuple[str, float]]]

#: What a builder may return: an excursion algorithm (resolved by the
#: batched excursion engine), a walker baseline (resolved by the batched
#: walker engine of :mod:`repro.sim.walkers`), or an adaptive searcher
#: (self-simulating, walker-shaped; :mod:`repro.algorithms.belief`).  The
#: runner dispatches on the instance type.
SweepStrategy = Union[ExcursionAlgorithm, Walker, AdaptiveSearcher]

#: name -> builder(k, params) for every strategy a sweep can name.
#: Builders receive the true agent count ``k`` so that k-aware algorithms
#: (``A_k``) can use it; k-oblivious algorithms and walkers ignore it.
ALGORITHM_BUILDERS: Dict[
    str, Callable[[int, Mapping[str, float]], SweepStrategy]
] = {}


def register_algorithm(
    name: str, builder: Callable[[int, Mapping[str, float]], SweepStrategy]
) -> None:
    """Register a sweepable strategy under ``name`` (overwrites quietly)."""
    ALGORITHM_BUILDERS[name] = builder


def build_algorithm(
    name: str, k: int, params: Mapping[str, float]
) -> SweepStrategy:
    """Instantiate the registered strategy ``name`` for ``k`` agents."""
    if name not in ALGORITHM_BUILDERS:
        known = ", ".join(sorted(ALGORITHM_BUILDERS))
        raise KeyError(f"unknown sweep algorithm {name!r}; known: {known}")
    return ALGORITHM_BUILDERS[name](k, params)


register_algorithm("nonuniform", lambda k, p: NonUniformSearch(k=p.get("k", k)))
register_algorithm(
    "nonuniform_scaled",
    lambda k, p: ScaledBudgetSearch(
        k=p.get("k", k), budget_scale=p.get("budget_scale", 1.0)
    ),
)
register_algorithm("uniform", lambda k, p: UniformSearch(p.get("eps", 0.5)))
register_algorithm("harmonic", lambda k, p: HarmonicSearch(p.get("delta", 0.5)))
register_algorithm(
    "restarting_harmonic",
    lambda k, p: RestartingHarmonicSearch(p.get("delta", 0.5)),
)
register_algorithm("rho", lambda k, p: RhoApproxSearch(k_a=p["k_a"], rho=p["rho"]))
register_algorithm("naive", lambda k, p: NaiveTrustSearch(k_tilde=p["k_tilde"]))
register_algorithm(
    "hedged",
    lambda k, p: HedgedApproxSearch(
        k_tilde=p["k_tilde"], eps=p.get("eps", 0.5)
    ),
)

# Walker baselines (require a spec horizon; see repro.sim.walkers).
register_algorithm("random_walk", lambda k, p: RandomWalker())
register_algorithm(
    "biased_walk", lambda k, p: BiasedWalker(p.get("persistence", 0.9))
)
register_algorithm(
    "levy",
    lambda k, p: LevyWalker(p.get("mu", 2.0), int(p.get("max_segment", 10**6))),
)

# Adaptive searchers (require a spec horizon; see repro.algorithms.belief).
register_algorithm(
    "grid_belief",
    lambda k, p: GridBeliefSearch(
        cell=int(p.get("cell", 4)),
        radius=(int(p["radius"]) if "radius" in p else None),
        tremble=p.get("tremble", 0.25),
    ),
)


@dataclass(frozen=True)
class SweepCell:
    """One ``(D, k)`` cell of a sweep grid."""

    distance: int
    k: int


@dataclass(frozen=True)
class SweepGroup:
    """All cells sharing one ``k`` — the unit of batched execution."""

    k: int
    distances: Tuple[int, ...]


@dataclass(frozen=True)
class SweepSpec:
    """A fully-described ``algorithm x D x k x trials`` sweep.

    ``params`` accepts a mapping or key/value pairs and is normalised to a
    sorted tuple so that equal specs hash equally.  ``seed`` must be a plain
    integer (serialisable); derive one from a structured key with
    :func:`repro.sim.rng.derive_seed`.

    ``scenario`` (:class:`repro.scenarios.ScenarioSpec`, a mapping, or
    ``None``) is the fault/heterogeneity layer and participates in the
    content hash — two sweeps that differ only in scenario cache
    separately.  The all-default scenario is canonicalised to ``None``, so
    "no scenario" and "explicitly unperturbed" are the *same* spec (and
    the same cache entry, which the zero-perturbation engine guarantee
    makes sound).

    ``budget`` (:class:`repro.stats.BudgetPolicy`, a mapping, or ``None``)
    selects the trial-allocation policy.  ``None`` means "exactly
    ``trials`` per cell", and a ``fixed(n)`` policy is canonicalised to
    exactly that (``trials=n, budget=None``) — a fixed-budget spec *is*
    today's spec: same hash, same cache entry, bitwise identical results.
    Adaptive policies (``target_rel_ci``, ``wall``) participate in the
    hash (two sweeps with different precision targets are different
    sweeps) while their trial *blocks* are cached under the policy-free
    :meth:`data_hash`, so tightening a target tops existing blocks up
    instead of recomputing them.  ``trials`` is ignored by adaptive
    execution (allocation comes from the policy).

    ``world`` (:class:`repro.sim.world.WorldSpec`, a mapping, or ``None``)
    is the world-process layer — target count, motion, arrival,
    world-level detection.  Like the scenario, it participates in both
    hash partitions (a dynamic sweep is a different sweep *and* a
    different block stream) and the all-default spec is canonicalised to
    ``None`` via :func:`repro.sim.world.resolve_world`, so "no world
    spec" and "explicitly static" are the same spec, the same hash, and
    the same cache entry — the engines' structural legacy-path guarantee
    makes that sound.  Dynamic-world execution is per-row seeded (one
    engine call per distance), so the chunk layout never affects results
    and dynamic specs never carry the ``fixed_chunking`` marker.
    """

    algorithm: str
    distances: Tuple[int, ...]
    ks: Tuple[int, ...]
    trials: int
    params: Tuple[Tuple[str, float], ...] = ()
    placement: str = "offaxis"
    seed: int = 0
    horizon: Optional[float] = None
    require_k_le_d: bool = False
    scenario: Optional[ScenarioSpec] = None
    budget: Optional[BudgetPolicy] = None
    world: Optional[WorldSpec] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "distances", tuple(int(d) for d in self.distances)
        )
        object.__setattr__(self, "ks", tuple(int(k) for k in self.ks))
        # The constructor accepts mappings and pair sequences for the
        # polymorphic fields; the locals are Any because the declared
        # field types describe the *canonicalised* form built here.
        params: Any = self.params
        items = params.items() if isinstance(params, Mapping) else params
        object.__setattr__(
            self,
            "params",
            tuple(sorted((str(name), float(value)) for name, value in items)),
        )
        if not self.distances or not self.ks:
            raise ValueError("distances and ks must be non-empty")
        if any(d < 1 for d in self.distances):
            raise ValueError("distances must be >= 1")
        if any(k < 1 for k in self.ks):
            raise ValueError("ks must be >= 1")
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        if not isinstance(self.seed, int):
            raise TypeError(
                f"spec seed must be a plain int, got {type(self.seed).__name__}"
            )
        scenario: Any = self.scenario
        if isinstance(scenario, Mapping):
            scenario = ScenarioSpec.from_dict(scenario)
        if scenario is not None and not isinstance(scenario, ScenarioSpec):
            raise TypeError(
                f"spec scenario must be a ScenarioSpec, mapping or None, "
                f"got {type(scenario).__name__}"
            )
        # Canonicalise: the all-default scenario IS the absent scenario, so
        # specs that mean the same sweep hash (and cache) identically.
        if scenario is not None and scenario.is_default:
            scenario = None
        object.__setattr__(self, "scenario", scenario)
        budget: Any = self.budget
        if isinstance(budget, Mapping):
            budget = BudgetPolicy.from_dict(budget)
        if budget is not None and not isinstance(budget, BudgetPolicy):
            raise TypeError(
                f"spec budget must be a BudgetPolicy, mapping or None, "
                f"got {type(budget).__name__}"
            )
        # Canonicalise: fixed(n) IS today's trials=n spec — same hash,
        # same cache entry, bitwise identical execution path.
        if budget is not None and budget.is_fixed:
            object.__setattr__(self, "trials", int(budget.trials))
            budget = None
        object.__setattr__(self, "budget", budget)
        world: Any = self.world
        if isinstance(world, Mapping):
            world = WorldSpec.from_dict(world)
        if world is not None and not isinstance(world, WorldSpec):
            raise TypeError(
                f"spec world must be a WorldSpec, mapping or None, "
                f"got {type(world).__name__}"
            )
        # Canonicalise: the all-default world IS the absent world, so
        # static single-target specs keep their historical hash and cache.
        object.__setattr__(self, "world", resolve_world(world))

    def param_dict(self) -> Dict[str, float]:
        return dict(self.params)

    def groups(self) -> List[SweepGroup]:
        """Batched execution units, in deterministic (k-major) order.

        With ``require_k_le_d``, cells with ``k > D`` are dropped (the
        regime the paper's analyses reduce away); a ``k`` whose distances
        all drop contributes no group.
        """
        groups: List[SweepGroup] = []
        for k in self.ks:
            distances = tuple(
                d
                for d in self.distances
                if not (self.require_k_le_d and k > d)
            )
            if distances:
                groups.append(SweepGroup(k=k, distances=distances))
        return groups

    def cells(self) -> List[SweepCell]:
        """All grid cells in group (k-major) order."""
        return [
            SweepCell(distance=d, k=group.k)
            for group in self.groups()
            for d in group.distances
        ]

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-able form (the hashing and cache-metadata basis).

        The ``budget`` key is emitted only when an adaptive policy is
        present, so budget-less specs keep the exact dict (and hash, and
        on-disk cache entries) they had before the adaptive layer existed.
        """
        data: Dict[str, object] = {
            "version": SPEC_VERSION,
            "algorithm": self.algorithm,
            "params": [list(pair) for pair in self.params],
            "distances": list(self.distances),
            "ks": list(self.ks),
            "trials": self.trials,
            "placement": self.placement,
            "seed": self.seed,
            "horizon": self.horizon,
            "require_k_le_d": self.require_k_le_d,
            "scenario": (
                self.scenario.to_dict() if self.scenario is not None else None
            ),
        }
        if self.budget is not None:
            data["budget"] = self.budget.to_dict()
        # Like ``budget``: emitted only when present, so every static
        # single-target spec keeps its historical dict, hash, and cache
        # entries byte for byte.
        if self.world is not None:
            data["world"] = self.world.to_dict()
        # Specs whose k-groups exceed the chunk threshold execute under
        # the chunked fixed-path layout, which — for excursion
        # algorithms, whose batch engine shares draws across a chunk —
        # changes the draw streams relative to a whole-group batch.  The
        # layout parameters join the canonical dict for exactly those
        # specs, so their hash moves and stale pre-chunking cache entries
        # can never be mistaken for chunked results — while every spec at
        # or under the threshold keeps its historical dict, hash, and
        # cache entries bit for bit.  Walker rows are per-world seeded
        # and chunk bitwise-identically, so walker specs are exempt:
        # their old entries stay valid and keep hitting.
        if self._chunking_changes_results():
            data["fixed_chunking"] = [FIXED_CHUNK_THRESHOLD, FIXED_CHUNK_SIZE]
        return data

    def _chunking_changes_results(self) -> bool:
        if not any(
            len(group.distances) > FIXED_CHUNK_THRESHOLD
            for group in self.groups()
        ):
            return False
        if self.world is not None:
            # Dynamic-world rows are per-world seeded (one engine call
            # per distance, walker-style), so any chunk layout is
            # bitwise identical to the unsplit group.
            return False
        try:
            probe = build_algorithm(
                self.algorithm, self.ks[0], self.param_dict()
            )
        except KeyError:
            # Unregistered strategy or missing parameter: the spec can
            # never execute, so err on the side of the marker.
            return True
        return not isinstance(probe, (Walker, AdaptiveSearcher))

    def hashed_fields(self) -> Tuple[str, ...]:
        """The keys of this spec's full-identity hash partition.

        Introspection seam for rule R005: the committed hash manifest
        records which fields exist in which partition, so a field that
        silently appears, disappears, or moves between partitions is
        caught by ``repro-ants check``.
        """
        return tuple(sorted(self.to_dict()))

    def data_fields(self) -> Tuple[str, ...]:
        """The keys of this spec's block-stream-identity hash partition."""
        return tuple(sorted(self.data_dict()))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        return cls(
            algorithm=data["algorithm"],
            distances=tuple(data["distances"]),
            ks=tuple(data["ks"]),
            trials=int(data["trials"]),
            params=tuple((name, value) for name, value in data["params"]),
            placement=data["placement"],
            seed=int(data["seed"]),
            horizon=data["horizon"],
            require_k_le_d=bool(data["require_k_le_d"]),
            scenario=data.get("scenario"),
            budget=data.get("budget"),
            world=data.get("world"),
        )

    def spec_hash(self) -> str:
        """Stable content hash over every result-determining knob."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:20]

    def data_dict(self) -> Dict[str, object]:
        """Identity of this spec's per-cell trial-block *streams*.

        Everything that determines the content of block ``b`` of cell
        ``(D, k)`` — algorithm, params, placement, root seed, horizon,
        scenario, and the block schedule version — and nothing that only
        determines *which* or *how many* cells/trials are wanted (grid
        extents, ``trials``, ``budget``, ``require_k_le_d``).  Two specs
        with the same ``data_dict`` can share cached blocks cell by cell:
        a wider grid reuses the old grid's cells, a tighter precision
        target tops cells up.
        """
        data: Dict[str, object] = {
            "version": SPEC_VERSION,
            "block_schedule": BLOCK_SCHEDULE_VERSION,
            "algorithm": self.algorithm,
            "params": [list(pair) for pair in self.params],
            "placement": self.placement,
            "seed": self.seed,
            "horizon": self.horizon,
            "scenario": (
                self.scenario.to_dict() if self.scenario is not None else None
            ),
        }
        # The world process changes every block's content, so it joins
        # the block-stream identity — but only when present, keeping
        # every existing static block store keyed as before.
        if self.world is not None:
            data["world"] = self.world.to_dict()
        return data

    def data_hash(self) -> str:
        """Stable content hash of :meth:`data_dict` (block-store key)."""
        canonical = json.dumps(self.data_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:20]
