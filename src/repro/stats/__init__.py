"""Streaming statistics and trial-budget policies (the precision layer).

The paper's results are statements about *expectations and tails* of find
times, so the right question for a sweep cell is never "did we run 60
trials?" but "do we know the mean to the precision the claim needs?".
This package supplies the two halves of that question:

* :mod:`repro.stats.accumulators` — mergeable streaming accumulators
  (Welford moments, Wilson success counts, P² quantiles, reservoir
  samples with bootstrap CIs) and the censoring-aware
  :class:`FindTimeAccumulator` / :class:`FindTimeSummary` pair that the
  sweep stack and the experiment tables consume;
* :mod:`repro.stats.policy` — the serialisable :class:`BudgetPolicy`
  (``fixed`` / ``target_rel_ci`` / ``wall``) that
  :class:`repro.sweep.spec.SweepSpec` carries and the incremental runner
  evaluates per cell.

The package is deliberately dependency-light (NumPy only; SciPy is used
opportunistically for normal quantiles) and imports nothing from the
simulation or sweep layers, so accumulators are usable anywhere — worker
processes, analysis notebooks, the CLI.
"""

from .accumulators import (
    FindTimeAccumulator,
    FindTimeSummary,
    P2Quantile,
    ReservoirSample,
    StreamingMoments,
    SuccessCounter,
    normal_quantile,
    summarize_times,
    wilson_interval,
)
from .policy import BudgetPolicy

__all__ = [
    "BudgetPolicy",
    "FindTimeAccumulator",
    "FindTimeSummary",
    "P2Quantile",
    "ReservoirSample",
    "StreamingMoments",
    "SuccessCounter",
    "normal_quantile",
    "summarize_times",
    "wilson_interval",
]
