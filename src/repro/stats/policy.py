"""Serialisable trial-budget policies for sweep cells.

A :class:`BudgetPolicy` answers one question for the incremental sweep
runner: *given what a cell's accumulator knows so far, is the cell done?*
Three kinds:

* ``fixed(n)`` — exactly ``n`` trials, today's behaviour.  On a
  :class:`repro.sweep.spec.SweepSpec` a fixed policy is *canonicalised
  away* (it becomes ``trials=n, budget=None``), so a fixed-budget spec is
  the same spec — same content hash, same cache entry, bitwise identical
  results — as a plain one.
* ``target_rel_ci(r, min_trials, max_trials)`` — precision-targeted
  sequential allocation: a cell keeps drawing trial blocks until the
  relative confidence-interval half-width of its (truncated) mean drops
  to ``r``, bounded below by ``min_trials`` (no stopping on tiny-sample
  flukes) and above by ``max_trials`` (heavy-tailed cells terminate).
  This is the scientifically right allocation for the paper's claims:
  easy cells (small ``D``, large ``k``) stop early, the noisy tail cells
  that decide the envelopes get the samples.
* ``wall(seconds, min_trials, max_trials)`` — a per-cell wall-clock
  budget: keep adding blocks while the cell has been simulating for less
  than ``seconds`` (cached blocks are free and do not count).  Unlike
  the other kinds, *how many* trials this allocates depends on machine
  speed and load; the trial blocks themselves remain the deterministic
  seeded stream, so two wall runs agree on every block they share.

Policies are plain frozen dataclasses with a canonical dict form, so they
serialise into sweep-spec hashes and cache metadata.  The stopping rule
works on whole *blocks* (see the runner's deterministic block schedule),
so ``max_trials`` is a stopping threshold, not an exact cap: allocation
ends at the first block boundary at or past it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from .accumulators import FindTimeSummary

__all__ = ["BudgetPolicy"]

#: Default floor/ceiling for adaptive allocation.
DEFAULT_MIN_TRIALS = 32
DEFAULT_MAX_TRIALS = 4096

_KINDS = ("fixed", "target_rel_ci", "wall")


@dataclass(frozen=True)
class BudgetPolicy:
    """How many trials a sweep cell deserves (see module docstring).

    Construct via the classmethods — :meth:`fixed`,
    :meth:`target_rel_ci`, :meth:`wall` — rather than positionally.
    """

    kind: str
    trials: Optional[int] = None
    rel_ci: Optional[float] = None
    min_trials: int = DEFAULT_MIN_TRIALS
    max_trials: int = DEFAULT_MAX_TRIALS
    seconds: Optional[float] = None
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown budget policy kind {self.kind!r}; known: {_KINDS}"
            )
        if not 0 < self.confidence < 1:
            raise ValueError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )
        if self.kind == "fixed":
            trials = self.trials
            if trials is None or int(trials) < 1:
                raise ValueError(
                    f"fixed policy needs trials >= 1, got {trials}"
                )
            object.__setattr__(self, "trials", int(trials))
            return
        if int(self.min_trials) < 1:
            raise ValueError(f"min_trials must be >= 1, got {self.min_trials}")
        if int(self.max_trials) < int(self.min_trials):
            raise ValueError(
                f"max_trials ({self.max_trials}) must be >= min_trials "
                f"({self.min_trials})"
            )
        object.__setattr__(self, "min_trials", int(self.min_trials))
        object.__setattr__(self, "max_trials", int(self.max_trials))
        if self.kind == "target_rel_ci":
            rel_ci = self.rel_ci
            if rel_ci is None or not 0 < float(rel_ci):
                raise ValueError(
                    f"target_rel_ci needs rel_ci > 0, got {rel_ci}"
                )
            object.__setattr__(self, "rel_ci", float(rel_ci))
        elif self.kind == "wall":
            seconds = self.seconds
            if seconds is None or not float(seconds) > 0:
                raise ValueError(
                    f"wall policy needs seconds > 0, got {seconds}"
                )
            object.__setattr__(self, "seconds", float(seconds))

    # -- constructors -------------------------------------------------
    @classmethod
    def fixed(cls, trials: int) -> "BudgetPolicy":
        """Exactly ``trials`` trials per cell (today's semantics)."""
        return cls(kind="fixed", trials=trials)

    @classmethod
    def target_rel_ci(
        cls,
        rel_ci: float,
        *,
        min_trials: int = DEFAULT_MIN_TRIALS,
        max_trials: int = DEFAULT_MAX_TRIALS,
        confidence: float = 0.95,
    ) -> "BudgetPolicy":
        """Stop once the mean's relative CI half-width reaches ``rel_ci``."""
        return cls(
            kind="target_rel_ci",
            rel_ci=rel_ci,
            min_trials=min_trials,
            max_trials=max_trials,
            confidence=confidence,
        )

    @classmethod
    def wall(
        cls,
        seconds: float,
        *,
        min_trials: int = DEFAULT_MIN_TRIALS,
        max_trials: int = DEFAULT_MAX_TRIALS,
    ) -> "BudgetPolicy":
        """Stop once a cell has simulated for ``seconds`` wall-clock."""
        return cls(
            kind="wall",
            seconds=seconds,
            min_trials=min_trials,
            max_trials=max_trials,
        )

    # -- behaviour ----------------------------------------------------
    @property
    def is_fixed(self) -> bool:
        return self.kind == "fixed"

    def satisfied(
        self,
        count: int,
        summary: Optional[FindTimeSummary] = None,
        elapsed: float = 0.0,
    ) -> bool:
        """Is a cell with ``count`` trials and this ``summary`` done?"""
        # The Optional fields are narrowed through locals: __post_init__
        # guarantees each kind's own field is set, which mypy cannot see
        # across the frozen-dataclass boundary.
        if self.kind == "fixed":
            return self.trials is not None and count >= self.trials
        if count >= self.max_trials:
            return True
        if count < self.min_trials:
            return False
        if self.kind == "target_rel_ci":
            target = self.rel_ci
            if summary is None or target is None:
                return False
            rel = float(summary.rel_ci)
            return math.isfinite(rel) and rel <= target
        seconds = self.seconds  # wall
        return seconds is not None and elapsed >= seconds

    def describe(self) -> str:
        if self.kind == "fixed":
            return f"fixed({self.trials} trials)"
        if self.kind == "target_rel_ci":
            rel_ci = self.rel_ci if self.rel_ci is not None else math.nan
            return (
                f"target_rel_ci(r={rel_ci:g} @ {self.confidence:g}, "
                f"trials in [{self.min_trials}, ~{self.max_trials}])"
            )
        seconds = self.seconds if self.seconds is not None else math.nan
        return (
            f"wall({seconds:g}s/cell, "
            f"trials in [{self.min_trials}, ~{self.max_trials}])"
        )

    # -- serialisation ------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-able form (hashed into sweep-spec identity)."""
        if self.kind == "fixed":
            return {"kind": "fixed", "trials": self.trials}
        data: Dict[str, object] = {
            "kind": self.kind,
            "min_trials": self.min_trials,
            "max_trials": self.max_trials,
        }
        if self.kind == "target_rel_ci":
            data["rel_ci"] = self.rel_ci
            data["confidence"] = self.confidence
        else:
            data["seconds"] = self.seconds
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BudgetPolicy":
        kind = data.get("kind")
        if kind == "fixed":
            return cls.fixed(data["trials"])
        if kind == "target_rel_ci":
            return cls.target_rel_ci(
                data["rel_ci"],
                min_trials=data.get("min_trials", DEFAULT_MIN_TRIALS),
                max_trials=data.get("max_trials", DEFAULT_MAX_TRIALS),
                confidence=data.get("confidence", 0.95),
            )
        if kind == "wall":
            return cls.wall(
                data["seconds"],
                min_trials=data.get("min_trials", DEFAULT_MIN_TRIALS),
                max_trials=data.get("max_trials", DEFAULT_MAX_TRIALS),
            )
        raise ValueError(f"unknown budget policy kind {kind!r}")
