"""Mergeable streaming accumulators for find-time statistics.

The adaptive sweep runner (:mod:`repro.sweep.runner`) consumes find times
in *blocks* — it never holds a cell's full sample in one place at one
time, and cached blocks from earlier runs must combine with freshly
simulated ones.  Every accumulator here therefore supports

* ``update`` / ``update_block`` — fold one value or a NumPy block into
  the running state in O(1) memory, and
* ``merge`` — combine two accumulators built from disjoint sample parts
  into the accumulator of the union (associative and commutative up to
  floating-point rounding),

so per-block, per-worker and per-run partial states all compose.  The
pieces:

* :class:`StreamingMoments` — Welford/Chan mean and variance;
* :class:`SuccessCounter` — binomial counts with Wilson score intervals
  (:func:`wilson_interval` is the module-level closed form);
* :class:`P2Quantile` — the P² marker algorithm: one streaming quantile
  in O(1) state (stream-only: P² state is not mergeable, by construction);
* :class:`ReservoirSample` — bounded uniform subsample of the stream,
  mergeable, the basis for bootstrap confidence intervals and arbitrary
  quantiles;
* :class:`FindTimeAccumulator` — the composite the sweep stack uses: it
  understands censoring (non-finite times, or times past a horizon) and
  produces a :class:`FindTimeSummary` with the truncated mean, its CI
  half-width, the success rate with a Wilson interval, and the censored
  fraction.  A censored mean is a *lower bound* on the true expectation;
  the summary says so (`is_lower_bound`) instead of hiding it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "normal_quantile",
    "wilson_interval",
    "StreamingMoments",
    "SuccessCounter",
    "P2Quantile",
    "ReservoirSample",
    "FindTimeSummary",
    "FindTimeAccumulator",
    "summarize_times",
]


def normal_quantile(p: float) -> float:
    """Standard normal quantile ``Phi^-1(p)``.

    Uses ``scipy`` when available (the repository's CI installs it) and
    falls back to the Acklam rational approximation (|error| < 1.2e-9)
    so the stats subsystem never hard-depends on scipy.
    """
    if not 0 < p < 1:
        raise ValueError(f"p must be in (0, 1), got {p}")
    try:
        from scipy import stats as _stats

        return float(_stats.norm.ppf(p))
    except ImportError:  # pragma: no cover - scipy present in CI
        return _acklam_ppf(p)


def _acklam_ppf(p: float) -> float:  # pragma: no cover - scipy fallback
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    plow, phigh = 0.02425, 1 - 0.02425
    if p < plow:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p > phigh:
        return -_acklam_ppf(1 - p)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
            + a[5]) * q / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r
                            + b[4]) * r + 1)


def wilson_interval(
    successes: int, total: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Better behaved than the normal approximation at the extremes — which
    is where success-probability curves (Theorem 5.1) and crash-hazard
    cliffs (E11) live.  This is the canonical implementation;
    :func:`repro.analysis.estimators.wilson_interval` delegates here.
    """
    if total <= 0:
        raise ValueError(f"total must be positive, got {total}")
    if not 0 <= successes <= total:
        raise ValueError(f"need 0 <= successes <= total, got {successes}/{total}")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    z = normal_quantile((1 + confidence) / 2)
    p = successes / total
    denom = 1 + z * z / total
    centre = (p + z * z / (2 * total)) / denom
    margin = z * math.sqrt(p * (1 - p) / total + z * z / (4 * total * total)) / denom
    return max(0.0, centre - margin), min(1.0, centre + margin)


class StreamingMoments:
    """Streaming mean/variance (Welford updates, Chan pairwise merge).

    ``update`` folds one value, ``update_block`` a whole NumPy block (as
    one Chan combine, so a block costs one pass), ``merge`` combines two
    accumulators over disjoint samples.  All values must be finite — the
    censoring policy belongs to :class:`FindTimeAccumulator`, not here.
    """

    __slots__ = ("count", "_mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def update(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"moments require finite values, got {value}")
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    def update_block(self, values) -> None:
        block = np.asarray(values, dtype=np.float64).ravel()
        if block.size == 0:
            return
        if not np.all(np.isfinite(block)):
            raise ValueError("moments require finite values")
        mean = float(block.mean())
        m2 = float(np.sum((block - mean) ** 2))
        self._combine(int(block.size), mean, m2)

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """Fold ``other`` into this accumulator (in place); returns self."""
        self._combine(other.count, other._mean, other._m2)
        return self

    def copy(self) -> "StreamingMoments":
        clone = StreamingMoments()
        clone.count, clone._mean, clone._m2 = self.count, self._mean, self._m2
        return clone

    def _combine(self, count: int, mean: float, m2: float) -> None:
        if count == 0:
            return
        total = self.count + count
        delta = mean - self._mean
        self._m2 += m2 + delta * delta * self.count * count / total
        self._mean += delta * count / total
        self.count = total

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance; ``nan`` below two observations."""
        if self.count < 2:
            return math.nan
        return max(0.0, self._m2) / (self.count - 1)

    @property
    def stderr(self) -> float:
        variance = self.variance
        if math.isnan(variance):
            return math.nan
        return math.sqrt(variance / self.count)

    def ci_halfwidth(self, confidence: float = 0.95) -> float:
        """Normal-theory CI half-width of the mean; ``nan`` below n=2."""
        stderr = self.stderr
        if math.isnan(stderr):
            return math.nan
        return normal_quantile((1 + confidence) / 2) * stderr


class SuccessCounter:
    """Binomial success/total counts with Wilson score intervals."""

    __slots__ = ("successes", "total")

    def __init__(self, successes: int = 0, total: int = 0) -> None:
        if total < 0 or not 0 <= successes <= max(total, 0):
            raise ValueError(f"need 0 <= successes <= total, got {successes}/{total}")
        self.successes = int(successes)
        self.total = int(total)

    def update(self, success: bool) -> None:
        self.successes += bool(success)
        self.total += 1

    def update_block(self, successes: int, total: int) -> None:
        if total < 0 or not 0 <= successes <= total:
            raise ValueError(f"need 0 <= successes <= total, got {successes}/{total}")
        self.successes += int(successes)
        self.total += int(total)

    def merge(self, other: "SuccessCounter") -> "SuccessCounter":
        self.successes += other.successes
        self.total += other.total
        return self

    def copy(self) -> "SuccessCounter":
        return SuccessCounter(self.successes, self.total)

    @property
    def rate(self) -> float:
        return self.successes / self.total if self.total else math.nan

    def wilson(self, confidence: float = 0.95) -> Tuple[float, float]:
        if self.total == 0:
            return (0.0, 1.0)
        return wilson_interval(self.successes, self.total, confidence)


class P2Quantile:
    """The P² streaming quantile estimator (Jain & Chlamtac 1985).

    Tracks one quantile ``q`` with five markers in O(1) state; below five
    observations the exact empirical quantile of the buffer is returned.
    P² state is *order-dependent* and not mergeable — use
    :class:`ReservoirSample` where merge is required (the composite
    accumulator does).
    """

    __slots__ = ("q", "_heights", "_positions", "_desired", "_rate", "_buffer")

    def __init__(self, q: float) -> None:
        if not 0 < q < 1:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = float(q)
        self._buffer: list = []
        self._heights: Optional[np.ndarray] = None
        self._positions = np.arange(1, 6, dtype=np.float64)
        self._desired = np.array(
            [1.0, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5.0], dtype=np.float64
        )
        self._rate = np.array([0.0, q / 2, q, (1 + q) / 2, 1.0], dtype=np.float64)

    @property
    def count(self) -> int:
        if self._heights is None:
            return len(self._buffer)
        return int(self._positions[4])

    def update(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"P2 requires finite values, got {value}")
        if self._heights is None:
            self._buffer.append(value)
            if len(self._buffer) == 5:
                self._heights = np.sort(np.asarray(self._buffer, dtype=np.float64))
                self._buffer = []
            return
        h = self._heights
        if value < h[0]:
            h[0] = value
            cell = 0
        elif value >= h[4]:
            h[4] = value
            cell = 3
        else:
            cell = int(np.searchsorted(h, value, side="right")) - 1
            cell = min(max(cell, 0), 3)
        self._positions[cell + 1:] += 1
        self._desired += self._rate
        for i in (1, 2, 3):
            d = self._desired[i] - self._positions[i]
            below = self._positions[i] - self._positions[i - 1]
            above = self._positions[i + 1] - self._positions[i]
            if (d >= 1 and above > 1) or (d <= -1 and below > 1):
                step = 1.0 if d >= 1 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:  # fall back to linear interpolation
                    j = i + int(step)
                    h[i] += step * (h[j] - h[i]) / (
                        self._positions[j] - self._positions[i]
                    )
                self._positions[i] += step

    def update_block(self, values) -> None:
        for value in np.asarray(values, dtype=np.float64).ravel():
            self.update(value)

    def _parabolic(self, i: int, step: float) -> float:
        n = self._positions
        h = self._heights
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    @property
    def value(self) -> float:
        """Current quantile estimate (``nan`` before any observation)."""
        if self._heights is not None:
            return float(self._heights[2])
        if not self._buffer:
            return math.nan
        ordered = sorted(self._buffer)
        idx = min(int(self.q * (len(ordered) - 1) + 0.5), len(ordered) - 1)
        return float(ordered[idx])


class ReservoirSample:
    """Bounded uniform subsample of a stream (Vitter's algorithm R).

    Holds at most ``capacity`` values; after ``seen`` observations each
    one is retained with probability ``capacity / seen``.  ``merge``
    draws a weighted subsample from the union, so merged reservoirs stay
    (approximately) exchangeable with a single-pass reservoir over the
    concatenated stream.  Randomness is owned by the accumulator (seeded
    at construction) so results are reproducible.
    """

    __slots__ = ("capacity", "seen", "_values", "_rng")

    def __init__(self, capacity: int = 512, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.seen = 0
        self._values: list = []
        self._rng = np.random.default_rng(seed)

    def update(self, value: float) -> None:
        self.seen += 1
        if len(self._values) < self.capacity:
            self._values.append(float(value))
            return
        j = int(self._rng.integers(0, self.seen))
        if j < self.capacity:
            self._values[j] = float(value)

    def update_block(self, values) -> None:
        for value in np.asarray(values, dtype=np.float64).ravel():
            self.update(value)

    def merge(self, other: "ReservoirSample") -> "ReservoirSample":
        """Weighted subsample of the union of both reservoirs (in place)."""
        if other.seen == 0:
            return self
        if self.seen == 0:
            self.seen = other.seen
            self._values = list(other._values)
            if len(self._values) > self.capacity:
                # The donor may be wider than this reservoir; subsample
                # down so the capacity invariant (and uniformity) holds.
                chosen = self._rng.choice(
                    len(self._values), size=self.capacity, replace=False
                )
                self._values = [self._values[i] for i in chosen]
            return self
        mine = np.asarray(self._values, dtype=np.float64)
        theirs = np.asarray(other._values, dtype=np.float64)
        pool = np.concatenate([mine, theirs])
        # Each retained value represents seen/len(values) stream items.
        weights = np.concatenate(
            [
                np.full(mine.size, self.seen / mine.size),
                np.full(theirs.size, other.seen / theirs.size),
            ]
        )
        weights = weights / weights.sum()
        keep = min(self.capacity, pool.size)
        chosen = self._rng.choice(pool.size, size=keep, replace=False, p=weights)
        self._values = [float(v) for v in pool[chosen]]
        self.seen += other.seen
        return self

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=np.float64)

    def quantile(self, q: float) -> float:
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._values:
            return math.nan
        return float(np.quantile(self.values, q))

    def bootstrap_mean_ci(
        self, confidence: float = 0.95, n_boot: int = 1000
    ) -> Tuple[float, float]:
        """Percentile-bootstrap CI for the mean, from the reservoir."""
        if not 0 < confidence < 1:
            raise ValueError(f"confidence must be in (0, 1), got {confidence}")
        data = self.values
        if data.size == 0:
            return (math.nan, math.nan)
        if data.size == 1:
            return (float(data[0]), float(data[0]))
        idx = self._rng.integers(0, data.size, size=(n_boot, data.size))
        boot = data[idx].mean(axis=1)
        lo, hi = np.quantile(boot, [(1 - confidence) / 2, (1 + confidence) / 2])
        return float(lo), float(hi)


@dataclass(frozen=True)
class FindTimeSummary:
    """Point-in-time view of a :class:`FindTimeAccumulator`.

    ``mean`` is the truncated mean when a horizon is set (censored trials
    pinned at the horizon — a *lower bound* on the true expectation
    whenever ``censored_fraction > 0``) and the mean over finding trials
    otherwise.  ``rel_ci`` is ``ci_halfwidth / mean`` — the quantity the
    ``target_rel_ci`` budget policy drives to its target — and is ``inf``
    whenever the CI is undefined (fewer than two observations).
    """

    count: int
    mean: float
    stderr: float
    ci_halfwidth: float
    rel_ci: float
    confidence: float
    success_rate: float
    wilson_low: float
    wilson_high: float
    censored_fraction: float
    horizon: Optional[float]
    quantiles: Dict[float, float]

    @property
    def is_lower_bound(self) -> bool:
        """True when censoring occurred: the true mean is at least ``mean``."""
        return self.censored_fraction > 0


class FindTimeAccumulator:
    """Composite streaming accumulator for blocks of find times.

    Consumes ``(block,)`` float arrays as produced by the simulation
    engines, where a non-finite entry means "never found".  With a finite
    ``horizon``, censored entries (non-finite or past the horizon) are
    pinned *at* the horizon before entering the moments — the truncated
    mean, a valid lower bound on the true expectation.  Without a horizon
    only finding trials enter the moments and the censored fraction keeps
    the defect visible.

    Mergeable: two accumulators with the same horizon/confidence built
    from disjoint blocks merge into the accumulator of the union (the
    reservoir merge is a weighted resample; everything else is exact).
    """

    def __init__(
        self,
        horizon: Optional[float] = None,
        confidence: float = 0.95,
        reservoir_capacity: int = 0,
        reservoir_seed: int = 0,
        quantiles: Sequence[float] = (),
    ) -> None:
        if horizon is not None and (not math.isfinite(horizon) or horizon <= 0):
            horizon = None if horizon == math.inf else horizon
            if horizon is not None:
                raise ValueError(f"horizon must be positive, got {horizon}")
        if not 0 < confidence < 1:
            raise ValueError(f"confidence must be in (0, 1), got {confidence}")
        self.horizon = float(horizon) if horizon is not None else None
        self.confidence = float(confidence)
        self.count = 0
        self.censored = 0
        self.moments = StreamingMoments()
        self.successes = SuccessCounter()
        self.reservoir = (
            ReservoirSample(reservoir_capacity, seed=reservoir_seed)
            if reservoir_capacity
            else None
        )
        self._quantile_qs = tuple(float(q) for q in quantiles)

    def update(self, times) -> None:
        block = np.asarray(times, dtype=np.float64).ravel()
        if block.size == 0:
            return
        if self.horizon is not None:
            found = np.isfinite(block) & (block <= self.horizon)
            observed = np.where(found, block, self.horizon)
        else:
            found = np.isfinite(block)
            observed = block[found]
        self.count += int(block.size)
        self.censored += int(block.size - found.sum())
        self.moments.update_block(observed)
        self.successes.update_block(int(found.sum()), int(block.size))
        if self.reservoir is not None:
            self.reservoir.update_block(observed)

    def merge(self, other: "FindTimeAccumulator") -> "FindTimeAccumulator":
        if (self.horizon, self.confidence) != (other.horizon, other.confidence):
            raise ValueError(
                "can only merge accumulators with identical horizon and "
                f"confidence; got {(self.horizon, self.confidence)} vs "
                f"{(other.horizon, other.confidence)}"
            )
        self.count += other.count
        self.censored += other.censored
        self.moments.merge(other.moments)
        self.successes.merge(other.successes)
        if self.reservoir is not None and other.reservoir is not None:
            self.reservoir.merge(other.reservoir)
        return self

    def summary(self) -> FindTimeSummary:
        mean = self.moments.mean
        stderr = self.moments.stderr
        ci = self.moments.ci_halfwidth(self.confidence)
        if math.isnan(ci) or not math.isfinite(mean) or mean <= 0:
            rel_ci = math.inf
        else:
            rel_ci = ci / mean
        wilson_low, wilson_high = self.successes.wilson(self.confidence)
        quantiles: Dict[float, float] = {}
        if self.reservoir is not None:
            for q in self._quantile_qs:
                quantiles[q] = self.reservoir.quantile(q)
        return FindTimeSummary(
            count=self.count,
            mean=mean,
            stderr=stderr,
            ci_halfwidth=ci,
            rel_ci=rel_ci,
            confidence=self.confidence,
            success_rate=self.successes.rate if self.count else math.nan,
            wilson_low=wilson_low,
            wilson_high=wilson_high,
            censored_fraction=self.censored / self.count if self.count else 0.0,
            horizon=self.horizon,
            quantiles=quantiles,
        )


def summarize_times(
    times,
    horizon: Optional[float] = None,
    confidence: float = 0.95,
) -> FindTimeSummary:
    """One-shot summary of a find-time sample (the non-streaming door)."""
    acc = FindTimeAccumulator(horizon=horizon, confidence=confidence)
    acc.update(times)
    return acc.summary()
