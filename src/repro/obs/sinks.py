"""Event sinks: where emitted records go.

A sink is anything with ``handle(record: dict)`` and ``close()``.  The
bus fans every event out to all attached sinks under its emission lock,
so sinks themselves need no locking; they must never raise (a broken
trace file must not kill a sweep), so both implementations swallow
their own I/O errors after disabling themselves.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

__all__ = ["Sink", "MemorySink", "JsonlSink", "read_trace"]


class Sink:
    """Sink interface (structural; subclassing is optional)."""

    def handle(self, record: Dict[str, object]) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class MemorySink(Sink):
    """Collect records in a list (tests, the benchmark guard)."""

    def __init__(self) -> None:
        self.records: List[Dict[str, object]] = []
        self.closed = False

    def handle(self, record: Dict[str, object]) -> None:
        self.records.append(record)

    def close(self) -> None:
        self.closed = True


class JsonlSink(Sink):
    """Append one JSON line per event to a trace file.

    The file opens lazily on the first record (a traced run that emits
    nothing leaves nothing behind) and any I/O error permanently
    disables the sink — tracing is an observer, never a failure mode.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = None
        self._dead = False

    def handle(self, record: Dict[str, object]) -> None:
        if self._dead:
            return
        try:
            if self._handle is None:
                parent = os.path.dirname(self.path)
                if parent:
                    os.makedirs(parent, exist_ok=True)
                self._handle = open(self.path, "w", encoding="utf-8")
            self._handle.write(
                json.dumps(record, separators=(",", ":")) + "\n"
            )
            # Line-buffered on purpose: the env-driven sink lives for
            # the whole process and traces must be tail-able mid-run.
            self._handle.flush()
        except (OSError, TypeError, ValueError):
            self._dead = True
            self._close_handle()

    def close(self) -> None:
        self._close_handle()

    def _close_handle(self) -> None:
        handle, self._handle = self._handle, None
        if handle is not None:
            try:
                handle.close()
            except OSError:
                pass


def read_trace(path: str) -> List[Dict[str, object]]:
    """Load a JSONL trace back into records (blank lines skipped).

    Raises ``ValueError`` naming the offending line on malformed JSON —
    ``trace report``/``validate`` want a loud failure on a truncated or
    foreign file, not a silently partial report.
    """
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError as error:
                raise ValueError(
                    f"{path}:{number}: not a JSON trace record ({error})"
                ) from None
    return records


def trace_metrics(records: List[Dict[str, object]]) -> Optional[Dict]:
    """The ``trace.metrics`` footer snapshot of a trace, if present."""
    for record in reversed(records):
        if record.get("name") == "trace.metrics":
            data = record.get("data")
            return data if isinstance(data, dict) else None
    return None
