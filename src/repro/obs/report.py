"""Wall-clock breakdown reports over JSONL traces.

``repro-ants trace report <file>`` renders what :func:`build_report`
computes from a trace's records: where the sweep's wall-clock went per
cell, how busy the workers were, how often the cache answered, and how
much work stealing/speculation did (and wasted).  Everything is derived
from the event stream alone — the report never needs the run's results,
so it works on traces from crashed or remote runs too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["CellTime", "TraceReport", "build_report"]


@dataclass(frozen=True)
class CellTime:
    """Submit-to-collect time attributed to one cell (or fixed chunk)."""

    label: str
    total_s: float
    spans: int
    exec_s: float  # worker-measured execution time, when reported


@dataclass
class TraceReport:
    """Aggregated view of one trace (see :func:`build_report`)."""

    events: int
    wall_s: float
    sweeps: int
    cells: List[CellTime] = field(default_factory=list)
    workers: int = 1
    backend: str = "?"
    busy_s: float = 0.0
    utilization: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_appends: int = 0
    lock_wait_s: float = 0.0
    submitted: int = 0
    completed: int = 0
    steals: int = 0
    speculated: int = 0
    discarded: int = 0
    restarts: int = 0
    resubmits: int = 0
    remote_dispatches: int = 0
    remote_workers_lost: int = 0
    heartbeat_rtt_s: Optional[float] = None
    faults_injected: int = 0
    degrades: int = 0
    quarantines: int = 0
    retries: int = 0
    checkpoints: int = 0
    resumes: int = 0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def render(self, top: int = 10) -> str:
        """The ``trace report`` text: breakdown tables, widest first."""
        lines = [
            f"trace: {self.events} events, {self.sweeps} sweep(s), "
            f"wall {self.wall_s:.3f}s "
            f"[backend={self.backend}, workers={self.workers}]",
            "",
            f"worker utilization: {100.0 * self.utilization:.1f}% "
            f"(busy {self.busy_s:.3f}s over "
            f"{self.workers} x {self.wall_s:.3f}s)",
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses "
            f"({100.0 * self.cache_hit_rate:.0f}% hit rate), "
            f"{self.cache_appends} appends, "
            f"lock wait {self.lock_wait_s:.3f}s",
            f"executor: {self.submitted} submitted, "
            f"{self.completed} completed, {self.steals} steals, "
            f"{self.speculated} speculative "
            f"({self.discarded} discarded), "
            f"{self.restarts} restarts, {self.resubmits} resubmits",
        ]
        if self.remote_dispatches or self.remote_workers_lost:
            rtt = (
                f", heartbeat rtt {1000.0 * self.heartbeat_rtt_s:.1f}ms"
                if self.heartbeat_rtt_s is not None
                else ""
            )
            lines.append(
                f"remote: {self.remote_dispatches} dispatches, "
                f"{self.remote_workers_lost} workers lost{rtt}"
            )
        if (
            self.faults_injected or self.degrades or self.quarantines
            or self.retries or self.checkpoints or self.resumes
        ):
            lines.append(
                f"faults: {self.faults_injected} injected, "
                f"{self.degrades} tier degrades, "
                f"{self.quarantines} quarantined entries, "
                f"{self.retries} retries, "
                f"{self.checkpoints} checkpoints, {self.resumes} resumes"
            )
        lines.append("")
        shown = self.cells[:top]
        if shown:
            width = max(len(cell.label) for cell in shown)
            lines.append(
                f"top {len(shown)} cells by submit-to-collect time:"
            )
            lines.append(
                f"  {'cell':<{width}}  {'total_s':>9}  {'exec_s':>9}  "
                f"{'spans':>5}  {'share':>6}"
            )
            for cell in shown:
                share = cell.total_s / self.wall_s if self.wall_s else 0.0
                lines.append(
                    f"  {cell.label:<{width}}  {cell.total_s:>9.3f}  "
                    f"{cell.exec_s:>9.3f}  {cell.spans:>5}  "
                    f"{100.0 * share:>5.1f}%"
                )
        else:
            lines.append("no block spans recorded")
        return "\n".join(lines)


def _cell_label(data: Mapping[str, object]) -> str:
    if data.get("kind") == "chunk":
        distances = data.get("distances") or []
        joined = ",".join(str(d) for d in distances)
        return f"k={data.get('k')} D={joined} (chunk)"
    return f"D={data.get('distance')} k={data.get('k')}"


def build_report(
    records: Sequence[Mapping[str, object]]
) -> TraceReport:
    """Aggregate a trace's records into a :class:`TraceReport`."""
    counters: Dict[str, int] = {}
    wall_s = 0.0
    sweeps = 0
    workers = 1
    backend = "?"
    busy_s = 0.0
    lock_wait_s = 0.0
    rtt_total, rtt_count = 0.0, 0
    utilization: Optional[float] = None
    util_busy, util_slot = 0.0, 0.0  # Σ busy_s / Σ workers*wall_s
    open_blocks: Dict[object, Tuple[float, Mapping[str, object]]] = {}
    exec_by_ticket: Dict[object, float] = {}
    cell_totals: Dict[str, List[float]] = {}
    first_ts: Optional[float] = None
    last_ts: Optional[float] = None

    for record in records:
        name = record.get("name")
        data = record.get("data")
        data = data if isinstance(data, Mapping) else {}
        ts = record.get("ts")
        if isinstance(ts, (int, float)):
            first_ts = float(ts) if first_ts is None else first_ts
            last_ts = float(ts)
        if record.get("type") == "counter" and isinstance(name, str):
            counters[name] = counters.get(name, 0) + 1
        if name == "sweep.start":
            sweeps += 1
            workers = int(data.get("workers", workers) or workers)
            backend = str(data.get("backend", backend))
        elif name == "sweep.end":
            dur = data.get("dur_s")
            if isinstance(dur, (int, float)):
                wall_s += float(dur)
        elif name == "cell.block.start":
            if isinstance(ts, (int, float)):
                open_blocks[data.get("ticket")] = (float(ts), data)
        elif name == "cell.block.end":
            opened = open_blocks.pop(data.get("ticket"), None)
            dur = data.get("dur_s")
            if opened is None or not isinstance(dur, (int, float)):
                continue
            label = _cell_label(opened[1])
            entry = cell_totals.setdefault(label, [0.0, 0.0, 0.0])
            entry[0] += float(dur)
            entry[1] += 1
            entry[2] += exec_by_ticket.pop(data.get("ticket"), 0.0)
        elif name == "executor.complete":
            exec_s = data.get("exec_s")
            if isinstance(exec_s, (int, float)):
                busy_s += float(exec_s)
                exec_by_ticket[data.get("ticket")] = float(exec_s)
        elif name == "cache.lock_wait":
            value = data.get("value")
            if isinstance(value, (int, float)):
                lock_wait_s += float(value)
        elif name == "remote.heartbeat":
            value = data.get("value")
            if isinstance(value, (int, float)):
                rtt_total += float(value)
                rtt_count += 1
        elif name == "worker.utilization":
            value = data.get("value")
            if isinstance(value, (int, float)):
                utilization = float(value)
            busy = data.get("busy_s")
            wall = data.get("wall_s")
            slots = data.get("workers")
            if (
                isinstance(busy, (int, float))
                and isinstance(wall, (int, float))
                and isinstance(slots, (int, float))
            ):
                util_busy += float(busy)
                util_slot += float(slots) * float(wall)

    if wall_s <= 0.0 and first_ts is not None and last_ts is not None:
        wall_s = max(0.0, last_ts - first_ts)
    if util_slot > 0.0:
        # Multi-sweep traces carry one gauge per sweep; a time-weighted
        # aggregate beats last-gauge-wins (a trailing cache-hit sweep
        # would otherwise report a near-idle pool).
        utilization = util_busy / util_slot
    elif utilization is None:
        utilization = (
            busy_s / (workers * wall_s) if workers and wall_s > 0 else 0.0
        )
    cells = sorted(
        (
            CellTime(
                label=label, total_s=total, spans=int(spans), exec_s=exec_s
            )
            for label, (total, spans, exec_s) in cell_totals.items()
        ),
        key=lambda cell: cell.total_s,
        reverse=True,
    )
    return TraceReport(
        events=len(records),
        wall_s=wall_s,
        sweeps=sweeps,
        cells=cells,
        workers=workers,
        backend=backend,
        busy_s=busy_s,
        utilization=utilization,
        cache_hits=counters.get("cache.hit", 0),
        cache_misses=counters.get("cache.miss", 0),
        cache_appends=counters.get("cache.append", 0),
        lock_wait_s=lock_wait_s,
        submitted=counters.get("executor.submit", 0),
        completed=counters.get("executor.complete", 0),
        steals=counters.get("executor.steal", 0),
        speculated=counters.get("executor.speculate", 0),
        discarded=counters.get("executor.discard", 0),
        restarts=counters.get("executor.restart", 0),
        resubmits=counters.get("executor.resubmit", 0),
        remote_dispatches=counters.get("remote.dispatch", 0),
        remote_workers_lost=counters.get("remote.worker_lost", 0),
        heartbeat_rtt_s=(rtt_total / rtt_count) if rtt_count else None,
        faults_injected=counters.get("fault.inject", 0),
        degrades=counters.get("fault.degrade", 0),
        quarantines=counters.get("cache.quarantine", 0),
        retries=counters.get("retry.attempt", 0),
        checkpoints=counters.get("sweep.checkpoint", 0),
        resumes=counters.get("sweep.resume", 0),
    )
