"""The process-local event bus: one emission point, many sinks.

Instrumentation sites all follow one pattern::

    from ..obs import BUS
    ...
    if BUS.enabled:
        BUS.counter("cache.hit", kind="blocks", algorithm=spec.algorithm)

The ``BUS.enabled`` attribute read is the *entire* disabled-path cost —
no function call, no allocation — which is what lets the hot scheduler
and executor loops stay instrumented permanently (the benchmark guard
in ``benchmarks/test_bench_obs.py`` pins this at <= 2% of a quick
sweep).  The bus is enabled by attaching a sink (``start_tracing`` /
``tracing`` / ``attach``); detaching the last sink disables it again.

The bus is **process-local by design**: pool and remote workers hold
their own (disabled, sink-less) instance and never emit — events would
otherwise need a cross-process transport whose backpressure could
perturb scheduling.  Worker-side execution *durations* still reach the
trace, shipped as plain metadata on result messages and emitted by the
driver.  Everything observable therefore happens in the driver process,
and nothing about tracing can change task content, submission order, or
fold order — the determinism-neutrality argument (DESIGN.md §12),
property-tested traced-vs-untraced across all four backends.

Every emitted event also updates the attached
:class:`~repro.obs.metrics.MetricsRegistry` (counters count, gauges and
``*_s`` timing payloads feed histograms), so a closing trace can append
its ``trace.metrics`` rollup footer and ``run_sweep`` can derive the
worker-utilization summary without replaying the event stream.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Union

from .events import SCHEMA_VERSION, Event
from .metrics import MetricsRegistry
from .sinks import JsonlSink, Sink

__all__ = [
    "TRACE_ENV",
    "EventBus",
    "BUS",
    "start_tracing",
    "stop_tracing",
    "tracing",
    "ensure_env_tracing",
]

#: Environment fallback for ``--trace``: a path here makes every
#: ``run_sweep`` in the process write a JSONL trace.
TRACE_ENV = "REPRO_TRACE_FILE"

#: Data keys whose float values are folded into ``<name>.<key>``
#: histograms on emission (pure execution time, span durations, ...).
_TIMING_KEYS = ("exec_s", "dur_s", "queue_s")


class EventBus:
    """Typed event emission with a one-attribute-read disabled path."""

    def __init__(self) -> None:
        #: The fast-path gate: instrumentation sites read this and
        #: nothing else when tracing is off.  Managed by attach/detach.
        self.enabled = False
        self.metrics = MetricsRegistry()
        self._lock = threading.Lock()
        self._sinks: List[Sink] = []
        self._seq = 0

    # -- sink management ----------------------------------------------
    def attach(self, sink: Sink) -> Sink:
        with self._lock:
            self._sinks.append(sink)
            self.enabled = True
        return sink

    def detach(self, sink: Sink, close: bool = True) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)
            self.enabled = bool(self._sinks)
        if close:
            sink.close()

    @property
    def sinks(self) -> List[Sink]:
        with self._lock:
            return list(self._sinks)

    # -- emission ------------------------------------------------------
    def emit(
        self, name: str, type: str, data: Optional[Dict[str, object]] = None
    ) -> None:
        """Build, fan out, and meter one event (no-op when disabled)."""
        if not self.enabled:
            return
        payload = data if data is not None else {}
        with self._lock:
            if not self._sinks:
                return
            self._seq += 1
            record = Event(
                name=name,
                type=type,
                ts=time.time(),
                seq=self._seq,
                pid=os.getpid(),
                data=payload,
                schema=SCHEMA_VERSION,
            ).to_record()
            for sink in self._sinks:
                sink.handle(record)
        if type == "counter":
            self.metrics.incr(name)
        elif type == "gauge":
            value = payload.get("value")
            if isinstance(value, (int, float)):
                self.metrics.observe(name, float(value))
        for key in _TIMING_KEYS:
            value = payload.get(key)
            if isinstance(value, (int, float)):
                self.metrics.observe(f"{name}.{key}", float(value))

    # Typed conveniences: keyword arguments become the data payload.
    def counter(self, name: str, **data: object) -> None:
        self.emit(name, "counter", data)

    def gauge(self, name: str, value: float, **data: object) -> None:
        data["value"] = value
        self.emit(name, "gauge", data)

    def span_start(self, name: str, **data: object) -> float:
        """Emit a span opening; returns a perf-counter start for the end."""
        self.emit(f"{name}.start", "span.start", data)
        return time.perf_counter()

    def span_end(self, name: str, started: float, **data: object) -> None:
        data["dur_s"] = time.perf_counter() - started
        self.emit(f"{name}.end", "span.end", data)


#: The process singleton every instrumentation site reads.
BUS = EventBus()

#: Sinks opened by :func:`ensure_env_tracing`, keyed by path, so the
#: env-driven trace opens once per process however many sweeps run.
_ENV_SINKS: Dict[str, Sink] = {}


def start_tracing(target: Union[str, Sink]) -> Sink:
    """Attach a trace sink (a JSONL path or a sink object) to the bus."""
    sink = JsonlSink(target) if isinstance(target, str) else target
    return BUS.attach(sink)


def stop_tracing(sink: Sink) -> None:
    """Emit the metrics footer, then detach and close the sink."""
    BUS.emit("trace.metrics", "metrics", BUS.metrics.snapshot())
    BUS.detach(sink, close=True)


@contextmanager
def tracing(target: Union[str, Sink]) -> Iterator[Sink]:
    """Scope tracing to a ``with`` block (footer written on exit)."""
    sink = start_tracing(target)
    try:
        yield sink
    finally:
        stop_tracing(sink)


def ensure_env_tracing() -> None:
    """Honour :data:`TRACE_ENV` (idempotent; called by ``run_sweep``).

    The sink stays attached for the life of the process — the footer is
    written by ``stop_tracing`` only for explicitly scoped traces, so an
    env-traced process accumulates all its sweeps into one file.
    """
    path = os.environ.get(TRACE_ENV)
    if not path or path in _ENV_SINKS:
        return
    _ENV_SINKS[path] = start_tracing(path)
