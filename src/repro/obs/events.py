"""Typed, schema-versioned observability events (DESIGN.md §12).

Every record the event bus emits is one :class:`Event`: a name from the
:data:`EVENT_SCHEMAS` registry, a type (span boundary, counter, gauge,
or the metrics footer), a wall-clock timestamp, a per-process sequence
number, and a flat JSON-serialisable ``data`` payload whose keys the
registry pins.  The registry is the contract the JSONL traces are
validated against (``repro-ants trace validate``, the CI trace job, and
``tests/test_obs.py``): an instrumentation site cannot silently invent
an event shape that downstream tooling has never seen.

Determinism-neutrality is structural: events *carry* wall-clock data but
nothing here is readable by the code that derives seeds or hashes specs
— the bus is write-only from the instrumented stack's point of view, and
rule R004 (``repro.checks``) rejects observability names flowing into
``derive_seed``/``SweepSpec`` arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_TYPES",
    "EVENT_SCHEMAS",
    "Event",
    "validate_event",
]

#: Bumped on any change to the record layout or a registered schema.
SCHEMA_VERSION = 1

#: The four record shapes: paired span boundaries, occurrence counters,
#: sampled values, and the one metrics-snapshot footer record a closing
#: JSONL trace ends with.
EVENT_TYPES = ("span.start", "span.end", "counter", "gauge", "metrics")

#: ``name -> (type, allowed data keys)``.  A record may omit allowed
#: keys but never carry unknown ones; values must be JSON scalars (or
#: flat lists of scalars, for e.g. a chunk's distance axis).
EVENT_SCHEMAS: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    # Sweep lifecycle (one span per run_sweep call).
    "sweep.start": ("span.start", (
        "algorithm", "spec", "cells", "backend", "workers", "budget",
        "cache",
    )),
    "sweep.end": ("span.end", (
        "algorithm", "spec", "dur_s", "cells", "total_trials",
        "from_cache",
    )),
    # One executor task: an adaptive block or a fixed-path chunk.  The
    # span runs submit -> collect in the driver (queue + transport +
    # execution); ``exec_s`` on the paired executor.complete isolates
    # pure execution time.  ``ticket`` is the pairing key.
    "cell.block.start": ("span.start", (
        "ticket", "kind", "distance", "k", "block", "distances",
        "speculative", "steal",
    )),
    "cell.block.end": ("span.end", (
        "ticket", "kind", "distance", "k", "block", "distances",
        "dur_s", "discarded",
    )),
    # Adaptive stopping decisions and per-cell completion.
    "cell.stop": ("counter", (
        "distance", "k", "trials", "blocks", "reason",
    )),
    "cell.finish": ("counter", (
        "distance", "k", "trials", "new_trials", "source",
    )),
    # Executor seam (all four backends).
    "executor.submit": ("counter", ("ticket", "backend")),
    "executor.complete": ("counter", (
        "ticket", "backend", "exec_s", "worker",
    )),
    "executor.steal": ("counter", ("distance", "k", "block")),
    "executor.speculate": ("counter", ("distance", "k", "block")),
    "executor.discard": ("counter", ("distance", "k", "block")),
    "executor.resubmit": ("counter", ("ticket", "cause")),
    "executor.restart": ("counter", ("generation", "resubmitted")),
    "executor.queue_depth": ("gauge", ("value", "backend")),
    # Cache (v1 sweep entries and v2 block stores).
    "cache.hit": ("counter", ("kind", "algorithm", "cells", "trials")),
    "cache.miss": ("counter", ("kind", "algorithm")),
    "cache.append": ("counter", ("kind", "algorithm", "cells")),
    "cache.lock_wait": ("gauge", ("value", "acquired")),
    # Fault tolerance (repro.faults; DESIGN.md §13): injected faults,
    # degraded backend tiers, quarantined cache entries, checkpoint
    # resume, retry/backoff attempts, stale-temp reclamation.
    "fault.inject": ("counter", ("site", "mode", "rule")),
    "fault.degrade": ("counter", ("tier", "fallback", "reason")),
    "cache.quarantine": ("counter", ("kind", "path")),
    "cache.tmp_clean": ("counter", ("removed",)),
    "sweep.resume": ("counter", ("algorithm", "kind", "tasks", "trials")),
    "retry.attempt": ("counter", ("site", "attempt")),
    "sweep.checkpoint": ("counter", ("algorithm", "kind", "tasks")),
    # Remote backend (driver side; workers never emit).
    "remote.dispatch": ("counter", ("ticket", "worker")),
    "remote.heartbeat": ("gauge", ("value", "worker")),
    "remote.worker_lost": ("counter", ("worker", "reason", "inflight")),
    "remote.resubmit": ("counter", ("ticket", "worker", "cause")),
    # Derived summaries emitted at sweep end.
    "worker.utilization": ("gauge", (
        "value", "busy_s", "wall_s", "workers", "backend",
    )),
    # The metrics-registry snapshot footer a closing trace ends with.
    "trace.metrics": ("metrics", ("counters", "histograms")),
}

_SCALAR_TYPES = (bool, int, float, str, type(None))


@dataclass(frozen=True)
class Event:
    """One emitted observability record (the JSONL line, as an object)."""

    name: str
    type: str
    ts: float  # wall-clock seconds (time.time epoch)
    seq: int  # per-process emission order
    pid: int
    data: Mapping[str, object] = field(default_factory=dict)
    schema: int = SCHEMA_VERSION

    def to_record(self) -> Dict[str, object]:
        """The JSON-serialisable dict a sink writes."""
        return {
            "schema": self.schema,
            "name": self.name,
            "type": self.type,
            "ts": self.ts,
            "seq": self.seq,
            "pid": self.pid,
            "data": dict(self.data),
        }


def _scalar_ok(value: object) -> bool:
    if isinstance(value, _SCALAR_TYPES):
        return True
    if isinstance(value, (list, tuple)):
        return all(isinstance(item, _SCALAR_TYPES) for item in value)
    return False


def validate_event(record: object) -> List[str]:
    """Schema-check one trace record; returns human-readable errors.

    An empty list means the record is valid.  This is the single
    validation path shared by ``repro-ants trace validate``, the CI
    trace job, and the property tests — keep it in lockstep with
    :data:`EVENT_SCHEMAS`.
    """
    errors: List[str] = []
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, not an object"]
    if record.get("schema") != SCHEMA_VERSION:
        errors.append(
            f"schema {record.get('schema')!r} != {SCHEMA_VERSION}"
        )
    name = record.get("name")
    if name not in EVENT_SCHEMAS:
        return errors + [f"unknown event name {name!r}"]
    expected_type, allowed = EVENT_SCHEMAS[name]
    if record.get("type") != expected_type:
        errors.append(
            f"{name}: type {record.get('type')!r} != {expected_type!r}"
        )
    if not isinstance(record.get("ts"), (int, float)):
        errors.append(f"{name}: ts is not a number")
    if not isinstance(record.get("seq"), int):
        errors.append(f"{name}: seq is not an integer")
    if not isinstance(record.get("pid"), int):
        errors.append(f"{name}: pid is not an integer")
    data = record.get("data")
    if not isinstance(data, dict):
        return errors + [f"{name}: data is not an object"]
    if name == "trace.metrics":
        return errors  # the footer's values are nested snapshot dicts
    for key, value in data.items():
        if key not in allowed:
            errors.append(f"{name}: unknown data key {key!r}")
        elif not _scalar_ok(value):
            errors.append(
                f"{name}: data[{key!r}] is not JSON-scalar "
                f"({type(value).__name__})"
            )
    return errors
