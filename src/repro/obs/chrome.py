"""Chrome-trace (Perfetto / ``chrome://tracing``) exporter.

Turns a JSONL trace's records into the Trace Event Format's
``traceEvents`` list: matched ``cell.block.start``/``end`` pairs become
complete ("X") events laid out on greedily allocated lanes — so block
scheduling across workers renders as a timeline — the sweep span frames
them, and queue-depth gauges ride along as counter ("C") tracks.  Lanes
are a *visual* reconstruction (the driver doesn't know which worker ran
a block; it only knows the concurrency), which is exactly what judging
scheduling quality needs.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

__all__ = ["to_chrome"]

_US = 1e6


def _label(data: Mapping[str, object]) -> str:
    kind = data.get("kind", "block")
    if kind == "chunk":
        distances = data.get("distances") or []
        k = data.get("k")
        return f"chunk k={k} D={','.join(str(d) for d in distances)}"
    name = f"D={data.get('distance')} k={data.get('k')} b{data.get('block')}"
    if data.get("speculative"):
        name += " (spec)"
    return name


def to_chrome(records: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    """Export trace records as a Trace Event Format object."""
    if not records:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    t0 = min(
        float(r["ts"]) for r in records if isinstance(r.get("ts"), (int, float))
    )

    def us(ts: object) -> float:
        return (float(ts) - t0) * _US  # type: ignore[arg-type]

    events: List[Dict[str, object]] = []
    # Pair block spans by ticket; starts without an end (a crashed or
    # truncated trace) are dropped rather than invented.
    open_blocks: Dict[object, Mapping[str, object]] = {}
    spans: List[Dict[str, object]] = []
    for record in records:
        name = record.get("name")
        data = record.get("data")
        if not isinstance(data, Mapping):
            continue
        pid = record.get("pid", 0)
        if name == "cell.block.start":
            open_blocks[data.get("ticket")] = record
        elif name == "cell.block.end":
            start = open_blocks.pop(data.get("ticket"), None)
            if start is None:
                continue
            begin = us(start["ts"])
            spans.append({
                "name": _label(dict(start.get("data", {}), **data)),
                "ph": "X",
                "ts": begin,
                "dur": max(0.0, us(record["ts"]) - begin),
                "pid": pid,
                "cat": str(data.get("kind", "block")),
                "args": {k: v for k, v in data.items() if k != "ticket"},
            })
        elif name == "sweep.start":
            open_blocks[("sweep", record.get("pid"))] = record
        elif name == "sweep.end":
            start = open_blocks.pop(("sweep", record.get("pid")), None)
            if start is None:
                continue
            begin = us(start["ts"])
            events.append({
                "name": f"sweep {data.get('algorithm', '?')}",
                "ph": "X",
                "ts": begin,
                "dur": max(0.0, us(record["ts"]) - begin),
                "pid": pid,
                "tid": 0,
                "cat": "sweep",
                "args": dict(data),
            })
        elif record.get("type") == "gauge" and name == "executor.queue_depth":
            events.append({
                "name": "queue depth",
                "ph": "C",
                "ts": us(record["ts"]),
                "pid": pid,
                "args": {"pending": data.get("value", 0)},
            })

    # Greedy lane allocation: each span takes the first lane free at its
    # start time; lane count therefore equals the observed concurrency.
    spans.sort(key=lambda span: (span["ts"], span["dur"]))
    lanes: List[float] = []
    for span in spans:
        start = float(span["ts"])  # type: ignore[arg-type]
        end = start + float(span["dur"])  # type: ignore[arg-type]
        for lane, free_at in enumerate(lanes):
            if free_at <= start:
                lanes[lane] = end
                span["tid"] = lane + 1
                break
        else:
            lanes.append(end)
            span["tid"] = len(lanes)
        events.append(span)

    events.sort(key=lambda event: float(event["ts"]))  # type: ignore[arg-type]
    return {"traceEvents": events, "displayTimeUnit": "ms"}
