"""In-memory metrics: counters and min/max/mean histograms.

The registry is the cheap always-on half of observability: the event
bus updates it on every emitted record (so a traced run gets both the
event stream *and* the rollup), and ``run_sweep`` reads it to compute
the worker-utilization summary.  ``snapshot()`` is what lands in the
``trace.metrics`` footer of a closing JSONL trace.

Thread-safe: the executor callback threads, the remote driver's asyncio
thread, and the main scheduler all emit concurrently.
"""

from __future__ import annotations

import threading
from typing import Dict, List

__all__ = ["MetricsRegistry"]


class _Histogram:
    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": (self.total / self.count) if self.count else 0.0,
        }


class MetricsRegistry:
    """Named counters plus streaming histograms of observed values."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, _Histogram] = {}

    def incr(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(n)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = _Histogram()
            histogram.observe(float(value))

    def count(self, name: str) -> int:
        """Counter value (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def total(self, name: str) -> float:
        """Sum of observed values for a histogram (0.0 when empty)."""
        with self._lock:
            histogram = self._histograms.get(name)
            return histogram.total if histogram is not None else 0.0

    def names(self) -> List[str]:
        with self._lock:
            return sorted(set(self._counters) | set(self._histograms))

    def snapshot(self) -> Dict[str, Dict]:
        """JSON-serialisable rollup of everything recorded so far."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "histograms": {
                    name: histogram.snapshot()
                    for name, histogram in sorted(self._histograms.items())
                },
            }

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._histograms.clear()
