"""``repro.obs``: structured tracing, metrics, and profiling.

The observability substrate for the sweep stack (DESIGN.md §12): a
process-local event bus (:data:`BUS`) emitting typed, schema-versioned
events; sinks (JSONL trace files, in-memory collection); a metrics
registry of counters and histograms; a Chrome-trace exporter; and the
``trace report`` aggregation.  Instrumentation is threaded through
``sweep/runner.py``, ``sweep/executor.py``, ``sweep/remote.py``, and
``sweep/cache.py`` behind the one-attribute-read ``BUS.enabled`` gate.

Observability is determinism-neutral by construction: events carry
wall-clock data outward, nothing flows back into seeds, spec hashes, or
results (rule R004 polices the symbol names; traced-vs-untraced bitwise
parity is property-tested on all four backends).
"""

from .bus import (
    BUS,
    TRACE_ENV,
    EventBus,
    ensure_env_tracing,
    start_tracing,
    stop_tracing,
    tracing,
)
from .chrome import to_chrome
from .events import EVENT_SCHEMAS, SCHEMA_VERSION, Event, validate_event
from .metrics import MetricsRegistry
from .report import TraceReport, build_report
from .sinks import JsonlSink, MemorySink, Sink, read_trace, trace_metrics

__all__ = [
    "BUS",
    "TRACE_ENV",
    "EventBus",
    "ensure_env_tracing",
    "start_tracing",
    "stop_tracing",
    "tracing",
    "to_chrome",
    "EVENT_SCHEMAS",
    "SCHEMA_VERSION",
    "Event",
    "validate_event",
    "MetricsRegistry",
    "TraceReport",
    "build_report",
    "JsonlSink",
    "MemorySink",
    "Sink",
    "read_trace",
    "trace_metrics",
]
