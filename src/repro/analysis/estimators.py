"""Statistical estimators for Monte-Carlo search experiments.

Find-time distributions range from well-concentrated (the iterated
algorithms, whose stage structure gives geometric tails) to heavy-tailed or
defective (random walks on ``Z^2`` have *infinite* expected hitting time;
one-shot harmonic search fails outright with positive probability).  The
estimators here are chosen accordingly:

* :func:`mean_with_ci` — bootstrap percentile intervals, no normality
  assumption;
* :func:`truncated_mean` — the honest summary for capped runs: mean with
  censored values pinned at the horizon, reported with the censoring rate;
* :func:`success_rate` / :func:`wilson_interval` — for probability-of-find
  experiments (Theorem 5.1);
* :class:`Welford` — streaming moments for long instrumentation runs.

The streaming/mergeable machinery (block updates, merge, CI half-widths,
censoring-aware composites) lives in :mod:`repro.stats`; this module
keeps the historical strict API — :class:`Welford` raises on misuse where
:class:`repro.stats.StreamingMoments` returns ``nan`` sentinels — and
delegates the shared closed forms there.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..sim.rng import SeedLike, make_rng
from ..stats import StreamingMoments
from ..stats import wilson_interval as _wilson_interval

__all__ = [
    "mean_with_ci",
    "truncated_mean",
    "success_rate",
    "wilson_interval",
    "quantiles",
    "Welford",
]


def mean_with_ci(
    samples: Sequence[float],
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: SeedLike = None,
) -> Tuple[float, Tuple[float, float]]:
    """Sample mean with a bootstrap percentile confidence interval.

    Requires all samples to be finite — censored data should go through
    :func:`truncated_mean` instead.
    """
    data = np.asarray(samples, dtype=np.float64)
    if data.size == 0:
        raise ValueError("need at least one sample")
    if not np.all(np.isfinite(data)):
        raise ValueError("samples contain non-finite values; use truncated_mean")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    mean = float(data.mean())
    if data.size == 1:
        return mean, (mean, mean)
    rng = make_rng(seed)
    idx = rng.integers(0, data.size, size=(n_boot, data.size))
    boot_means = data[idx].mean(axis=1)
    lo, hi = np.quantile(boot_means, [(1 - confidence) / 2, (1 + confidence) / 2])
    return mean, (float(lo), float(hi))


@dataclass(frozen=True)
class TruncatedMean:
    """Mean of censored samples (non-finite values pinned at the horizon)."""

    mean: float
    censored_fraction: float
    horizon: float

    @property
    def is_lower_bound(self) -> bool:
        """True when any censoring occurred: the true mean is at least this."""
        return self.censored_fraction > 0


def truncated_mean(samples: Sequence[float], horizon: float) -> TruncatedMean:
    """Mean with values ``> horizon`` (or non-finite) replaced by ``horizon``.

    For capped simulations this is a valid *lower bound* on the true
    expectation — exactly the right direction for reporting how badly the
    random-walk baseline loses.
    """
    data = np.asarray(samples, dtype=np.float64)
    if data.size == 0:
        raise ValueError("need at least one sample")
    if not math.isfinite(horizon) or horizon <= 0:
        raise ValueError(f"horizon must be positive and finite, got {horizon}")
    censored = ~np.isfinite(data) | (data > horizon)
    clipped = np.where(censored, horizon, data)
    return TruncatedMean(
        mean=float(clipped.mean()),
        censored_fraction=float(censored.mean()),
        horizon=float(horizon),
    )


def success_rate(samples: Sequence[float], horizon: float = math.inf) -> float:
    """Fraction of runs that found the treasure by ``horizon``."""
    data = np.asarray(samples, dtype=np.float64)
    if data.size == 0:
        raise ValueError("need at least one sample")
    return float(np.mean(np.isfinite(data) & (data <= horizon)))


def wilson_interval(
    successes: int, total: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Better behaved than the normal approximation at the extremes — which is
    where Theorem 5.1's success-probability curves live.  Delegates to the
    canonical implementation in :mod:`repro.stats`.
    """
    return _wilson_interval(successes, total, confidence)


def quantiles(
    samples: Sequence[float], qs: Sequence[float] = (0.25, 0.5, 0.75, 0.9)
) -> Tuple[float, ...]:
    """Empirical quantiles; infinite samples are allowed and sort last."""
    data = np.asarray(samples, dtype=np.float64)
    if data.size == 0:
        raise ValueError("need at least one sample")
    ordered = np.sort(data)
    out = []
    for q in qs:
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        idx = min(int(q * (ordered.size - 1) + 0.5), ordered.size - 1)
        out.append(float(ordered[idx]))
    return tuple(out)


class Welford(StreamingMoments):
    """Streaming mean/variance accumulator (numerically stable).

    The strict-API face of :class:`repro.stats.StreamingMoments` (which
    also offers block updates and exact merge): this subclass raises on
    under-determined queries instead of returning ``nan``, the behaviour
    long-running instrumentation code relies on to fail fast.
    """

    def add(self, value: float) -> None:
        """Fold one observation into the running moments."""
        if not math.isfinite(value):
            raise ValueError(f"Welford requires finite values, got {value}")
        self.update(value)

    def extend(self, values: Sequence[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("no observations")
        return StreamingMoments.mean.fget(self)

    @property
    def variance(self) -> float:
        """Unbiased sample variance (needs at least two observations)."""
        if self.count < 2:
            raise ValueError("variance needs at least two observations")
        return StreamingMoments.variance.fget(self)

    @property
    def stderr(self) -> float:
        return math.sqrt(self.variance / self.count)
