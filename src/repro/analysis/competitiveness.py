"""Competitive analysis against the ``Omega(D + D^2/k)`` barrier.

Section 2 of the paper measures every algorithm against the universal lower
bound: any algorithm — even with free communication — needs expected time
``Omega(D + D^2/k)``.  An algorithm ``A`` is ``phi(k)``-competitive when
``T_A(D, k) <= phi(k) * (D + D^2/k)`` for all ``D`` and ``k``.

This module provides the normalisation and tabulation helpers used by all
experiments: :func:`optimal_time`, per-run :func:`competitiveness`, and
grid sweeps returning one row per ``(D, k)`` cell.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..algorithms.base import ExcursionAlgorithm
from ..sim.events import simulate_find_times
from ..sim.rng import SeedLike, spawn_seeds
from ..sim.world import place_treasure

__all__ = [
    "optimal_time",
    "competitiveness",
    "CompetitivenessCell",
    "measure_competitiveness",
    "sweep_competitiveness",
]


def optimal_time(distance: float, k: float) -> float:
    """The benchmark ``D + D^2/k`` every competitiveness ratio divides by."""
    if distance <= 0:
        raise ValueError(f"distance must be positive, got {distance}")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    return distance + distance * distance / k


def competitiveness(time: float, distance: float, k: float) -> float:
    """Ratio of a (mean) running time to :func:`optimal_time`."""
    return time / optimal_time(distance, k)


@dataclass(frozen=True)
class CompetitivenessCell:
    """One measured grid cell of a competitiveness sweep."""

    distance: int
    k: int
    trials: int
    mean_time: float
    stderr: float
    ratio: float

    @property
    def optimal(self) -> float:
        return optimal_time(self.distance, self.k)


def measure_competitiveness(
    algorithm_factory: Callable[[int], ExcursionAlgorithm],
    distance: int,
    k: int,
    trials: int,
    seed: SeedLike = None,
    *,
    placement: str = "offaxis",
    horizon: Optional[float] = None,
) -> CompetitivenessCell:
    """Measure one ``(D, k)`` cell.

    ``algorithm_factory(k)`` builds the algorithm instance — non-uniform
    algorithms use ``k``, uniform ones ignore it.  The treasure placement
    defaults to ``offaxis``: late in the spiral order *and* away from the
    deterministic Manhattan-leg "highways" (see
    :func:`repro.sim.world.place_treasure`); true argmin placement lives in
    ``analysis.lower_bounds``.
    """
    placement_seed, sim_seed = spawn_seeds(seed, 2)
    world = place_treasure(distance, placement, seed=placement_seed)
    algorithm = algorithm_factory(k)
    times = simulate_find_times(
        algorithm, world, k, trials, sim_seed, horizon=horizon
    )
    finite = np.isfinite(times)
    mean = float(np.mean(times))
    stderr = (
        float(np.std(times, ddof=1) / math.sqrt(trials))
        if trials > 1 and bool(np.all(finite))
        else math.inf
    )
    return CompetitivenessCell(
        distance=distance,
        k=k,
        trials=trials,
        mean_time=mean,
        stderr=stderr,
        ratio=competitiveness(mean, distance, k),
    )


def sweep_competitiveness(
    algorithm_factory: Callable[[int], ExcursionAlgorithm],
    distances: Sequence[int],
    ks: Sequence[int],
    trials: int,
    seed: SeedLike = None,
    *,
    placement: str = "offaxis",
    require_k_le_d: bool = False,
) -> List[CompetitivenessCell]:
    """Measure a full ``(D, k)`` grid; one cell per combination.

    ``require_k_le_d`` skips cells with ``k > D`` — the regime the paper's
    analyses reduce away (Theorem 3.3's proof starts by replacing ``k`` with
    ``D`` when ``k > D``, since extra agents cannot help below time ``D``).
    """
    cells: List[CompetitivenessCell] = []
    seeds = spawn_seeds(seed, len(distances) * len(ks))
    index = 0
    for distance in distances:
        for k in ks:
            cell_seed = seeds[index]
            index += 1
            if require_k_le_d and k > distance:
                continue
            cells.append(
                measure_competitiveness(
                    algorithm_factory,
                    distance,
                    k,
                    trials,
                    cell_seed,
                    placement=placement,
                )
            )
    return cells
