"""Analysis: competitive ratios, estimators, scaling fits, lower-bound machinery."""

from .competitiveness import (
    CompetitivenessCell,
    competitiveness,
    measure_competitiveness,
    optimal_time,
    sweep_competitiveness,
)
from .distributions import (
    doubling_tail,
    empirical_cdf,
    hill_estimator,
    survival_at,
    tail_is_geometric,
)
from .estimators import (
    Welford,
    mean_with_ci,
    quantiles,
    success_rate,
    truncated_mean,
    wilson_interval,
)
from .fitting import FitResult, fit_polylog, fit_power_law, r_squared
from .lower_bounds import (
    AnnulusLoad,
    adversarial_treasure,
    annulus_load_profile,
    harmonic_sum_divergence,
    visit_probability_map,
)
from .theory import (
    assertion2_phase_index,
    harmonic_alpha,
    harmonic_failure_bound,
    harmonic_time_bound,
    lower_bound_time,
    nonuniform_stage_time_bound,
    uniform_critical_stage,
    uniform_stage_time,
    zeta_constant,
)

__all__ = [
    "AnnulusLoad",
    "CompetitivenessCell",
    "FitResult",
    "Welford",
    "adversarial_treasure",
    "annulus_load_profile",
    "assertion2_phase_index",
    "competitiveness",
    "doubling_tail",
    "empirical_cdf",
    "fit_polylog",
    "fit_power_law",
    "hill_estimator",
    "survival_at",
    "tail_is_geometric",
    "harmonic_alpha",
    "harmonic_failure_bound",
    "harmonic_sum_divergence",
    "harmonic_time_bound",
    "lower_bound_time",
    "mean_with_ci",
    "measure_competitiveness",
    "nonuniform_stage_time_bound",
    "optimal_time",
    "quantiles",
    "r_squared",
    "success_rate",
    "sweep_competitiveness",
    "truncated_mean",
    "uniform_critical_stage",
    "uniform_stage_time",
    "visit_probability_map",
    "wilson_interval",
    "zeta_constant",
]
