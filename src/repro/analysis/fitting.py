"""Scaling-law fits used to compare measurements with theorem predictions.

Two families cover every experiment:

* **poly-log**: ``phi(k) = a * log(k)^b`` — Theorem 3.3 predicts the
  uniform algorithm's competitiveness has ``b ~ 1 + eps``; Theorem 4.1 says
  no uniform algorithm achieves ``b <= 1`` with bounded ``a``.
* **power law**: ``T(D) = a * D^b`` — Theorem 3.1 predicts ``b ~ 2`` for
  fixed ``k`` in the ``D^2/k``-dominated regime and ``b ~ 1`` once
  ``k >~ D``; the cow-path baseline has ``b = 2`` always.

Both reduce to linear least squares after taking logs; fits report ``R^2``
so tests can insist the model actually explains the data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["FitResult", "fit_power_law", "fit_polylog", "r_squared"]


@dataclass(frozen=True)
class FitResult:
    """Result of a two-parameter scaling fit ``y = a * f(x)^b``."""

    a: float
    b: float
    r2: float
    model: str

    def predict(self, x: float) -> float:
        if self.model == "power":
            return self.a * x**self.b
        if self.model == "polylog":
            return self.a * math.log(x) ** self.b
        raise ValueError(f"unknown model {self.model!r}")


def r_squared(y: np.ndarray, y_hat: np.ndarray) -> float:
    """Coefficient of determination of predictions ``y_hat`` against ``y``."""
    y = np.asarray(y, dtype=np.float64)
    y_hat = np.asarray(y_hat, dtype=np.float64)
    ss_res = float(np.sum((y - y_hat) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    if ss_tot == 0:
        return 1.0 if ss_res == 0 else 0.0
    return 1.0 - ss_res / ss_tot


def _loglinear_fit(log_x: np.ndarray, log_y: np.ndarray) -> Tuple[float, float, float]:
    slope, intercept = np.polyfit(log_x, log_y, 1)
    pred = slope * log_x + intercept
    return float(math.exp(intercept)), float(slope), r_squared(log_y, pred)


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> FitResult:
    """Fit ``y = a * x^b`` by least squares in log-log space."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size or x.size < 2:
        raise ValueError("need two same-length samples of size >= 2")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fits need positive data")
    a, b, r2 = _loglinear_fit(np.log(x), np.log(y))
    return FitResult(a=a, b=b, r2=r2, model="power")


def fit_polylog(x: Sequence[float], y: Sequence[float]) -> FitResult:
    """Fit ``y = a * log(x)^b`` by least squares in log(log)-log space.

    Requires ``x > 1`` so that ``log x > 0``; callers drop the ``k = 1``
    cell (where the competitiveness of any sane algorithm is ``Theta(1)``
    and the model is degenerate anyway).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size or x.size < 2:
        raise ValueError("need two same-length samples of size >= 2")
    if np.any(x <= 1):
        raise ValueError("polylog fits need x > 1 (log x must be positive)")
    if np.any(y <= 0):
        raise ValueError("polylog fits need positive y")
    a, b, r2 = _loglinear_fit(np.log(np.log(x)), np.log(y))
    return FitResult(a=a, b=b, r2=r2, model="polylog")
