"""Find-time distribution tools: tails are where the theory shows.

The proofs do not just bound expectations — they imply distribution
shapes, which make sharper empirical targets:

* **Iterated algorithms** (Theorems 3.1/3.3): the probability of surviving
  stage ``s + l`` without a find is at most ``gamma^(-l^2/2)`` — a
  *super-geometric* (doubly exponential in ``l``, i.e. faster than any
  geometric in ``l``) tail over the doubling time scale
  ``t ~ 2^(s+l)``.  :func:`doubling_tail` measures
  ``P(T > t0 * 2^l)`` and :func:`tail_is_geometric` checks the decay
  dominates a geometric envelope.

* **Heavy-tailed baselines**: the simple random walk's hitting time on
  ``Z^2`` has a log-corrected ``1/t`` tail (hence an infinite mean);
  one-shot harmonic find times inherit a power tail from the zipf radius.
  :func:`hill_estimator` estimates the tail exponent.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "empirical_cdf",
    "survival_at",
    "doubling_tail",
    "tail_is_geometric",
    "hill_estimator",
]


def empirical_cdf(samples: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF over the finite samples: returns ``(x, F(x))``.

    Non-finite samples (censored runs) are excluded from ``x`` but *do*
    count in the denominator, so ``F`` tops out below 1 for defective
    distributions — the honest convention for one-shot algorithms.
    """
    data = np.asarray(samples, dtype=np.float64)
    if data.size == 0:
        raise ValueError("need at least one sample")
    finite = np.sort(data[np.isfinite(data)])
    if finite.size == 0:
        return np.array([]), np.array([])
    return finite, np.arange(1, finite.size + 1) / data.size


def survival_at(samples: Sequence[float], t: float) -> float:
    """``P(T > t)`` under the empirical distribution (censored counted as > t)."""
    data = np.asarray(samples, dtype=np.float64)
    if data.size == 0:
        raise ValueError("need at least one sample")
    return float(np.mean(~np.isfinite(data) | (data > t)))


def doubling_tail(
    samples: Sequence[float], t0: float, levels: int
) -> List[Tuple[float, float]]:
    """Survival probabilities on the doubling scale: ``P(T > t0 * 2^l)``.

    Returns ``[(t0*2^l, survival)]`` for ``l = 0..levels-1`` — the scale on
    which the stage-structure proofs bound the tail.
    """
    if t0 <= 0:
        raise ValueError(f"t0 must be positive, got {t0}")
    if levels < 1:
        raise ValueError(f"levels must be >= 1, got {levels}")
    return [
        (t0 * 2.0**level, survival_at(samples, t0 * 2.0**level))
        for level in range(levels)
    ]


def tail_is_geometric(
    samples: Sequence[float], t0: float, levels: int, ratio: float = 0.6
) -> bool:
    """Check the doubling-scale tail decays at least geometrically.

    True iff ``P(T > t0*2^(l+1)) <= ratio * P(T > t0*2^l)`` whenever the
    level has statistical support (survival counts of at least 5 samples).
    The proofs imply decay *faster* than any fixed geometric, so any
    ``ratio < 1`` should pass for iterated algorithms once ``t0`` is at
    the find-time scale.
    """
    if not 0 < ratio < 1:
        raise ValueError(f"ratio must be in (0, 1), got {ratio}")
    data = np.asarray(samples, dtype=np.float64)
    n = data.size
    tail = doubling_tail(samples, t0, levels)
    for (_, p_now), (_, p_next) in zip(tail, tail[1:]):
        if p_now * n < 5:  # no support left; tail is already resolved
            break
        if p_next > ratio * p_now + 1e-12:
            return False
    return True


def hill_estimator(samples: Sequence[float], tail_fraction: float = 0.1) -> float:
    """Hill estimator of the tail index ``alpha`` (``P(T > t) ~ t^-alpha``).

    Uses the upper ``tail_fraction`` of the finite order statistics.
    Small values (``alpha <= 1``) diagnose an infinite mean — the random
    walk's signature on ``Z^2``.
    """
    data = np.asarray(samples, dtype=np.float64)
    finite = np.sort(data[np.isfinite(data) & (data > 0)])
    if finite.size < 10:
        raise ValueError("need at least 10 finite positive samples")
    if not 0 < tail_fraction < 1:
        raise ValueError(f"tail_fraction must be in (0, 1), got {tail_fraction}")
    k = max(2, int(tail_fraction * finite.size))
    top = finite[-k:]
    threshold = top[0]
    logs = np.log(top / threshold)
    mean_log = float(np.mean(logs[1:])) if k > 2 else float(np.mean(logs))
    if mean_log <= 0:
        return math.inf
    return 1.0 / mean_log
