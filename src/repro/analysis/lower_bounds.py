"""Empirical machinery of the lower-bound proofs (Theorems 4.1 and 4.2).

A lower bound cannot be "run", but its *mechanism* can be measured.  Both
proofs follow the same counting template:

1. pretend the treasure is far away (``D = 2T + 1``), run the algorithm
   with ``k_i`` agents to the cutoff ``2T``;
2. for balls ``B(D_i)`` whose cells the assumed competitiveness ``phi``
   forces to be found quickly, Markov's inequality gives
   ``Pr[cell visited by 2T] >= 1/2``;
3. summing over disjoint annuli ``S_i``, each agent must visit
   ``Omega(|S_i| / k_i) = Omega(T / phi(k_i))`` distinct cells per annulus
   — but an agent can visit at most ``2T`` cells total, so
   ``sum_i 1/phi(2^i)`` must converge.  ``phi = O(log k)`` diverges:
   contradiction.

This module measures steps (2) and (3) on real executions:
:func:`annulus_load_profile` instruments the per-annulus per-agent loads,
:func:`harmonic_sum_divergence` exhibits the divergent sum for a measured
``phi``, and :func:`adversarial_treasure` implements the adversary itself —
the argmin-visit-probability placement used to stress upper-bound
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..algorithms.base import SearchAlgorithm
from ..core.geometry import ball_cells, l1_norm
from ..sim.engine import first_visit_times
from ..sim.metrics import AnnulusCoverage, coverage_by_annulus, distinct_nodes_visited
from ..sim.rng import SeedLike, spawn_seeds
from ..sim.world import World

__all__ = [
    "AnnulusLoad",
    "annulus_load_profile",
    "harmonic_sum_divergence",
    "visit_probability_map",
    "adversarial_treasure",
]

Point = Tuple[int, int]

#: A placement far beyond any cutoff, standing in for "D = 2T + 1".
def _far_treasure(cutoff: int) -> World:
    return World((2 * cutoff + 1, 0))


@dataclass(frozen=True)
class AnnulusLoad:
    """Measured per-annulus load for one agent population ``k``."""

    k: int
    coverage: List[AnnulusCoverage]
    per_agent_distinct: float
    cutoff: int

    @property
    def total_per_agent_annulus_load(self) -> float:
        """``sum_i`` per-agent cells visited in annulus ``S_i``."""
        return sum(c.per_agent_mean for c in self.coverage)


def annulus_load_profile(
    algorithm_factory: Callable[[int], SearchAlgorithm],
    ks: Sequence[int],
    boundaries: Sequence[int],
    cutoff: int,
    seed: SeedLike = None,
) -> List[AnnulusLoad]:
    """Run the algorithm with each ``k`` to ``cutoff`` and measure annulus loads.

    Mirrors the proof's experiment: no treasure is findable (it is placed at
    ``2*cutoff + 1``), agents walk the full window, and we record for every
    annulus between consecutive ``boundaries`` the union coverage
    ``chi(S_i)`` and the mean per-agent distinct-cell load.
    """
    world = _far_treasure(cutoff)
    seeds = spawn_seeds(seed, len(ks))
    profiles: List[AnnulusLoad] = []
    for k, k_seed in zip(ks, seeds):
        maps = first_visit_times(algorithm_factory(k), world, k, k_seed, cutoff)
        coverage = coverage_by_annulus(maps, list(boundaries), cutoff)
        distinct = distinct_nodes_visited(maps, cutoff)
        profiles.append(
            AnnulusLoad(
                k=k,
                coverage=coverage,
                per_agent_distinct=float(np.mean(distinct)),
                cutoff=cutoff,
            )
        )
    return profiles


def harmonic_sum_divergence(phi_values: Dict[int, float]) -> List[Tuple[int, float]]:
    """Partial sums of ``sum_i 1 / phi(2^i)`` for measured competitiveness.

    Theorem 4.1's contradiction: if ``phi(k) = O(log k)`` the sum diverges,
    so the partial sums must grow without bound; an algorithm can only be
    legitimate if its measured ``phi`` makes these partial sums converge.
    Input maps ``k = 2^i`` to measured ``phi(k)``; output is the running
    partial sum in increasing ``i``.
    """
    if not phi_values:
        raise ValueError("need at least one measured phi value")
    partial = 0.0
    out: List[Tuple[int, float]] = []
    for k in sorted(phi_values):
        phi = phi_values[k]
        if phi <= 0:
            raise ValueError(f"phi must be positive, got phi({k}) = {phi}")
        partial += 1.0 / phi
        out.append((k, partial))
    return out


def visit_probability_map(
    algorithm: SearchAlgorithm,
    k: int,
    radius: int,
    cutoff: int,
    runs: int,
    seed: SeedLike = None,
) -> Dict[Point, float]:
    """Estimate ``Pr[cell visited by cutoff]`` for every cell of ``B(radius)``.

    Probability is over the algorithm's randomness, with the union taken
    over the ``k`` agents — the quantity Markov's inequality bounds in the
    proofs.  Estimated from ``runs`` independent executions.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    world = _far_treasure(cutoff)
    counts: Dict[Point, int] = {cell: 0 for cell in ball_cells(radius)}
    seeds = spawn_seeds(seed, runs)
    for run_seed in seeds:
        maps = first_visit_times(algorithm, world, k, run_seed, cutoff)
        seen: set = set()
        for visits in maps:
            for cell, t in visits.items():
                if t <= cutoff:
                    seen.add(cell)
        for cell in seen:
            if cell in counts:
                counts[cell] += 1
    return {cell: c / runs for cell, c in counts.items()}


def adversarial_treasure(
    algorithm: SearchAlgorithm,
    k: int,
    distance: int,
    cutoff: int,
    runs: int,
    seed: SeedLike = None,
) -> Tuple[World, float]:
    """The adversary of Section 2: place the treasure where it is least covered.

    Estimates the visit-probability map of the ring at ``distance`` by
    ``cutoff`` and returns the world with the treasure at the argmin cell,
    together with that cell's estimated visit probability.  Placing the
    treasure there maximises the algorithm's expected find time among
    distance-``distance`` placements (up to estimation error).
    """
    probabilities = visit_probability_map(algorithm, k, distance, cutoff, runs, seed)
    ring = {
        cell: p
        for cell, p in probabilities.items()
        if l1_norm(cell[0], cell[1]) == distance
    }
    worst_cell = min(sorted(ring), key=lambda cell: ring[cell])
    return World(worst_cell), ring[worst_cell]
