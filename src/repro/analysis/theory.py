"""Closed-form quantities from the paper's proofs.

Everything here is *predicted*, not measured — the experiment harness
compares these against Monte-Carlo estimates, and the unit tests check the
algebra (e.g. that Assertion 1's geometric-sum bound really holds for the
implemented schedules, including all rounding).
"""

from __future__ import annotations

import math
from scipy.special import zeta

from ..core.schedule import (
    nonuniform_stage_phases,
    phase_max_duration,
    uniform_big_stage_phases,
    uniform_stage_phases,
)

__all__ = [
    "lower_bound_time",
    "nonuniform_stage_time_bound",
    "uniform_stage_time",
    "uniform_critical_stage",
    "assertion2_phase_index",
    "harmonic_alpha",
    "harmonic_failure_bound",
    "harmonic_time_bound",
    "zeta_constant",
]


def lower_bound_time(distance: float, k: float) -> float:
    """The Section 2 observation: no algorithm beats ``max(D, D^2/(4k))``.

    The proof shows expected time ``T >= D`` trivially and ``T >= D^2/(4k)``
    by the counting argument (``2Tk`` node-visits cannot half-cover
    ``B(D)`` if ``T < D^2/4k``).
    """
    return max(distance, distance * distance / (4.0 * k))


def nonuniform_stage_time_bound(stage: int, k: float) -> float:
    """Worst-case duration of stage ``j`` of ``A_k``: ``sum_i O(2^i + 2^{2i}/k)``.

    Returned as the exact sum of per-phase worst cases for the *implemented*
    schedule (including rounding), which the proof bounds by
    ``O(2^j + 2^{2j}/k)``.
    """
    return float(
        sum(phase_max_duration(spec) for spec in nonuniform_stage_phases(stage, k))
    )


def uniform_stage_time(i: int, eps: float) -> float:
    """Exact worst-case duration of stage ``i`` of ``A_uniform(eps)``.

    Assertion 1 of Theorem 3.3 bounds this by ``O(2^i)``; the unit tests
    verify the implemented schedule meets ``C * 2^i`` with a constant ``C``
    depending only on ``eps``.
    """
    return float(sum(phase_max_duration(spec) for spec in uniform_stage_phases(i, eps)))


def uniform_big_stage_time(ell: int, eps: float) -> float:
    """Exact worst-case duration of big-stage ``ell`` (sum of its stages)."""
    return float(
        sum(phase_max_duration(spec) for spec in uniform_big_stage_phases(ell, eps))
    )


def uniform_critical_stage(distance: int, k: int, eps: float) -> int:
    """The proof's ``s = ceil(log2(D^2 * log^(1+eps) k / k)) + 1``.

    From stage ``s`` on, every stage contains a phase that succeeds with
    constant probability (Assertion 2).
    """
    if distance < 1 or k < 1:
        raise ValueError("distance and k must be >= 1")
    log_k = max(math.log2(k), 1.0)
    value = distance * distance * log_k ** (1.0 + eps) / k
    return max(0, math.ceil(math.log2(max(value, 1.0)))) + 1


def assertion2_phase_index(k: int) -> int:
    """The phase ``j`` with ``2^j <= k < 2^(j+1)`` used by Assertion 2."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return int(math.floor(math.log2(k)))


def zeta_constant(delta: float) -> float:
    """``zeta(1 + delta)`` — the tail mass of the harmonic distribution."""
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    return float(zeta(1.0 + delta))


def harmonic_alpha(eps: float, delta: float) -> float:
    """Theorem 5.1's ``alpha = 12 * beta / c`` with ``beta = ln(1/eps)``.

    ``c = 1/(4 zeta(1+delta))`` is the normalising constant of ``p(u)``;
    the theorem guarantees success probability ``>= 1 - eps`` whenever
    ``k > alpha * D^delta``.
    """
    if not 0 < eps < 1:
        raise ValueError(f"eps must be in (0, 1), got {eps}")
    beta = math.log(1.0 / eps)
    c = 1.0 / (4.0 * zeta_constant(delta))
    return 12.0 * beta / c


def harmonic_failure_bound(k: float, distance: float, delta: float) -> float:
    """Upper bound on the one-shot harmonic failure probability.

    Following the proof of Theorem 5.1 with ``beta = c*k / (12 * D^delta)``
    (the largest beta permitted by ``k > alpha * D^delta``): failure
    probability at most ``exp(-beta)``, clipped to 1.
    """
    if k <= 0 or distance < 1:
        raise ValueError("k must be positive and distance >= 1")
    c = 1.0 / (4.0 * zeta_constant(delta))
    beta = c * k / (12.0 * distance**delta)
    return min(1.0, math.exp(-beta))


def harmonic_time_bound(distance: float, k: float, delta: float) -> float:
    """The Theorem 5.1 running-time envelope ``D + D^(2+delta)/k``."""
    if k <= 0 or distance < 1:
        raise ValueError("k must be positive and distance >= 1")
    return distance + distance ** (2.0 + delta) / k
