"""Turn-cost accounting (the Demaine–Fekete–Gal cost model, related work [14]).

The paper's related work cites the cow-path variant where the objective
charges both distance *and* turns.  Turning is expensive for physical
agents (deceleration, reorientation), and the paper's constructions differ
sharply in turn frequency:

* a straight Manhattan leg has at most 1 turn;
* the square spiral turns twice per ring — ``~ sqrt(t)`` turns in ``t``
  steps — so its turn *density* vanishes as it grows;
* a simple random walk turns on ~3/4 of its steps.

This module computes exact turn counts for the repository's navigation
primitives and a turn-adjusted cost ``steps + turn_cost * turns`` for
excursion algorithms, showing that the paper's upper bounds survive the
turn-cost model with the same shape (each excursion has
``O(sqrt(budget))`` turns against ``Theta(budget)`` steps).
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from ..core.schedule import PhaseSpec
from ..core.spiral import spiral_position

__all__ = [
    "count_turns",
    "spiral_turns",
    "manhattan_leg_turns",
    "phase_turns_upper_bound",
    "turn_adjusted_phase_cost",
]

Point = Tuple[int, int]


def count_turns(positions: Sequence[Point], start: Point = (0, 0)) -> int:
    """Number of direction changes along a unit-step path.

    The first move establishes the heading for free; every subsequent move
    in a different direction counts one turn.
    """
    turns = 0
    heading = None
    previous = start
    for position in positions:
        move = (position[0] - previous[0], position[1] - previous[1])
        if abs(move[0]) + abs(move[1]) != 1:
            raise ValueError(f"non-unit step {previous} -> {position}")
        if heading is not None and move != heading:
            turns += 1
        heading = move
        previous = position
    return turns


def spiral_turns(t: int) -> int:
    """Exact number of turns of the canonical spiral in its first ``t`` steps.

    Runs have lengths 1,1,2,2,3,3,...; one turn happens between consecutive
    runs.  After ``t`` steps the walker has completed ``r`` full runs where
    ``r`` is maximal with ``S(r) <= t`` (``S(2q) = q(q+1)``,
    ``S(2q+1) = (q+1)^2``), and turned ``r`` times if a new run has started
    (``t > S(r)``), else ``r - 1`` times.
    """
    if t < 0:
        raise ValueError(f"t must be non-negative, got {t}")
    if t <= 1:
        return 0
    v = math.isqrt(t)
    if t == v * v:  # exactly at the end of odd run 2v-1
        return 2 * v - 2
    if t <= v * v + v:
        # Inside (or at the end of) even run 2v.
        return 2 * v - 1 if t < v * v + v else 2 * v - 1
    return 2 * v  # inside odd run 2v+1


def manhattan_leg_turns(dx: int, dy: int) -> int:
    """Turns on the canonical x-first Manhattan leg to offset ``(dx, dy)``."""
    return 1 if dx != 0 and dy != 0 else 0


def phase_turns_upper_bound(spec: PhaseSpec) -> int:
    """Worst-case turns in one excursion of ``spec``.

    Out leg (<= 1) + transition into the spiral (<= 1) + spiral turns +
    transition home (<= 1) + return leg (<= 1).
    """
    return spiral_turns(spec.budget) + 4


def turn_adjusted_phase_cost(spec: PhaseSpec, turn_cost: float) -> float:
    """Worst-case ``steps + turn_cost * turns`` for one excursion of ``spec``.

    The steps term reuses the exact worst-case duration; the turns term is
    ``O(sqrt(budget))``, so for any constant ``turn_cost`` the adjusted
    cost is within ``1 + o(1)`` of the plain one as budgets grow — the
    paper's bounds are turn-cost robust.
    """
    if turn_cost < 0:
        raise ValueError(f"turn cost must be non-negative, got {turn_cost}")
    ex, ey = spiral_position(spec.budget)
    steps = 2 * spec.radius + spec.budget + abs(ex) + abs(ey)
    return steps + turn_cost * phase_turns_upper_bound(spec)
