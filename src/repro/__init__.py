"""repro — reproduction of *Collaborative Search on the Plane without Communication*.

Feinerman, Korman, Lotker, Sereni (PODC 2012): ``k`` identical,
non-communicating probabilistic agents search the grid ``Z^2`` for an
adversarially placed treasure at unknown distance ``D``.

Quickstart::

    from repro import NonUniformSearch, UniformSearch, place_treasure, simulate_find_times

    world = place_treasure(distance=64, placement="corner")
    times = simulate_find_times(NonUniformSearch(k=16), world, k=16, trials=100, seed=0)
    print(times.mean())          # ~ O(D + D^2/k)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
theorem-by-theorem reproduction results.
"""

from .algorithms import (
    AdaptiveSearcher,
    BiasedWalkSearch,
    ExcursionAlgorithm,
    ExcursionFamily,
    GridBeliefSearch,
    HarmonicSearch,
    HedgedApproxSearch,
    KnownDSearch,
    LevyFlightSearch,
    NaiveTrustSearch,
    NonUniformSearch,
    RandomWalkSearch,
    RestartingHarmonicSearch,
    RhoApproxSearch,
    SearchAlgorithm,
    SingleSpiralSearch,
    UniformSearch,
)
from .analysis.competitiveness import competitiveness, optimal_time
from .scenarios import AgentProfile, ScenarioSpec
from .sim import (
    BiasedWalker,
    Engine,
    LevyWalker,
    RandomWalker,
    Result,
    Walker,
    World,
    WorldSpec,
    engine_for,
    excursion_find_time,
    expected_find_time,
    make_rng,
    place_targets,
    place_treasure,
    resolve_world,
    run_search,
    simulate_find_times,
    simulate_find_times_batch,
    walker_find_times,
    walker_find_times_batch,
)
from .stats import (
    BudgetPolicy,
    FindTimeAccumulator,
    FindTimeSummary,
    StreamingMoments,
    summarize_times,
)
from .sweep import (
    RemoteExecutor,
    SweepExecutor,
    SweepSpec,
    make_executor,
    run_sweep,
)

__version__ = "1.7.0"

__all__ = [
    "AdaptiveSearcher",
    "AgentProfile",
    "BiasedWalkSearch",
    "BiasedWalker",
    "BudgetPolicy",
    "Engine",
    "ExcursionAlgorithm",
    "ExcursionFamily",
    "FindTimeAccumulator",
    "FindTimeSummary",
    "GridBeliefSearch",
    "HarmonicSearch",
    "HedgedApproxSearch",
    "KnownDSearch",
    "LevyFlightSearch",
    "LevyWalker",
    "NaiveTrustSearch",
    "NonUniformSearch",
    "RandomWalkSearch",
    "RandomWalker",
    "RemoteExecutor",
    "Result",
    "RestartingHarmonicSearch",
    "RhoApproxSearch",
    "ScenarioSpec",
    "SearchAlgorithm",
    "SingleSpiralSearch",
    "StreamingMoments",
    "SweepSpec",
    "UniformSearch",
    "Walker",
    "World",
    "WorldSpec",
    "competitiveness",
    "engine_for",
    "excursion_find_time",
    "expected_find_time",
    "make_executor",
    "make_rng",
    "optimal_time",
    "place_targets",
    "place_treasure",
    "resolve_world",
    "run_search",
    "run_sweep",
    "simulate_find_times",
    "simulate_find_times_batch",
    "summarize_times",
    "SweepExecutor",
    "walker_find_times",
    "walker_find_times_batch",
    "__version__",
]
