"""Batched walker engine: vectorised memoryless baselines (engine 4).

The non-excursion baselines — simple random walks, correlated (persistent)
walks, and Lévy flights — have no excursion structure, so the excursion
engine of :mod:`repro.sim.events` cannot touch them and they historically
ran through the per-step Python engine at ``horizon x k x trials``
generator steps.  This module replaces that path with chunked NumPy
simulation, exact in distribution against the step engine (validated by
``tests/test_walker_engine.py``) and orders of magnitude faster, so the
walker baselines can run at the same sample sizes as the paper's
constructions.

Two simulation shapes:

* **step-chunked** (:class:`RandomWalker`): all ``trials x k`` walkers
  advance through a shared clock in chunks of ``span`` steps; per chunk
  the per-step offsets are drawn as a ``(walkers, span)`` matrix,
  positions are two cumulative sums, and treasure hits are an
  elementwise comparison.

* **segment-chunked** (:class:`BiasedWalker`, :class:`LevyWalker`):
  walkers consume whole straight segments rather than steps, each walker
  on its own clock.  A segment's treasure hit is a closed-form ray test
  (the treasure lies on the axis-aligned ray within the segment length),
  so a length-``L`` run costs O(1) work instead of ``L`` steps.  The
  correlated walk's per-step reorientation coin makes its straight runs
  geometric, so its headings are resampled per *run* — vectorised
  ``rng.geometric`` lengths with uniform headings — instead of per step;
  Lévy flights draw vectorised Zipf lengths the same way.

Both shapes prune at trial granularity: once any walker of a trial has
found, siblings whose clock has passed that find time are retired (their
future hits could never improve the trial's first find).

Memory stays at ``O(live walkers x chunk)`` 64-bit entries (the offset
and cumulative-position matrices); the default chunk is sized so that a
matrix stays around a few million elements, degrading to ``16 x walkers``
— a small constant factor over the unavoidable per-walker state — when
the walker count alone exceeds the budget.

Walkers are registered as sweepable strategies in
:mod:`repro.sweep.spec`, so ``SweepSpec``/``run_sweep`` dispatch them —
with the npz cache and the multiprocessing pool — exactly like excursion
algorithms.  A sweep over walkers must set a ``horizon``: memoryless
walks on ``Z^2`` have infinite expected hitting times (the paper's
motivating observation), so an uncapped simulation need not terminate.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..scenarios import ScenarioSpec, resolve_scenario, steps_within
from .rng import (
    BLOCK_STREAM,
    SeedLike,
    derive_rng,
    derive_seed,
    make_rng,
    spawn_seeds,
)
from .world import (
    TARGET_STREAM,
    TargetTrack,
    World,
    WorldSpec,
    initial_targets,
    resolve_world,
)

__all__ = [
    "Walker",
    "RandomWalker",
    "BiasedWalker",
    "LevyWalker",
    "walker_find_times",
    "walker_find_times_block",
    "walker_find_times_batch",
]

#: Unit moves in the step-program order: +x, +y, -x, -y.
_DIR_X = np.array([1, 0, -1, 0], dtype=np.int64)
_DIR_Y = np.array([0, 1, 0, -1], dtype=np.int64)

#: Soft cap on elements per per-chunk matrix when no chunk is given.
_CHUNK_BUDGET = 1 << 22


def _auto_chunk(walkers: int, chunk: Optional[int], floor: int, cap: int) -> int:
    """Chunk width: explicit value, or budgeted by the walker count."""
    if chunk is not None:
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        return int(chunk)
    return max(floor, min(cap, _CHUNK_BUDGET // max(walkers, 1)))


def _validate(k: int, trials: int, horizon: float) -> int:
    if k < 1 or trials < 1:
        raise ValueError("k and trials must be >= 1")
    if horizon is None or not math.isfinite(horizon) or horizon < 1:
        raise ValueError(
            f"walker simulation needs a finite horizon >= 1, got {horizon!r} "
            "(memoryless walks on Z^2 have infinite expected hitting time)"
        )
    return int(horizon)


@dataclass
class _SlotPlan:
    """Resolved per-slot perturbations for one walker simulation.

    Slots are laid out trial-major (``slot = trial * k + agent``), matching
    ``trial_of``.  ``step_cap`` is the last *step index* a slot may take —
    the wall-clock horizon and the slot's crash time, both converted to
    steps via its speed — so hits are valid iff ``step <= step_cap`` and a
    slot retires once its step clock reaches the cap.  ``None`` plan means
    "no scenario, no delays": the engines then keep the exact legacy path.
    """

    speeds: np.ndarray
    delays: np.ndarray
    step_cap: np.ndarray
    detection: Optional[float]

    def wall(self, slots: np.ndarray, steps) -> np.ndarray:
        """Wall-clock time of the given slots after ``steps`` steps."""
        return self.delays[slots] + steps / self.speeds[slots]

    def mask_missed(self, hits: np.ndarray, rng: np.random.Generator):
        """Clear hit cells whose detection coin fails (in place).

        One coin per hit cell — each cell crossing is an independent
        detection opportunity — flipped only at the rare hits rather than
        per simulated step/segment.
        """
        if self.detection is not None:
            hr, hc = np.nonzero(hits)
            if hr.size:
                missed = rng.random(hr.size) >= self.detection
                hits[hr[missed], hc[missed]] = False
        return hits


def _slot_plan(
    scenario: Optional[ScenarioSpec],
    start_delays,
    k: int,
    trials: int,
    horizon: int,
    rng: np.random.Generator,
) -> Optional[_SlotPlan]:
    """Build the per-slot plan, or ``None`` when nothing is perturbed."""
    scn = resolve_scenario(scenario)
    if scn is None and start_delays is None:
        return None
    n = trials * k
    delays = np.zeros(n, dtype=np.float64)
    if start_delays is not None:
        given = np.asarray(start_delays, dtype=np.float64)
        if np.any(given < 0):
            raise ValueError("start delays must be non-negative")
        delays += np.broadcast_to(given, (trials, k)).ravel()
    speeds = np.ones(n, dtype=np.float64)
    detection = None
    if scn is not None:
        if scn.start_stagger > 0:
            delays += np.tile(scn.delays(k), trials)
        if scn.speed_spread > 0:
            speeds = np.tile(scn.speeds(k), trials)
        if scn.detection_prob < 1:
            detection = scn.detection_prob
    # Steps allowed inside the wall-clock horizon: delay + step/speed <=
    # horizon (a hit at exactly the horizon is kept — the step engine's
    # rule).  Crash lifetimes come from a spawned child of ``rng`` so the
    # movement draws that follow stay identical across hazard settings
    # (paired hazard sweeps, as in the excursion engines).
    step_cap = steps_within(horizon - delays, speeds).astype(np.int64)
    if scn is not None and scn.crash_hazard > 0:
        (life_rng,) = rng.spawn(1)
        lifetimes = life_rng.geometric(scn.crash_hazard, size=n)
        crash_cap = steps_within(lifetimes.astype(np.float64), speeds)
        step_cap = np.minimum(step_cap, crash_cap.astype(np.int64))
    return _SlotPlan(
        speeds=speeds, delays=delays, step_cap=step_cap, detection=detection
    )


def _world_track(
    world,
    world_spec: Optional[WorldSpec],
    trials: int,
    seed: SeedLike,
) -> Optional[TargetTrack]:
    """Resolve the dynamic-world state, or ``None`` for the legacy path.

    Mirrors :func:`repro.sim.world.resolve_world`'s structural contract:
    a ``None``/all-default spec returns ``None`` before any randomness is
    touched, so the static single-target code below it stays bitwise
    identical.  Dynamic worlds draw their motion and arrival randomness
    from ``derive_rng(seed, TARGET_STREAM)``, never from the walker's own
    movement stream.
    """
    wspec = resolve_world(world_spec)
    if wspec is None:
        return None
    targets0 = initial_targets(world, wspec)
    return TargetTrack(
        wspec, targets0, trials, derive_rng(seed, TARGET_STREAM)
    )


def _track_detection(
    track: TargetTrack, plan: Optional[_SlotPlan]
) -> Optional[float]:
    """World-level detection composed with the scenario's lossy knob."""
    q = track.spec.detection_prob
    if plan is not None and plan.detection is not None:
        q *= plan.detection
    return q if q < 1 else None


def _mask_missed(valid: np.ndarray, q: Optional[float], rng) -> np.ndarray:
    """Clear valid-hit cells whose detection coin fails (in place)."""
    if q is not None:
        hr, hc = np.nonzero(valid)
        if hr.size:
            missed = rng.random(hr.size) >= q
            valid[hr[missed], hc[missed]] = False
    return valid


def _step_chunk_hits(
    track: TargetTrack,
    px: np.ndarray,
    py: np.ndarray,
    alive: np.ndarray,
    trial_of: np.ndarray,
    t: int,
    span: int,
    plan: Optional[_SlotPlan],
    rng,
) -> np.ndarray:
    """Valid-hit matrix for one dynamic-world step chunk.

    Targets are frozen at the chunk's start time ``t`` — the walker
    engine's per-chunk motion granularity (pass a smaller ``chunk`` to
    refine it) — then each target is an elementwise position comparison,
    arrival-gated in wall-clock time and detection-thinned with the world
    knob composed with the scenario's.
    """
    trials_idx = trial_of[alive]
    pos = track.positions_at(t)
    steps = t + 1 + np.arange(span, dtype=np.int64)
    if plan is not None:
        wall = plan.wall(alive[:, None], steps[None, :].astype(np.float64))
        cap_ok = steps[None, :] <= plan.step_cap[alive, None]
    else:
        wall = steps.astype(np.float64)[None, :]
        cap_ok = None
    q = _track_detection(track, plan)
    hit = np.zeros(px.shape, dtype=bool)
    for j in range(track.n):
        hj = (px == pos[trials_idx, j, 0][:, None]) & (
            py == pos[trials_idx, j, 1][:, None]
        )
        if track.spec.arrival == "geometric":
            hj = hj & (wall >= track.arrival[trials_idx, j][:, None])
        hit |= _mask_missed(hj, q, rng)
    if cap_ok is not None:
        hit = hit & cap_ok
    return hit


def _segment_hits(
    track: TargetTrack,
    start_x: np.ndarray,
    start_y: np.ndarray,
    start_t: np.ndarray,
    dx: np.ndarray,
    dy: np.ndarray,
    lengths: np.ndarray,
    alive: np.ndarray,
    trial_of: np.ndarray,
    horizon: int,
    plan: Optional[_SlotPlan],
    rng,
) -> np.ndarray:
    """Per-slot earliest valid dynamic-world hit *step time* (inf when none).

    Targets are frozen at the chunk's earliest slot clock (monotone across
    chunks: every surviving slot's clock only grows); each segment's
    crossing of each target is the same closed-form ray test as the static
    path.  Times along a slot's segment stream are monotone, so the
    minimum over all (segment, target) entries is the slot's first valid
    hit.
    """
    trials_idx = trial_of[alive]
    chunk_start = float(start_t[:, 0].min()) if start_t.size else 0.0
    pos = track.positions_at(chunk_start)
    q = _track_detection(track, plan)
    best_step = np.full(alive.size, np.inf)
    for j in range(track.n):
        txj = pos[trials_idx, j, 0][:, None]
        tyj = pos[trials_idx, j, 1][:, None]
        off_x = (txj - start_x) * dx
        off_y = (tyj - start_y) * dy
        hit = np.where(
            dx != 0,
            (start_y == tyj) & (off_x >= 1) & (off_x <= lengths),
            (start_x == txj) & (off_y >= 1) & (off_y <= lengths),
        )
        offset = np.where(dx != 0, off_x, off_y)
        hit_time = start_t + offset
        if plan is None:
            valid = hit & (hit_time <= horizon)
            wall = hit_time.astype(np.float64)
        else:
            valid = hit & (hit_time <= plan.step_cap[alive, None])
            wall = plan.wall(alive[:, None], hit_time.astype(np.float64))
        if track.spec.arrival == "geometric":
            valid = valid & (wall >= track.arrival[trials_idx, j][:, None])
        valid = _mask_missed(valid, q, rng)
        times = np.where(valid, hit_time.astype(np.float64), np.inf)
        best_step = np.minimum(best_step, times.min(axis=1))
    return best_step


class Walker(ABC):
    """A memoryless baseline simulable by the batched walker engine.

    Subclasses implement :meth:`find_times` (the vectorised simulator) and
    :meth:`step_algorithm` (the equivalent
    :class:`repro.algorithms.base.SearchAlgorithm`, used by the
    cross-engine parity tests).  ``uses_k`` mirrors the step-program
    baselines: walkers are k-oblivious.
    """

    uses_k = False
    name = "walker"

    @abstractmethod
    def find_times(
        self,
        world: World,
        k: int,
        trials: int,
        seed: SeedLike = None,
        *,
        horizon: float,
        chunk: Optional[int] = None,
        scenario: Optional[ScenarioSpec] = None,
        start_delays=None,
        world_spec: Optional[WorldSpec] = None,
    ) -> np.ndarray:
        """First times any of ``k`` walkers stands on the treasure.

        Returns a float array of shape ``(trials,)``: the first time at
        which any of the trial's ``k`` independent walkers visits the
        treasure, or ``inf`` if none does within ``horizon`` steps.  A hit
        at exactly ``horizon`` is kept (the step engine's rule).

        ``scenario`` (:class:`repro.scenarios.ScenarioSpec`) perturbs the
        walkers — crash lifetimes, per-agent speeds (times become
        wall-clock: a step costs ``1 / speed``), staggered starts, lossy
        detection.  ``start_delays`` (shape ``(k,)`` or ``(trials, k)``)
        gives explicit per-agent delays, matching the excursion engines'
        parameter; both perturbations combine additively.  The default
        (no scenario, no delays) is bitwise identical to the unperturbed
        engine.

        ``world_spec`` (:class:`repro.sim.world.WorldSpec`) declares the
        world process; a ``None``/all-default spec keeps the exact legacy
        static single-target path (bitwise identical).  Dynamic worlds
        freeze target positions per simulation chunk and ``world`` may
        also be an ``(n_targets, 2)`` array of initial positions.
        """

    @abstractmethod
    def step_algorithm(self):
        """The step-program twin (``repro.algorithms.baselines``) for parity."""

    def describe(self) -> str:
        return self.step_algorithm().describe()


class RandomWalker(Walker):
    """Simple symmetric random walk on ``Z^2`` (:class:`RandomWalkSearch`)."""

    name = "random-walk"

    def find_times(
        self,
        world: World,
        k: int,
        trials: int,
        seed: SeedLike = None,
        *,
        horizon: float,
        chunk: Optional[int] = None,
        scenario: Optional[ScenarioSpec] = None,
        start_delays=None,
        world_spec: Optional[WorldSpec] = None,
    ) -> np.ndarray:
        horizon = _validate(k, trials, horizon)
        track = _world_track(world, world_spec, trials, seed)
        rng = make_rng(seed)
        if track is None:
            tx, ty = world.treasure
        n = trials * k
        span_cap = _auto_chunk(n, chunk, floor=16, cap=8192)
        x = np.zeros(n, dtype=np.int64)
        y = np.zeros(n, dtype=np.int64)
        trial_of = np.repeat(np.arange(trials), k)
        trial_best = np.full(trials, np.inf)
        alive = np.arange(n)
        plan = _slot_plan(scenario, start_delays, k, trials, horizon, rng)
        max_steps = horizon
        if plan is not None:
            alive = alive[plan.step_cap[alive] > 0]
            max_steps = int(plan.step_cap.max(initial=0))
        t = 0
        while t < max_steps and alive.size:
            span = min(span_cap, max_steps - t)
            moves = rng.integers(0, 4, size=(alive.size, span))
            px = x[alive, None] + np.cumsum(_DIR_X[moves], axis=1)
            py = y[alive, None] + np.cumsum(_DIR_Y[moves], axis=1)
            if track is None:
                hit = (px == tx) & (py == ty)
                if plan is not None:
                    # Hit at chunk column j happens at step t + j + 1; only
                    # steps within the slot's cap (horizon and crash, in its
                    # own speed) count, and each crossing is noticed only with
                    # the scenario's detection probability.
                    steps = t + 1 + np.arange(span, dtype=np.int64)
                    hit = hit & (steps[None, :] <= plan.step_cap[alive, None])
                    hit = plan.mask_missed(hit, rng)
            else:
                hit = _step_chunk_hits(
                    track, px, py, alive, trial_of, t, span, plan, rng
                )
            any_hit = hit.any(axis=1)
            if np.any(any_hit):
                first = np.argmax(hit[any_hit], axis=1)
                if plan is not None:
                    sel = alive[any_hit]
                    np.minimum.at(
                        trial_best, trial_of[sel],
                        plan.wall(sel, t + first + 1.0),
                    )
                else:
                    np.minimum.at(
                        trial_best, trial_of[alive[any_hit]], t + first + 1.0
                    )
            x[alive] = px[:, -1]
            y[alive] = py[:, -1]
            t += span
            # Finders stop; siblings of a finished trial can only hit at
            # times > t >= the trial's recorded find, so they retire too.
            alive = alive[~any_hit]
            if plan is not None:
                alive = alive[t < plan.step_cap[alive]]
                alive = alive[
                    plan.wall(alive, t) < trial_best[trial_of[alive]]
                ]
            else:
                alive = alive[t < trial_best[trial_of[alive]]]
        return trial_best

    def step_algorithm(self):
        from ..algorithms.baselines import RandomWalkSearch

        return RandomWalkSearch()


class _SegmentWalker(Walker):
    """Shared chunk loop for walkers that move in straight segments.

    Subclasses provide :meth:`_sample_segments` — ``(lengths, headings)``
    matrices for the steady-state segment stream — and optionally
    :meth:`_initial_segments` when the first segment per walker is
    distributed differently (the correlated walk's first run).
    """

    def _initial_segments(
        self, rng: np.random.Generator, count: int
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Per-walker first segment ``(lengths, headings)``, or ``None``."""
        return None

    @abstractmethod
    def _sample_segments(
        self, rng: np.random.Generator, count: int, segments: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw a ``(count, segments)`` block of segment lengths/headings."""

    def find_times(
        self,
        world: World,
        k: int,
        trials: int,
        seed: SeedLike = None,
        *,
        horizon: float,
        chunk: Optional[int] = None,
        scenario: Optional[ScenarioSpec] = None,
        start_delays=None,
        world_spec: Optional[WorldSpec] = None,
    ) -> np.ndarray:
        horizon = _validate(k, trials, horizon)
        track = _world_track(world, world_spec, trials, seed)
        rng = make_rng(seed)
        if track is None:
            tx, ty = world.treasure
        else:
            tx = ty = 0
        n = trials * k
        segs = _auto_chunk(n, chunk, floor=16, cap=512)
        x = np.zeros(n, dtype=np.int64)
        y = np.zeros(n, dtype=np.int64)
        t = np.zeros(n, dtype=np.int64)
        trial_of = np.repeat(np.arange(trials), k)
        trial_best = np.full(trials, np.inf)
        alive = np.arange(n)
        plan = _slot_plan(scenario, start_delays, k, trials, horizon, rng)
        if plan is not None:
            alive = alive[plan.step_cap[alive] > 0]

        first_block = self._initial_segments(rng, n)
        if first_block is not None:
            lengths, dirs = first_block
            if plan is not None:
                lengths, dirs = lengths[alive], dirs[alive]
            alive = self._consume(
                x, y, t, trial_of, trial_best, alive,
                lengths[:, None], dirs[:, None], tx, ty, horizon, plan, rng,
                track,
            )
        while alive.size:
            lengths, dirs = self._sample_segments(rng, alive.size, segs)
            alive = self._consume(
                x, y, t, trial_of, trial_best, alive,
                lengths, dirs, tx, ty, horizon, plan, rng, track,
            )
        return trial_best

    @staticmethod
    def _consume(
        x, y, t, trial_of, trial_best, alive, lengths, dirs, tx, ty, horizon,
        plan=None, rng=None, track=None,
    ) -> np.ndarray:
        """Walk one ``(alive, segments)`` block; returns the surviving rows."""
        dx = _DIR_X[dirs]
        dy = _DIR_Y[dirs]
        step_x = dx * lengths
        step_y = dy * lengths
        end_x = x[alive, None] + np.cumsum(step_x, axis=1)
        end_y = y[alive, None] + np.cumsum(step_y, axis=1)
        end_t = t[alive, None] + np.cumsum(lengths, axis=1)
        start_x = end_x - step_x
        start_y = end_y - step_y
        start_t = end_t - lengths
        if track is None:
            # Ray test: steps along the segment's axis to reach the treasure.
            off_x = (tx - start_x) * dx
            off_y = (ty - start_y) * dy
            hit = np.where(
                dx != 0,
                (start_y == ty) & (off_x >= 1) & (off_x <= lengths),
                (start_x == tx) & (off_y >= 1) & (off_y <= lengths),
            )
            offset = np.where(dx != 0, off_x, off_y)
            hit_time = start_t + offset
            if plan is None:
                valid = hit & (hit_time <= horizon)
            else:
                # Per-slot caps fold the wall-clock horizon and the crash time
                # into one step bound; each crossing is noticed only with the
                # scenario's detection probability (a straight segment crosses
                # a fixed cell at most once, so one coin per hitting segment
                # is exact).
                valid = hit & (hit_time <= plan.step_cap[alive, None])
                valid = plan.mask_missed(valid, rng)
            any_hit = valid.any(axis=1)
            if np.any(any_hit):
                first = np.argmax(valid[any_hit], axis=1)
                if plan is None:
                    np.minimum.at(
                        trial_best,
                        trial_of[alive[any_hit]],
                        hit_time[any_hit, first].astype(np.float64),
                    )
                else:
                    sel = alive[any_hit]
                    np.minimum.at(
                        trial_best,
                        trial_of[sel],
                        plan.wall(sel, hit_time[any_hit, first].astype(np.float64)),
                    )
        else:
            find_step = _segment_hits(
                track, start_x, start_y, start_t, dx, dy, lengths,
                alive, trial_of, horizon, plan, rng,
            )
            any_hit = np.isfinite(find_step)
            if np.any(any_hit):
                if plan is None:
                    np.minimum.at(
                        trial_best, trial_of[alive[any_hit]],
                        find_step[any_hit],
                    )
                else:
                    sel = alive[any_hit]
                    np.minimum.at(
                        trial_best, trial_of[sel],
                        plan.wall(sel, find_step[any_hit]),
                    )
        x[alive] = end_x[:, -1]
        y[alive] = end_y[:, -1]
        t[alive] = end_t[:, -1]
        # Survivors: no hit, clock inside the horizon (and crash cap), and
        # — since a live walker's future hits happen strictly after its
        # clock — still able to beat the trial's recorded find.
        alive = alive[~any_hit]
        if plan is None:
            return alive[
                (t[alive] < horizon) & (t[alive] < trial_best[trial_of[alive]])
            ]
        return alive[
            (t[alive] < plan.step_cap[alive])
            & (plan.wall(alive, t[alive]) < trial_best[trial_of[alive]])
        ]


class BiasedWalker(_SegmentWalker):
    """Correlated random walk with heading persistence (:class:`BiasedWalkSearch`).

    Each step keeps the current heading with probability ``persistence``
    and otherwise redraws it uniformly from the four axis directions.  The
    i.i.d. reorientation coins make straight runs geometric — length
    ``~ Geometric(1 - persistence)`` with an independent uniform heading
    per run — so the engine resamples headings per *run* (the first run is
    one step shorter: the step program checks the coin before the first
    move, so the initial heading survives zero or more steps).
    """

    def __init__(self, persistence: float = 0.9):
        if not 0 <= persistence < 1:
            raise ValueError(f"persistence must be in [0, 1), got {persistence}")
        self.persistence = float(persistence)
        self.name = f"biased-walk(p={persistence:g})"

    def _initial_segments(self, rng, count):
        lengths = rng.geometric(1.0 - self.persistence, size=count) - 1
        return lengths.astype(np.int64), rng.integers(0, 4, size=count)

    def _sample_segments(self, rng, count, segments):
        lengths = rng.geometric(1.0 - self.persistence, size=(count, segments))
        return lengths.astype(np.int64), rng.integers(0, 4, size=(count, segments))

    def step_algorithm(self):
        from ..algorithms.baselines import BiasedWalkSearch

        return BiasedWalkSearch(self.persistence)


class LevyWalker(_SegmentWalker):
    """Lévy flight with Zipf segment lengths (:class:`LevyFlightSearch`).

    Per chunk, each live walker draws a batch of ``(length, direction)``
    pairs (``length ~ Zipf(mu)`` capped at ``max_segment``) and resolves
    them with the closed-form ray test, so a length-``L`` flight costs
    O(1) instead of ``L`` per-cell steps.
    """

    def __init__(self, mu: float = 2.0, max_segment: int = 10**6):
        if not 1.0 < mu <= 4.0:
            raise ValueError(f"mu must be in (1, 4], got {mu}")
        self.mu = float(mu)
        self.max_segment = int(max_segment)
        self.name = f"levy(mu={mu:g})"

    def _sample_segments(self, rng, count, segments):
        lengths = np.minimum(
            rng.zipf(self.mu, size=(count, segments)), self.max_segment
        ).astype(np.int64)
        return lengths, rng.integers(0, 4, size=(count, segments))

    def step_algorithm(self):
        from ..algorithms.baselines import LevyFlightSearch

        return LevyFlightSearch(self.mu, self.max_segment)


WorldLike = Union[World, Tuple[int, int]]


def walker_find_times(
    walker: Walker,
    world: World,
    k: int,
    trials: int,
    seed: SeedLike = None,
    *,
    horizon: float,
    chunk: Optional[int] = None,
    scenario: Optional[ScenarioSpec] = None,
    start_delays=None,
    world_spec: Optional[WorldSpec] = None,
) -> np.ndarray:
    """Functional entry point: ``walker.find_times`` with the same contract."""
    return walker.find_times(
        world, k, trials, seed, horizon=horizon, chunk=chunk,
        scenario=scenario, start_delays=start_delays, world_spec=world_spec,
    )


def walker_find_times_block(
    walker: Walker,
    world: World,
    k: int,
    trials: int,
    root_seed: SeedLike,
    *,
    distance: int,
    block: int,
    horizon: float,
    chunk: Optional[int] = None,
    scenario: Optional[ScenarioSpec] = None,
    world_spec: Optional[WorldSpec] = None,
) -> np.ndarray:
    """One deterministic trial block of walker cell ``(distance, k)``.

    The walker twin of :func:`repro.sim.events.simulate_find_times_block`:
    block ``block`` is seeded
    ``derive_seed(root_seed, BLOCK_STREAM, distance, k, block)``, so a
    cell's blocks depend only on ``(root_seed, distance, k, block)`` and
    cached blocks append bitwise-identically across runs and processes.
    """
    if block < 0:
        raise ValueError(f"block index must be >= 0, got {block}")
    seed = derive_seed(root_seed, BLOCK_STREAM, int(distance), int(k), int(block))
    return walker.find_times(
        world, k, trials, seed, horizon=horizon, chunk=chunk,
        scenario=scenario, world_spec=world_spec,
    )


def walker_find_times_batch(
    walker: Walker,
    worlds: Sequence[WorldLike],
    k: int,
    trials: int,
    seed: SeedLike = None,
    *,
    horizon: float,
    chunk: Optional[int] = None,
    scenario: Optional[ScenarioSpec] = None,
    start_delays=None,
    world_spec: Optional[WorldSpec] = None,
) -> np.ndarray:
    """Per-world find-time matrix, shape ``(len(worlds), trials)``.

    The sweep-facing twin of :func:`walker_find_times` (the walker
    counterpart of :func:`repro.sim.events.simulate_find_times_batch`):
    world ``w`` is simulated with the ``w``-th child of ``seed``
    (:func:`repro.sim.rng.spawn_seeds`), so each row is bitwise identical
    to a direct :meth:`Walker.find_times` call with that child seed —
    independent of how worlds are distributed across sweep workers.

    Unlike the excursion batch engine, draws are *not* shared across
    worlds: a walker's trajectory has ``horizon`` steps of state, so
    cross-world sharing would couple entire paths rather than pairing
    noise, and the chunked simulators are already within a small factor
    of memory bandwidth.
    """
    if len(worlds) == 0:
        raise ValueError("worlds must be non-empty")
    if resolve_world(world_spec) is None:
        resolved = [
            w if isinstance(w, World) else World(tuple(w)) for w in worlds
        ]
    else:
        # Dynamic worlds: each entry may be an (n_targets, 2) initial-
        # position array; find_times normalises it.
        resolved = list(worlds)
    rows = [
        walker.find_times(
            w, k, trials, s, horizon=horizon, chunk=chunk,
            scenario=scenario, start_delays=start_delays,
            world_spec=world_spec,
        )
        for w, s in zip(resolved, spawn_seeds(seed, len(resolved)))
    ]
    return np.stack(rows)
