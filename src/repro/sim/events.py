"""Vectorised excursion-level simulation of excursion algorithms.

For every algorithm built from go/spiral/return excursions (all of the
paper's constructions), the only randomness in a phase is the excursion
draw; conditioned on it, the time at which the agent would stand on the
treasure is a closed form:

* on the outbound Manhattan leg (x-first), if the treasure lies on it;
* during the spiral, at ``travel + spiral_hit_time(tau - u)`` if that hit
  time is within the budget;
* on the return leg, again geometrically.

:func:`simulate_find_times` therefore never steps the grid: it samples all
``trials x k`` excursion draws for a phase at once, resolves hits with the
closed forms of :mod:`repro.core.spiral`, and advances per-agent clocks.
This is exact in distribution — validated against the step engine by
``tests/test_engine_vs_events.py`` — and several orders of magnitude
faster, which is what makes the paper-scale parameter sweeps feasible.

:func:`excursion_find_time` is the scalar single-agent twin used for exact
replay tests against the step engine: given the same RNG it consumes
random numbers in exactly the same order as
:meth:`repro.algorithms.base.ExcursionAlgorithm.step_program`.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from ..algorithms.base import ExcursionAlgorithm
from ..core.spiral import (
    SAFE_OFFSET,
    spiral_hit_time,
    spiral_hit_time_array,
    spiral_hit_time_float_array,
    spiral_position,
    spiral_position_array,
)
from ..scenarios import ScenarioSpec, resolve_scenario
from .rng import BLOCK_STREAM, SeedLike, derive_rng, derive_seed, make_rng
from .world import (
    TARGET_STREAM,
    TargetTrack,
    World,
    WorldSpec,
    initial_targets,
    resolve_world,
)

__all__ = [
    "simulate_find_times",
    "simulate_find_times_block",
    "simulate_find_times_batch",
    "excursion_find_time",
    "expected_find_time",
    "find_time_statistics",
]

WorldsLike = Union[Sequence[World], Sequence[Tuple[int, int]], np.ndarray]


def _hit_times(dx: np.ndarray, dy: np.ndarray) -> np.ndarray:
    """Spiral hit times as float64: exact int64 path, float64 for far offsets.

    Heavy-tailed samplers (harmonic search) occasionally draw start nodes
    so distant that the int64 closed form would overflow; those entries are
    resolved in float64, whose few-ULP error is irrelevant at that scale.
    """
    dx = np.asarray(dx, dtype=np.int64)
    dy = np.asarray(dy, dtype=np.int64)
    far = (np.abs(dx) > SAFE_OFFSET) | (np.abs(dy) > SAFE_OFFSET)
    if not np.any(far):
        return spiral_hit_time_array(dx, dy).astype(np.float64)
    out = np.empty(dx.shape, dtype=np.float64)
    near = ~far
    out[near] = spiral_hit_time_array(dx[near], dy[near])
    out[far] = spiral_hit_time_float_array(dx[far], dy[far])
    return out


def _outbound_hit_offsets(
    ux: np.ndarray, uy: np.ndarray, tx: int, ty: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Treasure hits on the x-first Manhattan walk from the source to ``u``.

    Returns ``(mask, offset)``: whether the treasure lies on the leg and the
    number of steps into the walk at which it is reached.
    """
    sgnx = np.sign(ux)
    sgny = np.sign(uy)
    on_x_leg = (ty == 0) & (tx * sgnx >= 1) & (abs(tx) <= np.abs(ux))
    on_y_leg = (tx == ux) & (ty * sgny >= 1) & (abs(ty) <= np.abs(uy))
    offset = np.where(on_x_leg, abs(tx), np.abs(ux) + abs(ty))
    return on_x_leg | on_y_leg, offset


def _return_hit_offsets(
    ex: np.ndarray, ey: np.ndarray, tx: int, ty: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Treasure hits on the x-first Manhattan walk from ``e`` back to the source."""
    on_x_leg = (ty == ey) & (tx * np.sign(ex) >= 0) & (abs(tx) <= np.abs(ex))
    on_y_leg = (tx == 0) & (ty * np.sign(ey) >= 0) & (abs(ty) <= np.abs(ey))
    off_x = np.abs(ex) - abs(tx)
    off_y = np.abs(ex) + np.abs(ey) - abs(ty)
    offset = np.where(on_x_leg, off_x, off_y)
    return on_x_leg | on_y_leg, offset


def _scenario_state(
    scn: Optional[ScenarioSpec],
    k: int,
    trials: int,
    cum: np.ndarray,
    rng: np.random.Generator,
) -> Tuple[
    np.ndarray, Optional[np.ndarray], Optional[np.ndarray], Optional[float]
]:
    """Resolve an active scenario against the initial agent clocks.

    Returns ``(cum, speeds, crash_abs, q)``: the (possibly delayed)
    per-slot clocks, the per-agent speed row (``None`` for unit speeds),
    the absolute wall-clock crash times (``None`` for immortal agents;
    lifetimes are geometric with the spec's per-time-unit hazard, measured
    from each agent's own start) and the detection probability (``None``
    for perfect detection).  A ``None`` scenario returns everything
    untouched — the engines then never branch off the legacy path.

    Crash lifetimes come from a *spawned child* of ``rng``, not the main
    stream: the excursion draws that follow are then identical across
    hazard settings of the same seed, so a hazard sweep (E11) compares
    paired executions rather than independent resamples.
    """
    if scn is None:
        return cum, None, None, None
    if scn.start_stagger > 0:
        cum = cum + scn.delays(k)
    speeds = scn.speeds(k) if scn.speed_spread > 0 else None
    crash_abs = None
    if scn.crash_hazard > 0:
        (life_rng,) = rng.spawn(1)
        lifetimes = life_rng.geometric(scn.crash_hazard, size=(trials, k))
        crash_abs = cum + lifetimes.astype(np.float64)
    q = scn.detection_prob if scn.detection_prob < 1 else None
    return cum, speeds, crash_abs, q


def _compose_detection(
    spec: WorldSpec, q: Optional[float]
) -> Optional[float]:
    """World-level detection composed with the scenario's lossy knob."""
    q_world = spec.detection_prob if spec.detection_prob < 1 else None
    if q_world is None:
        return q
    return q_world if q is None else q_world * q


def _simulate_find_times_dynamic(
    algorithm: ExcursionAlgorithm,
    targets0: np.ndarray,
    spec: WorldSpec,
    k: int,
    trials: int,
    seed: SeedLike,
    *,
    horizon: Optional[float],
    max_phases: int,
    start_delays: Optional[np.ndarray],
    scenario: Optional[ScenarioSpec],
) -> np.ndarray:
    """Dynamic/multi-target twin of :func:`simulate_find_times`.

    Target positions are advanced *at excursion granularity*: each phase,
    every trial's targets are moved in closed form to that trial's
    earliest active-agent clock and frozen for the phase's excursions
    (exact for static multi-target worlds; the documented modelling
    granularity for moving targets — see DESIGN.md §10).  Hits are
    resolved per target with the same outbound/spiral/return closed forms
    as the legacy kernel; a hit is valid only at wall-clock times at or
    after the target's arrival, gated per leg because arrival is a lower
    bound (a return-leg crossing can count even when the outbound crossing
    of the same excursion was too early).
    """
    if spec.motion != "static" and horizon is None:
        raise ValueError(
            "dynamic-motion worlds need a horizon: a moving target can "
            "escape every searcher, so an un-capped run may never end"
        )
    rng = make_rng(seed)
    motion_rng = derive_rng(seed, TARGET_STREAM)
    scn = resolve_scenario(scenario)

    cum = np.zeros((trials, k), dtype=np.float64)
    if start_delays is not None:
        delays = np.asarray(start_delays, dtype=np.float64)
        if np.any(delays < 0):
            raise ValueError("start delays must be non-negative")
        cum = cum + np.broadcast_to(delays, (trials, k))
    cum, speeds, crash_abs, q = _scenario_state(scn, k, trials, cum, rng)
    q_eff = _compose_detection(spec, q)
    track = TargetTrack(spec, targets0, trials, motion_rng)
    best = np.full(trials, np.inf)
    cap = np.inf if horizon is None else float(horizon)

    families = algorithm.families()
    for phase_index in itertools.count():
        if phase_index >= max_phases:
            raise RuntimeError(
                f"simulation exceeded max_phases={max_phases}; "
                f"pass a horizon or raise the cap"
            )
        if crash_abs is not None:
            cum[cum >= crash_abs] = np.inf
        active = cum < np.minimum(best, cap)[:, None]
        if not np.any(active):
            break
        family = next(families, None)
        if family is None:
            break

        rows, cols = np.nonzero(active)
        count = rows.size
        ux, uy, budgets = family.sample(rng, count)
        start = cum[rows, cols]
        travel = np.abs(ux) + np.abs(uy)
        dx_end, dy_end = spiral_position_array(budgets)
        ex = ux + dx_end
        ey = uy + dy_end
        speed = speeds[cols] if speeds is not None else None

        # Freeze each trial's targets at its earliest active clock.
        t_query = np.where(
            active.any(axis=1),
            np.min(np.where(active, cum, np.inf), axis=1),
            0.0,
        )
        pos = track.positions(t_query)

        # Earliest valid hit on any target, per draw, in wall-clock time.
        hit_wall = np.full(count, np.inf)
        for j in range(spec.n_targets):
            txj = pos[rows, j, 0]
            tyj = pos[rows, j, 1]
            arr_j = track.arrival[rows, j]

            out_mask, out_off = _outbound_hit_offsets(ux, uy, txj, tyj)
            if q_eff is not None:
                out_mask = out_mask & (rng.random(count) < q_eff)
            spiral_hit = _hit_times(txj - ux, tyj - uy)
            sp_mask = spiral_hit <= budgets
            if q_eff is not None:
                sp_mask = sp_mask & (rng.random(count) < q_eff)
            ret_mask, ret_off = _return_hit_offsets(ex, ey, txj, tyj)
            if q_eff is not None:
                ret_mask = ret_mask & (rng.random(count) < q_eff)

            target_wall = np.full(count, np.inf)
            for mask, off in (
                (out_mask, out_off.astype(np.float64)),
                (sp_mask, travel + spiral_hit),
                (ret_mask, travel + budgets + ret_off),
            ):
                wall = start + (off / speed if speed is not None else off)
                ok = mask & (wall >= arr_j)
                target_wall = np.where(
                    ok, np.minimum(target_wall, wall), target_wall
                )
            hit_wall = np.minimum(hit_wall, target_wall)

        found = np.isfinite(hit_wall)
        if crash_abs is not None:
            found &= hit_wall <= crash_abs[rows, cols]
        if np.any(found):
            np.minimum.at(best, rows[found], hit_wall[found])
            cum[rows[found], cols[found]] = np.inf

        not_found = ~found
        duration = travel + budgets + np.abs(ex) + np.abs(ey)
        if speed is not None:
            duration = duration / speed
        cum[rows[not_found], cols[not_found]] = (
            start[not_found] + duration[not_found]
        )

    best[best > cap] = np.inf
    return best


def simulate_find_times(
    algorithm: ExcursionAlgorithm,
    world: World,
    k: int,
    trials: int,
    seed: SeedLike = None,
    *,
    horizon: Optional[float] = None,
    max_phases: int = 1_000_000,
    start_delays: Optional[np.ndarray] = None,
    scenario: Optional[ScenarioSpec] = None,
    world_spec: Optional[WorldSpec] = None,
) -> np.ndarray:
    """First times at which any of ``k`` agents finds the treasure.

    Runs ``trials`` independent executions of ``algorithm`` with ``k``
    agents each and returns a float array of shape ``(trials,)`` holding the
    first find time per execution (``inf`` when the excursion stream ends —
    one-shot algorithms — or ``horizon`` is exceeded without a find).

    Semantics are identical to the step engine: a find is recorded on the
    outbound leg, the spiral, or the return leg, whichever comes first.

    ``start_delays`` (shape ``(k,)`` or ``(trials, k)``, non-negative)
    models the paper's asynchronous-start remark (Section 2): agent ``i``
    only begins executing at its delay; times remain measured from ``t0 = 0``.

    ``scenario`` (:class:`repro.scenarios.ScenarioSpec`) perturbs agents
    with crash failures, heterogeneous speeds, staggered starts, and lossy
    detection; all times stay wall-clock (an edge costs ``1 / speed``).
    A ``None`` or all-default scenario takes exactly the legacy code path
    and is bitwise identical to the unperturbed engine.

    ``world_spec`` (:class:`repro.sim.world.WorldSpec`) declares the world
    process.  A ``None`` or all-default spec resolves to ``None`` and the
    static single-target legacy path below runs *structurally unchanged*
    (bitwise identical output, enforced by property tests); anything else
    routes to the dynamic kernel, where ``world`` may also be an
    ``(n_targets, 2)`` array of initial target positions.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    wspec = resolve_world(world_spec)
    if wspec is not None:
        return _simulate_find_times_dynamic(
            algorithm,
            initial_targets(world, wspec),
            wspec,
            k,
            trials,
            seed,
            horizon=horizon,
            max_phases=max_phases,
            start_delays=start_delays,
            scenario=scenario,
        )
    rng = make_rng(seed)
    tx, ty = world.treasure
    scn = resolve_scenario(scenario)

    cum = np.zeros((trials, k), dtype=np.float64)
    if start_delays is not None:
        delays = np.asarray(start_delays, dtype=np.float64)
        if np.any(delays < 0):
            raise ValueError("start delays must be non-negative")
        cum = cum + np.broadcast_to(delays, (trials, k))
    cum, speeds, crash_abs, q = _scenario_state(scn, k, trials, cum, rng)
    best = np.full(trials, np.inf)
    cap = np.inf if horizon is None else float(horizon)

    families = algorithm.families()
    for phase_index in itertools.count():
        if phase_index >= max_phases:
            raise RuntimeError(
                f"simulation exceeded max_phases={max_phases}; "
                f"pass a horizon or raise the cap"
            )
        if crash_abs is not None:
            # Crashed agents never move again; park their clocks at +inf.
            cum[cum >= crash_abs] = np.inf
        active = cum < np.minimum(best, cap)[:, None]
        if not np.any(active):
            break
        family = next(families, None)
        if family is None:
            break

        rows, cols = np.nonzero(active)
        count = rows.size
        ux, uy, budgets = family.sample(rng, count)
        start = cum[rows, cols]
        travel = np.abs(ux) + np.abs(uy)

        # Earliest hit within this excursion (inf when the excursion misses).
        hit_offset = np.full(count, np.inf)

        out_mask, out_off = _outbound_hit_offsets(ux, uy, tx, ty)
        if q is not None:
            out_mask = out_mask & (rng.random(count) < q)
        hit_offset[out_mask] = np.minimum(hit_offset[out_mask], out_off[out_mask])

        spiral_hit = _hit_times(tx - ux, ty - uy)
        sp_mask = spiral_hit <= budgets
        if q is not None:
            sp_mask = sp_mask & (rng.random(count) < q)
        sp_time = travel + spiral_hit
        hit_offset[sp_mask] = np.minimum(hit_offset[sp_mask], sp_time[sp_mask])

        dx_end, dy_end = spiral_position_array(budgets)
        ex = ux + dx_end
        ey = uy + dy_end
        ret_mask, ret_off = _return_hit_offsets(ex, ey, tx, ty)
        if q is not None:
            ret_mask = ret_mask & (rng.random(count) < q)
        ret_time = travel + budgets + ret_off
        hit_offset[ret_mask] = np.minimum(hit_offset[ret_mask], ret_time[ret_mask])

        # Offsets are step counts; wall-clock conversion divides by speed.
        if speeds is not None:
            speed = speeds[cols]
            hit_wall = start + hit_offset / speed
        else:
            hit_wall = start + hit_offset
        found = np.isfinite(hit_offset)
        if crash_abs is not None:
            # A hit after the agent's crash time never happens.
            found &= hit_wall <= crash_abs[rows, cols]
        if np.any(found):
            np.minimum.at(best, rows[found], hit_wall[found])
            # Finders stop searching; park their clocks at +inf.
            cum[rows[found], cols[found]] = np.inf

        not_found = ~found
        duration = travel + budgets + np.abs(ex) + np.abs(ey)
        if speeds is not None:
            duration = duration / speed
        cum[rows[not_found], cols[not_found]] = (
            start[not_found] + duration[not_found]
        )

    best[best > cap] = np.inf
    return best


def simulate_find_times_block(
    algorithm: ExcursionAlgorithm,
    world: World,
    k: int,
    trials: int,
    root_seed: SeedLike,
    *,
    distance: int,
    block: int,
    horizon: Optional[float] = None,
    max_phases: int = 1_000_000,
    scenario: Optional[ScenarioSpec] = None,
    world_spec: Optional[WorldSpec] = None,
) -> np.ndarray:
    """One deterministic trial *block* of cell ``(distance, k)``.

    The incremental sweep runner's entry point: block ``block`` of a cell
    is seeded ``derive_seed(root_seed, BLOCK_STREAM, distance, k, block)``
    and simulated with :func:`simulate_find_times`.  Because the seed
    depends only on ``(root_seed, distance, k, block)`` — never on how
    many blocks ran before, which process runs it, or which other cells
    exist — blocks are *appendable*: a cached 200-trial cell tops up to
    1000 by simulating blocks 3.. and concatenating, bitwise identical to
    having run all blocks in one session.
    """
    if block < 0:
        raise ValueError(f"block index must be >= 0, got {block}")
    seed = derive_seed(root_seed, BLOCK_STREAM, int(distance), int(k), int(block))
    return simulate_find_times(
        algorithm, world, k, trials, seed,
        horizon=horizon, max_phases=max_phases, scenario=scenario,
        world_spec=world_spec,
    )


def _as_treasure_arrays(worlds: WorldsLike) -> Tuple[np.ndarray, np.ndarray]:
    """Normalise a worlds argument to ``(tx, ty)`` int64 column vectors.

    Accepts a sequence of :class:`World` instances, a sequence of
    ``(tx, ty)`` pairs, or an ``(n, 2)`` integer array.  The returned arrays
    have shape ``(n, 1)`` so that broadcasting against ``(draws,)`` excursion
    arrays yields ``(n, draws)`` hit grids.
    """
    if isinstance(worlds, np.ndarray):
        pairs = worlds
    else:
        seq: Iterable = worlds
        pairs = np.asarray(
            [w.treasure if isinstance(w, World) else tuple(w) for w in seq]
        )
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or pairs.shape[1] != 2 or pairs.shape[0] < 1:
        raise ValueError(
            f"worlds must be a non-empty sequence of (tx, ty) pairs; "
            f"got array of shape {pairs.shape}"
        )
    if np.any((pairs[:, 0] == 0) & (pairs[:, 1] == 0)):
        raise ValueError("treasure must not be placed on the source")
    return pairs[:, 0:1], pairs[:, 1:2]


def simulate_find_times_batch(
    algorithm: ExcursionAlgorithm,
    worlds: WorldsLike,
    k: int,
    trials: int,
    seed: SeedLike = None,
    *,
    horizon: Optional[float] = None,
    max_phases: int = 1_000_000,
    start_delays: Optional[np.ndarray] = None,
    scenario: Optional[ScenarioSpec] = None,
) -> np.ndarray:
    """First find times for many worlds at once, sharing excursion draws.

    The batched twin of :func:`simulate_find_times`: ``worlds`` is a
    sequence of treasure positions (``World`` instances or ``(tx, ty)``
    pairs) and the result has shape ``(len(worlds), trials)`` — row ``w``
    holds the per-trial first find times for world ``w``.

    Each phase's ``trials x k`` excursion draws are sampled **once** and
    resolved against every world by broadcasting to a
    ``(worlds, draws)`` hit grid, so the per-draw sampling cost is paid once
    instead of once per world.  Per world, every row is distributed exactly
    as a :func:`simulate_find_times` trial (the excursion draws are i.i.d.,
    so conditioning on which slots are still running never biases them);
    with a single world the two functions are *bitwise identical* for the
    same seed.  Across worlds the shared draws act as common random numbers:
    per-world means are unbiased, and cross-world comparisons (the point of
    a D-sweep) see reduced variance because the noise is paired.

    An agent keeps drawing excursions while *any* world still needs it
    (different worlds find at different times); per-world ``best`` clocks
    record each world's first find, and later excursions of an agent that
    already found in some world can never improve that world's ``best``
    because a hit is never later than the end of its excursion.

    ``horizon``, ``max_phases``, ``start_delays`` and ``scenario`` behave
    exactly as in :func:`simulate_find_times`; the horizon is shared by all
    worlds.  Scenario perturbations are per *slot* (trial, agent) or per
    draw — crash times, speeds, delays and detection coins are all
    world-independent — so the shared-draw pairing across worlds is
    preserved and the single-world bitwise-twin contract holds under any
    scenario.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    tx, ty = _as_treasure_arrays(worlds)
    n_worlds = tx.shape[0]
    rng = make_rng(seed)
    scn = resolve_scenario(scenario)

    cum = np.zeros((trials, k), dtype=np.float64)
    if start_delays is not None:
        delays = np.asarray(start_delays, dtype=np.float64)
        if np.any(delays < 0):
            raise ValueError("start delays must be non-negative")
        cum = cum + np.broadcast_to(delays, (trials, k))
    cum, speeds, crash_abs, q = _scenario_state(scn, k, trials, cum, rng)
    best = np.full((n_worlds, trials), np.inf)
    cap = np.inf if horizon is None else float(horizon)

    families = algorithm.families()
    for phase_index in itertools.count():
        if phase_index >= max_phases:
            raise RuntimeError(
                f"simulation exceeded max_phases={max_phases}; "
                f"pass a horizon or raise the cap"
            )
        if crash_abs is not None:
            # Crashed slots never move again (crashes are world-independent,
            # so parking keeps the clocks world-independent too).
            cum[cum >= crash_abs] = np.inf
        # A slot (trial, agent) is live while the slowest world still wants
        # it: cum < min(best[w], cap) for some w.
        targets = np.minimum(best, cap)
        active = cum < targets.max(axis=0)[:, None]
        if not np.any(active):
            break
        family = next(families, None)
        if family is None:
            break

        # A world is *open* while some slot can still improve it; resolving
        # hit grids only for open worlds matches the scalar engine's
        # stopping rule per world and keeps late phases (where only the
        # slowest worlds remain) cheap.
        open_worlds = np.nonzero(
            (targets > cum.min(axis=1)[None, :]).any(axis=1)
        )[0]
        txo = tx[open_worlds]
        tyo = ty[open_worlds]

        rows, cols = np.nonzero(active)
        count = rows.size
        ux, uy, budgets = family.sample(rng, count)
        start = cum[rows, cols]
        travel = np.abs(ux) + np.abs(uy)

        # Earliest hit per (open world, draw), inf when the excursion misses.
        # Detection coins are drawn once per draw and shared across worlds
        # (common random numbers, like the excursion draws themselves):
        # per-world marginals are exact Bernoulli(q) per crossing, and with
        # a single world the coin stream is bitwise identical to the
        # scalar engine's.
        out_mask, out_off = _outbound_hit_offsets(ux, uy, txo, tyo)
        if q is not None:
            out_mask = out_mask & (rng.random(count) < q)
        hit_offset = np.where(out_mask, out_off.astype(np.float64), np.inf)

        # Spiral hits are possible only where the budget reaches the
        # treasure: the spiral first enters L-inf ring m at exactly
        # (2m - 1)^2 steps, so entries with (2m - 1)^2 > budget are pruned
        # before evaluating the (more expensive) exact closed form.  The
        # tiny relative slack keeps the float pre-check conservative.
        dxg = txo - ux
        dyg = tyo - uy
        reach = np.maximum(
            2.0 * np.maximum(np.abs(dxg), np.abs(dyg)) - 1.0, 0.0
        )
        cand_w, cand_s = np.nonzero(reach * reach * (1.0 - 1e-12) <= budgets)
        # The spiral coin stream must stay draw-indexed (one coin per draw,
        # drawn whether or not the draw is a candidate anywhere) to keep
        # the scalar engine's consumption order.
        sp_coins = (rng.random(count) < q) if q is not None else None
        if cand_w.size:
            spiral_hit = _hit_times(dxg[cand_w, cand_s], dyg[cand_w, cand_s])
            cand_budgets = budgets[cand_s]
            sp_mask = spiral_hit <= cand_budgets
            if sp_coins is not None:
                sp_mask = sp_mask & sp_coins[cand_s]
            sp_time = np.where(sp_mask, travel[cand_s] + spiral_hit, np.inf)
            hit_offset[cand_w, cand_s] = np.minimum(
                hit_offset[cand_w, cand_s], sp_time
            )

        dx_end, dy_end = spiral_position_array(budgets)
        ex = ux + dx_end
        ey = uy + dy_end
        ret_mask, ret_off = _return_hit_offsets(ex, ey, txo, tyo)
        if q is not None:
            ret_mask = ret_mask & (rng.random(count) < q)
        ret_time = travel + budgets + ret_off
        np.minimum(hit_offset, np.where(ret_mask, ret_time, np.inf),
                   out=hit_offset)

        speed = speeds[cols] if speeds is not None else None
        w_sub, s_idx = np.nonzero(np.isfinite(hit_offset))
        if w_sub.size:
            if speed is not None:
                find_times = start[s_idx] + hit_offset[w_sub, s_idx] / speed[s_idx]
            else:
                find_times = start[s_idx] + hit_offset[w_sub, s_idx]
            if crash_abs is not None:
                # Hits after the slot's crash time never happen, in any world.
                alive = find_times <= crash_abs[rows[s_idx], cols[s_idx]]
                w_sub, s_idx = w_sub[alive], s_idx[alive]
                find_times = find_times[alive]
        if w_sub.size:
            w_idx = open_worlds[w_sub]
            np.minimum.at(best.ravel(), w_idx * trials + rows[s_idx], find_times)

        # Unlike the scalar engine, finders are not parked: whether a draw
        # found is world-dependent.  Advancing every live slot by the full
        # excursion duration is safe (see docstring) and keeps the clocks
        # world-independent.
        duration = travel + budgets + np.abs(ex) + np.abs(ey)
        if speed is not None:
            duration = duration / speed
        cum[rows, cols] = start + duration

    best[best > cap] = np.inf
    return best


def excursion_find_time(
    algorithm: ExcursionAlgorithm,
    world: World,
    rng: np.random.Generator,
    *,
    horizon: float = math.inf,
    max_phases: int = 1_000_000,
) -> float:
    """Exact find time of a *single* agent, replaying the step program's draws.

    Consumes ``rng`` exactly as
    :meth:`repro.algorithms.base.ExcursionAlgorithm.step_program` does (one
    ``sample_one`` per excursion), so for any seed this returns precisely
    the step at which the step-level engine would see the agent stand on
    the treasure.  Used by cross-engine validation and by instrumentation
    that needs per-agent determinism.
    """
    tx, ty = world.treasure
    elapsed = 0.0
    for phase_index, family in enumerate(algorithm.families()):
        if phase_index >= max_phases or elapsed >= horizon:
            return math.inf
        (ux, uy), budget = family.sample_one(rng)
        travel = abs(ux) + abs(uy)

        candidates = []
        # Outbound leg.
        if ty == 0 and tx * np.sign(ux) >= 1 and abs(tx) <= abs(ux):
            candidates.append(abs(tx))
        if tx == ux and ty * np.sign(uy) >= 1 and abs(ty) <= abs(uy):
            candidates.append(abs(ux) + abs(ty))
        # Spiral.
        hit = spiral_hit_time(tx - ux, ty - uy)
        if hit <= budget:
            candidates.append(travel + hit)
        # Return leg.
        dxe, dye = spiral_position(budget)
        ex, ey = ux + dxe, uy + dye
        if ty == ey and tx * np.sign(ex) >= 0 and abs(tx) <= abs(ex):
            candidates.append(travel + budget + abs(ex) - abs(tx))
        if tx == 0 and ty * np.sign(ey) >= 0 and abs(ty) <= abs(ey):
            candidates.append(travel + budget + abs(ex) + abs(ey) - abs(ty))

        if candidates:
            return elapsed + min(candidates)
        elapsed += travel + budget + abs(ex) + abs(ey)
    return math.inf


def expected_find_time(
    algorithm: ExcursionAlgorithm,
    world: World,
    k: int,
    trials: int,
    seed: SeedLike = None,
    **kwargs,
) -> Tuple[float, float]:
    """Convenience wrapper: mean find time and its standard error.

    Returns ``(mean, stderr)`` over ``trials`` executions.  Truncated
    (non-finding) runs propagate ``inf`` into the mean, which is the honest
    answer for one-shot algorithms.

    ``stderr`` sentinels: ``inf`` when any run failed to find (the spread
    is unbounded), and ``nan`` for a single finite trial — one sample
    carries no spread information, and reporting ``0.0`` would silently
    overstate confidence.
    """
    times = simulate_find_times(algorithm, world, k, trials, seed, **kwargs)
    return find_time_statistics(times)


def find_time_statistics(times: np.ndarray) -> Tuple[float, float]:
    """``(mean, stderr)`` of a find-time sample, with the shared sentinels.

    The single source of the sentinel rules used by
    :func:`expected_find_time` and the sweep subsystem's cell statistics:
    ``stderr`` is ``inf`` when any trial failed to find and ``nan`` for a
    single finite trial.
    """
    times = np.asarray(times, dtype=np.float64)
    mean = float(np.mean(times))
    if not np.all(np.isfinite(times)):
        stderr = math.inf
    elif times.size == 1:
        stderr = math.nan
    else:
        stderr = float(np.std(times, ddof=1) / math.sqrt(times.size))
    return mean, stderr
