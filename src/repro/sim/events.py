"""Vectorised excursion-level simulation of excursion algorithms.

For every algorithm built from go/spiral/return excursions (all of the
paper's constructions), the only randomness in a phase is the excursion
draw; conditioned on it, the time at which the agent would stand on the
treasure is a closed form:

* on the outbound Manhattan leg (x-first), if the treasure lies on it;
* during the spiral, at ``travel + spiral_hit_time(tau - u)`` if that hit
  time is within the budget;
* on the return leg, again geometrically.

:func:`simulate_find_times` therefore never steps the grid: it samples all
``trials x k`` excursion draws for a phase at once, resolves hits with the
closed forms of :mod:`repro.core.spiral`, and advances per-agent clocks.
This is exact in distribution — validated against the step engine by
``tests/test_engine_vs_events.py`` — and several orders of magnitude
faster, which is what makes the paper-scale parameter sweeps feasible.

:func:`excursion_find_time` is the scalar single-agent twin used for exact
replay tests against the step engine: given the same RNG it consumes
random numbers in exactly the same order as
:meth:`repro.algorithms.base.ExcursionAlgorithm.step_program`.
"""

from __future__ import annotations

import itertools
import math
from typing import Optional, Tuple

import numpy as np

from ..algorithms.base import ExcursionAlgorithm
from ..core.spiral import (
    SAFE_OFFSET,
    spiral_hit_time,
    spiral_hit_time_array,
    spiral_hit_time_float_array,
    spiral_position,
    spiral_position_array,
)
from .rng import SeedLike, make_rng
from .world import World

__all__ = ["simulate_find_times", "excursion_find_time", "expected_find_time"]


def _hit_times(dx: np.ndarray, dy: np.ndarray) -> np.ndarray:
    """Spiral hit times as float64: exact int64 path, float64 for far offsets.

    Heavy-tailed samplers (harmonic search) occasionally draw start nodes
    so distant that the int64 closed form would overflow; those entries are
    resolved in float64, whose few-ULP error is irrelevant at that scale.
    """
    dx = np.asarray(dx, dtype=np.int64)
    dy = np.asarray(dy, dtype=np.int64)
    far = (np.abs(dx) > SAFE_OFFSET) | (np.abs(dy) > SAFE_OFFSET)
    if not np.any(far):
        return spiral_hit_time_array(dx, dy).astype(np.float64)
    out = np.empty(dx.shape, dtype=np.float64)
    near = ~far
    out[near] = spiral_hit_time_array(dx[near], dy[near])
    out[far] = spiral_hit_time_float_array(dx[far], dy[far])
    return out


def _outbound_hit_offsets(
    ux: np.ndarray, uy: np.ndarray, tx: int, ty: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Treasure hits on the x-first Manhattan walk from the source to ``u``.

    Returns ``(mask, offset)``: whether the treasure lies on the leg and the
    number of steps into the walk at which it is reached.
    """
    sgnx = np.sign(ux)
    sgny = np.sign(uy)
    on_x_leg = (ty == 0) & (tx * sgnx >= 1) & (abs(tx) <= np.abs(ux))
    on_y_leg = (tx == ux) & (ty * sgny >= 1) & (abs(ty) <= np.abs(uy))
    offset = np.where(on_x_leg, abs(tx), np.abs(ux) + abs(ty))
    return on_x_leg | on_y_leg, offset


def _return_hit_offsets(
    ex: np.ndarray, ey: np.ndarray, tx: int, ty: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Treasure hits on the x-first Manhattan walk from ``e`` back to the source."""
    on_x_leg = (ty == ey) & (tx * np.sign(ex) >= 0) & (abs(tx) <= np.abs(ex))
    on_y_leg = (tx == 0) & (ty * np.sign(ey) >= 0) & (abs(ty) <= np.abs(ey))
    off_x = np.abs(ex) - abs(tx)
    off_y = np.abs(ex) + np.abs(ey) - abs(ty)
    offset = np.where(on_x_leg, off_x, off_y)
    return on_x_leg | on_y_leg, offset


def simulate_find_times(
    algorithm: ExcursionAlgorithm,
    world: World,
    k: int,
    trials: int,
    seed: SeedLike = None,
    *,
    horizon: Optional[float] = None,
    max_phases: int = 1_000_000,
    start_delays: Optional[np.ndarray] = None,
) -> np.ndarray:
    """First times at which any of ``k`` agents finds the treasure.

    Runs ``trials`` independent executions of ``algorithm`` with ``k``
    agents each and returns a float array of shape ``(trials,)`` holding the
    first find time per execution (``inf`` when the excursion stream ends —
    one-shot algorithms — or ``horizon`` is exceeded without a find).

    Semantics are identical to the step engine: a find is recorded on the
    outbound leg, the spiral, or the return leg, whichever comes first.

    ``start_delays`` (shape ``(k,)`` or ``(trials, k)``, non-negative)
    models the paper's asynchronous-start remark (Section 2): agent ``i``
    only begins executing at its delay; times remain measured from ``t0 = 0``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    rng = make_rng(seed)
    tx, ty = world.treasure

    cum = np.zeros((trials, k), dtype=np.float64)
    if start_delays is not None:
        delays = np.asarray(start_delays, dtype=np.float64)
        if np.any(delays < 0):
            raise ValueError("start delays must be non-negative")
        cum = cum + np.broadcast_to(delays, (trials, k))
    best = np.full(trials, np.inf)
    cap = np.inf if horizon is None else float(horizon)

    families = algorithm.families()
    for phase_index in itertools.count():
        if phase_index >= max_phases:
            raise RuntimeError(
                f"simulation exceeded max_phases={max_phases}; "
                f"pass a horizon or raise the cap"
            )
        active = cum < np.minimum(best, cap)[:, None]
        if not np.any(active):
            break
        family = next(families, None)
        if family is None:
            break

        rows, cols = np.nonzero(active)
        count = rows.size
        ux, uy, budgets = family.sample(rng, count)
        start = cum[rows, cols]
        travel = np.abs(ux) + np.abs(uy)

        # Earliest hit within this excursion (inf when the excursion misses).
        hit_offset = np.full(count, np.inf)

        out_mask, out_off = _outbound_hit_offsets(ux, uy, tx, ty)
        hit_offset[out_mask] = np.minimum(hit_offset[out_mask], out_off[out_mask])

        spiral_hit = _hit_times(tx - ux, ty - uy)
        sp_mask = spiral_hit <= budgets
        sp_time = travel + spiral_hit
        hit_offset[sp_mask] = np.minimum(hit_offset[sp_mask], sp_time[sp_mask])

        dx_end, dy_end = spiral_position_array(budgets)
        ex = ux + dx_end
        ey = uy + dy_end
        ret_mask, ret_off = _return_hit_offsets(ex, ey, tx, ty)
        ret_time = travel + budgets + ret_off
        hit_offset[ret_mask] = np.minimum(hit_offset[ret_mask], ret_time[ret_mask])

        found = np.isfinite(hit_offset)
        if np.any(found):
            find_times = start[found] + hit_offset[found]
            np.minimum.at(best, rows[found], find_times)
            # Finders stop searching; park their clocks at +inf.
            cum[rows[found], cols[found]] = np.inf

        not_found = ~found
        duration = travel + budgets + np.abs(ex) + np.abs(ey)
        cum[rows[not_found], cols[not_found]] = (
            start[not_found] + duration[not_found]
        )

    best[best > cap] = np.inf
    return best


def excursion_find_time(
    algorithm: ExcursionAlgorithm,
    world: World,
    rng: np.random.Generator,
    *,
    horizon: float = math.inf,
    max_phases: int = 1_000_000,
) -> float:
    """Exact find time of a *single* agent, replaying the step program's draws.

    Consumes ``rng`` exactly as
    :meth:`repro.algorithms.base.ExcursionAlgorithm.step_program` does (one
    ``sample_one`` per excursion), so for any seed this returns precisely
    the step at which the step-level engine would see the agent stand on
    the treasure.  Used by cross-engine validation and by instrumentation
    that needs per-agent determinism.
    """
    tx, ty = world.treasure
    elapsed = 0.0
    for phase_index, family in enumerate(algorithm.families()):
        if phase_index >= max_phases or elapsed >= horizon:
            return math.inf
        (ux, uy), budget = family.sample_one(rng)
        travel = abs(ux) + abs(uy)

        candidates = []
        # Outbound leg.
        if ty == 0 and tx * np.sign(ux) >= 1 and abs(tx) <= abs(ux):
            candidates.append(abs(tx))
        if tx == ux and ty * np.sign(uy) >= 1 and abs(ty) <= abs(uy):
            candidates.append(abs(ux) + abs(ty))
        # Spiral.
        hit = spiral_hit_time(tx - ux, ty - uy)
        if hit <= budget:
            candidates.append(travel + hit)
        # Return leg.
        dxe, dye = spiral_position(budget)
        ex, ey = ux + dxe, uy + dye
        if ty == ey and tx * np.sign(ex) >= 0 and abs(tx) <= abs(ex):
            candidates.append(travel + budget + abs(ex) - abs(tx))
        if tx == 0 and ty * np.sign(ey) >= 0 and abs(ty) <= abs(ey):
            candidates.append(travel + budget + abs(ex) + abs(ey) - abs(ty))

        if candidates:
            return elapsed + min(candidates)
        elapsed += travel + budget + abs(ex) + abs(ey)
    return math.inf


def expected_find_time(
    algorithm: ExcursionAlgorithm,
    world: World,
    k: int,
    trials: int,
    seed: SeedLike = None,
    **kwargs,
) -> Tuple[float, float]:
    """Convenience wrapper: mean find time and its standard error.

    Returns ``(mean, stderr)`` over ``trials`` executions.  Truncated
    (non-finding) runs propagate ``inf`` into the mean, which is the honest
    answer for one-shot algorithms.
    """
    times = simulate_find_times(algorithm, world, k, trials, seed, **kwargs)
    mean = float(np.mean(times))
    if np.all(np.isfinite(times)) and trials > 1:
        stderr = float(np.std(times, ddof=1) / math.sqrt(trials))
    else:
        stderr = math.inf if not np.all(np.isfinite(times)) else 0.0
    return mean, stderr
