"""Coverage metrics over step-level runs.

The lower-bound proofs (Theorems 4.1 and 4.2) revolve around counting
quantities: for an annulus ``S_i = B(D_i) \\ B(D_{i-1})`` and a time cutoff
``2T``, the random variable ``chi(S_i)`` counts nodes of ``S_i`` visited by
at least one agent, and the per-agent visit load ``|visited| / k`` drives
the contradiction.  This module turns the per-agent first-visit maps
produced by :func:`repro.sim.engine.first_visit_times` into exactly those
quantities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..core.geometry import annulus_size, ball_size, l1_norm

__all__ = [
    "AnnulusCoverage",
    "union_first_visits",
    "coverage_by_annulus",
    "ball_coverage_fraction",
    "distinct_nodes_visited",
]

Point = Tuple[int, int]


def union_first_visits(
    visit_maps: Iterable[Dict[Point, int]], cutoff: float = float("inf")
) -> Dict[Point, int]:
    """Merge per-agent first-visit maps: earliest visit per cell, up to ``cutoff``."""
    union: Dict[Point, int] = {}
    for visits in visit_maps:
        for cell, t in visits.items():
            if t <= cutoff and (cell not in union or t < union[cell]):
                union[cell] = t
    return union


@dataclass(frozen=True)
class AnnulusCoverage:
    """Coverage of one annulus ``inner < d(u) <= outer`` by a time cutoff.

    ``covered`` counts distinct annulus cells visited by at least one agent
    (the proofs' ``chi(S_i)``); ``per_agent_mean`` is the average number of
    annulus cells a *single* agent visited (the proofs' per-agent load
    ``Omega(|S_i| / k_i)``).
    """

    inner: int
    outer: int
    size: int
    covered: int
    per_agent_mean: float

    @property
    def fraction(self) -> float:
        """``E[chi(S_i)] / |S_i|`` — the proofs lower-bound this by 1/2."""
        return self.covered / self.size if self.size else 0.0


def coverage_by_annulus(
    visit_maps: Sequence[Dict[Point, int]],
    boundaries: Sequence[int],
    cutoff: float = float("inf"),
) -> List[AnnulusCoverage]:
    """Per-annulus coverage for annuli between consecutive ``boundaries``.

    ``boundaries = [r0, r1, ..., rn]`` defines annuli
    ``S_i = {u : r_{i-1} < d(u) <= r_i}``.  Cells are attributed by L1 norm;
    visits after ``cutoff`` are ignored.
    """
    if len(boundaries) < 2:
        raise ValueError("need at least two boundaries")
    if any(b >= c for b, c in zip(boundaries, boundaries[1:])):
        raise ValueError(f"boundaries must be strictly increasing: {boundaries}")

    n = len(boundaries) - 1
    union_counts = [0] * n
    per_agent_totals = [0] * n

    def annulus_index(cell: Point) -> int:
        d = l1_norm(cell[0], cell[1])
        if d <= boundaries[0] or d > boundaries[-1]:
            return -1
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if d <= boundaries[mid + 1]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    union = union_first_visits(visit_maps, cutoff)
    for cell in union:
        idx = annulus_index(cell)
        if idx >= 0:
            union_counts[idx] += 1

    for visits in visit_maps:
        for cell, t in visits.items():
            if t <= cutoff:
                idx = annulus_index(cell)
                if idx >= 0:
                    per_agent_totals[idx] += 1

    agents = max(len(visit_maps), 1)
    return [
        AnnulusCoverage(
            inner=boundaries[i],
            outer=boundaries[i + 1],
            size=annulus_size(boundaries[i], boundaries[i + 1]),
            covered=union_counts[i],
            per_agent_mean=per_agent_totals[i] / agents,
        )
        for i in range(n)
    ]


def ball_coverage_fraction(
    visit_maps: Sequence[Dict[Point, int]], radius: int, cutoff: float = float("inf")
) -> float:
    """Fraction of ``B(radius)`` visited by at least one agent by ``cutoff``."""
    union = union_first_visits(visit_maps, cutoff)
    covered = sum(1 for cell in union if l1_norm(cell[0], cell[1]) <= radius)
    return covered / ball_size(radius)


def distinct_nodes_visited(
    visit_maps: Sequence[Dict[Point, int]], cutoff: float = float("inf")
) -> List[int]:
    """Number of distinct cells each agent visited by ``cutoff``.

    The proofs of Theorems 4.1/4.2 bound this by the elapsed time: an agent
    traversing ``2T`` edges visits at most ``2T + 1`` distinct cells — the
    contradiction arises when the per-annulus loads sum to more.
    """
    return [
        sum(1 for t in visits.values() if t <= cutoff) for visits in visit_maps
    ]
