"""Simulation engines, worlds, and reproducible randomness.

Three engine families execute the same algorithms:

* :mod:`repro.sim.engine` — exact step-level reference engine;
* :mod:`repro.sim.events` — vectorised excursion-level engine (scalar and
  batched multi-world), exact in distribution and fast enough for the
  paper-scale sweeps;
* :mod:`repro.sim.walkers` — batched walker engine for the memoryless
  baselines (random/biased walks, Lévy flights), exact in distribution
  against the step engine.

All engines accept a :class:`repro.scenarios.ScenarioSpec` through their
``scenario`` keyword (crash failures, heterogeneous speeds, staggered
starts, lossy detection); the default scenario is bitwise identical to
the unperturbed engines.
"""

from .engine import AgentTrace, StepRun, first_visit_times, run_agent, run_search
from .events import (
    excursion_find_time,
    expected_find_time,
    simulate_find_times,
    simulate_find_times_batch,
)
from .walkers import (
    BiasedWalker,
    LevyWalker,
    RandomWalker,
    Walker,
    walker_find_times,
    walker_find_times_batch,
)
from .metrics import (
    AnnulusCoverage,
    ball_coverage_fraction,
    coverage_by_annulus,
    distinct_nodes_visited,
    union_first_visits,
)
from .protocol import (
    Engine,
    ExcursionBatchEngine,
    StepEngine,
    WalkerBatchEngine,
    engine_for,
)
from .rng import derive_rng, derive_seed, make_rng, spawn_rngs, spawn_seeds
from .world import (
    Result,
    TargetTrack,
    World,
    WorldSpec,
    initial_targets,
    place_targets,
    place_treasure,
    resolve_world,
)
from ..scenarios import AgentProfile, ScenarioSpec

__all__ = [
    "AgentProfile",
    "AgentTrace",
    "AnnulusCoverage",
    "BiasedWalker",
    "Engine",
    "ExcursionBatchEngine",
    "LevyWalker",
    "RandomWalker",
    "Result",
    "ScenarioSpec",
    "StepEngine",
    "StepRun",
    "TargetTrack",
    "Walker",
    "WalkerBatchEngine",
    "World",
    "WorldSpec",
    "ball_coverage_fraction",
    "coverage_by_annulus",
    "derive_rng",
    "derive_seed",
    "distinct_nodes_visited",
    "engine_for",
    "excursion_find_time",
    "expected_find_time",
    "first_visit_times",
    "initial_targets",
    "make_rng",
    "place_targets",
    "place_treasure",
    "resolve_world",
    "run_agent",
    "run_search",
    "simulate_find_times",
    "simulate_find_times_batch",
    "spawn_rngs",
    "spawn_seeds",
    "union_first_visits",
    "walker_find_times",
    "walker_find_times_batch",
]
