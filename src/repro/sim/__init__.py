"""Simulation engines, worlds, and reproducible randomness.

Two engines execute the same algorithms:

* :mod:`repro.sim.engine` — exact step-level reference engine;
* :mod:`repro.sim.events` — vectorised excursion-level engine, exact in
  distribution and fast enough for the paper-scale sweeps.
"""

from .engine import AgentTrace, StepRun, first_visit_times, run_agent, run_search
from .events import (
    excursion_find_time,
    expected_find_time,
    simulate_find_times,
    simulate_find_times_batch,
)
from .metrics import (
    AnnulusCoverage,
    ball_coverage_fraction,
    coverage_by_annulus,
    distinct_nodes_visited,
    union_first_visits,
)
from .rng import derive_rng, derive_seed, make_rng, spawn_rngs, spawn_seeds
from .world import Result, World, place_treasure

__all__ = [
    "AgentTrace",
    "AnnulusCoverage",
    "Result",
    "StepRun",
    "World",
    "ball_coverage_fraction",
    "coverage_by_annulus",
    "derive_rng",
    "derive_seed",
    "distinct_nodes_visited",
    "excursion_find_time",
    "expected_find_time",
    "first_visit_times",
    "make_rng",
    "place_treasure",
    "run_agent",
    "run_search",
    "simulate_find_times",
    "simulate_find_times_batch",
    "spawn_rngs",
    "spawn_seeds",
    "union_first_visits",
]
