"""Exact step-level simulation: agents traverse one grid edge per time unit.

This is the reference engine — a literal implementation of the paper's
model (Section 2): ``k`` identical probabilistic agents start at the source
at time 0, each edge traversal costs one time unit, and the search ends
when an agent stands on the treasure.  It executes any
:class:`repro.algorithms.base.SearchAlgorithm` step program, including the
non-excursion baselines (random walks, Lévy flights).

It is used for (1) validating the vectorised engine, (2) running baselines,
and (3) the lower-bound instrumentation of Theorems 4.1/4.2, which needs
the set of distinct nodes each agent visits by a time cutoff — something
only a step-level execution can observe.

Because agents do not interact, they are simulated one at a time; when only
the first find time is needed, later agents inherit the best time found so
far as their horizon, which prunes most of the work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..algorithms.base import Point, SearchAlgorithm
from ..scenarios import (
    SCENARIO_STREAM,
    ScenarioSpec,
    resolve_scenario,
    steps_within,
)
from .rng import SeedLike, derive_rng
from .world import (
    MOTION_DIR_X,
    MOTION_DIR_Y,
    TARGET_STREAM,
    Result,
    World,
    WorldSpec,
    initial_targets,
    resolve_world,
)

__all__ = ["AgentTrace", "StepRun", "run_agent", "run_search", "first_visit_times"]

#: Largest horizon for which a dynamic-motion target trajectory is
#: precomputed (the step engine materialises positions per time unit).
_MAX_DYNAMIC_HORIZON = 1 << 22


@dataclass
class AgentTrace:
    """What one agent did during a step-level run.

    ``find_time`` is the first time the agent stood on the treasure (``None``
    if it never did within its horizon); ``visited`` maps each distinct cell
    to its first-visit time when recording was requested.
    """

    agent: int
    find_time: Optional[int]
    steps: int
    visited: Optional[Dict[Point, int]] = None


@dataclass
class StepRun:
    """Outcome of a step-level multi-agent run."""

    result: Result
    traces: List[AgentTrace]

    @property
    def found(self) -> bool:
        return self.result.found


def run_agent(
    algorithm: SearchAlgorithm,
    world: World,
    rng: np.random.Generator,
    horizon: int,
    *,
    agent: int = 0,
    record_visits: bool = False,
    stop_at_find: bool = True,
    detection_prob: float = 1.0,
    detect_rng: Optional[np.random.Generator] = None,
) -> AgentTrace:
    """Run one agent's step program for up to ``horizon`` steps.

    With ``stop_at_find`` the program halts at the first treasure visit;
    otherwise it runs the full horizon (used by coverage instrumentation,
    where "by time 2T" semantics require every agent to walk the whole
    window).

    With ``detection_prob < 1`` each treasure visit is *noticed* only with
    that probability (one coin per visit from ``detect_rng``, a stream
    separate from the trajectory's ``rng`` so the walk itself is
    unperturbed); unnoticed visits leave the agent searching.
    """
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    if detection_prob < 1.0 and detect_rng is None:
        raise ValueError("detection_prob < 1 requires a detect_rng stream")
    treasure = world.treasure
    visited: Optional[Dict[Point, int]] = None
    if record_visits:
        visited = {(0, 0): 0}
    find_time: Optional[int] = None
    steps = 0
    program = algorithm.step_program(rng)
    for t, position in enumerate(program, start=1):
        if t > horizon:
            steps = t - 1
            break
        steps = t
        if visited is not None and position not in visited:
            visited[position] = t
        if find_time is None and position == treasure:
            if detection_prob >= 1.0 or detect_rng.random() < detection_prob:
                find_time = t
                if stop_at_find:
                    break
    return AgentTrace(agent=agent, find_time=find_time, steps=steps, visited=visited)


def _step_trajectory(
    spec: WorldSpec,
    targets0: np.ndarray,
    horizon: int,
    motion_rng: np.random.Generator,
) -> np.ndarray:
    """Target positions at every integer time, shape ``(T + 1, n, 2)``.

    The step engine is the reference, so it evaluates motion *per step*
    rather than at excursion/chunk granularity: ``drift`` is the closed
    form at each time, ``walk`` flips one lazy-step coin plus one
    direction per time unit.  Static motion returns a single-row view
    (indexed with a clamp, so no ``(T, n, 2)`` array is materialised).
    """
    n = spec.n_targets
    if spec.motion == "static":
        return targets0[None, :, :]
    if horizon > _MAX_DYNAMIC_HORIZON:
        raise ValueError(
            "dynamic-motion step runs precompute the target trajectory; "
            f"horizon {horizon} exceeds the {_MAX_DYNAMIC_HORIZON} cap — "
            "use the vectorised engines for long dynamic runs"
        )
    if spec.motion == "drift":
        dirs = motion_rng.integers(0, 4, size=n)
        dvec = np.stack([MOTION_DIR_X[dirs], MOTION_DIR_Y[dirs]], axis=-1)
        steps = np.floor(
            spec.motion_rate * np.arange(horizon + 1, dtype=np.float64)
        ).astype(np.int64)
        return targets0[None, :, :] + steps[:, None, None] * dvec[None, :, :]
    moved = motion_rng.random((horizon, n)) < spec.motion_rate
    dirs = motion_rng.integers(0, 4, size=(horizon, n))
    dvec = np.stack([MOTION_DIR_X[dirs], MOTION_DIR_Y[dirs]], axis=-1)
    traj = np.empty((horizon + 1, n, 2), dtype=np.int64)
    traj[0] = targets0
    traj[1:] = targets0[None, :, :] + np.cumsum(
        np.where(moved[:, :, None], dvec, 0), axis=0
    )
    return traj


def _run_agent_dynamic(
    algorithm: SearchAlgorithm,
    traj: np.ndarray,
    arrivals: np.ndarray,
    rng: np.random.Generator,
    horizon: int,
    *,
    agent: int = 0,
    detection_prob: float = 1.0,
    detect_rng: Optional[np.random.Generator] = None,
) -> AgentTrace:
    """Dynamic-world twin of :func:`run_agent`: per-step target lookup.

    ``traj`` holds every target's position at each integer time (a
    single-row view for static motion, index-clamped); a visit counts only
    at steps at or after the target's arrival, and each target crossing
    flips its own detection coin.
    """
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    if detection_prob < 1.0 and detect_rng is None:
        raise ValueError("detection_prob < 1 requires a detect_rng stream")
    n = traj.shape[1]
    last = traj.shape[0] - 1
    find_time: Optional[int] = None
    steps = 0
    program = algorithm.step_program(rng)
    for t, position in enumerate(program, start=1):
        if t > horizon:
            steps = t - 1
            break
        steps = t
        row = traj[t if t <= last else last]
        hit = False
        for j in range(n):
            if (
                position[0] == row[j, 0]
                and position[1] == row[j, 1]
                and t >= arrivals[j]
            ):
                if (
                    detection_prob >= 1.0
                    or detect_rng.random() < detection_prob
                ):
                    hit = True
                    break
        if hit:
            find_time = t
            break
    return AgentTrace(agent=agent, find_time=find_time, steps=steps)


def _run_search_dynamic(
    algorithm: SearchAlgorithm,
    world,
    wspec: WorldSpec,
    k: int,
    seed: SeedLike,
    *,
    horizon: int,
    prune: bool,
    scenario: Optional[ScenarioSpec],
) -> StepRun:
    """Dynamic-world step search: the per-step-exact reference execution.

    Supports crash and lossy-detection scenarios (where a step index *is*
    the wall clock); heterogeneous speeds and staggered starts would
    decouple the two and are rejected — use the vectorised engines for
    those combinations.  Motion and arrival randomness comes from
    ``derive_rng(seed, TARGET_STREAM)``; agent trajectories keep their
    legacy ``derive_rng(seed, i)`` streams, so the searcher's walk is
    identical across world settings.
    """
    scn = resolve_scenario(scenario)
    if scn is not None and (scn.speed_spread > 0 or scn.start_stagger > 0):
        raise ValueError(
            "the step engine runs dynamic worlds only with unit speeds "
            "and simultaneous starts; use the vectorised engines for "
            "speed/stagger scenarios"
        )
    horizon = int(horizon)
    targets0 = initial_targets(world, wspec)
    motion_rng = derive_rng(seed, TARGET_STREAM)
    traj = _step_trajectory(wspec, targets0, horizon, motion_rng)
    if wspec.arrival == "geometric":
        arrivals = motion_rng.geometric(
            wspec.arrival_hazard, size=wspec.n_targets
        ).astype(np.float64)
    else:
        arrivals = np.zeros(wspec.n_targets, dtype=np.float64)

    scn_detection = scn.detection_prob if scn is not None else 1.0
    detection = wspec.detection_prob * scn_detection
    traces: List[AgentTrace] = []
    best_wall: Optional[float] = None
    finder: Optional[int] = None
    for i in range(k):
        agent_horizon = horizon
        srng = None
        if (scn is not None and scn.crash_hazard > 0) or detection < 1:
            srng = derive_rng(seed, i, SCENARIO_STREAM)
        if scn is not None and scn.crash_hazard > 0:
            lifetime = float(srng.geometric(scn.crash_hazard))
            agent_horizon = min(agent_horizon, int(steps_within(lifetime)))
        if prune and best_wall is not None:
            agent_horizon = min(agent_horizon, max(int(best_wall) - 1, 0))
        trace = _run_agent_dynamic(
            algorithm,
            traj,
            arrivals,
            derive_rng(seed, i),
            agent_horizon,
            agent=i,
            detection_prob=detection,
            detect_rng=srng if detection < 1 else None,
        )
        traces.append(trace)
        if trace.find_time is not None:
            wall = float(trace.find_time)
            if best_wall is None or wall < best_wall:
                best_wall = wall
                finder = i
    total_steps = sum(trace.steps for trace in traces)
    if best_wall is None:
        result = Result(
            time=float("inf"), found=False, finder=None,
            steps_simulated=total_steps,
        )
    else:
        result = Result(
            time=float(best_wall), found=True, finder=finder,
            steps_simulated=total_steps,
        )
    return StepRun(result=result, traces=traces)


def run_search(
    algorithm: SearchAlgorithm,
    world: World,
    k: int,
    seed: SeedLike = None,
    *,
    horizon: int = 10**7,
    record_visits: bool = False,
    prune: bool = True,
    scenario: Optional[ScenarioSpec] = None,
    start_delays=None,
    world_spec: Optional[WorldSpec] = None,
) -> StepRun:
    """Simulate ``k`` agents at step level; the search ends at the first find.

    Agent ``i`` draws its randomness from ``derive_rng(seed, i)``, so any
    individual agent can be replayed in isolation (the cross-engine tests
    rely on this).  With ``prune`` (default), each successive agent only
    needs to be simulated up to the best find time seen so far.
    Pruning is disabled automatically when ``record_visits`` is set, since
    coverage instrumentation needs full-horizon walks.

    ``scenario`` (:class:`repro.scenarios.ScenarioSpec`) and
    ``start_delays`` (length ``k``) perturb the agents exactly as in the
    vectorised engines: ``horizon`` and ``Result.time`` become wall-clock
    (agent ``i``'s step ``t`` happens at ``delay_i + t / speed_i``), crash
    lifetimes cap each agent's walk, and lossy detection flips one coin
    per treasure visit.  Per-agent scenario randomness comes from
    ``derive_rng(seed, i, SCENARIO_STREAM)``, so trajectory streams are
    untouched and the default scenario is exactly the legacy behaviour.
    ``AgentTrace.find_time`` stays the *step index* of the find; the
    wall-clock conversion lives in ``Result.time``.

    ``world_spec`` (:class:`repro.sim.world.WorldSpec`) declares the world
    process.  A ``None``/all-default spec keeps the exact legacy static
    single-target path below; dynamic worlds run the per-step-exact
    reference execution (``world`` may also be an ``(n_targets, 2)``
    array), which rejects ``record_visits``, explicit delays, and
    speed/stagger scenarios.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    wspec = resolve_world(world_spec)
    if wspec is not None:
        if record_visits:
            raise ValueError(
                "record_visits is not supported for dynamic worlds"
            )
        if start_delays is not None:
            raise ValueError(
                "start_delays are not supported for dynamic worlds in "
                "the step engine"
            )
        return _run_search_dynamic(
            algorithm, world, wspec, k, seed,
            horizon=horizon, prune=prune, scenario=scenario,
        )
    scn = resolve_scenario(scenario)
    delays = np.zeros(k, dtype=np.float64)
    if start_delays is not None:
        given = np.asarray(start_delays, dtype=np.float64)
        if given.shape != (k,):
            raise ValueError(
                f"start_delays must have shape ({k},), got {given.shape}"
            )
        if np.any(given < 0):
            raise ValueError("start delays must be non-negative")
        delays = delays + given
    speeds = np.ones(k, dtype=np.float64)
    if scn is not None:
        delays = delays + scn.delays(k)
        speeds = scn.speeds(k)
    perturbed = scn is not None or start_delays is not None

    traces: List[AgentTrace] = []
    best_wall: Optional[float] = None
    finder: Optional[int] = None
    effective_prune = prune and not record_visits
    for i in range(k):
        speed = float(speeds[i])
        delay = float(delays[i])
        detect_rng = None
        detection_prob = 1.0
        if perturbed:
            # Steps inside the wall-clock horizon: delay + t/speed <= horizon.
            agent_horizon = int(steps_within(horizon - delay, speed))
            if scn is not None and (
                scn.crash_hazard > 0 or scn.detection_prob < 1
            ):
                srng = derive_rng(seed, i, SCENARIO_STREAM)
                if scn.crash_hazard > 0:
                    lifetime = float(srng.geometric(scn.crash_hazard))
                    agent_horizon = min(
                        agent_horizon, int(steps_within(lifetime, speed))
                    )
                if scn.detection_prob < 1:
                    detect_rng = srng
                    detection_prob = scn.detection_prob
        else:
            agent_horizon = horizon
        if effective_prune and best_wall is not None:
            # Step t can only improve the record if delay + t/speed < best.
            if perturbed:
                cap = int(math.ceil((best_wall - delay) * speed)) - 1
            else:
                cap = int(best_wall) - 1
            agent_horizon = min(agent_horizon, max(cap, 0))
        trace = run_agent(
            algorithm,
            world,
            derive_rng(seed, i),
            agent_horizon,
            agent=i,
            record_visits=record_visits,
            stop_at_find=not record_visits,
            detection_prob=detection_prob,
            detect_rng=detect_rng,
        )
        traces.append(trace)
        if trace.find_time is not None:
            wall = delay + trace.find_time / speed if perturbed else float(
                trace.find_time
            )
            if best_wall is None or wall < best_wall:
                best_wall = wall
                finder = i
    total_steps = sum(trace.steps for trace in traces)
    if best_wall is None:
        result = Result(
            time=float("inf"), found=False, finder=None, steps_simulated=total_steps
        )
    else:
        result = Result(
            time=float(best_wall), found=True, finder=finder,
            steps_simulated=total_steps,
        )
    return StepRun(result=result, traces=traces)


def first_visit_times(
    algorithm: SearchAlgorithm,
    world: World,
    k: int,
    seed: SeedLike,
    horizon: int,
) -> List[Dict[Point, int]]:
    """Per-agent first-visit maps over a fixed time window.

    Convenience wrapper used by the Theorem 4.1/4.2 instrumentation: every
    agent walks exactly ``horizon`` steps (no early stop), and the map of
    distinct cells to first-visit times is returned per agent.
    """
    run = run_search(
        algorithm,
        world,
        k,
        seed,
        horizon=horizon,
        record_visits=True,
        prune=False,
    )
    return [trace.visited or {} for trace in run.traces]
