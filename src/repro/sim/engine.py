"""Exact step-level simulation: agents traverse one grid edge per time unit.

This is the reference engine — a literal implementation of the paper's
model (Section 2): ``k`` identical probabilistic agents start at the source
at time 0, each edge traversal costs one time unit, and the search ends
when an agent stands on the treasure.  It executes any
:class:`repro.algorithms.base.SearchAlgorithm` step program, including the
non-excursion baselines (random walks, Lévy flights).

It is used for (1) validating the vectorised engine, (2) running baselines,
and (3) the lower-bound instrumentation of Theorems 4.1/4.2, which needs
the set of distinct nodes each agent visits by a time cutoff — something
only a step-level execution can observe.

Because agents do not interact, they are simulated one at a time; when only
the first find time is needed, later agents inherit the best time found so
far as their horizon, which prunes most of the work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..algorithms.base import Point, SearchAlgorithm
from .rng import SeedLike, derive_rng
from .world import Result, World

__all__ = ["AgentTrace", "StepRun", "run_agent", "run_search", "first_visit_times"]


@dataclass
class AgentTrace:
    """What one agent did during a step-level run.

    ``find_time`` is the first time the agent stood on the treasure (``None``
    if it never did within its horizon); ``visited`` maps each distinct cell
    to its first-visit time when recording was requested.
    """

    agent: int
    find_time: Optional[int]
    steps: int
    visited: Optional[Dict[Point, int]] = None


@dataclass
class StepRun:
    """Outcome of a step-level multi-agent run."""

    result: Result
    traces: List[AgentTrace]

    @property
    def found(self) -> bool:
        return self.result.found


def run_agent(
    algorithm: SearchAlgorithm,
    world: World,
    rng: np.random.Generator,
    horizon: int,
    *,
    agent: int = 0,
    record_visits: bool = False,
    stop_at_find: bool = True,
) -> AgentTrace:
    """Run one agent's step program for up to ``horizon`` steps.

    With ``stop_at_find`` the program halts at the first treasure visit;
    otherwise it runs the full horizon (used by coverage instrumentation,
    where "by time 2T" semantics require every agent to walk the whole
    window).
    """
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    treasure = world.treasure
    visited: Optional[Dict[Point, int]] = None
    if record_visits:
        visited = {(0, 0): 0}
    find_time: Optional[int] = None
    steps = 0
    program = algorithm.step_program(rng)
    for t, position in enumerate(program, start=1):
        if t > horizon:
            steps = t - 1
            break
        steps = t
        if visited is not None and position not in visited:
            visited[position] = t
        if find_time is None and position == treasure:
            find_time = t
            if stop_at_find:
                break
    return AgentTrace(agent=agent, find_time=find_time, steps=steps, visited=visited)


def run_search(
    algorithm: SearchAlgorithm,
    world: World,
    k: int,
    seed: SeedLike = None,
    *,
    horizon: int = 10**7,
    record_visits: bool = False,
    prune: bool = True,
) -> StepRun:
    """Simulate ``k`` agents at step level; the search ends at the first find.

    Agent ``i`` draws its randomness from ``derive_rng(seed, i)``, so any
    individual agent can be replayed in isolation (the cross-engine tests
    rely on this).  With ``prune`` (default), each successive agent only
    needs to be simulated up to the best find time seen so far.
    Pruning is disabled automatically when ``record_visits`` is set, since
    coverage instrumentation needs full-horizon walks.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    traces: List[AgentTrace] = []
    best_time: Optional[int] = None
    finder: Optional[int] = None
    effective_prune = prune and not record_visits
    for i in range(k):
        agent_horizon = horizon
        if effective_prune and best_time is not None:
            agent_horizon = min(horizon, best_time - 1)
        trace = run_agent(
            algorithm,
            world,
            derive_rng(seed, i),
            agent_horizon,
            agent=i,
            record_visits=record_visits,
            stop_at_find=not record_visits,
        )
        traces.append(trace)
        if trace.find_time is not None and (
            best_time is None or trace.find_time < best_time
        ):
            best_time = trace.find_time
            finder = i
    total_steps = sum(trace.steps for trace in traces)
    if best_time is None:
        result = Result(
            time=float("inf"), found=False, finder=None, steps_simulated=total_steps
        )
    else:
        result = Result(
            time=float(best_time), found=True, finder=finder,
            steps_simulated=total_steps,
        )
    return StepRun(result=result, traces=traces)


def first_visit_times(
    algorithm: SearchAlgorithm,
    world: World,
    k: int,
    seed: SeedLike,
    horizon: int,
) -> List[Dict[Point, int]]:
    """Per-agent first-visit maps over a fixed time window.

    Convenience wrapper used by the Theorem 4.1/4.2 instrumentation: every
    agent walks exactly ``horizon`` steps (no early stop), and the map of
    distinct cells to first-visit times is returned per agent.
    """
    run = run_search(
        algorithm,
        world,
        k,
        seed,
        horizon=horizon,
        record_visits=True,
        prune=False,
    )
    return [trace.visited or {} for trace in run.traces]
