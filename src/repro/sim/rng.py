"""Reproducible randomness for multi-agent simulations.

Policy: every experiment owns a root :class:`numpy.random.SeedSequence`;
independent streams for trials and agents are derived with ``spawn`` so that
(1) results are bit-reproducible given the root seed, (2) agent streams are
statistically independent regardless of how many are drawn, and (3) the
same agent stream can be replayed through either simulation engine (the
basis of the engine cross-validation tests).

This module is the *only* place the codebase constructs
``numpy.random.Generator`` objects (rule R001 of the determinism
contract; see ``repro.checks``).  Every construction funnels through one
point, :func:`_construct`, which is also where the ``REPRO_RNG_TRACE=1``
draw-order sanitizer (:mod:`repro.checks.trace`) observes stream
creation: with tracing on, each derivation records its kind, structured
key and seed fingerprint, so a determinism violation is reported as "the
first divergent stream in cell (D, k) block b" instead of a far-away
bitwise diff.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from ..checks import trace
from ..checks.registry import register_stream

__all__ = [
    "make_rng",
    "spawn_rngs",
    "spawn_seeds",
    "derive_rng",
    "derive_seed",
    "BLOCK_STREAM",
]

SeedLike = Union[None, int, Sequence[int], np.random.SeedSequence, np.random.Generator]

#: Leading key of every block-seeded simulation stream:
#: ``derive_seed(root, BLOCK_STREAM, distance, k, block)`` is the seed of
#: trial block ``block`` of cell ``(distance, k)`` under root seed
#: ``root``.  Giving blocks their own tagged namespace keeps them disjoint
#: from group spawns (different derivation) and from experiment-level
#: ``derive_seed(root, index)`` keys (different leading word), so a
#: cell's block stream depends only on ``(root, distance, k, block)`` —
#: the invariant that makes cached blocks appendable across runs.
BLOCK_STREAM = register_stream("BLOCK_STREAM", 0xB10C5EED)


def _construct(
    seq: np.random.SeedSequence, kind: str, key: Sequence[int] = ()
) -> np.random.Generator:
    """The single Generator construction point (trace hook lives here)."""
    trace.record(kind, key, seq)
    return np.random.default_rng(seq)


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from any seed-like value.

    Passing an existing ``Generator`` returns it unchanged, so library
    functions can accept either a seed or a live generator.  Every other
    seed-like value is normalised to a ``SeedSequence`` first —
    ``np.random.SeedSequence(seed)`` is exactly what ``default_rng(seed)``
    does internally, so the normalisation is bitwise-neutral — and then
    built at the traced construction point.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if not isinstance(seed, np.random.SeedSequence):
        seed = np.random.SeedSequence(seed)
    return _construct(seed, "make_rng")


def spawn_seeds(seed: SeedLike, count: int) -> List[np.random.SeedSequence]:
    """Derive ``count`` independent child seed sequences from ``seed``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    elif isinstance(seed, np.random.Generator):
        # Use the generator itself to derive an entropy value; keeps the
        # "generator in, independent children out" contract.
        root = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        root = np.random.SeedSequence(seed)
    children = list(root.spawn(count))
    for index, child in enumerate(children):
        trace.record("spawn_seeds", (index,), child)
    return children


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent generators from ``seed``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    elif isinstance(seed, np.random.Generator):
        root = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        root = np.random.SeedSequence(seed)
    return [
        _construct(child, "spawn_rngs", (index,))
        for index, child in enumerate(root.spawn(count))
    ]


def _key_sequence(seed: SeedLike, *key: int) -> np.random.SeedSequence:
    """The shared seed-plus-key normalisation behind the ``derive_*`` pair.

    Two collision traps are defused here:

    * a ``SeedSequence``'s identity is ``(entropy, spawn_key)``; folding in
      only the entropy would collapse every spawned child of one root onto
      the same derived stream (``spawn_seeds(s, n)`` children differ *only*
      by spawn key), so the spawn key participates in the derivation;
    * ``numpy`` strips trailing zero entropy words (``SeedSequence((7,))``
      and ``SeedSequence((7, 0))`` are the same stream), which would alias
      ``derive(seed, 0)`` with the root and any two keys differing only by
      trailing zeros.

    The word layout is a self-delimiting encoding — length prefixes for
    the entropy base and the spawn key, the key itself, then a nonzero
    terminator that keeps the tail unstrippable — so distinct
    ``(entropy, spawn_key, key)`` triples always map to distinct streams
    (tuple seeds included: ``(7, 1)`` must not parse like child 1 of 7).
    """
    if isinstance(seed, np.random.SeedSequence):
        entropy = seed.entropy
        spawn_key = tuple(int(v) for v in seed.spawn_key)
    elif isinstance(seed, np.random.Generator):
        raise TypeError("key derivation needs a stable seed, not a live Generator")
    else:
        entropy = seed
        spawn_key = ()
    if entropy is None:
        entropy = 0
    if isinstance(entropy, (list, tuple)):
        base = tuple(int(e) for e in entropy)
    else:
        base = (int(entropy),)
    words = (
        (len(base),)
        + base
        + (len(spawn_key),)
        + spawn_key
        + tuple(key)
        + (len(key) + 1,)
    )
    return np.random.SeedSequence(words)


def derive_rng(seed: SeedLike, *key: int) -> np.random.Generator:
    """Deterministically derive a generator for a structured key.

    ``derive_rng(root, trial, agent)`` gives the same stream for the same
    ``(root, trial, agent)`` triple, independent of evaluation order —
    the anchor of cross-engine replay tests.
    """
    return _construct(_key_sequence(seed, *key), "derive_rng", key)


def derive_seed(seed: SeedLike, *key: int) -> int:
    """Deterministically derive a plain integer seed for a structured key.

    The integer twin of :func:`derive_rng`, for consumers that need a
    serialisable seed (sweep specs, cache keys) rather than a live
    generator: the same ``(root, *key)`` always yields the same integer,
    and distinct keys yield statistically independent streams.
    """
    seq = _key_sequence(seed, *key)
    trace.record("derive_seed", key, seq)
    return int(seq.generate_state(1, np.uint64)[0])
