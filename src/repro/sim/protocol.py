"""One ``Engine`` protocol over the three simulation engines.

Every engine in the package answers the same question — "first times at
which any of ``k`` agents finds a target, over ``trials`` executions" —
but historically through three differently-shaped entry points:
:func:`repro.sim.events.simulate_find_times` (excursion batch),
:meth:`repro.sim.walkers.Walker.find_times` (walker batch, also the shape
of the adaptive searchers in :mod:`repro.algorithms.belief`), and
:func:`repro.sim.engine.run_search` (step-level reference, one execution
per call).  This module pins the common contract as a
:class:`typing.Protocol` and provides one thin adapter per engine, so
cross-engine property tests, the sweep runner, and future callers can
treat "an engine" as a value.

The adapters add nothing on top of the underlying entry points: for a
``None``/all-default ``world_spec`` each delegates to the structurally
unchanged legacy code path, so going through the protocol is bitwise
identical to calling the engine directly (pinned by
``tests/test_worldspec.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

import numpy as np

from ..scenarios import ScenarioSpec
from .rng import SeedLike, derive_seed
from .world import WorldSpec

__all__ = [
    "Engine",
    "ExcursionBatchEngine",
    "StepEngine",
    "WalkerBatchEngine",
    "engine_for",
]


@runtime_checkable
class Engine(Protocol):
    """The common find-times contract implemented by all three engines.

    ``find_times`` returns a float array of shape ``(trials,)`` — the
    first find time per execution, ``inf`` when truncated — for any
    supported ``(strategy, world, world_spec, scenario)`` combination.
    ``world`` is a :class:`repro.sim.world.World` for static single-target
    runs and may be an ``(n_targets, 2)`` initial-position array when a
    non-default ``world_spec`` is given.
    """

    name: str

    def find_times(
        self,
        strategy,
        world,
        k: int,
        trials: int,
        seed: SeedLike = None,
        *,
        horizon: Optional[float] = None,
        scenario: Optional[ScenarioSpec] = None,
        world_spec: Optional[WorldSpec] = None,
    ) -> np.ndarray:
        ...


@dataclass(frozen=True)
class ExcursionBatchEngine:
    """Adapter over :func:`repro.sim.events.simulate_find_times`."""

    name: str = "excursion-batch"

    def find_times(
        self,
        strategy,
        world,
        k: int,
        trials: int,
        seed: SeedLike = None,
        *,
        horizon: Optional[float] = None,
        scenario: Optional[ScenarioSpec] = None,
        world_spec: Optional[WorldSpec] = None,
    ) -> np.ndarray:
        from .events import simulate_find_times

        return simulate_find_times(
            strategy, world, k, trials, seed,
            horizon=horizon, scenario=scenario, world_spec=world_spec,
        )


@dataclass(frozen=True)
class WalkerBatchEngine:
    """Adapter over the strategy's own batched ``find_times``.

    Covers :class:`repro.sim.walkers.Walker` subclasses and any other
    strategy that simulates itself row-wise (the adaptive searchers of
    :mod:`repro.algorithms.belief` share the signature).
    """

    name: str = "walker-batch"

    def find_times(
        self,
        strategy,
        world,
        k: int,
        trials: int,
        seed: SeedLike = None,
        *,
        horizon: Optional[float] = None,
        scenario: Optional[ScenarioSpec] = None,
        world_spec: Optional[WorldSpec] = None,
    ) -> np.ndarray:
        return strategy.find_times(
            world, k, trials, seed,
            horizon=horizon, scenario=scenario, world_spec=world_spec,
        )


@dataclass(frozen=True)
class StepEngine:
    """Adapter over :func:`repro.sim.engine.run_search`, one trial per run.

    Trial ``i`` runs with seed ``derive_seed(seed, i)`` (agents then
    derive their legacy per-agent streams from it), so any single trial
    can be replayed in isolation.  The step engine is the reference:
    slow, per-step exact, and the only engine that evaluates dynamic
    target motion at step granularity.
    """

    name: str = "step"

    def find_times(
        self,
        strategy,
        world,
        k: int,
        trials: int,
        seed: SeedLike = None,
        *,
        horizon: Optional[float] = None,
        scenario: Optional[ScenarioSpec] = None,
        world_spec: Optional[WorldSpec] = None,
    ) -> np.ndarray:
        from .engine import run_search

        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        if horizon is None:
            raise ValueError("the step engine adapter needs a horizon")
        times = np.empty(trials, dtype=np.float64)
        for i in range(trials):
            run = run_search(
                strategy, world, k, derive_seed(seed, i),
                horizon=int(horizon), scenario=scenario,
                world_spec=world_spec,
            )
            times[i] = run.result.time
        return times


def engine_for(strategy) -> Engine:
    """The natural engine for a strategy, as the sweep runner dispatches it.

    Excursion algorithms route to the excursion batch engine, strategies
    that carry their own batched ``find_times`` (walkers, adaptive
    searchers) to the walker-batch adapter, and plain step programs to the
    step engine.
    """
    from ..algorithms.base import ExcursionAlgorithm, SearchAlgorithm

    if isinstance(strategy, ExcursionAlgorithm):
        return ExcursionBatchEngine()
    if hasattr(strategy, "find_times"):
        return WalkerBatchEngine()
    if isinstance(strategy, SearchAlgorithm):
        return StepEngine()
    raise TypeError(
        f"no engine simulates {type(strategy).__name__} instances"
    )
