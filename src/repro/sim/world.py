"""The search world: source node, target placement, world dynamics, results.

The paper's setting (Section 2): all ``k`` agents start at a source node
``s`` of ``Z^2``; an adversary places the treasure at a target node ``tau``
at distance ``D = d(s, tau)``, unknown to the agents.  Everything is
translation invariant, so the source is pinned at the origin and a world is
fully described by the treasure offset.

Placement helpers cover the three placements used across the experiments:

* ``axis`` — ``(D, 0)``: a generic placement;
* ``corner`` — the cell of distance ``D`` that the canonical spiral visits
  *last* (``(0, -D)``), the worst case for spiral-based local search;
* ``offaxis`` — ``(-1, -(D-1))``: spiral-late *and* off both coordinate
  axes.  Excursion algorithms walk deterministic x-first Manhattan legs,
  so the two axes are "commuting highways" that get incidentally covered;
  an adversary avoids them.  This is the default adversarial stand-in for
  the experiments;
* ``random`` — uniform on the ring of radius ``D``.

True adversarial (argmin visit-probability) placement is provided by
:mod:`repro.analysis.lower_bounds`, which needs executions to estimate the
visit-probability map.

Beyond the paper's single static treasure, :class:`WorldSpec` declares a
*world process* — how many targets exist, how they move, when they appear,
and how reliably a crossing detects them (see DESIGN.md §10):

* **Motion** (``motion``, ``motion_rate``): ``static`` is the paper's
  model.  ``drift`` gives each target one axis direction (drawn once from
  the target stream) and moves it ``floor(rate * t)`` cells along it by
  wall-clock time ``t`` — closed form at any query time.  ``walk`` is a
  lazy random walk: over a window of ``dt`` integer time units the target
  takes ``Binomial(dt, rate)`` unit steps, each uniform over the four axis
  directions — advanced in closed form per window (one binomial plus one
  multinomial draw), never per step.
* **Appearance** (``arrival``, ``arrival_hazard``): ``present`` means the
  target exists from ``t = 0``.  ``geometric`` draws a per-target arrival
  time ``A ~ Geometric(hazard)`` (support ``1, 2, ...``); crossings at
  wall-clock time strictly before ``A`` do not count.  The target's
  trajectory is defined from ``t = 0`` regardless — arrival only gates
  detection.
* **Multi-target** (``n_targets``): target 0 takes the requested placement;
  extra targets are placed uniformly on the same ring, each from its own
  derived placement stream.  A run's find time is the first valid hit on
  *any* target.
* **Detection** (``detection_prob``): per-crossing notice probability,
  multiplying the scenario-level lossy-detection knob.

Determinism contract: all motion, arrival, and extra-placement randomness
is drawn from streams derived via the registered ``TARGET_STREAM`` /
``PLACEMENT_DRAW_STREAM`` tags, never from the searcher's own stream — so
an algorithm's excursion draws stay paired across world settings, and the
static single-target default (canonicalised to ``None`` by
:func:`resolve_world`) takes the structurally unchanged legacy code path
in every engine.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple, Union

import numpy as np

from ..checks.registry import register_stream
from ..core.geometry import l1_norm, sample_uniform_ring
from .rng import SeedLike, derive_rng, make_rng

__all__ = [
    "PLACEMENT_DRAW_STREAM",
    "Result",
    "TARGET_STREAM",
    "TargetTrack",
    "World",
    "WorldSpec",
    "initial_targets",
    "place_targets",
    "place_treasure",
    "resolve_world",
]

Point = Tuple[int, int]

SOURCE: Point = (0, 0)

#: Stream tag for the ``place_treasure("random")`` ring draw and the extra
#: targets of multi-target placement, keyed ``derive_rng(seed,
#: PLACEMENT_DRAW_STREAM[, j])`` — placement randomness never rides on a
#: raw ``make_rng(seed)`` stream (R001/R003 cover it like any other draw).
PLACEMENT_DRAW_STREAM = register_stream("PLACEMENT_DRAW_STREAM", 0x97ACE5D1)

#: Stream tag for target motion and arrival draws, keyed
#: ``derive_rng(seed, TARGET_STREAM[, ...])``.  Dynamic-world randomness
#: lives on its own derived stream so the searcher's excursion/step draws
#: stay paired across motion/arrival settings (see DESIGN.md §10).
TARGET_STREAM = register_stream("TARGET_STREAM", 0x7A26E7)

#: The four axis directions shared by drift and lazy-walk motion, in the
#: same N/E/S/W order as the walker engines' step tables.
MOTION_DIR_X = np.array([0, 1, 0, -1], dtype=np.int64)
MOTION_DIR_Y = np.array([1, 0, -1, 0], dtype=np.int64)

_MOTIONS = ("static", "drift", "walk")
_ARRIVALS = ("present", "geometric")


@dataclass(frozen=True)
class World:
    """An instance of the search problem: a treasure offset from the source.

    ``treasure`` is the target node ``tau``; ``distance`` is ``D = d(s, tau)``.
    """

    treasure: Point

    def __post_init__(self) -> None:
        if self.treasure == SOURCE:
            raise ValueError("treasure must not be placed on the source")

    @property
    def distance(self) -> int:
        """``D``, the hop distance from the source to the treasure."""
        return l1_norm(self.treasure[0], self.treasure[1])

    @property
    def source(self) -> Point:
        return SOURCE


@dataclass(frozen=True)
class WorldSpec:
    """A declarative world process, serialisable and hashable.

    All-default fields mean "the paper's model" — one static target,
    present from ``t = 0``, detected with certainty; engines treat that
    case as exactly equivalent to passing no world spec at all (same code
    path, same random-number consumption, bitwise-identical output), the
    same structural guarantee :class:`repro.scenarios.ScenarioSpec` gives
    for its all-default case.
    """

    n_targets: int = 1
    motion: str = "static"
    motion_rate: float = 0.0
    arrival: str = "present"
    arrival_hazard: float = 0.0
    detection_prob: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "n_targets", int(self.n_targets))
        object.__setattr__(self, "motion", str(self.motion))
        object.__setattr__(self, "motion_rate", float(self.motion_rate))
        object.__setattr__(self, "arrival", str(self.arrival))
        object.__setattr__(
            self, "arrival_hazard", float(self.arrival_hazard)
        )
        object.__setattr__(
            self, "detection_prob", float(self.detection_prob)
        )
        if self.n_targets < 1:
            raise ValueError(f"n_targets must be >= 1, got {self.n_targets}")
        if self.motion not in _MOTIONS:
            raise ValueError(
                f"motion must be one of {_MOTIONS}, got {self.motion!r}"
            )
        if self.motion == "static":
            if self.motion_rate != 0.0:
                raise ValueError(
                    "motion_rate must be 0 for static motion, got "
                    f"{self.motion_rate}"
                )
        elif not 0.0 < self.motion_rate <= 1.0:
            raise ValueError(
                f"{self.motion} motion needs motion_rate in (0, 1], got "
                f"{self.motion_rate}"
            )
        if self.arrival not in _ARRIVALS:
            raise ValueError(
                f"arrival must be one of {_ARRIVALS}, got {self.arrival!r}"
            )
        if self.arrival == "present":
            if self.arrival_hazard != 0.0:
                raise ValueError(
                    "arrival_hazard must be 0 for present arrival, got "
                    f"{self.arrival_hazard}"
                )
        elif not 0.0 < self.arrival_hazard <= 1.0:
            raise ValueError(
                "geometric arrival needs arrival_hazard in (0, 1], got "
                f"{self.arrival_hazard}"
            )
        if not 0.0 < self.detection_prob <= 1.0:
            raise ValueError(
                f"detection_prob must be in (0, 1], got {self.detection_prob}"
            )

    @property
    def is_default(self) -> bool:
        """Whether this world is the paper's static single-target model."""
        return (
            self.n_targets == 1
            and self.motion == "static"
            and self.arrival == "present"
            and self.detection_prob == 1.0
        )

    @property
    def is_static(self) -> bool:
        """Whether target positions are time-invariant."""
        return self.motion == "static"

    def describe(self) -> str:
        """Compact human-readable knob summary (only non-default knobs)."""
        parts = []
        if self.n_targets != 1:
            parts.append(f"n_targets={self.n_targets}")
        if self.motion != "static":
            parts.append(f"motion={self.motion}({self.motion_rate:g})")
        if self.arrival != "present":
            parts.append(f"arrival=geometric({self.arrival_hazard:g})")
        if self.detection_prob < 1:
            parts.append(f"detection_prob={self.detection_prob:g}")
        return ", ".join(parts) if parts else "default"

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-able form (the sweep-cache hashing basis)."""
        return {
            "n_targets": self.n_targets,
            "motion": self.motion,
            "motion_rate": self.motion_rate,
            "arrival": self.arrival,
            "arrival_hazard": self.arrival_hazard,
            "detection_prob": self.detection_prob,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "WorldSpec":
        return cls(
            n_targets=int(data.get("n_targets", 1)),
            motion=str(data.get("motion", "static")),
            motion_rate=float(data.get("motion_rate", 0.0)),
            arrival=str(data.get("arrival", "present")),
            arrival_hazard=float(data.get("arrival_hazard", 0.0)),
            detection_prob=float(data.get("detection_prob", 1.0)),
        )


def resolve_world(world: Optional[WorldSpec]) -> Optional[WorldSpec]:
    """Canonicalise: a ``None`` or all-default world resolves to ``None``.

    Engines branch on the result — ``None`` means "take the exact legacy
    code path" — so the static single-target guarantee is structural
    rather than a property of careful arithmetic, mirroring
    :func:`repro.scenarios.resolve_scenario`.
    """
    if world is None:
        return None
    if not isinstance(world, WorldSpec):
        raise TypeError(
            f"world must be a WorldSpec or None, got {type(world).__name__}"
        )
    return None if world.is_default else world


def place_treasure(
    distance: int, placement: str = "corner", seed: SeedLike = None
) -> World:
    """Build a :class:`World` with the treasure at hop distance ``distance``.

    ``placement`` is one of ``"axis"`` (``(D, 0)``), ``"corner"`` (the
    spiral-last cell ``(0, -D)``), ``"offaxis"`` (spiral-late and away
    from the commuting axes — the experiments' adversarial stand-in) or
    ``"random"`` (uniform on the ring, drawn from the registered
    ``PLACEMENT_DRAW_STREAM``; a live ``Generator`` seed is consumed
    directly, so callers that manage their own stream keep doing so).
    """
    if distance < 1:
        raise ValueError(f"treasure distance must be >= 1, got {distance}")
    if placement == "axis":
        return World((distance, 0))
    if placement == "corner":
        return World((0, -distance))
    if placement == "offaxis":
        if distance == 1:
            return World((0, -1))
        return World((-1, -(distance - 1)))
    if placement == "random":
        if isinstance(seed, np.random.Generator):
            rng = seed
        else:
            rng = derive_rng(seed, PLACEMENT_DRAW_STREAM)
        x, y = sample_uniform_ring(rng, distance, 1)
        return World((int(x[0]), int(y[0])))
    raise ValueError(f"unknown placement {placement!r}")


def place_targets(
    distance: int,
    placement: str = "corner",
    n_targets: int = 1,
    seed: SeedLike = None,
) -> np.ndarray:
    """Initial positions for ``n_targets`` targets, shape ``(n_targets, 2)``.

    Target 0 takes the requested ``placement`` exactly as
    :func:`place_treasure` would (so single-target worlds reduce to the
    legacy placement); every extra target is uniform on the same ring,
    drawn from its own ``derive_rng(seed, PLACEMENT_DRAW_STREAM, j)``
    stream so target ``j``'s position is independent of ``n_targets``.
    """
    if n_targets < 1:
        raise ValueError(f"n_targets must be >= 1, got {n_targets}")
    first = place_treasure(distance, placement, seed=seed).treasure
    targets = np.empty((n_targets, 2), dtype=np.int64)
    targets[0, 0] = first[0]
    targets[0, 1] = first[1]
    for j in range(1, n_targets):
        rng = derive_rng(seed, PLACEMENT_DRAW_STREAM, j)
        x, y = sample_uniform_ring(rng, distance, 1)
        targets[j, 0] = int(x[0])
        targets[j, 1] = int(y[0])
    return targets


def initial_targets(
    world: Union[World, np.ndarray, Tuple], spec: WorldSpec
) -> np.ndarray:
    """Normalise an engine's ``world`` argument to ``(n_targets, 2)`` int64.

    Dynamic-world engine entry points accept either a legacy
    :class:`World` (single target) or an array/sequence of initial target
    positions; the count must match ``spec.n_targets`` and no target may
    start on the source.
    """
    if isinstance(world, World):
        targets = np.array([world.treasure], dtype=np.int64)
    else:
        targets = np.asarray(world, dtype=np.int64)
        if targets.ndim == 1 and targets.shape == (2,):
            targets = targets[None, :]
    if targets.ndim != 2 or targets.shape[1] != 2:
        raise ValueError(
            f"targets must have shape (n_targets, 2), got {targets.shape}"
        )
    if targets.shape[0] != spec.n_targets:
        raise ValueError(
            f"world has {targets.shape[0]} targets but the WorldSpec "
            f"declares n_targets={spec.n_targets}"
        )
    if np.any((targets[:, 0] == 0) & (targets[:, 1] == 0)):
        raise ValueError("no target may start on the source")
    return targets


class TargetTrack:
    """Per-trial dynamic target state, advanced in closed form.

    Holds the positions of ``spec.n_targets`` targets for ``trials``
    independent trials and answers position queries at per-trial
    non-decreasing times (each engine queries a trial at a clock that only
    grows: the earliest active-agent clock per phase for the excursion
    kernel, the chunk start for the walker engines).  Motion never steps
    the grid: ``drift`` is a pure closed form of the query time, and
    ``walk`` advances a window of ``dt`` time units with one
    ``Binomial(dt, rate)`` draw for the step count plus one multinomial
    for the direction split.  All randomness comes from the dedicated
    ``motion_rng`` (the ``TARGET_STREAM`` derivation), so the searcher's
    own draws stay paired across world settings.
    """

    def __init__(
        self,
        spec: WorldSpec,
        targets0: np.ndarray,
        trials: int,
        motion_rng: np.random.Generator,
    ) -> None:
        self.spec = spec
        self.trials = trials
        self.n = spec.n_targets
        base = np.broadcast_to(targets0[None, :, :], (trials, self.n, 2))
        self._base = None
        self._drift = None
        self._pos = None
        self._time = None
        if spec.motion == "drift":
            dirs = motion_rng.integers(0, 4, size=(trials, self.n))
            self._drift = np.stack(
                [MOTION_DIR_X[dirs], MOTION_DIR_Y[dirs]], axis=-1
            )
            self._base = np.array(base, dtype=np.int64)
        else:
            self._pos = np.array(base, dtype=np.int64)
            if spec.motion == "walk":
                self._time = np.zeros(trials, dtype=np.int64)
        if spec.arrival == "geometric":
            self.arrival = motion_rng.geometric(
                spec.arrival_hazard, size=(trials, self.n)
            ).astype(np.float64)
        else:
            self.arrival = np.zeros((trials, self.n), dtype=np.float64)
        self._rng = motion_rng

    def positions(self, query: np.ndarray) -> np.ndarray:
        """Target positions ``(trials, n_targets, 2)`` at per-trial times.

        ``query`` is a ``(trials,)`` float array of wall-clock times,
        non-decreasing per trial across calls (non-advancing or stale
        queries are no-ops for the stateful ``walk`` motion).
        """
        t = np.floor(
            np.maximum(np.where(np.isfinite(query), query, 0.0), 0.0)
        ).astype(np.int64)
        if self.spec.motion == "static":
            return self._pos
        if self.spec.motion == "drift":
            steps = np.floor(
                self.spec.motion_rate * t.astype(np.float64)
            ).astype(np.int64)
            return self._base + steps[:, None, None] * self._drift
        dt = np.maximum(t - self._time, 0)
        if np.any(dt > 0):
            counts = self._rng.binomial(
                np.broadcast_to(dt[:, None], (self.trials, self.n)),
                self.spec.motion_rate,
            )
            splits = self._rng.multinomial(counts.reshape(-1), [0.25] * 4)
            self._pos[:, :, 0] += (splits @ MOTION_DIR_X).reshape(
                self.trials, self.n
            )
            self._pos[:, :, 1] += (splits @ MOTION_DIR_Y).reshape(
                self.trials, self.n
            )
            np.maximum(self._time, t, out=self._time)
        return self._pos

    def positions_at(self, time: float) -> np.ndarray:
        """Positions with every trial advanced to the same wall-clock time."""
        return self.positions(np.full(self.trials, float(time)))


@dataclass(frozen=True)
class Result:
    """Outcome of one simulated search run.

    ``time`` is the first time at which any agent stands on the treasure
    (``math.inf``/``np.inf`` when the run was truncated before a find);
    ``finder`` identifies the finding agent when known; ``steps_simulated``
    records the total number of steps actually executed across all agents
    (early stops and pruning make this smaller than ``k * horizon``).
    ``meta`` is deep-copied on construction, so two results never alias
    one mapping and callers may mutate their argument afterwards.
    """

    time: float
    found: bool
    finder: Optional[int] = None
    steps_simulated: Optional[int] = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.found and not np.isfinite(self.time):
            raise ValueError("found results must carry a finite time")
        object.__setattr__(self, "meta", copy.deepcopy(dict(self.meta)))
