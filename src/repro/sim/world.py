"""The search world: source node, treasure placement, run results.

The paper's setting (Section 2): all ``k`` agents start at a source node
``s`` of ``Z^2``; an adversary places the treasure at a target node ``tau``
at distance ``D = d(s, tau)``, unknown to the agents.  Everything is
translation invariant, so the source is pinned at the origin and a world is
fully described by the treasure offset.

Placement helpers cover the three placements used across the experiments:

* ``axis`` — ``(D, 0)``: a generic placement;
* ``corner`` — the cell of distance ``D`` that the canonical spiral visits
  *last* (``(0, -D)``), the worst case for spiral-based local search;
* ``offaxis`` — ``(-1, -(D-1))``: spiral-late *and* off both coordinate
  axes.  Excursion algorithms walk deterministic x-first Manhattan legs,
  so the two axes are "commuting highways" that get incidentally covered;
  an adversary avoids them.  This is the default adversarial stand-in for
  the experiments;
* ``random`` — uniform on the ring of radius ``D``.

True adversarial (argmin visit-probability) placement is provided by
:mod:`repro.analysis.lower_bounds`, which needs executions to estimate the
visit-probability map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..core.geometry import l1_norm, sample_uniform_ring
from .rng import SeedLike, make_rng

__all__ = ["World", "Result", "place_treasure"]

Point = Tuple[int, int]

SOURCE: Point = (0, 0)


@dataclass(frozen=True)
class World:
    """An instance of the search problem: a treasure offset from the source.

    ``treasure`` is the target node ``tau``; ``distance`` is ``D = d(s, tau)``.
    """

    treasure: Point

    def __post_init__(self) -> None:
        if self.treasure == SOURCE:
            raise ValueError("treasure must not be placed on the source")

    @property
    def distance(self) -> int:
        """``D``, the hop distance from the source to the treasure."""
        return l1_norm(self.treasure[0], self.treasure[1])

    @property
    def source(self) -> Point:
        return SOURCE


def place_treasure(
    distance: int, placement: str = "corner", seed: SeedLike = None
) -> World:
    """Build a :class:`World` with the treasure at hop distance ``distance``.

    ``placement`` is one of ``"axis"`` (``(D, 0)``), ``"corner"`` (the
    spiral-last cell ``(0, -D)``), ``"offaxis"`` (spiral-late and away
    from the commuting axes — the experiments' adversarial stand-in) or
    ``"random"`` (uniform on the ring).
    """
    if distance < 1:
        raise ValueError(f"treasure distance must be >= 1, got {distance}")
    if placement == "axis":
        return World((distance, 0))
    if placement == "corner":
        return World((0, -distance))
    if placement == "offaxis":
        if distance == 1:
            return World((0, -1))
        return World((-1, -(distance - 1)))
    if placement == "random":
        rng = make_rng(seed)
        x, y = sample_uniform_ring(rng, distance, 1)
        return World((int(x[0]), int(y[0])))
    raise ValueError(f"unknown placement {placement!r}")


@dataclass(frozen=True)
class Result:
    """Outcome of one simulated search run.

    ``time`` is the first time at which any agent stands on the treasure
    (``math.inf``/``np.inf`` when the run was truncated before a find);
    ``finder`` identifies the finding agent when known; ``steps_simulated``
    records the total number of steps actually executed across all agents
    (early stops and pruning make this smaller than ``k * horizon``).
    """

    time: float
    found: bool
    finder: Optional[int] = None
    steps_simulated: Optional[int] = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.found and not np.isfinite(self.time):
            raise ValueError("found results must carry a finite time")
