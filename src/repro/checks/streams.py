"""Rule R003: every ``*_STREAM`` tag is registered and globally unique.

The tagged derivation scheme in :mod:`repro.sim.rng` partitions the
seed-derivation space by stream constants.  Two constants with equal
values alias their namespaces — the statistical failure mode behind
PR 2's seed-aliasing bug, where every E7 baseline trial replayed the
same stream.  The runtime registry (:mod:`repro.checks.registry`)
rejects collisions at import; this scan enforces the same contract
statically, across *all* files, including code paths no test imports.

The contract a ``*_STREAM`` assignment must satisfy::

    FOO_STREAM = register_stream("FOO_STREAM", 0xF00)

* the registered name string equals the assigned variable name;
* the tag is an integer literal (greppable, diffable, no computed tags);
* no other ``*_STREAM`` constant anywhere in the tree carries the same
  value, and no name is declared in two places.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Tuple

from .findings import Finding
from .lint import iter_python_files

__all__ = ["scan_streams", "scan_stream_files"]

_STREAM_NAME = re.compile(r"^[A-Z][A-Z0-9_]*_STREAM$")
_ALLOW_MARK = "repro: allow(R003)"


def _assigned_stream_names(node: ast.AST) -> List[str]:
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        targets = [node.target]
    names = []
    for target in targets:
        if isinstance(target, ast.Name) and _STREAM_NAME.match(target.id):
            names.append(target.id)
    return names


def _register_call_parts(
    value: ast.expr,
) -> Optional[Tuple[Optional[str], Optional[int]]]:
    """``("FOO_STREAM", 0xF00)`` parts of a register_stream call, if any.

    Either element is ``None`` when the corresponding argument is not the
    required literal form.
    """
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    func_name = (
        func.id
        if isinstance(func, ast.Name)
        else func.attr if isinstance(func, ast.Attribute) else None
    )
    if func_name != "register_stream":
        return None
    name_literal: Optional[str] = None
    tag_literal: Optional[int] = None
    if len(value.args) >= 1 and isinstance(value.args[0], ast.Constant):
        constant = value.args[0].value
        if isinstance(constant, str):
            name_literal = constant
    if len(value.args) >= 2 and isinstance(value.args[1], ast.Constant):
        constant = value.args[1].value
        if isinstance(constant, int) and not isinstance(constant, bool):
            tag_literal = constant
    return name_literal, tag_literal


def scan_stream_files(paths: Sequence[str]) -> List[Finding]:
    """Scan explicit files for R003 violations."""
    findings: List[Finding] = []
    #: tag value -> (path, line, stream name) of its first declaration.
    by_value: Dict[int, Tuple[str, int, str]] = {}
    #: stream name -> (path, line) of its first declaration.
    by_name: Dict[str, Tuple[str, int]] = {}

    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        try:
            tree = ast.parse(text, filename=path)
        except SyntaxError:
            continue  # lint_file already reports R000 for this
        lines = text.splitlines()
        for node in ast.walk(tree):
            names = _assigned_stream_names(node)
            if not names:
                continue
            line = getattr(node, "lineno", 0)
            if 1 <= line <= len(lines) and _ALLOW_MARK in lines[line - 1]:
                continue
            col = getattr(node, "col_offset", 0)
            value = node.value  # type: ignore[attr-defined]
            parts = _register_call_parts(value)
            for name in names:
                tag: Optional[int] = None
                if parts is None:
                    if isinstance(value, ast.Constant) and isinstance(
                        value.value, int
                    ):
                        tag = value.value
                        findings.append(
                            Finding(
                                path=path,
                                line=line,
                                col=col,
                                rule="R003",
                                message=(
                                    f"stream constant {name} assigned a bare "
                                    f"literal; declare it via "
                                    f'register_stream("{name}", {tag:#x}) so '
                                    f"uniqueness is enforced"
                                ),
                            )
                        )
                    else:
                        findings.append(
                            Finding(
                                path=path,
                                line=line,
                                col=col,
                                rule="R003",
                                message=(
                                    f"stream constant {name} must be declared "
                                    f"as register_stream(\"{name}\", "
                                    f"<int literal>)"
                                ),
                            )
                        )
                else:
                    name_literal, tag = parts
                    if name_literal != name:
                        findings.append(
                            Finding(
                                path=path,
                                line=line,
                                col=col,
                                rule="R003",
                                message=(
                                    f"stream constant {name} registered under "
                                    f"mismatched name {name_literal!r}; the "
                                    f"registered name must equal the assigned "
                                    f"name"
                                ),
                            )
                        )
                    if tag is None:
                        findings.append(
                            Finding(
                                path=path,
                                line=line,
                                col=col,
                                rule="R003",
                                message=(
                                    f"stream constant {name} must register an "
                                    f"integer literal tag (computed tags are "
                                    f"not diffable)"
                                ),
                            )
                        )

                prior_name = by_name.get(name)
                if prior_name is not None:
                    findings.append(
                        Finding(
                            path=path,
                            line=line,
                            col=col,
                            rule="R003",
                            message=(
                                f"stream constant {name} already declared at "
                                f"{prior_name[0]}:{prior_name[1]}; declare "
                                f"each stream once and import it"
                            ),
                        )
                    )
                else:
                    by_name[name] = (path, line)

                if tag is not None:
                    prior = by_value.get(tag)
                    if prior is not None and prior[2] != name:
                        findings.append(
                            Finding(
                                path=path,
                                line=line,
                                col=col,
                                rule="R003",
                                message=(
                                    f"stream tag {tag:#x} of {name} collides "
                                    f"with {prior[2]} at {prior[0]}:{prior[1]}"
                                    f"; derivation namespaces must be "
                                    f"globally disjoint"
                                ),
                            )
                        )
                    elif prior is None:
                        by_value[tag] = (path, line, name)
    return findings


def scan_streams(root: str, exclude: Sequence[str] = ()) -> List[Finding]:
    """Scan every Python file under ``root`` for R003 violations."""
    return scan_stream_files(iter_python_files(root, exclude))
