"""Central registry of RNG derivation-stream tags (rule R003's anchor).

Every tagged derivation namespace in the codebase — ``BLOCK_STREAM``,
``SCENARIO_STREAM``, ``GROUP_CHUNK_STREAM``, ``PLACEMENT_STREAM``, and any
future one — is declared as::

    FOO_STREAM = register_stream("FOO_STREAM", 0xF00)

so the assignment *is* the registration.  That buys two guarantees:

* at import time, :func:`register_stream` rejects a tag value that some
  other stream already claimed — two namespaces can never silently alias
  (the bug class behind PR 2's seed aliasing, where every E7 baseline
  trial was an identical replica);
* statically, the ``repro.checks`` lint pass (rule R003) scans for
  ``*_STREAM`` assignments and fails any that bypass this call, carry a
  mismatched name, or collide on value — so the contract holds even for
  code paths no test happens to execute.

This module is intentionally dependency-free (stdlib only): it is
imported by ``repro.sim.rng`` and must never import back into the
simulation stack.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["STREAM_REGISTRY", "register_stream", "registered_streams", "stream_name"]

#: name -> tag of every registered derivation stream.  Mutated only by
#: :func:`register_stream`; read via :func:`registered_streams`.
STREAM_REGISTRY: Dict[str, int] = {}


def register_stream(name: str, tag: int) -> int:
    """Register the derivation-stream tag ``name`` and return ``tag``.

    Idempotent for an identical ``(name, tag)`` pair (module reloads);
    raises ``ValueError`` when ``name`` is re-registered with a different
    tag or when ``tag`` is already claimed by another stream.
    """
    if not isinstance(tag, int) or isinstance(tag, bool):
        raise TypeError(f"stream tag must be a plain int, got {tag!r}")
    existing = STREAM_REGISTRY.get(name)
    if existing is not None:
        if existing != tag:
            raise ValueError(
                f"stream {name!r} re-registered with tag {tag:#x} "
                f"(already {existing:#x})"
            )
        return tag
    for other, value in STREAM_REGISTRY.items():
        if value == tag:
            raise ValueError(
                f"stream tag collision: {name!r} and {other!r} both claim "
                f"{tag:#x}; derivation namespaces must be globally disjoint"
            )
    STREAM_REGISTRY[name] = tag
    return tag


def registered_streams() -> Dict[str, int]:
    """A snapshot copy of the registry (name -> tag)."""
    return dict(STREAM_REGISTRY)


def stream_name(tag: int) -> Optional[str]:
    """The registered name of ``tag``, or ``None`` for unknown values."""
    for name, value in STREAM_REGISTRY.items():
        if value == tag:
            return name
    return None
