"""AST lint pass for the determinism contract (rules R001, R002, R004).

The repo's load-bearing invariant — every parallel/adaptive/scenario
path is bitwise identical to its serial counterpart — survives only as
long as every random draw flows from the spec's root seed through the
tagged derivation streams of :mod:`repro.sim.rng`.  These rules reject
the source patterns that break that chain *before* a property test has
to catch the (often statistically invisible) consequence:

* **R001 — no ambient randomness outside ``sim/rng.py``.**  Calls to the
  global ``numpy.random`` draw functions (``np.random.normal``,
  ``np.random.seed``, ...), the stdlib ``random`` module, ``os.urandom``
  / ``secrets`` / ``uuid``, and wall-clock values
  (``time.time()``, ``datetime.now()``) fed into seed derivation.  Any
  of these makes results depend on process history instead of the spec.
* **R002 — engine/runner Generators must be seeded from derived
  values.**  In engine and runner code (``sim/``, ``sweep/``), a
  ``default_rng()`` / ``make_rng()`` call with no seed (or an explicit
  ``None``) draws fresh OS entropy: bitwise-unreproducible by
  construction.
* **R004 — worker/executor state must not flow into seed derivation or
  hashed spec fields.**  Passing ``workers``/``backend``/pool objects —
  or, since the remote backend, ``hosts``/``port``/endpoint values — to
  ``derive_seed``/``derive_rng``/``spawn_seeds`` or into ``SweepSpec``
  field values makes *results* depend on execution *layout* — the exact
  inversion of PR 5's layout-is-spec-only rule, and the way a "2x faster
  on 8 cores" (or "same sweep, different host list") change silently
  forks the cache.

A finding on a line that genuinely needs the pattern (a fixture, a
deliberate nondeterminism probe) is suppressed with a trailing
``# repro: allow(R00x)`` comment.  Rule R003 (stream-tag registration)
is cross-file and lives in :mod:`repro.checks.streams`; R005 (spec hash
manifest) in :mod:`repro.checks.manifest`.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Sequence

from .findings import Finding

__all__ = ["lint_file", "lint_tree", "iter_python_files"]

#: numpy.random attributes that are seedable constructors/types rather
#: than draws from the ambient global generator.
_NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Functions that consume a seed-like argument (R001's wall-clock check
#: inspects their argument expressions).
_SEED_CONSUMERS = frozenset(
    {
        "make_rng",
        "derive_rng",
        "derive_seed",
        "spawn_seeds",
        "spawn_rngs",
        "default_rng",
        "SeedSequence",
    }
)

#: Seed-derivation entry points guarded by R004.
_SEED_DERIVERS = frozenset(
    {"derive_seed", "derive_rng", "spawn_seeds", "spawn_rngs"}
)

#: Wall-clock / entropy calls that must never feed a seed expression.
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "os.urandom",
        "os.getrandom",
    }
)

#: Identifiers that smell like execution layout (R004): none of these
#: may appear inside a seed-derivation argument or a SweepSpec field.
#: The second group covers the remote backend: which hosts a sweep is
#: sharded across is layout too, and a host list in a spec would fork
#: the cache per cluster.  The third group covers observability
#: (``repro.obs``): traces, metrics, and spans describe *how* a run
#: executed — wall-clock, scheduling, worker identity — and feeding any
#: of it back into seeds or spec fields would make results depend on
#: machine speed and load.  The fourth group covers fault tolerance
#: (``repro.faults``): fault plans, retry/backoff state, degradation
#: tiers, and checkpoint/resume bookkeeping describe what *failed*
#: during a run — seeding from any of it would fork results between
#: faulted and clean executions, the exact dependence the chaos-parity
#: suite exists to rule out.
_TAINTED_NAMES = frozenset(
    {
        "workers",
        "n_workers",
        "num_workers",
        "nworkers",
        "worker_count",
        "max_workers",
        "backend",
        "executor",
        "pool",
        "hosts",
        "host",
        "hostname",
        "port",
        "ports",
        "address",
        "addresses",
        "endpoint",
        "endpoints",
        "slots",
        "trace",
        "tracer",
        "traces",
        "metrics",
        "metric",
        "span",
        "spans",
        "sink",
        "sinks",
        "bus",
        "event_bus",
        "obs",
        "profiler",
        "utilization",
        "fault",
        "faults",
        "fault_plan",
        "injector",
        "degrade",
        "degraded",
        "quarantine",
        "quarantined",
        "resume",
        "resumed",
        "checkpoint",
        "journal",
        "retry",
        "retries",
        "backoff",
    }
)

#: Directories (relative to the package root) whose Generator
#: constructions R002 polices.
_ENGINE_SCOPES = ("sim/", "sweep/")

#: The one module allowed to touch numpy's RNG machinery directly.
_RNG_MODULE = "sim/rng.py"

_ALLOW_MARK = "repro: allow("


def iter_python_files(root: str, exclude: Sequence[str] = ()) -> List[str]:
    """All ``.py`` files under ``root``, sorted, minus excluded subpaths.

    ``exclude`` entries are path fragments matched against the
    root-relative POSIX path (``"fixtures/checks"`` skips the seeded
    violation corpus).
    """
    found: List[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        rel_dir = os.path.relpath(dirpath, root).replace(os.sep, "/")
        rel_dir = "" if rel_dir == "." else rel_dir + "/"
        if any(fragment in rel_dir for fragment in exclude):
            dirnames[:] = []
            continue
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            rel = rel_dir + name
            if any(fragment in rel for fragment in exclude):
                continue
            found.append(os.path.join(dirpath, name))
    return found


def _relative_path(path: str) -> str:
    """Best-effort path relative to the ``repro`` package root.

    Rule scoping (R002's engine dirs, the ``sim/rng.py`` exemption) keys
    off this; files outside the package fall back to their basename,
    which disables the directory-scoped rules — exactly right for test
    and example code.
    """
    parts = os.path.abspath(path).replace(os.sep, "/").split("/")
    for anchor in range(len(parts) - 1, -1, -1):
        if parts[anchor] == "repro":
            return "/".join(parts[anchor + 1:])
    return parts[-1]


class _Aliases:
    """Import-resolved canonical names for the current module."""

    def __init__(self) -> None:
        #: local name -> canonical dotted prefix ("np" -> "numpy").
        self.names: Dict[str, str] = {}

    def collect(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.names[local] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.names:
                module = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    if node.level:
                        # Relative import: canonicalise only the last
                        # module segment ("..sim.rng" -> "sim.rng").
                        self.names[local] = f"{module}.{alias.name}" if module else alias.name
                    else:
                        self.names[local] = f"{module}.{alias.name}"

    def dotted(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a call target, or ``None``."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self.names.get(node.id, node.id))
        return ".".join(reversed(parts))


def _last_segment(dotted: str) -> str:
    return dotted.rsplit(".", 1)[-1]


def _seed_argument_nodes(call: ast.Call) -> Iterable[ast.AST]:
    for arg in call.args:
        yield arg
    for keyword in call.keywords:
        yield keyword.value


class _Linter(ast.NodeVisitor):
    def __init__(
        self,
        path: str,
        relpath: str,
        aliases: _Aliases,
        source_lines: Sequence[str],
    ) -> None:
        self.path = path
        self.relpath = relpath
        self.aliases = aliases
        self.source_lines = source_lines
        self.findings: List[Finding] = []
        self.is_rng_module = relpath.endswith(_RNG_MODULE)
        self.in_engine_scope = relpath.startswith(_ENGINE_SCOPES)

    # -- plumbing ------------------------------------------------------
    def _suppressed(self, node: ast.AST, rule: str) -> bool:
        line = getattr(node, "lineno", 0)
        if not 1 <= line <= len(self.source_lines):
            return False
        text = self.source_lines[line - 1]
        return f"{_ALLOW_MARK}{rule})" in text

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        if self._suppressed(node, rule):
            return
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )

    # -- rules ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.aliases.dotted(node.func)
        if dotted is not None:
            if not self.is_rng_module:
                self._check_ambient(node, dotted)
                self._check_fresh_entropy(node, dotted)
            self._check_layout_taint(node, dotted)
        self.generic_visit(node)

    def _check_ambient(self, node: ast.Call, dotted: str) -> None:
        """R001: draws from process-global or OS randomness."""
        if (
            dotted.startswith("numpy.random.")
            and _last_segment(dotted) not in _NP_RANDOM_ALLOWED
        ):
            self._report(
                node,
                "R001",
                f"ambient numpy.random draw `{dotted}` — route randomness "
                f"through repro.sim.rng (make_rng/derive_rng)",
            )
        elif dotted == "random" or dotted.startswith("random."):
            self._report(
                node,
                "R001",
                f"stdlib random call `{dotted}` — route randomness through "
                f"repro.sim.rng",
            )
        elif dotted.startswith(("secrets.", "uuid.uuid")) or dotted in (
            "os.urandom",
            "os.getrandom",
        ):
            self._report(
                node,
                "R001",
                f"OS entropy call `{dotted}` has no place in a "
                f"deterministic simulation",
            )
        if _last_segment(dotted) in _SEED_CONSUMERS:
            for argument in _seed_argument_nodes(node):
                for sub in ast.walk(argument):
                    if not isinstance(sub, ast.Call):
                        continue
                    sub_dotted = self.aliases.dotted(sub.func)
                    if sub_dotted in _CLOCK_CALLS:
                        self._report(
                            node,
                            "R001",
                            f"seed derived from wall clock/OS entropy "
                            f"(`{sub_dotted}` inside `{dotted}(...)`): "
                            f"results would depend on when the run started",
                        )

    def _check_fresh_entropy(self, node: ast.Call, dotted: str) -> None:
        """R002: unseeded Generator construction in engine/runner code."""
        if not self.in_engine_scope:
            return
        last = _last_segment(dotted)
        if last not in ("default_rng", "make_rng"):
            return
        if last == "default_rng" and not (
            dotted == "default_rng" or dotted.startswith("numpy.random.")
        ):
            return
        seed_nodes = list(node.args[:1]) + [
            kw.value for kw in node.keywords if kw.arg == "seed"
        ]
        if not seed_nodes:
            self._report(
                node,
                "R002",
                f"`{dotted}()` without a seed draws fresh OS entropy in "
                f"engine/runner code; feed it a "
                f"derive_seed/derive_rng/spawn_seeds-derived value",
            )
            return
        first = seed_nodes[0]
        if isinstance(first, ast.Constant) and first.value is None:
            self._report(
                node,
                "R002",
                f"`{dotted}(None)` is fresh OS entropy in engine/runner "
                f"code; feed it a derived seed",
            )

    def _check_layout_taint(self, node: ast.Call, dotted: str) -> None:
        """R004: execution layout flowing into seeds or spec fields."""
        last = _last_segment(dotted)
        if last in _SEED_DERIVERS:
            target = "seed derivation"
        elif last == "SweepSpec":
            target = "hashed SweepSpec field"
        else:
            return
        for argument in _seed_argument_nodes(node):
            for sub in ast.walk(argument):
                name: Optional[str] = None
                if isinstance(sub, ast.Name) and sub.id in _TAINTED_NAMES:
                    name = sub.id
                elif (
                    isinstance(sub, ast.Attribute)
                    and sub.attr in _TAINTED_NAMES
                ):
                    name = sub.attr
                if name is not None:
                    self._report(
                        node,
                        "R004",
                        f"executor/worker state `{name}` flows into "
                        f"{target} via `{dotted}(...)`: results must "
                        f"depend on the spec alone, never the execution "
                        f"layout (see DESIGN.md §8)",
                    )


def lint_file(
    path: str,
    text: Optional[str] = None,
    relpath: Optional[str] = None,
) -> List[Finding]:
    """Lint one file; ``relpath`` overrides the rule-scoping path.

    Passing an explicit ``relpath`` (e.g. ``"sim/fake_engine.py"``) lets
    fixture tests exercise directory-scoped rules on files that live
    elsewhere.
    """
    if text is None:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as error:
        return [
            Finding(
                path=path,
                line=error.lineno or 0,
                col=error.offset or 0,
                rule="R000",
                message=f"syntax error: {error.msg}",
            )
        ]
    aliases = _Aliases()
    aliases.collect(tree)
    linter = _Linter(
        path,
        relpath if relpath is not None else _relative_path(path),
        aliases,
        text.splitlines(),
    )
    linter.visit(tree)
    return linter.findings


def lint_tree(
    root: str, exclude: Sequence[str] = ()
) -> List[Finding]:
    """Lint every Python file under ``root`` (R001/R002/R004)."""
    findings: List[Finding] = []
    for path in iter_python_files(root, exclude):
        findings.extend(lint_file(path))
    return findings
