"""Static and runtime checks for the determinism contract.

``repro.checks`` is the enforcement arm of the repo's load-bearing
invariant (bitwise determinism; DESIGN.md §9 catalogues the rules):

* :mod:`repro.checks.lint` — AST rules R001 (no ambient randomness),
  R002 (no fresh entropy in engine/runner code), R004 (no worker/executor
  state in seeds or spec fields);
* :mod:`repro.checks.streams` — R003, the cross-file ``*_STREAM``
  registration/uniqueness scan, backed by the runtime
  :mod:`repro.checks.registry`;
* :mod:`repro.checks.manifest` — R005, the committed SweepSpec hash
  manifest (loaded lazily: it imports the sweep stack);
* :mod:`repro.checks.trace` — the ``REPRO_RNG_TRACE=1`` draw-order
  sanitizer that localizes parity failures to the first divergent
  (stream key, call index).

Import discipline: ``repro.sim.rng`` imports :mod:`repro.checks.trace`
and :mod:`repro.checks.registry`, so this package (and every module it
imports eagerly) must stay stdlib/numpy-only.  Anything that needs the
simulation or sweep stack is imported inside functions.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

from .findings import RULES, Finding, format_findings
from .lint import iter_python_files, lint_file, lint_tree
from .registry import (
    STREAM_REGISTRY,
    register_stream,
    registered_streams,
    stream_name,
)
from .streams import scan_stream_files, scan_streams
from . import trace

__all__ = [
    "RULES",
    "Finding",
    "format_findings",
    "lint_file",
    "lint_tree",
    "iter_python_files",
    "scan_streams",
    "scan_stream_files",
    "STREAM_REGISTRY",
    "register_stream",
    "registered_streams",
    "stream_name",
    "trace",
    "run_checks",
    "default_roots",
]

#: Path fragments excluded from tree scans: the seeded-violation fixture
#: corpus exists to make rules fire and must never fail the clean run.
DEFAULT_EXCLUDE = ("fixtures/checks",)


def default_roots() -> List[str]:
    """The trees ``repro-ants check`` lints by default.

    The installed package itself, plus — when running from a source
    checkout — the sibling ``tests``, ``examples`` and ``benchmarks``
    trees, so the contract also binds the code that *verifies* it.
    """
    package_root = os.path.dirname(os.path.abspath(__file__))
    package_root = os.path.dirname(package_root)  # src/repro
    roots = [package_root]
    repo_root = os.path.dirname(os.path.dirname(package_root))
    for sibling in ("tests", "examples", "benchmarks"):
        candidate = os.path.join(repo_root, sibling)
        if os.path.isdir(candidate):
            roots.append(candidate)
    return roots


def run_checks(
    roots: Optional[Sequence[str]] = None,
    *,
    exclude: Sequence[str] = DEFAULT_EXCLUDE,
    manifest_path: Optional[str] = None,
) -> List[Finding]:
    """Run every static rule (R001-R005) and return all findings.

    ``roots`` defaults to :func:`default_roots`; R003's uniqueness scan
    runs across all roots at once (stream tags are globally disjoint, not
    per-tree).  R005 checks the committed manifest at ``manifest_path``
    (default: the packaged ``spec_manifest.json``).
    """
    from .manifest import DEFAULT_MANIFEST_PATH, check_manifest

    if roots is None:
        roots = default_roots()
    findings: List[Finding] = []
    all_files: List[str] = []
    for root in roots:
        for path in iter_python_files(root, exclude):
            all_files.append(path)
            findings.extend(lint_file(path))
    findings.extend(scan_stream_files(all_files))
    findings.extend(
        check_manifest(
            manifest_path if manifest_path is not None else DEFAULT_MANIFEST_PATH
        )
    )
    return sorted(findings)
