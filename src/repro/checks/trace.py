"""Runtime RNG draw-order sanitizer (``REPRO_RNG_TRACE=1``).

The repo's bitwise-determinism contract says that *which* random streams
are constructed, *in what per-cell order*, and *from which derivation
keys* is a pure function of the sweep spec.  The end-to-end parity tests
assert the consequence (identical result arrays); this module records the
cause, so a violation is reported as "the first divergent stream" instead
of a far-away bitwise diff.

With ``REPRO_RNG_TRACE=1`` in the environment, every ``Generator``
construction and seed derivation that goes through
:mod:`repro.sim.rng`'s single construction point appends a
:class:`TraceEvent` to a per-process buffer: the derivation *kind*
(``derive_seed``, ``make_rng``, ...), the structured key words, the
enclosing :func:`trace_scope` labels (the sweep runner tags each trial
block with its ``(cell, block)``), and a *fingerprint* — the first
``SeedSequence`` state word, i.e. the identity of the stream about to be
drawn from.  Fingerprinting is pure (``SeedSequence.generate_state`` is
a stateless hash), so tracing never perturbs the streams it observes.

Two traces are compared per *scope* (the per-``(cell, block)``
draw-order fingerprint of the module docstring's contract): within a
scope, event sequences must match exactly; across scopes, order is
free — executors legitimately reorder whole blocks, and the runner's
fold step guarantees that reordering is invisible.  The scheduler's own
derivations (spawn chains, chunk seeds) carry the empty scope and form
the ``()`` group, which is how serial and process runs are compared: the
parent-side derivation log must be identical even though worker-side
events live in other processes.

This module is import-light on purpose: ``repro.sim.rng`` imports it, so
it must never import the simulation stack back.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .registry import stream_name

__all__ = [
    "ENV_VAR",
    "TraceEvent",
    "TraceDivergence",
    "enabled",
    "trace_scope",
    "record",
    "snapshot",
    "clear",
    "fingerprints",
    "first_divergence",
    "assert_traces_match",
]

#: Environment switch: any value other than unset/empty/``0`` enables
#: tracing.  Read per call, so tests can flip it with ``monkeypatch``.
ENV_VAR = "REPRO_RNG_TRACE"

#: One scope label, e.g. ``("cell", (8, 2))`` or ``("block", 3)``.
ScopeItem = Tuple[str, object]
Scope = Tuple[ScopeItem, ...]

_events: List["TraceEvent"] = []
_scope_stack: List[ScopeItem] = []


def enabled() -> bool:
    """Is the sanitizer switched on (``REPRO_RNG_TRACE`` set)?"""
    return os.environ.get(ENV_VAR, "").strip() not in ("", "0")


@dataclass(frozen=True)
class TraceEvent:
    """One recorded RNG construction / seed derivation."""

    index: int  # call index within this process's trace buffer
    kind: str  # "make_rng" | "derive_rng" | "derive_seed" | ...
    key: Tuple[int, ...]  # structured derivation key (empty for raw seeds)
    scope: Scope  # enclosing trace_scope labels
    fingerprint: int  # first SeedSequence state word (stream identity)

    def describe(self) -> str:
        words = []
        for word in self.key:
            name = stream_name(word)
            words.append(name if name is not None else str(word))
        key = ", ".join(words)
        scope = ", ".join(f"{k}={v!r}" for k, v in self.scope) or "<scheduler>"
        return (
            f"{self.kind}({key}) [{scope}] fingerprint={self.fingerprint:#018x}"
        )

    def matches(self, other: "TraceEvent") -> bool:
        """Same derivation, ignoring buffer position."""
        return (
            self.kind == other.kind
            and self.key == other.key
            and self.fingerprint == other.fingerprint
        )


def record(kind: str, key: Sequence[int], seq: np.random.SeedSequence) -> None:
    """Append one event to the trace buffer (no-op unless enabled)."""
    if not enabled():
        return
    fingerprint = int(np.ravel(seq.generate_state(1, np.uint64))[0])
    _events.append(
        TraceEvent(
            index=len(_events),
            kind=kind,
            key=tuple(int(word) for word in key),
            scope=tuple(_scope_stack),
            fingerprint=fingerprint,
        )
    )


@contextmanager
def trace_scope(**labels: object) -> Iterator[None]:
    """Tag every event recorded inside with ``labels`` (e.g. cell/block).

    The sweep runner wraps each work unit in a scope, which is what turns
    the flat buffer into per-``(cell, block)`` draw-order fingerprints.
    Nesting composes; a disabled sanitizer makes this a cheap no-op.
    """
    if not enabled():
        yield
        return
    items = tuple(sorted(labels.items()))
    _scope_stack.extend(items)
    try:
        yield
    finally:
        del _scope_stack[len(_scope_stack) - len(items):]


def snapshot() -> Tuple[TraceEvent, ...]:
    """The trace recorded so far in this process."""
    return tuple(_events)


def clear() -> None:
    """Drop the recorded trace (start a fresh comparison window)."""
    _events.clear()


def fingerprints(
    events: Sequence[TraceEvent],
) -> Dict[Scope, Tuple[TraceEvent, ...]]:
    """Group a trace by scope, preserving within-scope order.

    The value sequences are the per-scope draw-order fingerprints; the
    empty-scope group ``()`` holds the scheduler-side derivations.
    """
    grouped: Dict[Scope, List[TraceEvent]] = {}
    for event in events:
        grouped.setdefault(event.scope, []).append(event)
    return {scope: tuple(seq) for scope, seq in grouped.items()}


@dataclass(frozen=True)
class TraceDivergence:
    """The first place two traces disagree."""

    scope: Scope
    call_index: int  # index within the scope's event sequence
    left: Optional[TraceEvent]  # None = left trace is missing this call
    right: Optional[TraceEvent]

    def describe(self) -> str:
        scope = ", ".join(f"{k}={v!r}" for k, v in self.scope) or "<scheduler>"
        left = self.left.describe() if self.left is not None else "<absent>"
        right = self.right.describe() if self.right is not None else "<absent>"
        return (
            f"first RNG divergence in scope [{scope}] at call index "
            f"{self.call_index}:\n  left:  {left}\n  right: {right}"
        )


def first_divergence(
    left: Sequence[TraceEvent],
    right: Sequence[TraceEvent],
    *,
    require_same_scopes: bool = True,
) -> Optional[TraceDivergence]:
    """The first mismatched (stream key, call index), or ``None``.

    Scopes are compared in deterministic (sorted) order; within a scope
    the event sequences must match element-wise.  With
    ``require_same_scopes=False``, scopes present in only one trace are
    ignored — useful when one side legitimately ran extra speculative
    blocks that the other side never collected.
    """
    grouped_left = fingerprints(left)
    grouped_right = fingerprints(right)
    scopes = set(grouped_left)
    if require_same_scopes:
        scopes |= set(grouped_right)
    else:
        scopes &= set(grouped_right)
    for scope in sorted(scopes, key=repr):
        seq_left = grouped_left.get(scope, ())
        seq_right = grouped_right.get(scope, ())
        for i in range(max(len(seq_left), len(seq_right))):
            event_left = seq_left[i] if i < len(seq_left) else None
            event_right = seq_right[i] if i < len(seq_right) else None
            if (
                event_left is None
                or event_right is None
                or not event_left.matches(event_right)
            ):
                return TraceDivergence(
                    scope=scope,
                    call_index=i,
                    left=event_left,
                    right=event_right,
                )
    return None


def assert_traces_match(
    left: Sequence[TraceEvent],
    right: Sequence[TraceEvent],
    *,
    require_same_scopes: bool = True,
) -> None:
    """Raise ``AssertionError`` naming the first divergent stream.

    The parity tests' entry point: on mismatch the error message carries
    the scope (cell/block), the call index within it, and both events'
    derivation keys — the localized form of "serial and parallel
    disagreed".
    """
    divergence = first_divergence(
        left, right, require_same_scopes=require_same_scopes
    )
    if divergence is not None:
        raise AssertionError(divergence.describe())
