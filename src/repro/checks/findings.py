"""The finding record shared by every determinism check.

A :class:`Finding` is one localized violation of the determinism
contract: which rule fired, where, and why.  Checks return lists of
findings rather than raising, so one ``repro-ants check`` run reports
every violation in the tree at once (the model is a compiler's error
list, not an assertion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

__all__ = ["RULES", "Finding", "format_findings"]

#: The determinism rule catalogue (see DESIGN.md §9 for the long form
#: and the historical bug each rule would have caught).
RULES: Dict[str, str] = {
    "R001": "no ambient randomness outside sim/rng.py",
    "R002": "engine/runner Generators must be seeded from derived values, "
    "not fresh entropy",
    "R003": "*_STREAM tags must be registered and globally unique",
    "R004": "worker/executor state must not flow into seed derivation or "
    "hashed spec fields",
    "R005": "SweepSpec identity must not drift without a version bump "
    "(hash manifest)",
}


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, pinned to a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def format_findings(findings: Sequence[Finding]) -> str:
    """The multi-line report ``repro-ants check`` prints."""
    lines = [finding.render() for finding in sorted(findings)]
    lines.append(
        f"{len(findings)} finding{'s' if len(findings) != 1 else ''}"
    )
    return "\n".join(lines)
