"""Rule R005: SweepSpec identity must not drift without a version bump.

The sweep cache keys on two content hashes: :meth:`SweepSpec.spec_hash`
(full spec identity — which results are wanted) and
:meth:`SweepSpec.data_hash` (block-stream identity — what the trial
blocks of a cell contain).  Any edit that changes either hash for an
existing spec silently orphans every cached result and — worse, the PR 5
bug class — any edit that *fails* to change the hash when execution
semantics changed makes stale cache entries masquerade as fresh results.

The contract: a spec-identity change is always *deliberate*, i.e. it
arrives together with a ``SPEC_VERSION`` / ``BLOCK_SCHEDULE_VERSION``
bump and a regenerated manifest.  This module pins the contract in a
committed JSON manifest holding, for a battery of canonical specs, the
exact ``spec_hash`` / ``data_hash`` values plus the hashed-field
partition (which ``to_dict`` / ``data_dict`` keys exist, and which
partition each belongs to).  ``repro-ants check`` recomputes everything
and reports any drift as an R005 finding; after a deliberate change,
``repro-ants check --fix-manifest`` re-pins.

Unlike its siblings this module imports the sweep stack, so
:mod:`repro.checks.__init__` loads it lazily — ``repro.sim.rng`` imports
``repro.checks.trace`` and must never pull the simulation stack back in
through the package.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Mapping

from .findings import Finding

__all__ = [
    "DEFAULT_MANIFEST_PATH",
    "canonical_specs",
    "build_manifest",
    "check_manifest",
    "write_manifest",
]

#: The committed manifest, next to this module.
DEFAULT_MANIFEST_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "spec_manifest.json"
)

_FIX_HINT = (
    "if the change is deliberate, bump SPEC_VERSION / "
    "BLOCK_SCHEDULE_VERSION as appropriate and run "
    "`repro-ants check --fix-manifest`"
)


def canonical_specs() -> Dict[str, object]:
    """The pinned spec battery, one per hashing-relevant code path.

    Covers: the plain fixed path, a chunk-splitting excursion spec (whose
    dict carries the ``fixed_chunking`` marker), a chunk-exempt walker
    spec with a horizon, a scenario'd spec, an adaptive-budget spec
    (whose dict carries the ``budget`` key), and a dynamic-world spec
    (whose dict carries the ``world`` key in both hash partitions).
    """
    from ..sweep.spec import SweepSpec

    return {
        "fixed_plain": SweepSpec(
            algorithm="uniform",
            distances=(4, 8, 16),
            ks=(1, 2, 4),
            trials=8,
            params={"eps": 0.5},
            seed=123,
        ),
        "fixed_chunked_excursion": SweepSpec(
            algorithm="nonuniform",
            distances=tuple(range(2, 22)),
            ks=(2,),
            trials=16,
            seed=7,
        ),
        "walker_horizon": SweepSpec(
            algorithm="random_walk",
            distances=tuple(range(2, 22)),
            ks=(1,),
            trials=8,
            horizon=500.0,
            seed=99,
        ),
        "scenario_faults": SweepSpec(
            algorithm="uniform",
            distances=(4, 8),
            ks=(2,),
            trials=8,
            seed=11,
            scenario={
                "crash_hazard": 0.001,
                "speed_spread": 0.5,
                "start_stagger": 2.0,
                "detection_prob": 0.9,
            },
        ),
        "adaptive_rel_ci": SweepSpec(
            algorithm="harmonic",
            distances=(4, 8),
            ks=(1, 2),
            trials=8,
            seed=42,
            budget={
                "kind": "target_rel_ci",
                "rel_ci": 0.1,
                "min_trials": 32,
                "max_trials": 256,
                "confidence": 0.95,
            },
        ),
        "dynamic_world": SweepSpec(
            algorithm="grid_belief",
            distances=(4, 8),
            ks=(2,),
            trials=8,
            seed=2012,
            horizon=2048.0,
            world={
                "n_targets": 2,
                "motion": "walk",
                "motion_rate": 0.1,
                "arrival": "geometric",
                "arrival_hazard": 0.001,
                "detection_prob": 0.9,
            },
        ),
    }


def build_manifest() -> Dict[str, object]:
    """Recompute the manifest from the live code."""
    from ..sweep.spec import BLOCK_SCHEDULE_VERSION, SPEC_VERSION

    specs: Dict[str, Dict[str, object]] = {}
    spec_fields: Dict[str, List[str]] = {}
    for name, spec in sorted(canonical_specs().items()):
        spec_keys = sorted(spec.to_dict())  # type: ignore[attr-defined]
        data_keys = sorted(spec.data_dict())  # type: ignore[attr-defined]
        partition = {
            key: (
                "spec+data"
                if key in data_keys
                else "spec"
            )
            for key in sorted(set(spec_keys) | set(data_keys))
        }
        for key in data_keys:
            if key not in spec_keys:
                partition[key] = "data"
        specs[name] = {
            "spec_hash": spec.spec_hash(),  # type: ignore[attr-defined]
            "data_hash": spec.data_hash(),  # type: ignore[attr-defined]
            "fields": partition,
        }
        for key, part in partition.items():
            spec_fields.setdefault(key, [])
            if part not in spec_fields[key]:
                spec_fields[key].append(part)
    return {
        "spec_version": SPEC_VERSION,
        "block_schedule_version": BLOCK_SCHEDULE_VERSION,
        "specs": specs,
    }


def _partition_findings(path: str, manifest: Mapping) -> List[Finding]:
    """Structural invariant: data fields ⊂ spec fields + version markers.

    ``data_dict`` may add its schedule-version marker, but any *other*
    data-only field would mean block-stream identity depends on something
    the full spec identity does not capture — a cache-key hole.
    """
    findings: List[Finding] = []
    for name, entry in sorted(manifest.get("specs", {}).items()):
        for key, part in sorted(entry.get("fields", {}).items()):
            if part == "data" and key not in ("block_schedule",):
                findings.append(
                    Finding(
                        path=path,
                        line=0,
                        col=0,
                        rule="R005",
                        message=(
                            f"spec {name!r}: field {key!r} is in the data "
                            f"hash but not the spec hash — block identity "
                            f"would depend on a knob the spec hash cannot "
                            f"see"
                        ),
                    )
                )
    return findings


def check_manifest(path: str = DEFAULT_MANIFEST_PATH) -> List[Finding]:
    """Compare the committed manifest against the live code (R005)."""
    current = build_manifest()
    findings = _partition_findings(path, current)
    if not os.path.exists(path):
        findings.append(
            Finding(
                path=path,
                line=0,
                col=0,
                rule="R005",
                message=(
                    f"spec hash manifest is missing; generate it with "
                    f"`repro-ants check --fix-manifest`"
                ),
            )
        )
        return findings
    with open(path, "r", encoding="utf-8") as handle:
        pinned = json.load(handle)

    for key in ("spec_version", "block_schedule_version"):
        if pinned.get(key) != current[key]:
            findings.append(
                Finding(
                    path=path,
                    line=0,
                    col=0,
                    rule="R005",
                    message=(
                        f"{key} changed "
                        f"({pinned.get(key)!r} -> {current[key]!r}) but the "
                        f"manifest was not regenerated; {_FIX_HINT}"
                    ),
                )
            )

    pinned_specs = pinned.get("specs", {})
    current_specs = current["specs"]
    for name in sorted(set(pinned_specs) | set(current_specs)):
        if name not in current_specs:
            findings.append(
                Finding(
                    path=path,
                    line=0,
                    col=0,
                    rule="R005",
                    message=(
                        f"canonical spec {name!r} disappeared from the "
                        f"battery; {_FIX_HINT}"
                    ),
                )
            )
            continue
        if name not in pinned_specs:
            findings.append(
                Finding(
                    path=path,
                    line=0,
                    col=0,
                    rule="R005",
                    message=(
                        f"canonical spec {name!r} is not pinned in the "
                        f"manifest; {_FIX_HINT}"
                    ),
                )
            )
            continue
        pinned_entry = pinned_specs[name]
        current_entry = current_specs[name]
        for hash_key in ("spec_hash", "data_hash"):
            if pinned_entry.get(hash_key) != current_entry[hash_key]:
                findings.append(
                    Finding(
                        path=path,
                        line=0,
                        col=0,
                        rule="R005",
                        message=(
                            f"spec {name!r}: {hash_key} drifted "
                            f"({pinned_entry.get(hash_key)} -> "
                            f"{current_entry[hash_key]}) — every cached "
                            f"result would be orphaned or, worse, stale "
                            f"entries could be mistaken for fresh ones; "
                            f"{_FIX_HINT}"
                        ),
                    )
                )
        if pinned_entry.get("fields") != current_entry["fields"]:
            pinned_keys = set(pinned_entry.get("fields", {}))
            current_keys = set(current_entry["fields"])
            added = sorted(current_keys - pinned_keys)
            removed = sorted(pinned_keys - current_keys)
            moved = sorted(
                key
                for key in pinned_keys & current_keys
                if pinned_entry["fields"][key] != current_entry["fields"][key]
            )
            detail = "; ".join(
                part
                for part in (
                    f"added {added}" if added else "",
                    f"removed {removed}" if removed else "",
                    f"repartitioned {moved}" if moved else "",
                )
                if part
            )
            findings.append(
                Finding(
                    path=path,
                    line=0,
                    col=0,
                    rule="R005",
                    message=(
                        f"spec {name!r}: hashed-field partition changed "
                        f"({detail}); {_FIX_HINT}"
                    ),
                )
            )
    return findings


def write_manifest(path: str = DEFAULT_MANIFEST_PATH) -> Dict[str, object]:
    """Regenerate and commit the manifest (``--fix-manifest``)."""
    manifest = build_manifest()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return manifest
