#!/usr/bin/env python3
"""Search-and-rescue drone swarm: how many drones, and what do they need to know?

An engineering reading of the paper: a swarm of k identical drones must
locate a target at unknown distance D from the launch pad, radios are
jammed (no communication), and mission control wants the expected
time-to-find.

Three procurement questions the theorems answer:

1. "We know how many drones we launched" — fly ``A_k``: expected time
   within a constant of the physical optimum D + D^2/k (Theorem 3.1).
2. "Drones may join/drop out and nobody knows k" — fly ``A_uniform``:
   only a polylog(k) penalty (Theorem 3.3), and that penalty is provably
   unavoidable (Theorem 4.1).
3. "We only know k within a factor of a few" — feed the estimate to the
   rho-approximate variant: constant competitiveness again (Cor 3.2).

Run:  python examples/swarm_robotics.py [--fast]
"""

import sys

from repro import (
    NonUniformSearch,
    RhoApproxSearch,
    UniformSearch,
    optimal_time,
    place_treasure,
    simulate_find_times,
)
from repro.sim.rng import spawn_seeds


def mission_time(alg, world, k, trials, seed) -> float:
    times = simulate_find_times(alg, world, k, trials, seed)
    return float(times.mean())


def main() -> None:
    fast = "--fast" in sys.argv
    distance = 96
    swarm_sizes = (4, 16, 64) if fast else (4, 8, 16, 32, 64)
    trials = 60 if fast else 250

    world = place_treasure(distance, "offaxis")
    print(f"Target at unknown distance (actually D={distance}); jammed radios.\n")
    header = (
        f"{'drones':>7} {'optimal':>9} {'knows k':>10} "
        f"{'k within 3x':>12} {'k unknown':>10} {'penalty':>8}"
    )
    print(header)
    print("-" * len(header))

    seeds = spawn_seeds(41, 3 * len(swarm_sizes))
    for i, k in enumerate(swarm_sizes):
        t_known = mission_time(NonUniformSearch(k=k), world, k, trials, seeds[3 * i])
        t_approx = mission_time(
            RhoApproxSearch(k_a=3 * k, rho=3), world, k, trials, seeds[3 * i + 1]
        )
        t_uniform = mission_time(UniformSearch(0.5), world, k, trials, seeds[3 * i + 2])
        opt = optimal_time(distance, k)
        print(
            f"{k:>7} {opt:>9.0f} {t_known:>10.0f} {t_approx:>12.0f} "
            f"{t_uniform:>10.0f} {t_uniform / t_known:>7.1f}x"
        )

    print("\nReading: knowing k (even to a factor 3) keeps missions within a")
    print("constant of optimal at every swarm size; flying uniform costs the")
    print("polylog factor — and Theorem 4.1 says no firmware can avoid it.")


if __name__ == "__main__":
    main()
