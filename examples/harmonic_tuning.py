#!/usr/bin/env python3
"""Tuning the harmonic algorithm's delta: reach vs reliability.

Theorem 5.1 exposes one dial, delta in (0, 0.8]:

* the agent count needed for reliability scales like ``alpha * D^delta``
  (smaller delta = fewer agents needed for far treasures);
* the collective time envelope is ``D + D^(2+delta)/k``
  (smaller delta = better asymptotic time too — but the normalising
  constant c shrinks, so *nearby* treasures get less probability mass and
  the constants bite).

This example sweeps delta for several (D, k) scenarios and prints the
success probability within the theorem's envelope, next to the theoretical
minimum agent count alpha(eps=0.1) * D^delta.

Run:  python examples/harmonic_tuning.py [--fast]
"""

import sys

import numpy as np

from repro import HarmonicSearch, place_treasure, simulate_find_times
from repro.analysis.theory import harmonic_alpha, harmonic_time_bound
from repro.sim.rng import spawn_seeds

DELTAS = (0.2, 0.4, 0.6, 0.8)
HORIZON_FACTOR = 10.0


def main() -> None:
    fast = "--fast" in sys.argv
    trials = 100 if fast else 400
    scenarios = ((16, 32), (16, 256), (64, 32), (64, 256))

    print("One-shot harmonic search: success within 10x the Thm 5.1 envelope.\n")
    header = f"{'D':>4} {'k':>5} " + " ".join(f"d={d:<11g}" for d in DELTAS)
    print(header + "   (cells: success% / alpha*D^delta)")
    print("-" * (len(header) + 30))

    seeds = spawn_seeds(99, len(scenarios) * len(DELTAS))
    idx = 0
    for distance, k in scenarios:
        world = place_treasure(distance, "offaxis")
        cells = []
        for delta in DELTAS:
            envelope = harmonic_time_bound(distance, k, delta)
            times = simulate_find_times(
                HarmonicSearch(delta), world, k, trials, seeds[idx]
            )
            idx += 1
            ok = np.isfinite(times) & (times <= HORIZON_FACTOR * envelope)
            need = harmonic_alpha(0.1, delta) * distance**delta
            cells.append(f"{ok.mean():4.0%}/{need:6.0f}")
        print(f"{distance:>4} {k:>5} " + "  ".join(f"{c:<11}" for c in cells))

    print("\nReading: raising delta concentrates effort near the nest — it")
    print("needs more agents (alpha*D^delta grows with delta) but, once")
    print("saturated, wastes less time overshooting distant rings.")


if __name__ == "__main__":
    main()
