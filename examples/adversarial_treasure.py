#!/usr/bin/env python3
"""The adversary at work: where should the treasure hide?

Section 2 lets an adversary place the treasure.  This example makes the
adversary concrete: it estimates, for the uniform algorithm, the
probability that each cell at distance D is visited within a time budget,
hides the treasure in the least-covered cell, and shows how much that
placement costs compared to naive placements.

It also demonstrates why the repository's canonical adversarial stand-in
is the *off-axis* cell: deterministic Manhattan commutes cover the axes
incidentally, so the real argmin avoids them.

Run:  python examples/adversarial_treasure.py [--fast]
"""

import sys

from repro import UniformSearch, place_treasure, simulate_find_times
from repro.analysis.lower_bounds import adversarial_treasure, visit_probability_map
from repro.core.geometry import l1_norm
from repro.sim.rng import spawn_seeds


def main() -> None:
    fast = "--fast" in sys.argv
    distance = 6
    k = 2
    cutoff = 400
    runs = 10 if fast else 40
    trials = 60 if fast else 200

    alg = UniformSearch(eps=0.5)
    seeds = spawn_seeds(7, 6)

    print(f"Estimating visit probabilities of ring D={distance} cells")
    print(f"for {alg.describe()} with k={k} agents by t={cutoff}...\n")

    probs = visit_probability_map(alg, k, distance, cutoff, runs, seeds[0])
    ring = sorted(
        ((cell, p) for cell, p in probs.items() if l1_norm(*cell) == distance),
        key=lambda item: item[1],
    )
    print("least covered cells        most covered cells")
    for (lo_cell, lo_p), (hi_cell, hi_p) in zip(ring[:5], ring[-5:]):
        print(f"{str(lo_cell):>10}  p={lo_p:4.2f}       {str(hi_cell):>10}  p={hi_p:4.2f}")

    world_adv, p_min = adversarial_treasure(alg, k, distance, cutoff, runs, seeds[1])
    print(f"\nAdversary hides the treasure at {world_adv.treasure} (p={p_min:.2f}).\n")

    rows = []
    for name, world in (
        ("axis       (D,0)", place_treasure(distance, "axis")),
        ("corner     (0,-D)", place_treasure(distance, "corner")),
        ("offaxis", place_treasure(distance, "offaxis")),
        ("adversarial argmin", world_adv),
    ):
        times = simulate_find_times(alg, world, k, trials, seeds[2])
        rows.append((name, float(times.mean())))
    worst = max(t for _, t in rows)
    print(f"{'placement':<22} {'mean find time':>15}")
    print("-" * 40)
    for name, t in rows:
        marker = "  <- worst" if t == worst else ""
        print(f"{name:<22} {t:>15.1f}{marker}")
    print("\nReading: axis cells sit on the agents' commuting highways and are")
    print("found early; the argmin placement (always off-axis) is the one the")
    print("Section 2 adversary would choose.")


if __name__ == "__main__":
    main()
