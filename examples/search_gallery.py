#!/usr/bin/env python3
"""A gallery of search patterns, rendered in ASCII.

Runs one agent of each strategy for a fixed step budget and draws the
cells it visited (darker = later).  The shapes tell the paper's story at a
glance:

* the spiral is a dense square — exhaustive but slow to reach out;
* an ``A_k`` agent draws spokes with spiral blobs at their tips —
  dispersion plus local thoroughness;
* the harmonic agent is one spoke and one blob, sized by a power law;
* the random walk is a shapeless smudge hugging the source.

Run:  python examples/search_gallery.py
"""

import itertools

import numpy as np

from repro.algorithms import (
    HarmonicSearch,
    NonUniformSearch,
    RandomWalkSearch,
    SingleSpiralSearch,
)
from repro.viz.ascii_map import render_trajectory

RADIUS = 14
STEPS = 900


def trajectory(alg, seed: int):
    program = alg.step_program(np.random.default_rng(seed))
    return list(itertools.islice(program, STEPS))


def main() -> None:
    strategies = [
        ("single spiral (cow-path)", SingleSpiralSearch(), 0),
        ("A_k excursions (k=4)", NonUniformSearch(k=4), 3),
        ("harmonic (delta=0.5)", HarmonicSearch(0.5), 11),
        ("simple random walk", RandomWalkSearch(), 1),
    ]
    for name, alg, seed in strategies:
        print(f"--- {name}: first {STEPS} steps "
              f"(viewport [{-RADIUS}, {RADIUS}]^2, darker = later) ---")
        print(render_trajectory(trajectory(alg, seed), radius=RADIUS))
        print()


if __name__ == "__main__":
    main()
