#!/usr/bin/env python3
"""Central-place foraging: a desert-ant colony scenario.

The paper's biological motivation (Sections 1 and 6): desert ants
(*Cataglyphis*) forage around their nest with no pheromone trails and no
communication during the search, and food sources near the nest matter
more than distant ones.

This example mimics a colony that sends out waves of foragers of growing
size towards food items scattered at different distances, and compares two
"ant programs" the paper deems biologically plausible:

* the **harmonic** strategy (Algorithm 2) — exactly the ingredients
  observed in real ants: a compass-directed straight run to a power-law
  distance, a tortuous local search, and a straight run home;
* the **correlated-walk** strategy fitted to the Harkness–Maroudas desert
  ant data [24] — our :class:`BiasedWalkSearch`.

Output: per food distance, the colony sizes at which each strategy finds
the food within a "season" time budget with >= 75% probability.

Run:  python examples/ant_foraging.py [--fast]
"""

import sys

import numpy as np

from repro import HarmonicSearch, place_treasure, simulate_find_times
from repro.algorithms import BiasedWalkSearch
from repro.sim.engine import run_search
from repro.sim.rng import spawn_seeds

DELTA = 0.5  # harmonic tail exponent: ants' power-law flight lengths
TARGET_SUCCESS = 0.75


def harmonic_success(world, colony, budget, trials, seed) -> float:
    times = simulate_find_times(
        HarmonicSearch(DELTA), world, colony, trials, seed, horizon=budget
    )
    return float(np.mean(np.isfinite(times)))


def biased_walk_success(world, colony, budget, trials, seed) -> float:
    found = 0
    for run_seed in spawn_seeds(seed, trials):
        result = run_search(
            BiasedWalkSearch(persistence=0.9), world, colony, run_seed, horizon=budget
        ).result
        found += result.found
    return found / trials


def main() -> None:
    fast = "--fast" in sys.argv
    distances = (8, 16, 32) if fast else (8, 16, 32, 64)
    colonies = (4, 16, 64, 256)
    trials_h = 40 if fast else 150
    trials_b = 6 if fast else 20

    print("Desert-ant colony, no communication, food at distance D.")
    print(f"Season budget: 40 * D^2 steps; success target {TARGET_SUCCESS:.0%}.\n")
    header = f"{'D':>4} {'colony':>7} {'harmonic':>10} {'biased walk':>12}"
    print(header)
    print("-" * len(header))

    seeds = spawn_seeds(2012, 2 * len(distances) * len(colonies))
    idx = 0
    for distance in distances:
        world = place_treasure(distance, "offaxis")
        budget = 40 * distance * distance
        for colony in colonies:
            p_h = harmonic_success(world, colony, budget, trials_h, seeds[idx])
            p_b = biased_walk_success(world, colony, budget, trials_b, seeds[idx + 1])
            idx += 2
            flag = " <- harmonic reaches target" if p_h >= TARGET_SUCCESS else ""
            print(f"{distance:>4} {colony:>7} {p_h:>10.0%} {p_b:>12.0%}{flag}")
        print()

    print("Reading: the harmonic colony hits nearby food reliably once the")
    print(f"colony outgrows ~alpha*D^{DELTA:g} (Theorem 5.1); the correlated walk")
    print("wanders — more legs help it slowly, with no guarantee shape.")


if __name__ == "__main__":
    main()
