#!/usr/bin/env python3
"""Quickstart: the paper's three algorithms in thirty lines.

Places a treasure at distance D on the grid, releases k non-communicating
agents, and compares the three constructions of the paper:

* ``A_k``       (Algorithm 3) — knows k, optimal O(D + D^2/k);
* ``A_uniform`` (Algorithm 1) — knows nothing, pays a polylog factor;
* harmonic      (Algorithm 2) — three steps, no loops, whp-fast when
                k >> D^delta.

Run:  python examples/quickstart.py [D] [k]
"""

import sys

import numpy as np

from repro import (
    HarmonicSearch,
    NonUniformSearch,
    UniformSearch,
    optimal_time,
    place_treasure,
    simulate_find_times,
)


def main() -> None:
    distance = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    trials = 200

    world = place_treasure(distance, placement="offaxis")
    benchmark = optimal_time(distance, k)
    print(f"Treasure at {world.treasure} (distance D={distance}); k={k} agents.")
    print(f"Universal lower bound benchmark D + D^2/k = {benchmark:.0f}\n")

    for algorithm in (NonUniformSearch(k=k), UniformSearch(eps=0.5), HarmonicSearch(0.5)):
        times = simulate_find_times(algorithm, world, k=k, trials=trials, seed=0)
        found = np.isfinite(times)
        mean = times[found].mean() if found.any() else float("inf")
        print(f"{algorithm.describe()}")
        print(
            f"    mean find time {mean:9.1f}   "
            f"({mean / benchmark:5.1f}x optimal)   "
            f"success {found.mean():.0%} over {trials} trials\n"
        )


if __name__ == "__main__":
    main()
