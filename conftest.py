"""Repo-wide pytest configuration.

The sweep subsystem caches results under ``~/.cache/repro-ants/sweeps`` by
default; tests must neither read stale entries from a developer's real
cache nor pollute it, so the whole session is pointed at a throwaway
directory.  (Within the session the cache still works — experiment tests
and benchmarks share warm entries, which is the production behaviour.)
"""

import os

import pytest


@pytest.fixture(autouse=True, scope="session")
def _isolated_sweep_cache(tmp_path_factory):
    previous = os.environ.get("REPRO_SWEEP_CACHE")
    os.environ["REPRO_SWEEP_CACHE"] = str(tmp_path_factory.mktemp("sweep-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_SWEEP_CACHE", None)
    else:
        os.environ["REPRO_SWEEP_CACHE"] = previous
