"""Tests for the baseline strategies (repro.algorithms.baselines)."""

import itertools

import numpy as np
import pytest

from repro.algorithms.baselines import (
    BiasedWalkSearch,
    KnownDSearch,
    LevyFlightSearch,
    RandomWalkSearch,
    SingleSpiralSearch,
    random_walk_find_times,
)
from repro.sim.engine import run_agent, run_search
from repro.sim.world import World, place_treasure


class TestSingleSpiral:
    def test_exact_find_time_matches_engine(self):
        alg = SingleSpiralSearch()
        for treasure in [(3, 2), (0, -5), (-4, 4)]:
            world = World(treasure)
            exact = alg.exact_find_time(world)
            run = run_search(alg, world, 1, seed=0, horizon=exact + 5)
            assert run.result.found and run.result.time == exact

    def test_quadratic_in_distance(self):
        alg = SingleSpiralSearch()
        t16 = alg.exact_find_time(place_treasure(16, "corner"))
        t32 = alg.exact_find_time(place_treasure(32, "corner"))
        assert 3.5 <= t32 / t16 <= 4.5

    def test_k_agents_give_no_speedup(self):
        """Identical deterministic agents: the 'no dispersion' control."""
        alg = SingleSpiralSearch()
        world = place_treasure(6, "axis")
        t1 = run_search(alg, world, 1, seed=1, horizon=10_000).result.time
        t8 = run_search(alg, world, 8, seed=1, horizon=10_000).result.time
        assert t1 == t8


class TestKnownD:
    @pytest.mark.parametrize("treasure", [(7, 0), (0, 7), (-7, 0), (0, -7), (3, -4)])
    def test_exact_find_time_matches_engine(self, treasure):
        world = World(treasure)
        alg = KnownDSearch(distance=7)
        exact = alg.exact_find_time(world)
        run = run_search(alg, world, 1, seed=0, horizon=exact + 5)
        assert run.result.found and run.result.time == exact

    def test_linear_time_bound(self):
        """Find time is at most 9D for any placement at distance D."""
        for d in (4, 9, 15):
            alg = KnownDSearch(distance=d)
            for x in range(-d, d + 1):
                for y in (d - abs(x), abs(x) - d):
                    if abs(x) + abs(y) == d:
                        assert alg.exact_find_time(World((x, y))) <= 9 * d

    def test_rejects_mismatched_distance(self):
        with pytest.raises(ValueError):
            KnownDSearch(distance=5).exact_find_time(World((3, 0)))

    def test_rejects_bad_distance(self):
        with pytest.raises(ValueError):
            KnownDSearch(distance=0)


class TestRandomWalk:
    def test_program_makes_unit_steps(self):
        rng = np.random.default_rng(5)
        prev = (0, 0)
        for pos in itertools.islice(RandomWalkSearch().step_program(rng), 200):
            assert abs(pos[0] - prev[0]) + abs(pos[1] - prev[1]) == 1
            prev = pos

    def test_often_fails_within_small_horizon(self):
        """Null recurrence bites: many walks miss a distance-10 treasure."""
        world = place_treasure(10, "axis")
        with pytest.deprecated_call():
            times = random_walk_find_times(
                world, k=1, trials=60, horizon=200, rng=np.random.default_rng(6)
            )
        assert np.mean(~np.isfinite(times)) > 0.5

    def test_vectorised_matches_engine_distribution(self):
        """Chunked numpy simulation should agree with step engine on rates."""
        world = place_treasure(2, "axis")
        horizon = 60
        with pytest.deprecated_call():
            fast = random_walk_find_times(
                world, k=1, trials=800, horizon=horizon, rng=np.random.default_rng(7)
            )
        hits = 0
        runs = 200
        for i in range(runs):
            trace = run_agent(
                RandomWalkSearch(), world, np.random.default_rng(1000 + i), horizon
            )
            hits += trace.find_time is not None
        fast_rate = float(np.mean(np.isfinite(fast)))
        slow_rate = hits / runs
        assert abs(fast_rate - slow_rate) < 0.12

    def test_respects_horizon(self):
        world = place_treasure(50, "axis")
        with pytest.deprecated_call():
            times = random_walk_find_times(
                world, k=2, trials=10, horizon=30, rng=np.random.default_rng(8)
            )
        assert np.all(~np.isfinite(times))  # can't reach distance 50 in 30 steps

    def test_rejects_bad_args(self):
        world = place_treasure(3, "axis")
        with pytest.raises(ValueError), pytest.deprecated_call():
            random_walk_find_times(world, 0, 1, 10, np.random.default_rng(0))
        with pytest.raises(ValueError), pytest.deprecated_call():
            random_walk_find_times(world, 1, 1, 0, np.random.default_rng(0))


class TestBiasedWalk:
    def test_unit_steps_and_persistence(self):
        alg = BiasedWalkSearch(persistence=0.95)
        rng = np.random.default_rng(9)
        positions = list(itertools.islice(alg.step_program(rng), 400))
        prev = (0, 0)
        straight = 0
        changes = 0
        last_move = None
        for pos in positions:
            move = (pos[0] - prev[0], pos[1] - prev[1])
            assert abs(move[0]) + abs(move[1]) == 1
            if last_move is not None:
                if move == last_move:
                    straight += 1
                else:
                    changes += 1
            last_move = move
            prev = pos
        # With persistence 0.95 straight steps should dominate direction changes.
        assert straight > 5 * changes

    def test_travels_farther_than_simple_walk(self):
        """Persistence should increase displacement at matched step count."""
        rng_a = np.random.default_rng(10)
        rng_b = np.random.default_rng(10)
        n = 2000
        biased = list(itertools.islice(BiasedWalkSearch(0.95).step_program(rng_a), n))
        simple = list(itertools.islice(RandomWalkSearch().step_program(rng_b), n))
        d_biased = abs(biased[-1][0]) + abs(biased[-1][1])
        d_simple = abs(simple[-1][0]) + abs(simple[-1][1])
        assert d_biased > d_simple

    def test_rejects_bad_persistence(self):
        with pytest.raises(ValueError):
            BiasedWalkSearch(persistence=1.0)


class TestLevyFlight:
    def test_unit_steps(self):
        rng = np.random.default_rng(11)
        prev = (0, 0)
        for pos in itertools.islice(LevyFlightSearch(mu=2.0).step_program(rng), 300):
            assert abs(pos[0] - prev[0]) + abs(pos[1] - prev[1]) == 1
            prev = pos

    def test_segments_follow_power_law_tail(self):
        """Smaller mu gives longer flights (heavier tail)."""
        n = 5000
        rng_a = np.random.default_rng(12)
        rng_b = np.random.default_rng(12)
        heavy = list(itertools.islice(LevyFlightSearch(mu=1.3).step_program(rng_a), n))
        light = list(itertools.islice(LevyFlightSearch(mu=3.5).step_program(rng_b), n))
        d_heavy = abs(heavy[-1][0]) + abs(heavy[-1][1])
        d_light = abs(light[-1][0]) + abs(light[-1][1])
        assert d_heavy > d_light

    def test_rejects_bad_mu(self):
        with pytest.raises(ValueError):
            LevyFlightSearch(mu=1.0)
        with pytest.raises(ValueError):
            LevyFlightSearch(mu=5.0)
