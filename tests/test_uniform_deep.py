"""Deep checks of A_uniform's stage structure against the Theorem 3.3 proof.

The proof predicts *where* in the schedule finds happen: from the critical
stage ``s = ceil(log2(D^2 log^(1+eps) k / k)) + 1`` onward, each stage
contains a phase succeeding with constant probability, so find times
concentrate around the completion time of stages ``s + O(1)`` — i.e.
``Theta(2^s) = Theta(D^2 log^(1+eps) k / k)``.  These tests locate the
measured find times on the schedule's time axis and compare with ``s``.
"""

import math

import numpy as np
import pytest

from repro.algorithms import UniformSearch
from repro.analysis.theory import uniform_critical_stage
from repro.core.schedule import phase_max_duration, uniform_big_stage_phases
from repro.sim.events import simulate_find_times
from repro.sim.world import place_treasure

EPS = 0.5


def big_stage_completion_times(eps: float, max_ell: int):
    """Cumulative worst-case completion time of each big-stage."""
    out = []
    total = 0.0
    for ell in range(max_ell + 1):
        total += sum(phase_max_duration(p) for p in uniform_big_stage_phases(ell, eps))
        out.append(total)
    return out


class TestCriticalStageAlignment:
    @pytest.mark.parametrize("distance,k", [(32, 4), (64, 16), (64, 64)])
    def test_find_times_near_critical_stage_completion(self, distance, k):
        """Mean find time lands within a few big-stages of the proof's s."""
        world = place_treasure(distance, "offaxis")
        times = simulate_find_times(UniformSearch(EPS), world, k, 120, seed=17)
        mean = float(times.mean())

        s = uniform_critical_stage(distance, k, EPS)
        completions = big_stage_completion_times(EPS, s + 6)
        # The proof: all agents complete big-stage s+l by O(2^(s+l)) and each
        # stage >= s succeeds with constant probability.  The measured mean
        # must therefore fall before the completion of big-stage s + 6...
        assert mean <= completions[min(s + 6, len(completions) - 1)]
        # ...and after the completion of a much earlier big-stage (finds
        # cannot concentrate before the treasure is even reachable).
        early = max(0, s - 6)
        assert mean >= completions[early] / 100

    def test_critical_stage_scales_with_load(self):
        """s grows with D^2/k: doubling D raises it by ~2, quadrupling k
        lowers it by ~2."""
        s_base = uniform_critical_stage(64, 4, EPS)
        assert uniform_critical_stage(128, 4, EPS) == pytest.approx(s_base + 2, abs=1)
        assert uniform_critical_stage(64, 16, EPS) == pytest.approx(s_base - 2, abs=1)


class TestScheduleTimeAxis:
    def test_completion_times_are_geometric(self):
        completions = big_stage_completion_times(EPS, 16)
        # Ratio of consecutive completion times approaches 2 (Assertion 1).
        ratios = [b / a for a, b in zip(completions[8:], completions[9:])]
        for ratio in ratios:
            assert 1.6 < ratio < 2.6

    def test_phase_count_grows_cubically(self):
        """Big-stage ell contributes (ell+1)(ell+2)/2 phases; cumulative
        count through ell is Theta(ell^3)."""
        total = 0
        for ell in range(12):
            total += len(uniform_big_stage_phases(ell, EPS))
        expected = sum((l + 1) * (l + 2) // 2 for l in range(12))
        assert total == expected


class TestUniformityAcrossK:
    def test_same_schedule_any_k(self):
        """The defining property of a uniform algorithm, re-verified at the
        level of the fast engine: changing k only changes how many agents
        run the same schedule, so per-agent find-time distributions are
        identical (checked via means at matched seeds)."""
        world = place_treasure(24, "offaxis")
        t_solo = simulate_find_times(UniformSearch(EPS), world, 1, 200, seed=18)
        # Simulate "k=3" by taking mins over independent solo triples.
        t_more = simulate_find_times(UniformSearch(EPS), world, 3, 200, seed=19)
        solo_triples = t_solo.reshape(-1)
        # Group bootstrap: min of 3 random solos should match k=3 means.
        rng = np.random.default_rng(20)
        idx = rng.integers(0, solo_triples.size, size=(200, 3))
        min_of_three = solo_triples[idx].min(axis=1)
        pooled_se = math.sqrt(
            t_more.var() / t_more.size + min_of_three.var() / min_of_three.size
        )
        assert abs(t_more.mean() - min_of_three.mean()) < 6 * pooled_se + 1e-9
