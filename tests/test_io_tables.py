"""Tests for result tables (repro.experiments.io)."""

import csv
import math

import pytest

from repro.experiments.io import ResultTable, format_value


class TestFormatValue:
    def test_integers_and_strings(self):
        assert format_value(42) == "42"
        assert format_value("abc") == "abc"

    def test_floats(self):
        assert format_value(3.14159) == "3.142"
        assert format_value(123.456) == "123.5"
        assert format_value(1234567.0) == "1.23e+06"
        assert format_value(0.0001234) == "0.000123"
        assert format_value(0.0) == "0"

    def test_non_finite(self):
        assert format_value(math.inf) == "inf"
        assert format_value(-math.inf) == "-inf"
        assert format_value(math.nan) == "nan"

    def test_bool_not_treated_as_number(self):
        assert format_value(True) == "True"


class TestResultTable:
    def make(self):
        t = ResultTable(title="demo", columns=["a", "b"])
        t.add_row(a=1, b=2.5)
        t.add_row(a=10, b=math.inf)
        return t

    def test_add_row_validates_columns(self):
        t = ResultTable(title="x", columns=["a"])
        with pytest.raises(ValueError):
            t.add_row()
        with pytest.raises(ValueError):
            t.add_row(a=1, c=2)

    def test_column_access(self):
        t = self.make()
        assert t.column("a") == [1, 10]
        with pytest.raises(KeyError):
            t.column("zzz")

    def test_to_text_alignment(self):
        text = self.make().to_text()
        lines = text.splitlines()
        assert lines[0] == "== demo =="
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5  # title, header, rule, 2 rows

    def test_notes_rendered(self):
        t = self.make()
        t.add_note("hello")
        assert "note: hello" in t.to_text()

    def test_csv_round_trip(self, tmp_path):
        t = self.make()
        path = tmp_path / "out.csv"
        t.to_csv(str(path))
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["a"] == "1"
        assert rows[1]["b"] == "inf"

    def test_len_and_str(self):
        t = self.make()
        assert len(t) == 2
        assert str(t) == t.to_text()
