"""Tests for the pluggable sweep execution backends (DESIGN.md §8).

The load-bearing guarantees:

* executors move arrays, never change them: serial and process backends
  produce bitwise-identical sweeps for both budget kinds and both
  engines, with or without shared-memory transport, and across injected
  worker crashes;
* the fixed path's chunk layout is a function of the spec alone, so
  worker counts can never shift results — and specs that do not split
  keep their historical canonical dict (and cache entries) bit for bit;
* the block-level adaptive scheduler realises exactly the sequential
  reference semantics (:func:`repro.sweep.reference_cell_times`), no
  matter how its blocks were interleaved, stolen, or speculated;
* a persistent executor survives (and is reused across) many sweeps.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.stats import BudgetPolicy
from repro.sweep import (
    SerialExecutor,
    SweepSpec,
    VirtualExecutor,
    ensure_executor,
    make_executor,
    reference_cell_times,
    resolve_workers,
    run_sweep,
)
from repro.sweep.executor import (
    CRASH_ENV,
    ProcessExecutor,
    SHM_ENV,
)
from repro.sweep.runner import _execute_block


def _double(payload):
    return np.asarray(payload, dtype=np.float64) * 2.0


def _pid_task(payload):
    return np.asarray([float(os.getpid())])


def _boom(payload):
    raise ValueError("task exploded")


def small_spec(**overrides):
    base = dict(
        algorithm="nonuniform",
        distances=(8, 16),
        ks=(1, 4),
        trials=20,
        seed=42,
    )
    base.update(overrides)
    return SweepSpec(**base)


def adaptive(rel_ci=1e-9, min_trials=32, max_trials=256, **overrides):
    return small_spec(
        budget=BudgetPolicy.target_rel_ci(
            rel_ci, min_trials=min_trials, max_trials=max_trials
        ),
        **overrides,
    )


def assert_sweeps_equal(a, b):
    assert len(a.cells) == len(b.cells)
    for x, y in zip(a.cells, b.cells):
        assert (x.distance, x.k) == (y.distance, y.k)
        assert np.array_equal(x.times, y.times), (x.distance, x.k)


class TestResolveWorkers:
    def test_integers_pass_through(self):
        assert resolve_workers(0) == 0
        assert resolve_workers(3) == 3

    def test_auto_matches_usable_cpus(self):
        assert resolve_workers("auto") >= 1
        assert resolve_workers(-1) == resolve_workers("auto")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)


class TestMakeExecutor:
    def test_auto_picks_serial_for_low_worker_counts(self):
        for workers in (0, 1):
            with make_executor(workers=workers) as ex:
                assert isinstance(ex, SerialExecutor)

    def test_auto_picks_process_for_pools(self):
        with make_executor(workers=2) as ex:
            assert isinstance(ex, ProcessExecutor)
            assert ex.workers == 2

    def test_explicit_backends(self):
        with make_executor(workers=4, backend="serial") as ex:
            assert isinstance(ex, SerialExecutor)
        with make_executor(workers=1, backend="process") as ex:
            assert isinstance(ex, ProcessExecutor)
            assert ex.workers == 1

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            make_executor(workers=2, backend="quantum")

    def test_ensure_executor_reuses_and_never_closes(self):
        with make_executor(workers=0) as outer:
            with ensure_executor(outer) as inner:
                assert inner is outer
            # Still usable: ensure_executor must not close what it was
            # handed (the persistence contract).
            ticket = outer.submit(_double, np.ones(3))
            assert np.array_equal(
                outer.next_completed()[1], np.full(3, 2.0)
            )
            assert ticket == 0


class TestSerialExecutor:
    def test_lazy_fifo_execution(self):
        ex = SerialExecutor()
        t0 = ex.submit(_double, np.asarray([1.0]))
        t1 = ex.submit(_double, np.asarray([2.0]))
        assert ex.pending == 2
        ticket, result = ex.next_completed()
        assert ticket == t0 and result[0] == 2.0
        ticket, result = ex.next_completed()
        assert ticket == t1 and result[0] == 4.0
        with pytest.raises(RuntimeError):
            ex.next_completed()

    def test_uncollected_tasks_never_run(self):
        ran = []

        def recording(payload):
            ran.append(payload)
            return np.zeros(1)

        ex = SerialExecutor()
        ex.submit(recording, "speculative")
        assert ran == []  # lazy: submit alone must not execute


class TestVirtualExecutor:
    def test_models_greedy_list_scheduling(self):
        # Four unit-cost tasks on two virtual workers: finish times
        # 1, 1, 2, 2 and a makespan of 2 — classic greedy packing.
        ex = VirtualExecutor(2, cost_fn=lambda fn, payload, result: 1.0)
        for value in range(4):
            ex.submit(_double, np.asarray([float(value)]))
        finishes = []
        while ex.pending:
            ticket, result = ex.next_completed()
            finishes.append(ticket)
        assert ex.makespan == 2.0
        assert sorted(finishes) == [0, 1, 2, 3]

    def test_results_are_exact(self):
        ex = VirtualExecutor(3, cost_fn=lambda fn, payload, result: result.sum())
        ex.submit(_double, np.asarray([3.0]))
        _, result = ex.next_completed()
        assert result[0] == 6.0

    def test_negative_cost_rejected(self):
        ex = VirtualExecutor(1, cost_fn=lambda *a: -1.0)
        with pytest.raises(ValueError):
            ex.submit(_double, np.ones(1))


class TestProcessExecutor:
    def test_round_trip_inline_and_shm(self):
        with ProcessExecutor(2, shm_min_bytes=1) as ex:
            payload = np.arange(400, dtype=np.float64)
            ex.submit(_double, payload, result_shape=(400,))
            _, result = ex.next_completed()
            assert np.array_equal(result, payload * 2.0)
        with ProcessExecutor(2, use_shm=False) as ex:
            ex.submit(_double, payload, result_shape=(400,))
            _, result = ex.next_completed()
            assert np.array_equal(result, payload * 2.0)

    def test_shm_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv(SHM_ENV, "0")
        with ProcessExecutor(1, shm_min_bytes=1) as ex:
            assert ex._use_shm is False

    def test_task_exceptions_propagate(self):
        with ProcessExecutor(1) as ex:
            ex.submit(_boom, None)
            with pytest.raises(ValueError, match="task exploded"):
                ex.next_completed()
            # The executor survives a task failure.
            ex.submit(_double, np.ones(2))
            assert np.array_equal(ex.next_completed()[1], np.full(2, 2.0))

    def test_persistent_pool_reuses_workers(self):
        with ProcessExecutor(1) as ex:
            ex.submit(_pid_task, None)
            first = ex.next_completed()[1][0]
            ex.submit(_pid_task, None)
            second = ex.next_completed()[1][0]
        assert first == second  # same worker process served both tasks
        assert first != os.getpid()

    def test_crash_recovery_restarts_and_retries(self, tmp_path, monkeypatch):
        crash = tmp_path / "crash"
        crash.write_text("1")
        monkeypatch.setenv(CRASH_ENV, str(crash))
        with ProcessExecutor(1, shm_min_bytes=1) as ex:
            ex.submit(_double, np.arange(300.0), result_shape=(300,))
            _, result = ex.next_completed()
            assert np.array_equal(result, np.arange(300.0) * 2.0)
            assert ex.restarts == 1
        assert crash.read_text() == "0"

    def test_gives_up_after_max_restarts(self, tmp_path, monkeypatch):
        crash = tmp_path / "crash"
        crash.write_text("100")
        monkeypatch.setenv(CRASH_ENV, str(crash))
        with ProcessExecutor(1, max_restarts=2) as ex:
            ex.submit(_double, np.ones(4))
            with pytest.raises(RuntimeError, match="giving up"):
                ex.next_completed()

    def test_next_completed_without_tasks_rejected(self):
        with ProcessExecutor(1) as ex:
            with pytest.raises(RuntimeError):
                ex.next_completed()


class TestBackendDeterminism:
    """Serial == process, bitwise, for both paths and both engines."""

    def test_fixed_excursion(self):
        spec = small_spec()
        assert_sweeps_equal(
            run_sweep(spec, cache=False),
            run_sweep(spec, cache=False, workers=2),
        )

    def test_fixed_walker(self):
        spec = small_spec(algorithm="random_walk", horizon=500.0, ks=(2, 4))
        assert_sweeps_equal(
            run_sweep(spec, cache=False),
            run_sweep(spec, cache=False, workers=2),
        )

    def test_adaptive_excursion(self):
        spec = adaptive()
        assert_sweeps_equal(
            run_sweep(spec, cache=False),
            run_sweep(spec, cache=False, workers=3),
        )

    def test_adaptive_walker(self):
        spec = adaptive(
            algorithm="random_walk", horizon=500.0, distances=(4, 8),
            ks=(2,), max_trials=64,
        )
        assert_sweeps_equal(
            run_sweep(spec, cache=False),
            run_sweep(spec, cache=False, workers=2),
        )

    def test_forced_process_backend_single_worker(self):
        spec = small_spec()
        assert_sweeps_equal(
            run_sweep(spec, cache=False),
            run_sweep(spec, cache=False, workers=1, backend="process"),
        )

    def test_shm_disabled_matches_enabled(self, monkeypatch):
        spec = adaptive(max_trials=128)
        with_shm = run_sweep(spec, cache=False, workers=2)
        monkeypatch.setenv(SHM_ENV, "0")
        without = run_sweep(spec, cache=False, workers=2)
        assert_sweeps_equal(with_shm, without)

    def test_crash_mid_sweep_is_invisible(self, tmp_path, monkeypatch):
        spec = adaptive(max_trials=128)
        serial = run_sweep(spec, cache=False)
        crash = tmp_path / "crash"
        crash.write_text("2")
        monkeypatch.setenv(CRASH_ENV, str(crash))
        crashed = run_sweep(spec, cache=False, workers=2)
        assert crash.read_text() == "0"  # both injected crashes fired
        assert_sweeps_equal(serial, crashed)

    def test_crash_mid_fixed_sweep_is_invisible(self, tmp_path, monkeypatch):
        spec = small_spec()
        serial = run_sweep(spec, cache=False)
        crash = tmp_path / "crash"
        crash.write_text("1")
        monkeypatch.setenv(CRASH_ENV, str(crash))
        crashed = run_sweep(spec, cache=False, workers=2)
        assert_sweeps_equal(serial, crashed)

    def test_persistent_executor_across_sweeps(self):
        fixed, adapt = small_spec(), adaptive(max_trials=64)
        with make_executor(workers=2) as shared:
            first = run_sweep(fixed, cache=False, executor=shared)
            second = run_sweep(adapt, cache=False, executor=shared)
        assert_sweeps_equal(first, run_sweep(fixed, cache=False))
        assert_sweeps_equal(second, run_sweep(adapt, cache=False))


class TestDynamicWorldBackendDeterminism:
    """Serial == process, bitwise, for non-default world specs (E12)."""

    WORLD = {
        "n_targets": 2, "motion": "drift", "motion_rate": 0.1,
        "arrival": "geometric", "arrival_hazard": 0.005,
    }

    def dynamic(self, **overrides):
        base = dict(
            trials=10, horizon=1500.0, world=self.WORLD,
            distances=tuple(range(4, 15)), ks=(2,),
        )
        base.update(overrides)
        return small_spec(**base)

    def test_dynamic_excursion(self):
        spec = self.dynamic()
        assert_sweeps_equal(
            run_sweep(spec, cache=False),
            run_sweep(spec, cache=False, workers=2),
        )

    def test_dynamic_walker(self):
        spec = self.dynamic(algorithm="random_walk")
        assert_sweeps_equal(
            run_sweep(spec, cache=False),
            run_sweep(spec, cache=False, workers=2),
        )

    def test_dynamic_belief(self):
        spec = self.dynamic(algorithm="grid_belief")
        assert_sweeps_equal(
            run_sweep(spec, cache=False),
            run_sweep(spec, cache=False, workers=3),
        )

    def test_dynamic_adaptive_budget(self):
        spec = self.dynamic(
            distances=(6, 10),
            budget=BudgetPolicy.target_rel_ci(
                1e-9, min_trials=32, max_trials=64
            ),
        )
        assert_sweeps_equal(
            run_sweep(spec, cache=False),
            run_sweep(spec, cache=False, workers=2),
        )


class TestFixedChunking:
    MANY = tuple(range(4, 16))  # 12 distances: above the split threshold

    def test_small_specs_keep_historical_dict(self):
        # The chunk-layout marker must not leak into unsplit specs: their
        # canonical dict (hence hash and cache entries) is load-bearing.
        assert "fixed_chunking" not in small_spec().to_dict()

    def test_chunked_specs_carry_layout_marker(self):
        spec = small_spec(distances=self.MANY)
        assert spec.to_dict()["fixed_chunking"] == [8, 4]
        assert spec.spec_hash() != small_spec().spec_hash()

    def test_chunked_excursion_serial_matches_pooled(self):
        spec = small_spec(distances=self.MANY, trials=8)
        assert_sweeps_equal(
            run_sweep(spec, cache=False),
            run_sweep(spec, cache=False, workers=4),
        )

    def test_chunked_walker_rows_independent_of_split(self):
        # Walker rows are per-world seeded, so any split — including the
        # worker-count-sized one — reproduces the unsplit rows bitwise.
        spec = small_spec(
            algorithm="random_walk", horizon=400.0,
            distances=self.MANY, ks=(2,), trials=8,
        )
        serial = run_sweep(spec, cache=False)
        for workers in (2, 5):
            assert_sweeps_equal(
                serial, run_sweep(spec, cache=False, workers=workers)
            )

    def test_require_k_le_d_filters_before_chunking(self):
        spec = small_spec(
            distances=self.MANY, ks=(1, 32), require_k_le_d=True, trials=8
        )
        assert_sweeps_equal(
            run_sweep(spec, cache=False),
            run_sweep(spec, cache=False, workers=3),
        )


class TestBlockScheduler:
    def test_matches_reference_semantics_per_cell(self):
        spec = adaptive(rel_ci=0.15, max_trials=512)
        result = run_sweep(spec, cache=False, workers=3)
        for cell in result:
            reference = reference_cell_times(spec, cell.distance, cell.k)
            assert np.array_equal(cell.times, reference)

    def test_virtual_executor_reproduces_serial_results(self):
        spec = adaptive(max_trials=128)
        serial = run_sweep(spec, cache=False)
        virtual = VirtualExecutor(
            4, cost_fn=lambda fn, payload, result: float(result.size)
        )
        modelled = run_sweep(spec, cache=False, executor=virtual)
        assert_sweeps_equal(serial, modelled)
        total = sum(cell.trials for cell in serial)
        # Work conservation: the modelled makespan is bounded by the
        # serial total and by perfect speedup from below.
        assert virtual.makespan <= total
        assert virtual.makespan >= total / 4

    def test_speculation_never_changes_results(self):
        # One straggler cell + tiny sibling: with 4 workers the
        # scheduler speculates deep into the straggler's stream; the
        # result must still be the deterministic policy prefix.
        spec = adaptive(
            rel_ci=0.3, distances=(8,), ks=(1, 4), max_trials=2048
        )
        serial = run_sweep(spec, cache=False)
        pooled = run_sweep(spec, cache=False, workers=4)
        assert_sweeps_equal(serial, pooled)

    def test_block_tasks_are_pure(self):
        spec = adaptive()
        a = _execute_block((spec, 8, 1, 2))
        b = _execute_block((spec, 8, 1, 2))
        assert np.array_equal(a, b)
        assert a.size == 64  # third block of the capped schedule


class TestWalkerChunkingKeepsHash:
    def test_walker_specs_exempt_from_chunk_marker(self):
        # Walker rows chunk bitwise-identically (per-world seeds), so
        # their canonical dict — and their cache entries — must not move.
        spec = small_spec(
            algorithm="random_walk", horizon=400.0,
            distances=tuple(range(4, 16)), ks=(2,),
        )
        assert "fixed_chunking" not in spec.to_dict()


class TestSharedExecutorFailureIsolation:
    def test_failed_sweep_leaves_no_stale_tickets(self, tmp_path, monkeypatch):
        """A sweep dying mid-run must not poison a shared executor.

        The permanent crash storm exhausts max_restarts and the sweep
        raises; a later sweep on the *same* executor must run cleanly
        rather than collecting the dead sweep's tickets.
        """
        from repro.sweep.executor import ProcessExecutor

        crash = tmp_path / "crash"
        with ProcessExecutor(2, max_restarts=0) as shared:
            crash.write_text("100")
            monkeypatch.setenv(CRASH_ENV, str(crash))
            with pytest.raises(RuntimeError, match="giving up"):
                run_sweep(adaptive(max_trials=64), cache=False, executor=shared)
            monkeypatch.delenv(CRASH_ENV)
            crash.unlink()
            healthy = run_sweep(
                adaptive(max_trials=64), cache=False, executor=shared
            )
        assert_sweeps_equal(
            healthy, run_sweep(adaptive(max_trials=64), cache=False)
        )

    def test_failed_fixed_sweep_leaves_no_stale_tickets(self):
        """Same isolation on the fixed path, with an in-process failure."""
        from repro.sweep import SerialExecutor
        import repro.sweep.runner as runner_mod

        calls = {"n": 0}
        real = runner_mod._execute_chunk

        def exploding(payload):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("injected chunk failure")
            return real(payload)

        with SerialExecutor() as shared:
            import unittest.mock as mock

            with mock.patch.object(
                runner_mod, "_execute_chunk", exploding
            ):
                with pytest.raises(ValueError, match="injected"):
                    run_sweep(small_spec(), cache=False, executor=shared)
            assert shared.pending == 0
            healthy = run_sweep(small_spec(), cache=False, executor=shared)
        assert_sweeps_equal(
            healthy, run_sweep(small_spec(), cache=False)
        )


class TestWallBudgetScheduling:
    def test_wall_cells_run_whole_cell_and_in_parallel(self):
        spec = small_spec(
            budget=BudgetPolicy.wall(0.05, min_trials=32, max_trials=128)
        )
        result = run_sweep(spec, cache=False, workers=2)
        for cell in result:
            assert 32 <= cell.trials <= 128
            # Whole blocks only: the schedule's boundaries.
            assert cell.trials in (32, 64, 128)

    def test_wall_budget_charges_only_own_cell_time(self, monkeypatch):
        """Each cell's wall clock excludes its siblings' simulation.

        With per-cell wall budgets far above one cell's cost but below
        the whole sweep's, every cell must still reach max_trials: the
        old block scheduler charged cells the whole sweep's elapsed
        time, stopping later cells at min_trials.
        """
        import repro.sweep.runner as runner_mod

        real = reference_cell_times
        seen = []

        def tracking(spec, distance, k, existing=None):
            seen.append((distance, k))
            return real(spec, distance, k, existing)

        monkeypatch.setattr(
            runner_mod, "reference_cell_times", tracking
        )
        spec = small_spec(
            budget=BudgetPolicy.wall(30.0, min_trials=32, max_trials=64)
        )
        result = run_sweep(spec, cache=False)
        # 30s per cell dwarfs this workload: every cell reaches its
        # trial ceiling no matter how long its siblings ran.
        assert all(cell.trials == 64 for cell in result)
        assert len(seen) == 4  # one whole-cell reference task per cell


class TestVirtualExecutorLatencyModel:
    """The remote cost extensions: flat latency + result-transfer time."""

    def test_defaults_leave_costs_unchanged(self):
        ex = VirtualExecutor(1, cost_fn=lambda fn, payload, result: 2.0)
        ex.submit(_double, np.ones(1))
        ex.next_completed()
        assert ex.makespan == 2.0

    def test_latency_charges_flat_per_task(self):
        ex = VirtualExecutor(
            2, cost_fn=lambda fn, payload, result: 1.0, latency=0.5
        )
        for value in range(4):
            ex.submit(_double, np.asarray([float(value)]))
        while ex.pending:
            ex.next_completed()
        assert ex.makespan == 3.0  # two (1 + 0.5) tasks per worker

    def test_bandwidth_charges_result_transfer(self):
        ex = VirtualExecutor(
            1, cost_fn=lambda fn, payload, result: 0.0, bandwidth=8.0
        )
        ex.submit(_double, np.ones(4))  # result: 4 float64 = 32 bytes
        ex.next_completed()
        assert ex.makespan == 4.0

    def test_invalid_model_rejected(self):
        with pytest.raises(ValueError, match="latency"):
            VirtualExecutor(1, cost_fn=lambda *a: 1.0, latency=-0.1)
        with pytest.raises(ValueError, match="bandwidth"):
            VirtualExecutor(1, cost_fn=lambda *a: 1.0, bandwidth=0.0)

    def test_modelled_remote_sweep_matches_serial(self):
        # The cost model may only move the virtual clock, never the
        # arrays: an adaptive sweep under a high-latency remote model
        # is bitwise the serial sweep.
        spec = adaptive(max_trials=128)
        serial = run_sweep(spec, cache=False)
        modelled = VirtualExecutor(
            4,
            cost_fn=lambda fn, payload, result: float(result.size),
            latency=5.0,
            bandwidth=1e6,
        )
        remote_like = run_sweep(spec, cache=False, executor=modelled)
        assert_sweeps_equal(serial, remote_like)


class TestTrackerPatchSerialisation:
    """Regression: the pre-3.13 tracker monkeypatch must be serialised.

    ``_attach_untracked`` swaps ``resource_tracker.register`` for a
    no-op around the attach.  Pre-fix, two threads interleaving the
    save/patch/restore sequence could save the *other thread's no-op*
    as "original" and restore that, permanently disabling resource
    tracking for the whole process.
    """

    def test_concurrent_attaches_restore_real_register(self, monkeypatch):
        from multiprocessing import resource_tracker, shared_memory

        from repro.sweep.executor import _attach_untracked

        real_register = resource_tracker.register
        first_inside = threading.Event()
        release_first = threading.Event()
        attached = []

        class FakeSegment:
            def __init__(self, name=None, **kwargs):
                # What a real attach does on pre-3.13 interpreters —
                # call whatever register currently points at.
                resource_tracker.register(name, "shared_memory")
                attached.append(name)
                if name == "held":
                    first_inside.set()
                    assert release_first.wait(timeout=10.0)

        monkeypatch.setattr(shared_memory, "SharedMemory", FakeSegment)

        threads = [
            threading.Thread(target=_attach_untracked, args=("held",)),
            threading.Thread(target=_attach_untracked, args=("second",)),
        ]
        threads[0].start()
        try:
            assert first_inside.wait(timeout=10.0)
            threads[1].start()
            # The second attach must queue on the patch lock rather
            # than run while the register swap is mid-flight.
            time.sleep(0.2)
            assert attached == ["held"]
            assert resource_tracker.register is not real_register
        finally:
            release_first.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert attached == ["held", "second"]
        # The load-bearing check: with interleaved attaches the real
        # register is back afterwards.  Pre-fix, the second thread
        # restored the first thread's no-op lambda instead.
        assert resource_tracker.register is real_register


class TestGiveUpReleasesSegments:
    """Regression: give-up must unlink every in-flight shm segment.

    Pre-fix, records failed by the give-up path kept their segments
    until collect or ``close()``; a caller that (reasonably) stopped
    collecting after the first RuntimeError leaked one ``/dev/shm``
    block per outstanding task for the lifetime of a shared executor.
    """

    @staticmethod
    def _track_allocations(ex, monkeypatch):
        created = []
        real_allocate = ex._allocate_shm

        def tracking_allocate(result_shape):
            segment = real_allocate(result_shape)
            if segment is not None:
                created.append(segment.name)
            return segment

        monkeypatch.setattr(ex, "_allocate_shm", tracking_allocate)
        return created

    def test_pool_failure_giveup_unlinks_all_segments(self, monkeypatch):
        from multiprocessing import shared_memory

        ex = ProcessExecutor(1, max_restarts=0, shm_min_bytes=1)
        created = self._track_allocations(ex, monkeypatch)

        def broken_pool():
            raise RuntimeError("pool creation failed")

        monkeypatch.setattr(ex, "_ensure_pool", broken_pool)
        try:
            ex.submit(_double, np.arange(64.0), result_shape=(64,))
            ex.submit(_double, np.arange(64.0), result_shape=(64,))
            assert len(created) == 2
            # Nothing collected yet: give-up ran inside the failed
            # launches and must already have unlinked both segments.
            for name in created:
                with pytest.raises(FileNotFoundError):
                    shared_memory.SharedMemory(name=name)
            with pytest.raises(RuntimeError, match="giving up"):
                ex.next_completed()
        finally:
            ex.close()

    def test_crash_storm_giveup_unlinks_uncollected(
        self, tmp_path, monkeypatch
    ):
        from multiprocessing import shared_memory

        crash = tmp_path / "crash"
        crash.write_text("100")
        monkeypatch.setenv(CRASH_ENV, str(crash))
        with ProcessExecutor(1, max_restarts=0, shm_min_bytes=1) as ex:
            created = self._track_allocations(ex, monkeypatch)
            ex.submit(_double, np.arange(64.0), result_shape=(64,))
            ex.submit(_double, np.arange(64.0), result_shape=(64,))
            assert len(created) == 2
            with pytest.raises(RuntimeError, match="giving up"):
                ex.next_completed()
            # The second task's failure was never collected; its
            # segment must be gone anyway — pre-fix it lingered until
            # close().
            for name in created:
                with pytest.raises(FileNotFoundError):
                    shared_memory.SharedMemory(name=name)
