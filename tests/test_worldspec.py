"""`WorldSpec` layer: validation, canonicalisation, and the legacy-path pin.

The load-bearing guarantee of the generalised world seam (DESIGN.md §10):
a ``None`` or all-default ``WorldSpec`` takes the *structurally unchanged*
legacy code path in every engine, so the paper's static single-target
model is bitwise identical to the pre-worlds engines.  The property tests
here pin that across all three engines through the ``Engine`` protocol
adapters, alongside the spec's validation/serialisation contract, the
``TargetTrack`` closed forms, and the ``Result.meta`` aliasing regression.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    GridBeliefSearch,
    NonUniformSearch,
    SingleSpiralSearch,
)
from repro.sim import (
    Engine,
    ExcursionBatchEngine,
    RandomWalker,
    StepEngine,
    WalkerBatchEngine,
    engine_for,
)
from repro.sim.rng import derive_rng
from repro.sim.world import (
    Result,
    TargetTrack,
    World,
    WorldSpec,
    initial_targets,
    place_targets,
    place_treasure,
    resolve_world,
)


class TestWorldSpecValidation:
    def test_defaults_are_the_paper_model(self):
        spec = WorldSpec()
        assert spec.is_default and spec.is_static
        assert spec.describe() == "default"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_targets=0),
            dict(motion="teleport"),
            dict(motion="static", motion_rate=0.5),
            dict(motion="walk"),  # needs a rate in (0, 1]
            dict(motion="walk", motion_rate=1.5),
            dict(motion="drift", motion_rate=0.0),
            dict(arrival="poisson"),
            dict(arrival="present", arrival_hazard=0.1),
            dict(arrival="geometric"),  # needs a hazard in (0, 1]
            dict(arrival="geometric", arrival_hazard=2.0),
            dict(detection_prob=0.0),
            dict(detection_prob=1.5),
        ],
    )
    def test_rejects_inconsistent_knobs(self, kwargs):
        with pytest.raises(ValueError):
            WorldSpec(**kwargs)

    def test_is_static_covers_motion_only(self):
        # Geometric arrival with static motion still needs arrival draws:
        # is_static answers "are positions time-invariant", nothing more.
        spec = WorldSpec(arrival="geometric", arrival_hazard=0.1)
        assert spec.is_static and not spec.is_default

    def test_describe_lists_non_default_knobs(self):
        spec = WorldSpec(n_targets=3, motion="drift", motion_rate=0.25)
        text = spec.describe()
        assert "n_targets=3" in text and "drift(0.25)" in text

    def test_dict_roundtrip(self):
        spec = WorldSpec(
            n_targets=2, motion="walk", motion_rate=0.1,
            arrival="geometric", arrival_hazard=0.01, detection_prob=0.8,
        )
        assert WorldSpec.from_dict(spec.to_dict()) == spec
        assert WorldSpec.from_dict({}) == WorldSpec()


class TestResolveWorld:
    def test_none_and_default_canonicalise_to_none(self):
        assert resolve_world(None) is None
        assert resolve_world(WorldSpec()) is None

    def test_non_default_passes_through(self):
        spec = WorldSpec(n_targets=2)
        assert resolve_world(spec) is spec

    def test_rejects_foreign_types(self):
        with pytest.raises(TypeError):
            resolve_world({"n_targets": 2})


class TestPlacement:
    def test_distance_one_offaxis_collapses_to_corner_cell(self):
        # There is no distance-1 cell off both axes; the documented
        # collapse is the spiral-last ring cell (0, -1).
        assert place_treasure(1, "offaxis").treasure == (0, -1)

    @pytest.mark.parametrize("distance", [1, 2, 3, 17, 100])
    def test_random_ring_distance_is_exact(self, distance):
        for seed in range(40):
            world = place_treasure(distance, "random", seed=seed)
            assert world.distance == distance

    def test_random_draw_rides_the_registered_stream(self):
        from repro.sim.world import PLACEMENT_DRAW_STREAM
        from repro.core.geometry import sample_uniform_ring

        rng = derive_rng(5, PLACEMENT_DRAW_STREAM)
        x, y = sample_uniform_ring(rng, 20, 1)
        assert place_treasure(20, "random", seed=5).treasure == (
            int(x[0]), int(y[0]),
        )

    def test_live_generator_seed_is_consumed_directly(self):
        rng = np.random.default_rng(3)
        a = place_treasure(9, "random", seed=rng)
        b = place_treasure(9, "random", seed=np.random.default_rng(3))
        assert a.treasure == b.treasure

    def test_place_targets_first_matches_place_treasure(self):
        for placement in ("axis", "corner", "offaxis", "random"):
            targets = place_targets(12, placement, n_targets=3, seed=8)
            assert tuple(targets[0]) == place_treasure(
                12, placement, seed=8
            ).treasure

    def test_extra_target_positions_independent_of_count(self):
        small = place_targets(12, "offaxis", n_targets=2, seed=8)
        large = place_targets(12, "offaxis", n_targets=5, seed=8)
        assert np.array_equal(small[1], large[1])
        assert all(
            abs(x) + abs(y) == 12 for x, y in large.tolist()
        )


class TestInitialTargets:
    def test_world_normalises_to_single_row(self):
        targets = initial_targets(World((3, -4)), WorldSpec())
        assert targets.shape == (1, 2) and tuple(targets[0]) == (3, -4)

    def test_flat_pair_and_array_forms(self):
        spec = WorldSpec()
        assert initial_targets((2, 5), spec).shape == (1, 2)
        two = initial_targets([[1, 2], [3, 4]], WorldSpec(n_targets=2))
        assert two.shape == (2, 2)

    def test_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="n_targets"):
            initial_targets([[1, 2]], WorldSpec(n_targets=2))

    def test_target_on_source_rejected(self):
        with pytest.raises(ValueError, match="source"):
            initial_targets([[0, 0], [1, 2]], WorldSpec(n_targets=2))


class TestTargetTrack:
    def make(self, spec, trials=4, targets=((5, 0),)):
        return TargetTrack(
            spec,
            np.asarray(targets, dtype=np.int64),
            trials,
            derive_rng(11, 0x7A26E7, 0),
        )

    def test_static_positions_never_move(self):
        track = self.make(WorldSpec(arrival="geometric", arrival_hazard=0.5))
        early = track.positions_at(0.0).copy()
        late = track.positions_at(1000.0)
        assert np.array_equal(early, late)

    def test_drift_is_a_closed_form_of_time(self):
        spec = WorldSpec(motion="drift", motion_rate=0.25)
        track = self.make(spec, trials=8)
        base = track.positions_at(0.0).copy()
        at_8 = track.positions_at(8.0)
        moved = np.abs(at_8 - base).sum(axis=-1)
        assert np.all(moved == 2)  # floor(0.25 * 8) cells, one direction
        # Re-querying an earlier time is exact, not stateful.
        assert np.array_equal(track.positions_at(0.0), base)

    def test_walk_moves_at_most_one_cell_per_step_and_is_monotone(self):
        spec = WorldSpec(motion="walk", motion_rate=0.5)
        track = self.make(spec, trials=16)
        prev = track.positions_at(0.0).copy()
        for t in (3.0, 3.0, 7.0):  # repeated query: a no-op window
            cur = track.positions_at(t)
            assert np.abs(cur - prev).sum() <= 16 * 7
            prev = cur.copy()

    def test_walk_is_reproducible_from_the_motion_stream(self):
        spec = WorldSpec(motion="walk", motion_rate=0.3)
        a = self.make(spec, trials=6).positions_at(50.0)
        b = self.make(spec, trials=6).positions_at(50.0)
        assert np.array_equal(a, b)

    def test_arrival_draws_only_for_geometric(self):
        present = self.make(WorldSpec(n_targets=1))
        assert np.all(present.arrival == 0.0)
        late = self.make(
            WorldSpec(arrival="geometric", arrival_hazard=0.2), trials=64
        )
        assert late.arrival.shape == (64, 1)
        assert np.all(late.arrival >= 1.0)  # geometric support is 1, 2, ...


ENGINES = {
    "excursion-batch": (
        ExcursionBatchEngine(), lambda k: NonUniformSearch(k=k)
    ),
    "walker-batch": (WalkerBatchEngine(), lambda k: RandomWalker()),
    "step": (StepEngine(), lambda k: SingleSpiralSearch()),
}


class TestLegacyBitwiseParity:
    """All-default world == no world, bitwise, on every engine."""

    @pytest.mark.parametrize("name", sorted(ENGINES))
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        distance=st.integers(2, 12),
        k=st.integers(1, 4),
    )
    def test_default_world_spec_is_bitwise_legacy(
        self, name, seed, distance, k
    ):
        engine, build = ENGINES[name]
        world = place_treasure(distance, "offaxis")
        horizon = 16.0 * distance * distance
        legacy = engine.find_times(
            build(k), world, k, 8, seed, horizon=horizon, world_spec=None
        )
        explicit = engine.find_times(
            build(k), world, k, 8, seed, horizon=horizon,
            world_spec=WorldSpec(),
        )
        assert np.array_equal(legacy, explicit)

    def test_adapters_add_nothing_over_direct_calls(self):
        world = place_treasure(8, "offaxis")
        from repro.sim.events import simulate_find_times

        direct = simulate_find_times(
            NonUniformSearch(k=2), world, 2, 16, 7, horizon=1024.0
        )
        via = ExcursionBatchEngine().find_times(
            NonUniformSearch(k=2), world, 2, 16, 7, horizon=1024.0
        )
        assert np.array_equal(direct, via)

        walker_direct = RandomWalker().find_times(
            world, 2, 16, 7, horizon=512.0
        )
        walker_via = WalkerBatchEngine().find_times(
            RandomWalker(), world, 2, 16, 7, horizon=512.0
        )
        assert np.array_equal(walker_direct, walker_via)

    def test_engine_for_dispatch(self):
        assert isinstance(
            engine_for(NonUniformSearch(k=2)), ExcursionBatchEngine
        )
        assert isinstance(engine_for(RandomWalker()), WalkerBatchEngine)
        assert isinstance(engine_for(GridBeliefSearch()), WalkerBatchEngine)
        assert isinstance(engine_for(SingleSpiralSearch()), StepEngine)
        with pytest.raises(TypeError):
            engine_for(object())

    def test_adapters_satisfy_the_protocol(self):
        for engine, _ in ENGINES.values():
            assert isinstance(engine, Engine)

    def test_step_engine_requires_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            StepEngine().find_times(
                SingleSpiralSearch(), place_treasure(4, "axis"), 1, 2, 0
            )


class TestResultMetaAliasing:
    def test_two_results_never_alias_one_meta_dict(self):
        shared = {"tag": "a", "nested": {"n": 1}}
        first = Result(time=1.0, found=True, meta=shared)
        second = Result(time=2.0, found=True, meta=shared)
        assert first.meta is not second.meta
        assert first.meta["nested"] is not second.meta["nested"]

    def test_caller_mutation_after_construction_is_invisible(self):
        payload = {"nested": {"n": 1}}
        result = Result(time=1.0, found=True, meta=payload)
        payload["nested"]["n"] = 99
        payload["added"] = True
        assert result.meta == {"nested": {"n": 1}}

    def test_default_meta_not_shared_between_instances(self):
        a = Result(time=1.0, found=True)
        b = Result(time=2.0, found=True)
        a.meta["only_a"] = 1
        assert b.meta == {}
