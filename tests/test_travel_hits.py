"""Exhaustive cross-check of the travel-hit geometry in the fast engine.

The vectorised engine resolves treasure hits on Manhattan legs with
closed-form masks (`_outbound_hit_offsets` / `_return_hit_offsets`).  These
tests enumerate *every* treasure position in a box and compare against a
literal walk of the leg, so any edge case in the sign/branch logic would
surface.
"""

import numpy as np
import pytest

from repro.core.walks import manhattan_path
from repro.sim.events import _outbound_hit_offsets, _return_hit_offsets

BOX = range(-6, 7)


def literal_leg_hits(a, b, treasure):
    """Step index (1-based) at which the walk a->b stands on the treasure."""
    for t, node in enumerate(manhattan_path(a, b), start=1):
        if node == treasure:
            return t
    return None


class TestOutboundHits:
    @pytest.mark.parametrize("ux,uy", [(4, 3), (-5, 2), (0, 4), (3, 0), (-2, -6), (0, -3), (5, -1)])
    def test_matches_literal_walk(self, ux, uy):
        for tx in BOX:
            for ty in BOX:
                if (tx, ty) == (0, 0):
                    continue
                mask, offset = _outbound_hit_offsets(
                    np.array([ux]), np.array([uy]), tx, ty
                )
                literal = literal_leg_hits((0, 0), (ux, uy), (tx, ty))
                if literal is None:
                    assert not mask[0], (ux, uy, tx, ty)
                else:
                    assert mask[0], (ux, uy, tx, ty)
                    assert offset[0] == literal, (ux, uy, tx, ty)

    def test_zero_leg(self):
        mask, _ = _outbound_hit_offsets(np.array([0]), np.array([0]), 1, 1)
        assert not mask[0]


class TestReturnHits:
    @pytest.mark.parametrize("ex,ey", [(4, 3), (-5, 2), (0, 4), (3, 0), (-2, -6), (0, -3), (6, -2)])
    def test_matches_literal_walk(self, ex, ey):
        for tx in BOX:
            for ty in BOX:
                if (tx, ty) == (0, 0):
                    continue
                mask, offset = _return_hit_offsets(
                    np.array([ex]), np.array([ey]), tx, ty
                )
                literal = literal_leg_hits((ex, ey), (0, 0), (tx, ty))
                # The mask also admits the *start* cell (offset 0), which the
                # literal walk does not emit; both conventions are harmless
                # (the spiral's last cell was just visited) — allow it.
                if literal is None:
                    if mask[0]:
                        assert (tx, ty) == (ex, ey) and offset[0] == 0
                else:
                    assert mask[0], (ex, ey, tx, ty)
                    assert offset[0] == literal, (ex, ey, tx, ty)

    def test_return_from_origin(self):
        mask, offset = _return_hit_offsets(np.array([0]), np.array([0]), 2, 0)
        assert not mask[0]
