"""Tests for find-time distribution tools (repro.analysis.distributions)."""

import math

import numpy as np
import pytest

from repro.algorithms import HarmonicSearch, NonUniformSearch, UniformSearch
from repro.analysis.distributions import (
    doubling_tail,
    empirical_cdf,
    hill_estimator,
    survival_at,
    tail_is_geometric,
)
from repro.sim.events import simulate_find_times
from repro.sim.world import place_treasure


class TestEmpiricalCdf:
    def test_basic_cdf(self):
        x, f = empirical_cdf([3.0, 1.0, 2.0])
        assert x.tolist() == [1.0, 2.0, 3.0]
        assert f.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_defective_distribution_tops_below_one(self):
        x, f = empirical_cdf([1.0, math.inf, math.inf, 2.0])
        assert f[-1] == pytest.approx(0.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            empirical_cdf([])


class TestSurvival:
    def test_counts_censored_as_alive(self):
        assert survival_at([1.0, math.inf, 5.0], 2.0) == pytest.approx(2 / 3)

    def test_doubling_tail_levels(self):
        tail = doubling_tail([1.0, 3.0, 9.0], t0=1.0, levels=3)
        assert [t for t, _ in tail] == [1.0, 2.0, 4.0]
        assert tail[0][1] == pytest.approx(2 / 3)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            doubling_tail([1.0], 0.0, 2)
        with pytest.raises(ValueError):
            doubling_tail([1.0], 1.0, 0)


class TestGeometricTail:
    def test_exponential_data_passes(self):
        rng = np.random.default_rng(0)
        data = rng.exponential(scale=10.0, size=5000)
        assert tail_is_geometric(data, t0=10.0, levels=6, ratio=0.6)

    def test_pareto_heavy_tail_fails(self):
        rng = np.random.default_rng(1)
        data = (rng.pareto(0.4, size=5000) + 1.0) * 10.0
        # alpha = 0.4: survival decays ~2^-0.4 ~ 0.76 per doubling, slower
        # than the 0.6 geometric envelope.
        assert not tail_is_geometric(data, t0=10.0, levels=8, ratio=0.6)

    def test_iterated_algorithms_have_geometric_tails(self):
        """The stage-structure proofs imply super-geometric doubling tails."""
        world = place_treasure(16, "offaxis")
        for alg in (NonUniformSearch(k=4), UniformSearch(0.5)):
            times = simulate_find_times(alg, world, 4, 400, seed=2)
            t0 = float(np.median(times))
            assert tail_is_geometric(times, t0=t0, levels=6, ratio=0.75), alg.name

    def test_one_shot_harmonic_tail_is_heavy(self):
        """Conditional on success, one-shot harmonic inherits the zipf
        radius's power tail — geometric decay must fail."""
        world = place_treasure(8, "offaxis")
        times = simulate_find_times(HarmonicSearch(0.3), world, 1, 4000, seed=3)
        finite = times[np.isfinite(times)]
        t0 = float(np.median(finite))
        assert not tail_is_geometric(finite, t0=t0, levels=12, ratio=0.5)


class TestHill:
    def test_recovers_pareto_exponent(self):
        rng = np.random.default_rng(4)
        alpha = 1.5
        data = (rng.pareto(alpha, size=40_000) + 1.0) * 3.0
        est = hill_estimator(data, tail_fraction=0.05)
        assert est == pytest.approx(alpha, rel=0.15)

    def test_diagnoses_infinite_mean(self):
        rng = np.random.default_rng(5)
        data = (rng.pareto(0.7, size=40_000) + 1.0) * 2.0
        assert hill_estimator(data, tail_fraction=0.05) < 1.0

    def test_rejects_tiny_samples(self):
        with pytest.raises(ValueError):
            hill_estimator([1.0, 2.0])
