"""Tests for worlds, placements, and the seeding policy."""

import numpy as np
import pytest

from repro.sim.rng import derive_rng, make_rng, spawn_rngs, spawn_seeds
from repro.sim.world import Result, World, place_treasure


class TestWorld:
    def test_distance_is_l1(self):
        assert World((3, -4)).distance == 7

    def test_source_is_origin(self):
        assert World((1, 0)).source == (0, 0)

    def test_rejects_treasure_on_source(self):
        with pytest.raises(ValueError):
            World((0, 0))


class TestPlacements:
    @pytest.mark.parametrize("placement", ["axis", "corner", "offaxis", "random"])
    @pytest.mark.parametrize("distance", [1, 2, 7, 100])
    def test_distance_respected(self, placement, distance):
        world = place_treasure(distance, placement, seed=3)
        assert world.distance == distance

    def test_axis_and_corner_cells(self):
        assert place_treasure(9, "axis").treasure == (9, 0)
        assert place_treasure(9, "corner").treasure == (0, -9)

    def test_offaxis_avoids_axes(self):
        for d in range(2, 40):
            x, y = place_treasure(d, "offaxis").treasure
            assert x != 0 and y != 0

    def test_offaxis_is_spiral_late(self):
        from repro.core.spiral import spiral_hit_time, worst_hit_time_at_distance

        # hit time 4(D-1)^2 + 3(D-1) - 1 vs worst 4D^2 + 3D: the ratio is
        # ((D-1)/D)^2 + o(1), i.e. > 0.75 from D=8 and -> 1 as D grows.
        for d in (8, 32, 128):
            x, y = place_treasure(d, "offaxis").treasure
            assert spiral_hit_time(x, y) > 0.75 * worst_hit_time_at_distance(d)

    def test_random_placement_is_reproducible(self):
        a = place_treasure(20, "random", seed=5).treasure
        b = place_treasure(20, "random", seed=5).treasure
        assert a == b

    def test_rejects_unknown_placement(self):
        with pytest.raises(ValueError):
            place_treasure(5, "nowhere")

    def test_rejects_non_positive_distance(self):
        with pytest.raises(ValueError):
            place_treasure(0, "axis")


class TestResult:
    def test_found_requires_finite_time(self):
        with pytest.raises(ValueError):
            Result(time=float("inf"), found=True)

    def test_unfound_with_infinite_time_ok(self):
        r = Result(time=float("inf"), found=False)
        assert not r.found


class TestRng:
    def test_make_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_make_rng_from_int(self):
        a = make_rng(42).integers(0, 1000, 5)
        b = make_rng(42).integers(0, 1000, 5)
        assert np.array_equal(a, b)

    def test_spawn_seeds_are_distinct(self):
        seeds = spawn_seeds(1, 10)
        streams = [np.random.default_rng(s).integers(0, 2**31, 4) for s in seeds]
        as_tuples = {tuple(s.tolist()) for s in streams}
        assert len(as_tuples) == 10

    def test_spawn_rngs_count(self):
        assert len(spawn_rngs(2, 7)) == 7
        assert spawn_rngs(2, 0) == []

    def test_spawn_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_derive_rng_is_stable(self):
        a = derive_rng(9, 1, 2).integers(0, 10**6, 3)
        b = derive_rng(9, 1, 2).integers(0, 10**6, 3)
        assert np.array_equal(a, b)

    def test_derive_rng_varies_with_key(self):
        a = derive_rng(9, 1, 2).integers(0, 10**6, 3)
        b = derive_rng(9, 1, 3).integers(0, 10**6, 3)
        assert not np.array_equal(a, b)

    def test_derive_rng_accepts_tuple_seed(self):
        a = derive_rng((4, 5), 1).integers(0, 10**6, 3)
        b = derive_rng((4, 5), 1).integers(0, 10**6, 3)
        assert np.array_equal(a, b)

    def test_derive_rng_rejects_generator(self):
        with pytest.raises(TypeError):
            derive_rng(np.random.default_rng(0), 1)

    def test_derive_rng_distinguishes_spawned_siblings(self):
        """Spawned children differ only by spawn key; folding in only the
        entropy used to collapse every child onto one derived stream (which
        silently made per-child step-engine runs identical replicas)."""
        child_a, child_b = spawn_seeds(7, 2)
        a = derive_rng(child_a, 0).integers(0, 10**6, 8)
        b = derive_rng(child_b, 0).integers(0, 10**6, 8)
        assert not np.array_equal(a, b)

    def test_derive_rng_spawned_child_differs_from_root(self):
        (child,) = spawn_seeds(7, 1)
        a = derive_rng(child, 0).integers(0, 10**6, 8)
        b = derive_rng(7, 0).integers(0, 10**6, 8)
        assert not np.array_equal(a, b)

    def test_derive_rng_trailing_zero_keys_do_not_alias(self):
        """numpy strips trailing zero entropy words; the derivation must
        not let (seed, 1) and (seed, 1, 0) — or (seed, 0) and the bare
        seed — collapse onto one stream."""
        draws = [
            make_rng(np.random.SeedSequence(9)).integers(0, 10**6, 8),
            derive_rng(9, 0).integers(0, 10**6, 8),
            derive_rng(9, 1).integers(0, 10**6, 8),
            derive_rng(9, 1, 0).integers(0, 10**6, 8),
            derive_rng(9, 1, 0, 0).integers(0, 10**6, 8),
        ]
        for i, a in enumerate(draws):
            for b in draws[i + 1:]:
                assert not np.array_equal(a, b)

    def test_derive_rng_tuple_seed_does_not_parse_as_spawned_child(self):
        """The word encoding is self-delimiting: the tuple seed (7, 1) must
        not produce the same stream as the first spawned child of root 7
        (whose words would otherwise read entropy 7, spawn-length 1,
        spawn-key 0 — the same raw sequence)."""
        child = spawn_seeds(7, 1)[0]
        a = derive_rng((7, 1), 5).integers(0, 10**6, 8)
        b = derive_rng(child, 5).integers(0, 10**6, 8)
        assert not np.array_equal(a, b)
