"""Tests for competitive analysis helpers (repro.analysis.competitiveness)."""

import pytest

from repro.algorithms import NonUniformSearch
from repro.analysis.competitiveness import (
    competitiveness,
    measure_competitiveness,
    optimal_time,
    sweep_competitiveness,
)


class TestOptimalTime:
    def test_formula(self):
        assert optimal_time(10, 5) == pytest.approx(10 + 100 / 5)

    def test_k_one(self):
        assert optimal_time(8, 1) == pytest.approx(72.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            optimal_time(0, 1)
        with pytest.raises(ValueError):
            optimal_time(1, 0)

    def test_competitiveness_ratio(self):
        assert competitiveness(200.0, 10, 5) == pytest.approx(200 / 30)


class TestMeasure:
    def test_cell_fields(self):
        cell = measure_competitiveness(
            lambda k: NonUniformSearch(k=k), 16, 4, trials=30, seed=0
        )
        assert cell.distance == 16 and cell.k == 4 and cell.trials == 30
        assert cell.mean_time > 16
        assert cell.ratio == pytest.approx(cell.mean_time / cell.optimal)
        assert cell.stderr > 0

    def test_reproducible(self):
        a = measure_competitiveness(lambda k: NonUniformSearch(k=k), 16, 2, 20, seed=1)
        b = measure_competitiveness(lambda k: NonUniformSearch(k=k), 16, 2, 20, seed=1)
        assert a.mean_time == b.mean_time


class TestSweep:
    def test_grid_size(self):
        cells = sweep_competitiveness(
            lambda k: NonUniformSearch(k=k), [8, 16], [1, 2], trials=10, seed=2
        )
        assert len(cells) == 4

    def test_k_le_d_filter(self):
        cells = sweep_competitiveness(
            lambda k: NonUniformSearch(k=k),
            [8],
            [4, 16],
            trials=10,
            seed=3,
            require_k_le_d=True,
        )
        assert [(c.distance, c.k) for c in cells] == [(8, 4)]

    def test_filter_does_not_shift_seeds(self):
        """Skipping k > D cells must not change other cells' seeds."""
        unfiltered = sweep_competitiveness(
            lambda k: NonUniformSearch(k=k), [8], [4, 16], trials=10, seed=4
        )
        filtered = sweep_competitiveness(
            lambda k: NonUniformSearch(k=k),
            [8],
            [4, 16],
            trials=10,
            seed=4,
            require_k_le_d=True,
        )
        assert unfiltered[0].mean_time == filtered[0].mean_time
