"""Cross-validation of the batched walker engine (repro.sim.walkers).

The walker engine never steps the grid cell by cell (the Lévy simulator
resolves whole segments in closed form), so agreement with the step
engine is *distributional*, mirroring the excursion-engine validation in
``tests/test_engine_vs_events.py``:

* success rates within binomial noise of the step engine's;
* KS tests on the finite (finding) portion of the find-time samples;
* the horizon boundary rule (a find at exactly ``horizon`` is kept);
* bitwise reproducibility: batch rows vs direct calls, pooled sweeps vs
  serial sweeps, and the deprecated ``random_walk_find_times`` alias vs
  the engine it wraps.
"""

import math

import numpy as np
import pytest
from scipy import stats

from repro.algorithms.baselines import random_walk_find_times
from repro.sim.engine import run_agent
from repro.sim.rng import derive_rng, spawn_seeds
from repro.sim.walkers import (
    BiasedWalker,
    LevyWalker,
    RandomWalker,
    walker_find_times,
    walker_find_times_batch,
)
from repro.sim.world import World, place_treasure
from repro.sweep import SweepSpec, run_sweep

# (walker, world, horizon): scenarios small enough for the step engine
# yet with non-trivial success probability within the horizon.
PARITY_CASES = [
    (RandomWalker(), place_treasure(2, "axis"), 60),
    (BiasedWalker(0.9), place_treasure(5, "axis"), 200),
    (LevyWalker(2.0), place_treasure(6, "axis"), 300),
]


def _step_engine_times(walker, world, horizon, runs, seed):
    """Single-agent find times from the step engine (inf when censored)."""
    algorithm = walker.step_algorithm()
    times = np.full(runs, np.inf)
    for i in range(runs):
        trace = run_agent(algorithm, world, derive_rng(seed, i), horizon)
        if trace.find_time is not None:
            times[i] = trace.find_time
    return times


class TestDistributionalParity:
    @pytest.mark.parametrize(
        "walker,world,horizon",
        PARITY_CASES,
        ids=["random", "biased", "levy"],
    )
    def test_success_rate_and_ks_vs_step_engine(self, walker, world, horizon):
        fast = walker.find_times(world, 1, 1500, seed=11, horizon=horizon)
        slow = _step_engine_times(walker, world, horizon, 300, seed=12)

        fast_rate = float(np.isfinite(fast).mean())
        slow_rate = float(np.isfinite(slow).mean())
        # 300 step-engine runs: ~3 sigma of binomial noise stays under 0.1.
        assert abs(fast_rate - slow_rate) < 0.12

        fast_finite = fast[np.isfinite(fast)]
        slow_finite = slow[np.isfinite(slow)]
        assert fast_finite.size > 30 and slow_finite.size > 30
        result = stats.ks_2samp(fast_finite, slow_finite)
        assert result.pvalue > 0.001

    def test_biased_mean_ci_overlap(self):
        """Conditional means agree within pooled standard error."""
        walker = BiasedWalker(0.8)
        world = place_treasure(4, "axis")
        fast = walker.find_times(world, 1, 2000, seed=21, horizon=150)
        slow = _step_engine_times(walker, world, 150, 400, seed=22)
        f = fast[np.isfinite(fast)]
        s = slow[np.isfinite(slow)]
        pooled_se = math.sqrt(f.var() / f.size + s.var() / s.size)
        assert abs(f.mean() - s.mean()) < 5 * pooled_se + 1e-9

    def test_k_walkers_beat_one(self):
        world = place_treasure(3, "axis")
        one = RandomWalker().find_times(world, 1, 800, seed=31, horizon=100)
        four = RandomWalker().find_times(world, 4, 800, seed=32, horizon=100)
        assert np.isfinite(four).mean() > np.isfinite(one).mean()


class TestHorizonBoundary:
    """A find at exactly ``horizon`` is kept — the step engine's rule."""

    def test_random_walker_keeps_find_at_exact_horizon(self):
        world = World((2, 0))
        times = RandomWalker().find_times(world, 1, 2000, seed=41, horizon=2)
        finite = times[np.isfinite(times)]
        assert finite.size > 0
        assert np.all(finite == 2.0)

    def test_levy_walker_keeps_find_at_exact_horizon(self):
        # Only a first segment of length >= 3 in the +x direction can reach
        # (3, 0) by t = 3; any such hit lands at exactly t = 3.
        world = World((3, 0))
        times = LevyWalker(2.0).find_times(world, 1, 2000, seed=42, horizon=3)
        finite = times[np.isfinite(times)]
        assert finite.size > 0
        assert np.all(finite == 3.0)

    def test_levy_hit_after_horizon_is_censored(self):
        # Horizon 2 cannot reach distance 3, even mid-segment.
        times = LevyWalker(2.0).find_times(World((3, 0)), 1, 500, seed=43, horizon=2)
        assert np.all(~np.isfinite(times))


class TestReproducibility:
    def test_chunk_size_does_not_change_the_distribution(self):
        """Chunking is an implementation knob, not a semantic one."""
        world = place_treasure(3, "axis")
        small = RandomWalker().find_times(
            world, 2, 600, seed=51, horizon=120, chunk=7
        )
        large = RandomWalker().find_times(
            world, 2, 600, seed=52, horizon=120, chunk=4096
        )
        assert abs(np.isfinite(small).mean() - np.isfinite(large).mean()) < 0.1

    def test_same_seed_is_bitwise_stable(self):
        world = place_treasure(4, "axis")
        for walker in (RandomWalker(), BiasedWalker(0.9), LevyWalker(2.0)):
            a = walker.find_times(world, 2, 100, seed=53, horizon=200)
            b = walker.find_times(world, 2, 100, seed=53, horizon=200)
            assert np.array_equal(a, b)

    def test_batch_rows_match_direct_calls(self):
        worlds = [place_treasure(2, "axis"), place_treasure(4, "offaxis")]
        for walker in (RandomWalker(), BiasedWalker(0.9), LevyWalker(2.0)):
            matrix = walker_find_times_batch(
                walker, worlds, 2, 80, seed=54, horizon=150
            )
            seeds = spawn_seeds(54, len(worlds))
            for row, world, child in zip(matrix, worlds, seeds):
                direct = walker.find_times(world, 2, 80, child, horizon=150)
                assert np.array_equal(row, direct)

    def test_functional_wrapper_matches_method(self):
        world = place_treasure(3, "axis")
        a = walker_find_times(RandomWalker(), world, 1, 50, seed=55, horizon=60)
        b = RandomWalker().find_times(world, 1, 50, seed=55, horizon=60)
        assert np.array_equal(a, b)


class TestDeprecatedAlias:
    def test_alias_is_bitwise_identical_and_warns(self):
        world = place_treasure(3, "axis")
        with pytest.deprecated_call():
            legacy = random_walk_find_times(
                world, 2, 60, 100, np.random.default_rng(61)
            )
        modern = RandomWalker().find_times(
            world, 2, 60, np.random.default_rng(61), horizon=100, chunk=4096
        )
        assert np.array_equal(legacy, modern)


class TestValidation:
    def test_rejects_bad_counts(self):
        world = place_treasure(3, "axis")
        with pytest.raises(ValueError):
            RandomWalker().find_times(world, 0, 1, seed=0, horizon=10)
        with pytest.raises(ValueError):
            RandomWalker().find_times(world, 1, 0, seed=0, horizon=10)

    @pytest.mark.parametrize("horizon", [0, -5, math.inf, math.nan, None])
    def test_rejects_bad_horizons(self, horizon):
        world = place_treasure(3, "axis")
        with pytest.raises(ValueError):
            BiasedWalker().find_times(world, 1, 10, seed=0, horizon=horizon)

    def test_rejects_bad_chunk(self):
        world = place_treasure(3, "axis")
        with pytest.raises(ValueError):
            RandomWalker().find_times(world, 1, 10, seed=0, horizon=10, chunk=0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BiasedWalker(persistence=1.0)
        with pytest.raises(ValueError):
            LevyWalker(mu=1.0)
        with pytest.raises(ValueError):
            walker_find_times_batch(
                RandomWalker(), [], 1, 10, seed=0, horizon=10
            )


class TestSweepIntegration:
    def _spec(self, **overrides):
        base = dict(
            algorithm="biased_walk",
            distances=(3, 5),
            ks=(1, 2),
            trials=40,
            params={"persistence": 0.9},
            seed=71,
            horizon=200.0,
        )
        base.update(overrides)
        return SweepSpec(**base)

    def test_walker_sweep_runs_and_caches(self, tmp_path):
        first = run_sweep(self._spec(), cache_dir=str(tmp_path))
        assert len(first) == 4
        assert all(cell.times.shape == (40,) for cell in first)
        second = run_sweep(self._spec(), cache_dir=str(tmp_path))
        assert second.from_cache
        for a, b in zip(first.cells, second.cells):
            assert np.array_equal(a.times, b.times)

    def test_workers_match_serial_bitwise(self):
        serial = run_sweep(self._spec(), cache=False)
        pooled = run_sweep(self._spec(), cache=False, workers=2)
        for a, b in zip(serial.cells, pooled.cells):
            assert (a.distance, a.k) == (b.distance, b.k)
            assert np.array_equal(a.times, b.times)

    @pytest.mark.parametrize("algorithm", ["random_walk", "biased_walk", "levy"])
    def test_walker_sweep_without_horizon_is_rejected(self, algorithm):
        spec = self._spec(algorithm=algorithm, params={}, horizon=None)
        with pytest.raises(ValueError, match="horizon"):
            run_sweep(spec, cache=False)

    def test_levy_params_reach_the_builder(self):
        from repro.sweep import build_algorithm

        walker = build_algorithm("levy", 4, {"mu": 1.5, "max_segment": 100})
        assert isinstance(walker, LevyWalker)
        assert walker.mu == 1.5 and walker.max_segment == 100

    def test_success_rises_with_k(self):
        result = run_sweep(self._spec(), cache=False)
        assert (
            result.cell(3, 2).success_rate >= result.cell(3, 1).success_rate
        )
