"""Dynamic/multi-target worlds: engine semantics, sweep hashing, E12 wiring.

Complements ``tests/test_worldspec.py`` (which pins the *legacy* path):
here the non-default ``WorldSpec`` routes are exercised — determinism of
the vectorised dynamic kernels, multi-target/arrival/mobility semantics,
the ``grid_belief`` adaptive searcher, and the sweep layer's world-field
hashing rules (static specs keep their historical hashes bit for bit).
"""

import numpy as np
import pytest

from repro.algorithms import GridBeliefSearch, NonUniformSearch
from repro.algorithms.belief import AdaptiveSearcher
from repro.scenarios import ScenarioSpec
from repro.sim import RandomWalker
from repro.sim.events import simulate_find_times
from repro.sim.world import WorldSpec, place_treasure
from repro.sweep import SweepSpec, run_sweep

OFFAXIS = lambda d: [-1, -(d - 1)]  # noqa: E731 - the adversarial cell

COMPOUND = WorldSpec(
    n_targets=2, motion="walk", motion_rate=0.1,
    arrival="geometric", arrival_hazard=0.01, detection_prob=0.9,
)


def two_targets(d):
    return np.array([OFFAXIS(d), [d, 0]], dtype=np.int64)


class TestDynamicDeterminism:
    D, K, TRIALS, HORIZON = 10, 2, 24, 2400.0

    def runs(self, engine_call):
        a = engine_call(seed=5)
        b = engine_call(seed=5)
        c = engine_call(seed=6)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_excursion_kernel(self):
        self.runs(lambda seed: simulate_find_times(
            NonUniformSearch(k=self.K), two_targets(self.D), self.K,
            self.TRIALS, seed, horizon=self.HORIZON, world_spec=COMPOUND,
        ))

    def test_walker_kernel(self):
        self.runs(lambda seed: RandomWalker().find_times(
            two_targets(self.D), self.K, self.TRIALS, seed,
            horizon=self.HORIZON, world_spec=COMPOUND,
        ))

    def test_belief_searcher(self):
        self.runs(lambda seed: GridBeliefSearch().find_times(
            two_targets(self.D), self.K, self.TRIALS, seed,
            horizon=self.HORIZON, world_spec=COMPOUND,
        ))

    def test_single_static_target_through_dynamic_kernel_is_legacy(self):
        # A vanishing walk rate forces the dynamic route while the target
        # effectively never moves; target draws live on TARGET_STREAM, so
        # the searcher's own draws — and the find times — are the legacy
        # kernel's bit for bit.
        d, k = 12, 2
        horizon = 24.0 * d * d
        legacy = simulate_find_times(
            NonUniformSearch(k=k), place_treasure(d, "offaxis"), k, 40, 9,
            horizon=horizon,
        )
        dynamic = simulate_find_times(
            NonUniformSearch(k=k), np.array([OFFAXIS(d)]), k, 40, 9,
            horizon=horizon,
            world_spec=WorldSpec(motion="walk", motion_rate=1e-12),
        )
        assert np.array_equal(legacy, dynamic)


class TestMultiTargetSemantics:
    """Satellite: one extra target on the commuting x-axis at (D, 0)."""

    D, K, TRIALS = 12, 2, 40

    def test_walker_axis_target_only_ever_helps_elementwise(self):
        # Walker trajectories are seeded per (trial, agent) independent of
        # the world, so an extra target is a pure extra hit opportunity:
        # the paired find times can only drop, trial by trial.
        horizon = 24.0 * self.D * self.D
        one = RandomWalker().find_times(
            place_treasure(self.D, "offaxis"), self.K, self.TRIALS, 9,
            horizon=horizon,
        )
        two = RandomWalker().find_times(
            two_targets(self.D), self.K, self.TRIALS, 9, horizon=horizon,
            world_spec=WorldSpec(n_targets=2),
        )
        assert np.all(two <= one)
        assert np.any(two < one)

    def test_excursion_axis_target_helps_distributionally(self):
        # The excursion batch kernel's vectorised draw layout shifts when
        # a trial stops early, so the guarantee is distributional, not
        # per-trial: excursions walk x-first Manhattan legs, the axis is a
        # commuting highway, and the (D, 0) target gets found in passing.
        horizon = 24.0 * self.D * self.D
        one = simulate_find_times(
            NonUniformSearch(k=self.K), place_treasure(self.D, "offaxis"),
            self.K, self.TRIALS, 9, horizon=horizon,
        )
        two = simulate_find_times(
            NonUniformSearch(k=self.K), two_targets(self.D), self.K,
            self.TRIALS, 9, horizon=horizon,
            world_spec=WorldSpec(n_targets=2),
        )
        assert np.isfinite(two).all()
        assert two.mean() < one.mean()


class TestArrivalAndDetectionSemantics:
    D, K, TRIALS = 10, 2, 30
    HORIZON = 24.0 * D * D

    def test_rare_arrival_censors_most_trials(self):
        # Mean arrival 10^6 >> horizon: the target almost never exists
        # inside the window, so almost every trial is censored.
        never = simulate_find_times(
            NonUniformSearch(k=self.K), np.array([OFFAXIS(self.D)]),
            self.K, self.TRIALS, 3, horizon=self.HORIZON,
            world_spec=WorldSpec(arrival="geometric", arrival_hazard=1e-6),
        )
        assert np.isfinite(never).mean() <= 0.1

    def test_immediate_arrival_behaves_like_present(self):
        # hazard = 1 makes every arrival time exactly 1: find times can
        # differ from the static world only for hits at wall-clock < 1.
        late = simulate_find_times(
            NonUniformSearch(k=self.K), np.array([OFFAXIS(self.D)]),
            self.K, self.TRIALS, 3, horizon=self.HORIZON,
            world_spec=WorldSpec(arrival="geometric", arrival_hazard=1.0),
        )
        assert np.isfinite(late).all()
        assert np.all(late >= 1.0)

    def test_lossy_world_detection_slows_finds(self):
        sharp = simulate_find_times(
            NonUniformSearch(k=self.K), np.array([OFFAXIS(self.D)]),
            self.K, 60, 3, horizon=self.HORIZON,
            world_spec=WorldSpec(motion="walk", motion_rate=1e-12),
        )
        lossy = simulate_find_times(
            NonUniformSearch(k=self.K), np.array([OFFAXIS(self.D)]),
            self.K, 60, 3, horizon=self.HORIZON,
            world_spec=WorldSpec(
                motion="walk", motion_rate=1e-12, detection_prob=0.1
            ),
        )
        def pinned_mean(times):
            return np.where(np.isfinite(times), times, self.HORIZON).mean()

        assert pinned_mean(lossy) > pinned_mean(sharp)


class TestGridBeliefSearch:
    def test_finds_static_target_reliably(self):
        times = GridBeliefSearch().find_times(
            place_treasure(8, "offaxis"), 2, 40, 1, horizon=4096.0
        )
        assert np.isfinite(times).all()
        assert np.all(times > 0)

    def test_default_world_spec_equals_none_bitwise(self):
        world = place_treasure(8, "offaxis")
        a = GridBeliefSearch().find_times(
            world, 2, 24, 7, horizon=2048.0, world_spec=None
        )
        b = GridBeliefSearch().find_times(
            world, 2, 24, 7, horizon=2048.0, world_spec=WorldSpec()
        )
        assert np.array_equal(a, b)

    def test_is_an_adaptive_searcher_not_a_walker(self):
        from repro.sim.walkers import Walker

        searcher = GridBeliefSearch()
        assert isinstance(searcher, AdaptiveSearcher)
        assert not isinstance(searcher, Walker)
        assert "GridBelief" in searcher.describe()

    def test_requires_finite_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            GridBeliefSearch().find_times(
                place_treasure(8, "offaxis"), 2, 8, 0, horizon=None
            )

    def test_rejects_crash_scenarios(self):
        with pytest.raises(ValueError, match="crash"):
            GridBeliefSearch().find_times(
                place_treasure(8, "offaxis"), 2, 8, 0, horizon=512.0,
                scenario=ScenarioSpec(crash_hazard=0.01),
            )

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            GridBeliefSearch(cell=0)
        with pytest.raises(ValueError):
            GridBeliefSearch(radius=0)
        with pytest.raises(ValueError):
            GridBeliefSearch(tremble=1.0)

    def test_scenario_speeds_and_delays_apply(self):
        world = place_treasure(8, "offaxis")
        plain = GridBeliefSearch().find_times(
            world, 2, 24, 7, horizon=4096.0
        )
        staggered = GridBeliefSearch().find_times(
            world, 2, 24, 7, horizon=4096.0,
            scenario=ScenarioSpec(start_stagger=64.0),
        )
        assert not np.array_equal(plain, staggered)


class TestSweepWorldField:
    def base(self, **overrides):
        kwargs = dict(
            algorithm="nonuniform", distances=(6, 10), ks=(2,), trials=8,
            seed=13, horizon=1200.0,
        )
        kwargs.update(overrides)
        return SweepSpec(**kwargs)

    def test_static_specs_keep_historical_hashes(self):
        legacy = self.base()
        explicit = self.base(world=WorldSpec())
        assert explicit.world is None
        assert legacy.spec_hash() == explicit.spec_hash()
        assert legacy.data_hash() == explicit.data_hash()
        assert "world" not in legacy.to_dict()
        assert "world" not in legacy.data_dict()

    def test_dynamic_world_moves_both_hashes(self):
        legacy = self.base()
        dynamic = self.base(world=WorldSpec(n_targets=2))
        assert dynamic.spec_hash() != legacy.spec_hash()
        assert dynamic.data_hash() != legacy.data_hash()
        assert dynamic.to_dict()["world"]["n_targets"] == 2

    def test_world_accepts_mapping_and_roundtrips(self):
        spec = self.base(world={"motion": "drift", "motion_rate": 0.25})
        assert isinstance(spec.world, WorldSpec)
        again = SweepSpec.from_dict(spec.to_dict())
        assert again.world == spec.world
        assert again.spec_hash() == spec.spec_hash()
        with pytest.raises(TypeError):
            self.base(world=42)

    def test_dynamic_specs_never_carry_chunk_marker(self):
        spec = self.base(
            distances=tuple(range(4, 16)),
            world=WorldSpec(motion="drift", motion_rate=0.1),
        )
        assert "fixed_chunking" not in spec.to_dict()

    def test_dynamic_sweep_requires_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            run_sweep(
                self.base(horizon=None, world=WorldSpec(n_targets=2)),
                cache=False,
            )

    def test_adaptive_searcher_requires_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            run_sweep(
                self.base(algorithm="grid_belief", horizon=None),
                cache=False,
            )

    def test_dynamic_sweep_is_deterministic_across_runs(self):
        spec = self.base(world=COMPOUND, algorithm="grid_belief")
        a = run_sweep(spec, cache=False)
        b = run_sweep(spec, cache=False)
        for x, y in zip(a.cells, b.cells):
            assert np.array_equal(x.times, y.times)

    def test_dynamic_sweep_differs_from_static(self):
        static = run_sweep(self.base(), cache=False)
        dynamic = run_sweep(
            self.base(world=WorldSpec(motion="drift", motion_rate=0.5)),
            cache=False,
        )
        assert any(
            not np.array_equal(x.times, y.times)
            for x, y in zip(static.cells, dynamic.cells)
        )


class TestExperimentE12:
    def test_registered_with_paper_anchor(self):
        from repro.experiments.registry import EXPERIMENTS

        info = EXPERIMENTS["E12"]
        assert "generalised worlds" in info.title
        assert "relaxed" in info.paper_result
