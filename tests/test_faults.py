"""Chaos tests for ``repro.faults`` (DESIGN.md §13).

The load-bearing guarantees:

* fault plans are declarative, serialisable, validated, and scheduled
  from their own registered RNG stream — never the spec's;
* every injected fault raises into a *real* recovery handler, so a
  faulted run of a recoverable plan is bitwise identical to a clean
  run on every backend (chaos parity);
* unrecoverable situations degrade in tiers (remote → process →
  serial) with a single warning, or quarantine the offending artifact
  (corrupt cache entries) instead of wedging the sweep;
* crash droppings — orphaned ``.sweep_tmp_*`` files, old quarantines —
  are reclaimed by sweep startup and ``cache prune``;
* ``RemoteExecutor.close()`` stays bounded even while a dial is stuck
  mid-handshake against an unresponsive host.
"""

import json
import os
import socket
import threading
import time
import warnings

import numpy as np
import pytest

from repro.faults import (
    FAULT_PLAN_ENV,
    FAULT_SITES,
    FAULTS,
    FaultError,
    FaultPlan,
    FaultRule,
    backoff_delays,
    deactivate,
    fault_plan,
    load_plan,
    retry_call,
)
from repro.obs import BUS, MemorySink, tracing
from repro.sweep import (
    LoopbackWorker,
    RemoteExecutor,
    SweepSpec,
    VirtualExecutor,
    make_executor,
    run_sweep,
)
from repro.sweep.cache import (
    QUARANTINE_SUFFIX,
    TMP_PREFIX,
    cache_path,
    clean_stale_files,
    load_result,
    save_result,
)
from repro.sweep.executor import CRASH_ENV, SerialExecutor
from repro.sweep.runner import _execute_block


@pytest.fixture(autouse=True)
def _clean_injector(monkeypatch):
    """Every test starts and ends with the singleton disarmed."""
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    deactivate()
    assert not FAULTS.enabled
    yield
    deactivate()


def plan(*rules, seed=0):
    return FaultPlan(rules=tuple(rules), seed=seed)


def rule(site, **kw):
    return FaultRule(site=site, **kw)


def small_spec(**overrides):
    base = dict(
        algorithm="nonuniform",
        distances=(8, 16),
        ks=(1, 4),
        trials=20,
        seed=42,
    )
    base.update(overrides)
    return SweepSpec(**base)


def assert_sweeps_equal(a, b):
    assert len(a.cells) == len(b.cells)
    for x, y in zip(a.cells, b.cells):
        assert (x.distance, x.k) == (y.distance, y.k)
        assert np.array_equal(x.times, y.times), (x.distance, x.k)


class TestFaultPlanModel:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule(site="cache.reed")

    def test_rule_bounds_validated(self):
        with pytest.raises(ValueError):
            FaultRule(site="cache.read", p=1.5)
        with pytest.raises(ValueError):
            FaultRule(site="cache.read", after=-1)
        with pytest.raises(ValueError):
            FaultRule(site="cache.read", times=-1)
        with pytest.raises(ValueError):
            FaultRule(site="remote.slow", delay=-0.1)

    def test_json_roundtrip(self):
        original = plan(
            rule("cache.read", p=0.5, after=2, times=3),
            rule("remote.slow", delay=0.25),
            seed=7,
        )
        assert FaultPlan.from_json(original.to_json()) == original

    def test_load_plan_accepts_inline_json_and_files(self, tmp_path):
        original = plan(rule("pool.kill", times=1), seed=3)
        text = original.to_json()
        assert load_plan(text) == original  # inline JSON
        path = tmp_path / "plan.json"
        path.write_text(text)
        assert load_plan(str(path)) == original  # file path

    def test_load_plan_rejects_malformed_json(self):
        with pytest.raises(ValueError):
            load_plan('{"rules": [{"site"')
        with pytest.raises(ValueError):
            load_plan(json.dumps({"rules": [{"mode": "error"}]}))

    def test_unknown_rule_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault rule keys"):
            FaultRule.from_dict({"site": "cache.read", "when": "always"})

    def test_after_and_times_windows(self):
        with fault_plan(plan(rule("cache.read", after=1, times=1))):
            assert FAULTS.check("cache.read") is None  # skipped by after
            assert FAULTS.check("cache.read") is not None  # fires once
            assert FAULTS.check("cache.read") is None  # budget exhausted
            assert FAULTS.injections == {"cache.read": 1}

    def test_sites_are_independent(self):
        with fault_plan(plan(rule("cache.write", times=1))):
            assert FAULTS.check("cache.read") is None
            assert FAULTS.check("cache.write") is not None

    def test_probabilistic_schedule_is_reproducible(self):
        schedule = plan(rule("cache.read", p=0.4), seed=11)

        def pattern():
            with fault_plan(schedule):
                return [
                    FAULTS.check("cache.read") is not None
                    for _ in range(40)
                ]

        first = pattern()
        assert first == pattern()
        assert any(first) and not all(first)  # p is neither 0 nor 1

    def test_deactivate_disables_the_one_attribute_gate(self):
        with fault_plan(plan(rule("cache.read"))):
            assert FAULTS.enabled
        assert not FAULTS.enabled

    def test_every_site_is_documented(self):
        # The plan vocabulary is the public chaos surface; a seam added
        # without a FAULT_SITES entry would be unreachable from plans.
        for site in FAULT_SITES:
            FaultRule(site=site)  # constructs without error


class TestRetryHelper:
    def test_backoff_yields_capped_jittered_doubling(self):
        delays = list(
            backoff_delays(attempts=5, base_delay=0.1, max_delay=0.3)
        )
        assert len(delays) == 4  # attempts - 1 sleeps
        assert all(0.0 < d <= 0.3 * 1.25 for d in delays)
        # Doubling until the cap: later delays never shrink below an
        # earlier one by more than the jitter band.
        assert delays[-1] >= delays[0]

    def test_retry_call_recovers_from_transient_failures(self):
        calls = []
        naps = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        assert (
            retry_call(
                flaky, site="test", attempts=3, base_delay=0.01,
                sleep=naps.append,
            )
            == "ok"
        )
        assert len(calls) == 3
        assert len(naps) == 2

    def test_retry_call_exhausts_and_raises_the_last_error(self):
        def always_down():
            raise OSError("still down")

        with pytest.raises(OSError, match="still down"):
            retry_call(
                always_down, site="test", attempts=3, base_delay=0.0,
                sleep=lambda _: None,
            )

    def test_non_retryable_errors_propagate_immediately(self):
        calls = []

        def typo():
            calls.append(1)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            retry_call(
                typo, site="test", attempts=5, base_delay=0.0,
                sleep=lambda _: None,
            )
        assert len(calls) == 1


class TestCacheSeams:
    def _seed_cache(self, spec, tmp_path):
        run_sweep(spec, cache=True, cache_dir=str(tmp_path))
        path = cache_path(spec, str(tmp_path))
        assert os.path.exists(path)
        return path

    def test_injected_read_error_is_a_plain_miss(self, tmp_path):
        spec = small_spec()
        path = self._seed_cache(spec, tmp_path)
        with fault_plan(plan(rule("cache.read", times=1))):
            assert load_result(spec, path) is None  # injected miss
            assert load_result(spec, path) is not None  # budget spent
        assert os.path.exists(path)  # transient: entry untouched

    def test_injected_corruption_quarantines_the_entry(self, tmp_path):
        spec = small_spec()
        path = self._seed_cache(spec, tmp_path)
        with fault_plan(plan(rule("cache.corrupt", times=1))):
            assert load_result(spec, path) is None
        assert not os.path.exists(path)
        assert os.path.exists(path + QUARANTINE_SUFFIX)

    def test_quarantined_entry_is_rebuilt_bitwise(self, tmp_path):
        spec = small_spec()
        clean = run_sweep(spec, cache=True, cache_dir=str(tmp_path))
        with fault_plan(plan(rule("cache.corrupt", times=1))):
            rebuilt = run_sweep(spec, cache=True, cache_dir=str(tmp_path))
        assert not rebuilt.from_cache
        assert_sweeps_equal(clean, rebuilt)
        # The rebuild wrote a fresh, loadable entry.
        after = run_sweep(spec, cache=True, cache_dir=str(tmp_path))
        assert after.from_cache
        assert_sweeps_equal(clean, after)

    def test_injected_write_failure_skips_the_entry(self, tmp_path):
        spec = small_spec()
        path = cache_path(spec, str(tmp_path))
        with fault_plan(plan(rule("cache.write", times=1))):
            result = run_sweep(spec, cache=True, cache_dir=str(tmp_path))
        assert result.cells and not os.path.exists(path)

    def test_crash_mode_orphans_a_tmp_file(self, tmp_path):
        # The ENOSPC/kill -9 shape: temp written, rename never happens.
        spec = small_spec()
        cells = [  # a minimal valid payload for save_result
            c for c in spec.cells()
        ]
        times = np.zeros((len(cells), spec.trials))
        path = cache_path(spec, str(tmp_path))
        with fault_plan(plan(rule("cache.write", mode="crash", times=1))):
            assert not save_result(spec, path, cells, times)
        assert not os.path.exists(path)
        orphans = [
            name for name in os.listdir(tmp_path)
            if name.startswith(TMP_PREFIX)
        ]
        assert len(orphans) == 1

    def test_stale_droppings_are_reclaimed_by_age(self, tmp_path):
        fresh = tmp_path / (TMP_PREFIX + "live")
        stale_tmp = tmp_path / (TMP_PREFIX + "orphan")
        stale_q = tmp_path / ("entry.npz" + QUARANTINE_SUFFIX)
        unrelated = tmp_path / "sweep_real.npz"
        for target in (fresh, stale_tmp, stale_q, unrelated):
            target.write_bytes(b"x")
        old = time.time() - 3600.0
        os.utime(stale_tmp, (old, old))
        os.utime(stale_q, (old, old))
        removed = clean_stale_files(str(tmp_path))
        assert sorted(os.path.basename(p) for p in removed) == sorted(
            [stale_tmp.name, stale_q.name]
        )
        assert fresh.exists() and unrelated.exists()

    def test_sweep_startup_reclaims_stale_tmp(self, tmp_path):
        # Regression for the satellite: a crash-orphaned temp file is
        # gone after the next sweep in the same cache directory.
        orphan = tmp_path / (TMP_PREFIX + "crashed")
        orphan.write_bytes(b"x")
        old = time.time() - 3600.0
        os.utime(orphan, (old, old))
        run_sweep(small_spec(), cache=True, cache_dir=str(tmp_path))
        assert not orphan.exists()


class TestChaosParity:
    """Faulted recoverable runs are bitwise equal to clean runs."""

    RECOVERABLE = plan(
        rule("cache.read", times=1),
        rule("cache.corrupt", times=1, after=1),
        seed=5,
    )

    def test_parity_on_all_four_backends(self, tmp_path):
        spec = small_spec()
        baseline = run_sweep(spec, cache=False)
        run_sweep(spec, cache=True, cache_dir=str(tmp_path))  # seed cache

        def faulted(**kw):
            with fault_plan(self.RECOVERABLE):
                return run_sweep(
                    spec, cache=True, cache_dir=str(tmp_path), **kw
                )

        assert_sweeps_equal(baseline, faulted())
        assert_sweeps_equal(
            baseline, faulted(workers=2, backend="process")
        )
        with VirtualExecutor(
            workers=4, cost_fn=lambda fn, payload, result: 1.0
        ) as virtual:
            assert_sweeps_equal(baseline, faulted(executor=virtual))
        worker = LoopbackWorker()
        try:
            with RemoteExecutor([worker.address]) as remote:
                assert_sweeps_equal(baseline, faulted(executor=remote))
        finally:
            worker.stop()

    def test_pool_kill_parity(self):
        spec = small_spec()
        baseline = run_sweep(spec, cache=False)
        with fault_plan(plan(rule("pool.kill", times=1))):
            assert os.environ.get(CRASH_ENV)  # armed via the file hook
            faulted = run_sweep(
                spec, cache=False, workers=2, backend="process"
            )
        assert os.environ.get(CRASH_ENV) is None
        assert_sweeps_equal(baseline, faulted)

    def test_shm_attach_parity(self):
        # Attach failures fall back to inline transport, worker-side.
        spec = small_spec()
        baseline = run_sweep(spec, cache=False)
        with fault_plan(plan(rule("shm.attach"))):
            faulted = run_sweep(
                spec, cache=False, workers=2, backend="process"
            )
        assert_sweeps_equal(baseline, faulted)


def _free_port():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


class TestDegradation:
    def test_auto_degrades_remote_to_process(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ex = make_executor(
                workers=2, backend="auto",
                hosts=[("127.0.0.1", _free_port())],
                connect_timeout=1.0,
            )
        with ex:
            assert ex.backend == "process"
        degrade_warnings = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(degrade_warnings) == 1
        assert "degrading" in str(degrade_warnings[0].message)

    def test_auto_degrades_remote_to_serial_when_single_worker(self):
        with pytest.warns(RuntimeWarning, match="degrading"):
            ex = make_executor(
                workers=1, backend="auto",
                hosts=[("127.0.0.1", _free_port())],
                connect_timeout=1.0,
            )
        with ex:
            assert isinstance(ex, SerialExecutor)

    def test_auto_degrades_process_to_serial_on_injected_failure(self):
        with fault_plan(plan(rule("executor.process", times=1))):
            with pytest.warns(RuntimeWarning, match="degrading"):
                ex = make_executor(workers=2, backend="auto")
            with ex:
                assert isinstance(ex, SerialExecutor)

    def test_explicit_process_backend_never_degrades(self):
        with fault_plan(plan(rule("executor.process", times=1))):
            with pytest.raises(RuntimeError, match="injected"):
                make_executor(workers=2, backend="process")

    def test_degradation_emits_the_obs_event(self):
        sink = MemorySink()
        with tracing(sink):
            with pytest.warns(RuntimeWarning):
                make_executor(
                    workers=1, backend="auto",
                    hosts=[("127.0.0.1", _free_port())],
                    connect_timeout=1.0,
                ).close()
        degrades = [
            r for r in sink.records if r.get("name") == "fault.degrade"
        ]
        assert len(degrades) == 1
        assert degrades[0]["data"]["tier"] == "remote"
        assert degrades[0]["data"]["fallback"] == "serial"

    def test_degraded_run_is_bitwise_identical(self):
        spec = small_spec()
        baseline = run_sweep(spec, cache=False)
        with pytest.warns(RuntimeWarning, match="degrading"):
            ex = make_executor(
                workers=2, backend="auto",
                hosts=[("127.0.0.1", _free_port())],
                connect_timeout=1.0,
            )
        with ex:
            degraded = run_sweep(spec, cache=False, executor=ex)
        assert_sweeps_equal(baseline, degraded)


class TestRemoteSeams:
    def test_connect_refusal_is_retried_to_success(self):
        spec = small_spec()
        baseline = run_sweep(spec, cache=False)
        worker = LoopbackWorker()
        try:
            sink = MemorySink()
            with fault_plan(plan(rule("remote.connect", times=1))):
                with tracing(sink):
                    with RemoteExecutor([worker.address]) as remote:
                        faulted = run_sweep(
                            spec, cache=False, executor=remote
                        )
        finally:
            worker.stop()
        assert_sweeps_equal(baseline, faulted)
        retries = [
            r for r in sink.records
            if r.get("name") == "retry.attempt"
            and r["data"].get("site") == "remote.connect"
        ]
        assert retries  # the refused dial was retried, not fatal

    def test_mid_task_disconnect_resubmits_bitwise(self):
        spec = small_spec()
        baseline = run_sweep(spec, cache=False)
        workers = [LoopbackWorker(), LoopbackWorker()]
        try:
            with fault_plan(plan(rule("remote.disconnect", times=1))):
                with RemoteExecutor(
                    [w.address for w in workers]
                ) as remote:
                    faulted = run_sweep(spec, cache=False, executor=remote)
        finally:
            for w in workers:
                w.stop()
        assert_sweeps_equal(baseline, faulted)

    def test_heartbeat_blackhole_declares_worker_lost(self):
        spec = small_spec()
        baseline = run_sweep(spec, cache=False)
        workers = [LoopbackWorker(), LoopbackWorker()]
        try:
            with fault_plan(plan(rule("remote.blackhole", times=1))):
                with RemoteExecutor(
                    [w.address for w in workers],
                    heartbeat_interval=0.1,
                ) as remote:
                    faulted = run_sweep(spec, cache=False, executor=remote)
        finally:
            for w in workers:
                w.stop()
        assert_sweeps_equal(baseline, faulted)

    def test_slow_links_change_nothing_but_time(self):
        spec = small_spec()
        baseline = run_sweep(spec, cache=False)
        worker = LoopbackWorker()
        try:
            with fault_plan(
                plan(rule("remote.slow", times=3, delay=0.05))
            ):
                with RemoteExecutor([worker.address]) as remote:
                    faulted = run_sweep(spec, cache=False, executor=remote)
        finally:
            worker.stop()
        assert_sweeps_equal(baseline, faulted)


class _StalledHandshakeServer:
    """Accepts the dial, reads the hello, and never answers.

    The shape of a blackholed host: without a bounded close, a driver
    shutting down mid-connect would sit out the entire connect budget.
    """

    def __init__(self):
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.bind(("127.0.0.1", 0))
        self._server.listen(4)
        self._server.settimeout(30.0)
        self.address = self._server.getsockname()[:2]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        try:
            conn, _ = self._server.accept()
        except OSError:
            return
        with conn:
            self._stop.wait(timeout=60.0)

    def stop(self):
        self._stop.set()
        try:
            self._server.close()
        except OSError:
            pass
        self._thread.join(timeout=10.0)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.stop()


class TestBoundedClose:
    def test_close_unblocks_a_submit_stuck_mid_handshake(self):
        with _StalledHandshakeServer() as stalled:
            ex = RemoteExecutor([stalled.address], connect_timeout=60.0)
            errors = []

            def submit():
                try:
                    ex.submit(_execute_block, None)
                except RuntimeError as error:
                    errors.append(error)

            thread = threading.Thread(target=submit, daemon=True)
            thread.start()
            time.sleep(0.5)  # let the dial reach the stalled handshake
            started = time.perf_counter()
            ex.close()
            closed_in = time.perf_counter() - started
            thread.join(timeout=10.0)
            assert not thread.is_alive()
            assert closed_in < 10.0  # bounded, not the 60s dial budget
            assert errors and "failed to start" in str(errors[0])

    def test_close_is_idempotent_after_cancel(self):
        with _StalledHandshakeServer() as stalled:
            ex = RemoteExecutor([stalled.address], connect_timeout=60.0)
            threading.Thread(
                target=lambda: pytest.raises(
                    RuntimeError, ex._ensure_started
                ),
                daemon=True,
            ).start()
            time.sleep(0.2)
            ex.close()
            ex.close()  # second close is a no-op, not an error
