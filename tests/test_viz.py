"""Tests for the ASCII visualiser (repro.viz)."""

import itertools

import numpy as np
import pytest

from repro.algorithms import SingleSpiralSearch
from repro.viz.ascii_map import render_trajectory, render_visit_map


class TestRenderVisitMap:
    def test_source_and_treasure_markers(self):
        art = render_visit_map({(1, 0): 1.0}, radius=2, treasure=(0, 1))
        lines = art.splitlines()
        assert len(lines) == 5
        assert lines[2][2] == "o"  # source at the centre
        assert lines[1][2] == "X"  # treasure above it

    def test_found_marker(self):
        art = render_visit_map({}, radius=1, treasure=(1, 0), found=True)
        assert "$" in art

    def test_intensity_ramp_monotone(self):
        art = render_visit_map({(-1, 0): 1.0, (1, 0): 10.0}, radius=1)
        row = art.splitlines()[1]
        ramp = " .:-=+*#%@"
        assert ramp.index(row[2]) > ramp.index(row[0])

    def test_auto_bounds(self):
        art = render_visit_map({(3, 2): 1.0, (-1, -1): 1.0})
        lines = art.splitlines()
        assert len(lines) == 4  # y from 2 down to -1
        assert len(lines[0]) == 5  # x from -1 to 3

    def test_rejects_negative_intensity(self):
        with pytest.raises(ValueError):
            render_visit_map({(0, 1): -1.0})

    def test_empty_map_renders_source(self):
        art = render_visit_map({}, radius=1)
        assert art.splitlines()[1][1] == "o"


class TestRenderTrajectory:
    def test_spiral_is_dense_square_blob(self):
        program = SingleSpiralSearch().step_program(np.random.default_rng(0))
        positions = list(itertools.islice(program, 48))  # covers B(3)
        art = render_trajectory(positions, radius=3)
        # Every cell in the viewport except the borders should be shaded.
        interior = [line[1:-1] for line in art.splitlines()[1:-1]]
        assert all(ch != " " for row in interior for ch in row)

    def test_treasure_found_marker(self):
        art = render_trajectory([(1, 0), (1, 1)], radius=2, treasure=(1, 1))
        assert "$" in art

    def test_treasure_unfound_marker(self):
        art = render_trajectory([(1, 0)], radius=2, treasure=(0, -2))
        assert "X" in art
