"""The RNG draw-order sanitizer (``repro.checks.trace``; REPRO_RNG_TRACE).

The determinism contract's runtime half: with tracing enabled, every
generator construction in :mod:`repro.sim.rng` records a per-scope
draw-order fingerprint, and a parity failure is reported as the first
divergent (stream key, call index) instead of a far-away bitwise diff.
"""

import numpy as np
import pytest

import repro.sim.events as events_module
from repro.checks import trace
from repro.sim.rng import (
    BLOCK_STREAM,
    derive_rng,
    derive_seed,
    make_rng,
    spawn_rngs,
    spawn_seeds,
)
from repro.sweep import SweepSpec, run_sweep


@pytest.fixture
def traced(monkeypatch):
    """Enable the sanitizer for one test with a fresh buffer."""
    monkeypatch.setenv(trace.ENV_VAR, "1")
    trace.clear()
    yield
    trace.clear()


def traced_sweep(spec, **kwargs):
    """Run one sweep under tracing and return its trace window."""
    trace.clear()
    run_sweep(spec, cache=False, **kwargs)
    return trace.snapshot()


FIXED_SPEC = SweepSpec(
    algorithm="uniform", distances=(4, 8), ks=(1, 2), trials=4, seed=1234
)
# A fixed-kind budget is folded into plain ``trials`` by the spec and
# runs on the fixed path; a rel-CI target is what engages the adaptive
# block scheduler (the tight ``max_trials`` cap keeps the run small).
ADAPTIVE_SPEC = SweepSpec(
    algorithm="uniform",
    distances=(4, 8),
    ks=(1,),
    trials=4,
    seed=99,
    budget={
        "kind": "target_rel_ci",
        "rel_ci": 0.5,
        "min_trials": 8,
        "max_trials": 16,
    },
)


class TestBuffering:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(trace.ENV_VAR, raising=False)
        assert not trace.enabled()
        make_rng(7)
        derive_rng(7, 1, 2)
        with trace.trace_scope(cell=(4, 1)):
            derive_seed(7, 3)
        assert trace.snapshot() == ()

    def test_zero_value_counts_as_disabled(self, monkeypatch):
        monkeypatch.setenv(trace.ENV_VAR, "0")
        assert not trace.enabled()

    def test_constructions_record_kind_key_scope(self, traced):
        make_rng(7)
        derive_rng(7, 11, 12)
        with trace.trace_scope(cell=(4, 1), block=0):
            derive_seed(7, 13)
        events = trace.snapshot()
        assert [e.kind for e in events] == [
            "make_rng", "derive_rng", "derive_seed",
        ]
        assert events[1].key == (11, 12)
        assert events[0].scope == ()
        assert events[2].scope == (("block", 0), ("cell", (4, 1)))
        assert all(e.index == i for i, e in enumerate(events))

    def test_spawn_records_one_event_per_child(self, traced):
        spawn_seeds(5, 3)
        spawn_rngs(5, 2)
        events = trace.snapshot()
        assert [e.kind for e in events] == [
            "spawn_seeds"] * 3 + ["spawn_rngs"] * 2
        assert [e.key for e in events] == [(0,), (1,), (2,), (0,), (1,)]

    def test_fingerprint_is_pure(self, traced):
        # Fingerprinting must not perturb the stream it observes: a
        # traced generator draws identically to an untraced one.
        traced_value = make_rng(1234).random()
        trace.clear()
        with pytest.MonkeyPatch.context() as mp:
            mp.setenv(trace.ENV_VAR, "0")
            untraced_value = make_rng(1234).random()
        assert traced_value == untraced_value

    def test_same_seed_same_fingerprint(self, traced):
        make_rng(42)
        make_rng(42)
        make_rng(43)
        prints = [e.fingerprint for e in trace.snapshot()]
        assert prints[0] == prints[1] != prints[2]


class TestComparison:
    def test_identical_traces_have_no_divergence(self, traced):
        left = traced_sweep(FIXED_SPEC)
        right = traced_sweep(FIXED_SPEC)
        assert len(left) > 0
        assert trace.first_divergence(left, right) is None
        trace.assert_traces_match(left, right)

    def test_cross_scope_order_is_free(self, traced):
        with trace.trace_scope(block=0):
            derive_seed(1, 10)
        with trace.trace_scope(block=1):
            derive_seed(1, 11)
        left = trace.snapshot()
        trace.clear()
        with trace.trace_scope(block=1):
            derive_seed(1, 11)
        with trace.trace_scope(block=0):
            derive_seed(1, 10)
        right = trace.snapshot()
        assert trace.first_divergence(left, right) is None

    def test_within_scope_order_is_not_free(self, traced):
        with trace.trace_scope(block=0):
            derive_seed(1, 10)
            derive_seed(1, 11)
        left = trace.snapshot()
        trace.clear()
        with trace.trace_scope(block=0):
            derive_seed(1, 11)
            derive_seed(1, 10)
        right = trace.snapshot()
        divergence = trace.first_divergence(left, right)
        assert divergence is not None
        assert divergence.call_index == 0

    def test_missing_call_reports_absent_side(self, traced):
        with trace.trace_scope(block=0):
            derive_seed(1, 10)
            derive_seed(1, 11)
        left = trace.snapshot()
        trace.clear()
        with trace.trace_scope(block=0):
            derive_seed(1, 10)
        right = trace.snapshot()
        divergence = trace.first_divergence(left, right)
        assert divergence is not None
        assert divergence.call_index == 1
        assert divergence.right is None
        assert "<absent>" in divergence.describe()

    def test_extra_scopes_gate(self, traced):
        with trace.trace_scope(block=0):
            derive_seed(1, 10)
        left = trace.snapshot()
        trace.clear()
        with trace.trace_scope(block=0):
            derive_seed(1, 10)
        with trace.trace_scope(block=1):  # speculative extra block
            derive_seed(1, 11)
        right = trace.snapshot()
        assert trace.first_divergence(left, right) is not None
        assert (
            trace.first_divergence(left, right, require_same_scopes=False)
            is None
        )


class TestSweepParity:
    def test_serial_fixed_runs_are_draw_order_identical(self, traced):
        left = traced_sweep(FIXED_SPEC)
        right = traced_sweep(FIXED_SPEC)
        grouped = trace.fingerprints(left)
        assert () in grouped  # scheduler-side spawn chain
        assert any(scope != () for scope in grouped)  # chunk scopes
        trace.assert_traces_match(left, right)

    def test_serial_vs_process_scheduler_parity(self, traced):
        serial = traced_sweep(FIXED_SPEC, workers=0)
        pooled = traced_sweep(FIXED_SPEC, workers=2, backend="process")
        scheduler_serial = trace.fingerprints(serial)[()]
        scheduler_pooled = trace.fingerprints(pooled)[()]
        assert len(scheduler_pooled) > 0
        # Worker-side events live in the pool processes; the parent-side
        # derivation log must agree call-for-call.
        trace.assert_traces_match(
            scheduler_serial, scheduler_pooled, require_same_scopes=False
        )

    def test_adaptive_serial_parity(self, traced):
        left = traced_sweep(ADAPTIVE_SPEC)
        right = traced_sweep(ADAPTIVE_SPEC)
        scopes = set(trace.fingerprints(left))
        assert any(
            dict(scope).get("block") is not None
            for scope in scopes
            if scope
        )
        trace.assert_traces_match(left, right)

    def test_injected_mismatch_names_stream_and_call_index(
        self, traced, monkeypatch
    ):
        baseline = traced_sweep(ADAPTIVE_SPEC)
        # Simulate the PR 2 bug class: a block-seed derivation silently
        # changes its stream tag.  Every downstream draw shifts; the
        # sanitizer must localize this to the first divergent block-seed
        # derivation, not a whole-array diff.
        monkeypatch.setattr(events_module, "BLOCK_STREAM", 0xDEADBEEF)
        forged = traced_sweep(ADAPTIVE_SPEC)
        divergence = trace.first_divergence(baseline, forged)
        assert divergence is not None
        assert divergence.scope != ()  # localized to a (cell, block) scope
        assert dict(divergence.scope).keys() == {"cell", "block"}
        description = divergence.describe()
        assert "derive_seed" in description
        assert "BLOCK_STREAM" in description  # baseline side names the tag
        assert f"{0xDEADBEEF}" in description  # forged side shows raw word
        assert f"call index {divergence.call_index}" in description
        with pytest.raises(AssertionError, match="first RNG divergence"):
            trace.assert_traces_match(baseline, forged)

    def test_forged_stream_changes_results_too(self, traced, monkeypatch):
        # The sanitizer's claim is that draw-order divergence *precedes*
        # result divergence; check the implication's other half.
        baseline = run_sweep(ADAPTIVE_SPEC, cache=False)
        monkeypatch.setattr(events_module, "BLOCK_STREAM", 0xDEADBEEF)
        forged = run_sweep(ADAPTIVE_SPEC, cache=False)
        cell = (ADAPTIVE_SPEC.distances[0], ADAPTIVE_SPEC.ks[0])
        assert not np.array_equal(
            baseline.cell(*cell).times, forged.cell(*cell).times
        )

    def test_describe_names_registered_streams(self, traced):
        derive_seed(7, BLOCK_STREAM, 4, 1, 0)
        event = trace.snapshot()[-1]
        assert "BLOCK_STREAM" in event.describe()
        assert "<scheduler>" in event.describe()
