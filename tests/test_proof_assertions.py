"""Empirical checks of the quantitative steps inside the paper's proofs.

Beyond end-to-end running times, the proofs make intermediate claims with
explicit constants.  These tests measure them directly:

* Theorem 3.1's phase-success probability: once the phase radius reaches
  ``D``, a single excursion finds the treasure with probability
  ``Omega(t_i / |B(2^i)|) = Omega(1/k)``;
* Assertion 2 of Theorem 3.3: in phase ``j`` of a late-enough stage, with
  ``2^j <= k``, a single agent succeeds with probability ``Omega(2^-j)``;
* the geometric stage-time structure that makes the expected-time sums
  converge (Assertion 1 is checked schedule-exactly in test_schedule.py).
"""

import math

import numpy as np
import pytest

from repro.algorithms.base import UniformBallFamily
from repro.core.geometry import ball_size
from repro.core.schedule import nonuniform_stage_phases, uniform_phase
from repro.core.spiral import spiral_hit_time_array
from repro.sim.world import place_treasure


def phase_success_probability(family, world, samples, seed):
    """Monte-Carlo probability that one excursion of ``family`` finds the
    treasure during its spiral (the event the proofs count)."""
    rng = np.random.default_rng(seed)
    ux, uy, budgets = family.sample(rng, samples)
    tx, ty = world.treasure
    hit = spiral_hit_time_array(tx - ux, ty - uy)
    return float(np.mean(hit <= budgets))


class TestTheorem31PhaseSuccess:
    @pytest.mark.parametrize("k", [1, 4, 16])
    def test_success_is_omega_one_over_k(self, k):
        """Phase i with 2^i >= D succeeds w.p. >= beta/k for a fixed beta."""
        distance = 24
        world = place_treasure(distance, "offaxis")
        stage = 6  # radius 64 > D
        spec = nonuniform_stage_phases(stage, float(k))[-1]
        family = UniformBallFamily(spec.radius, spec.budget)
        p = phase_success_probability(family, world, 40_000, seed=k)
        assert p >= 0.02 / k

    def test_success_scales_with_budget_over_ball(self):
        """p ~ budget / |B(radius)| while the budget ball fits inside."""
        distance = 16
        world = place_treasure(distance, "offaxis")
        radius = 64
        budgets = [256, 1024, 4096]
        ps = [
            phase_success_probability(
                UniformBallFamily(radius, b), world, 60_000, seed=b
            )
            for b in budgets
        ]
        for (b1, p1), (b2, p2) in zip(zip(budgets, ps), zip(budgets[1:], ps[1:])):
            if p1 > 0:
                ratio = p2 / p1
                assert 1.5 < ratio < 8.0  # ~4x per 4x budget


class TestAssertion2:
    @pytest.mark.parametrize("k", [2, 8, 32])
    def test_phase_j_succeeds_with_probability_two_to_minus_j(self, k):
        """Assertion 2: at stage i >= s, phase j = floor(log2 k) succeeds
        per-agent w.p. Omega(2^-j); so k agents succeed w.p. Omega(1)."""
        eps = 0.5
        distance = 20
        world = place_treasure(distance, "offaxis")
        j = int(math.floor(math.log2(k)))
        # Choose a stage i late enough that D_{i,j} > D.
        for i in range(j, 40):
            spec = uniform_phase(i, j, eps)
            if spec.radius > distance:
                break
        family = UniformBallFamily(spec.radius, spec.budget)
        p = phase_success_probability(family, world, 60_000, seed=100 + k)
        assert p >= 0.01 * 2.0**-j
        # And the k-agent phase success is a substantive constant.
        p_group = 1.0 - (1.0 - p) ** k
        assert p_group >= 0.05


class TestBallFractionGeometry:
    def test_half_ball_containment(self):
        """The proofs use: at least a constant fraction of the ball of
        radius sqrt(t)/2 around the treasure lies inside B(radius) when
        radius >= D.  Check the counting for a concrete case."""
        distance = 16
        world = place_treasure(distance, "offaxis")
        radius, budget = 32, 1024
        # Cells from which the budget spiral reaches the treasure:
        rng = np.random.default_rng(0)
        ux, uy, budgets = UniformBallFamily(radius, budget).sample(rng, 200_000)
        tx, ty = world.treasure
        hit = spiral_hit_time_array(tx - ux, ty - uy)
        p = float(np.mean(hit <= budgets))
        # |catchment| should be Theta(budget); p ~ |catchment|/|B(radius)|.
        expected = budget / (4.0 * ball_size(radius))  # quarter coverage floor
        assert p >= 0.5 * expected
