"""Tests for the top-level public API (the README quickstart contract)."""

import numpy as np

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_algorithm_classes_exported(self):
        for name in (
            "NonUniformSearch",
            "UniformSearch",
            "HarmonicSearch",
            "RhoApproxSearch",
            "HedgedApproxSearch",
            "SingleSpiralSearch",
            "KnownDSearch",
            "RandomWalkSearch",
        ):
            assert hasattr(repro, name)


class TestQuickstartContract:
    def test_readme_quickstart(self):
        """The exact flow the README promises must work."""
        world = repro.place_treasure(distance=64, placement="offaxis")
        times = repro.simulate_find_times(
            repro.NonUniformSearch(k=16), world, k=16, trials=50, seed=0
        )
        assert times.shape == (50,)
        assert np.all(np.isfinite(times))
        ratio = times.mean() / repro.optimal_time(64, 16)
        assert ratio < 40

    def test_step_engine_entry_point(self):
        world = repro.place_treasure(distance=8)
        run = repro.run_search(
            repro.SingleSpiralSearch(), world, 1, seed=0, horizon=1000
        )
        assert run.result.found

    def test_describe_everywhere(self):
        algorithms = [
            repro.NonUniformSearch(4),
            repro.UniformSearch(0.5),
            repro.HarmonicSearch(0.5),
            repro.RestartingHarmonicSearch(0.5),
            repro.RhoApproxSearch(8, 2),
            repro.HedgedApproxSearch(64, 0.5),
            repro.NaiveTrustSearch(64),
            repro.SingleSpiralSearch(),
            repro.KnownDSearch(8),
            repro.RandomWalkSearch(),
            repro.BiasedWalkSearch(),
            repro.LevyFlightSearch(),
        ]
        for alg in algorithms:
            assert isinstance(alg.describe(), str) and alg.describe()
            assert isinstance(alg.name, str) and alg.name

    def test_uses_k_flags(self):
        assert repro.NonUniformSearch(4).uses_k
        assert not repro.UniformSearch(0.5).uses_k
        assert not repro.HarmonicSearch(0.5).uses_k
        assert not repro.RandomWalkSearch().uses_k
