"""Tests for navigation primitives (repro.core.walks)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import l1_norm
from repro.core.walks import (
    diamond_tour,
    diamond_tour_hit_time,
    diamond_tour_length,
    manhattan_path,
    manhattan_path_length,
)

point = st.tuples(st.integers(-50, 50), st.integers(-50, 50))


class TestManhattanPath:
    @given(point, point)
    @settings(max_examples=200)
    def test_path_length_and_endpoint(self, a, b):
        path = list(manhattan_path(a, b))
        assert len(path) == manhattan_path_length(a, b)
        if a != b:
            assert path[-1] == b
        else:
            assert path == []

    @given(point, point)
    @settings(max_examples=200)
    def test_unit_steps(self, a, b):
        previous = a
        for node in manhattan_path(a, b):
            assert abs(node[0] - previous[0]) + abs(node[1] - previous[1]) == 1
            previous = node

    def test_x_first_convention(self):
        assert list(manhattan_path((0, 0), (2, 1))) == [(1, 0), (2, 0), (2, 1)]

    def test_negative_direction(self):
        assert list(manhattan_path((0, 0), (-1, -2))) == [(-1, 0), (-1, -1), (-1, -2)]


class TestDiamondTour:
    @pytest.mark.parametrize("r", [1, 2, 3, 5, 8])
    def test_tour_steps_and_closure(self, r):
        tour = list(diamond_tour(r))
        assert len(tour) == diamond_tour_length(r) == 8 * r
        assert tour[-1] == (r, 0)

    @pytest.mark.parametrize("r", [1, 2, 3, 5, 8])
    def test_tour_visits_entire_ring(self, r):
        visited = set(diamond_tour(r)) | {(r, 0)}
        ring = {c for c in visited if l1_norm(c[0], c[1]) == r}
        assert len(ring) == 4 * r

    @pytest.mark.parametrize("r", [1, 2, 5])
    def test_tour_is_4_connected(self, r):
        previous = (r, 0)
        for node in diamond_tour(r):
            assert abs(node[0] - previous[0]) + abs(node[1] - previous[1]) == 1
            previous = node

    @pytest.mark.parametrize("r", [1, 3, 6])
    def test_tour_stays_within_two_rings(self, r):
        for node in diamond_tour(r):
            assert l1_norm(node[0], node[1]) in (r - 1, r)

    def test_zero_radius_empty(self):
        assert list(diamond_tour(0)) == []

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            list(diamond_tour(-1))


class TestDiamondTourHitTime:
    def test_start_cell_is_time_zero(self):
        assert diamond_tour_hit_time(4, (4, 0)) == 0

    @pytest.mark.parametrize("r", [1, 2, 5])
    def test_hit_times_are_consistent_with_tour(self, r):
        for t, node in enumerate(diamond_tour(r), start=1):
            assert diamond_tour_hit_time(r, node) <= t

    def test_every_ring_cell_found_within_tour(self):
        r = 6
        for node in diamond_tour(r):
            if l1_norm(node[0], node[1]) == r:
                assert 0 <= diamond_tour_hit_time(r, node) <= 8 * r

    def test_unreachable_target_rejected(self):
        with pytest.raises(ValueError):
            diamond_tour_hit_time(3, (3, 3))
