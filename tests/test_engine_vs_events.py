"""Cross-validation: the two engines must agree.

Two levels of agreement are enforced:

1. **Exact replay** — for a single agent with a shared RNG stream, the
   scalar excursion evaluator :func:`repro.sim.events.excursion_find_time`
   must return exactly the step at which the step engine sees the agent on
   the treasure (they consume randomness identically).

2. **Distributional** — the vectorised engine (which draws from one pooled
   RNG) must produce find-time distributions statistically indistinguishable
   from the step engine's across placements and algorithms.
"""

import math

import numpy as np
import pytest
from scipy import stats

from repro.algorithms import (
    HarmonicSearch,
    NonUniformSearch,
    RhoApproxSearch,
    UniformSearch,
)
from repro.sim.engine import run_agent
from repro.sim.events import (
    excursion_find_time,
    simulate_find_times,
    simulate_find_times_batch,
)
from repro.sim.rng import derive_rng
from repro.sim.world import World, place_treasure

EXACT_CASES = [
    (NonUniformSearch(k=2), (4, 3)),
    (NonUniformSearch(k=8), (0, -6)),
    (UniformSearch(eps=0.5), (5, 0)),
    (UniformSearch(eps=0.2), (-3, -3)),
    (RhoApproxSearch(k_a=8, rho=2), (2, -5)),
    (HarmonicSearch(delta=0.5), (1, 1)),
]


class TestExactReplay:
    @pytest.mark.parametrize("alg,treasure", EXACT_CASES)
    def test_step_engine_matches_excursion_evaluator(self, alg, treasure):
        world = World(treasure)
        agreements = 0
        for i in range(30):
            t_events = excursion_find_time(
                alg, world, derive_rng(1234, i), max_phases=20_000
            )
            horizon = 40_000 if math.isinf(t_events) else int(t_events) + 10
            trace = run_agent(alg, world, derive_rng(1234, i), horizon)
            if math.isinf(t_events):
                assert trace.find_time is None or trace.find_time > 40_000
            else:
                assert trace.find_time == t_events
                agreements += 1
        if not isinstance(alg, HarmonicSearch):
            assert agreements == 30  # iterated algorithms always find

    def test_replay_is_deterministic(self):
        alg = NonUniformSearch(k=4)
        world = World((7, -2))
        times = {
            excursion_find_time(alg, world, derive_rng(55, 3)) for _ in range(5)
        }
        assert len(times) == 1


class TestDistributionalAgreement:
    @pytest.mark.parametrize(
        "alg_factory,distance",
        [
            (lambda: NonUniformSearch(k=4), 9),
            (lambda: UniformSearch(eps=0.5), 7),
        ],
    )
    def test_ks_two_sample(self, alg_factory, distance):
        """KS test between engines' find-time samples (alpha = 0.001)."""
        world = place_treasure(distance, "corner")
        k = 4
        fast = simulate_find_times(alg_factory(), world, k, 150, seed=77)

        slow = []
        for trial in range(150):
            best = math.inf
            for agent in range(k):
                t = excursion_find_time(
                    alg_factory(), world, derive_rng((88, trial), agent)
                )
                best = min(best, t)
            slow.append(best)
        slow = np.asarray(slow)

        assert np.all(np.isfinite(fast)) and np.all(np.isfinite(slow))
        result = stats.ks_2samp(fast, slow)
        assert result.pvalue > 0.001

    def test_means_agree_within_error(self):
        world = place_treasure(12, "corner")
        k = 8
        fast = simulate_find_times(NonUniformSearch(k=k), world, k, 300, seed=101)
        slow = []
        for trial in range(150):
            best = min(
                excursion_find_time(
                    NonUniformSearch(k=k), world, derive_rng((102, trial), agent)
                )
                for agent in range(k)
            )
            slow.append(best)
        slow = np.asarray(slow)
        pooled_se = math.sqrt(fast.var() / fast.size + slow.var() / slow.size)
        assert abs(fast.mean() - slow.mean()) < 5 * pooled_se + 1e-9


class TestHorizonBoundaryParity:
    """A find at exactly ``horizon`` is kept by every engine."""

    def test_step_engine_keeps_find_at_exact_horizon(self):
        # Seeds whose first excursion crosses (2, 0) at exactly t=2.
        world = World((2, 0))
        alg = NonUniformSearch(k=1)
        hitting = [
            i
            for i in range(300)
            if excursion_find_time(alg, world, derive_rng(0, i)) == 2
        ]
        assert hitting, "expected some outbound hits at t=2"
        for i in hitting[:5]:
            trace = run_agent(alg, world, derive_rng(0, i), horizon=2)
            assert trace.find_time == 2

    def test_events_engine_keeps_find_at_exact_horizon(self):
        world = World((2, 0))
        times = simulate_find_times(
            NonUniformSearch(k=1), world, 1, 200, seed=8, horizon=2.0
        )
        finite = times[np.isfinite(times)]
        assert finite.size > 0
        assert np.all(finite == 2.0)

    def test_batch_engine_agrees_bitwise_at_the_boundary(self):
        world = World((2, 0))
        scalar = simulate_find_times(
            NonUniformSearch(k=1), world, 1, 200, seed=8, horizon=2.0
        )
        batch = simulate_find_times_batch(
            NonUniformSearch(k=1), [world], 1, 200, seed=8, horizon=2.0
        )
        assert np.array_equal(scalar, batch[0])
