"""Integration tests: every registered experiment runs and shows the
theorem's shape at quick scale.

These are the repository's strongest end-to-end checks — each test runs a
full experiment pipeline and asserts the qualitative claim of the paper
result it reproduces.
"""

import math

import pytest

from repro.experiments.config import FULL, QUICK
from repro.experiments.registry import EXPERIMENTS, list_experiments, run_experiment

SEED = 987654321


@pytest.fixture(scope="module")
def results():
    """Run every experiment once (quick mode) and cache the tables."""
    return {
        info.experiment_id: run_experiment(info.experiment_id, quick=True, seed=SEED)
        for info in list_experiments()
    }


class TestRegistry:
    def test_all_twelve_registered(self):
        assert len(EXPERIMENTS) == 12
        assert [i.experiment_id for i in list_experiments()] == [
            f"E{n}" for n in range(1, 13)
        ]

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    def test_case_insensitive(self):
        tables = run_experiment("e8", quick=True, seed=SEED)
        assert tables

    def test_scales_are_sane(self):
        assert QUICK.trials < FULL.trials
        assert max(QUICK.distances) <= max(FULL.distances)


class TestE1Shape:
    def test_ratio_bounded_and_flat(self, results):
        table, summary = results["E1"]
        ratios = table.column("ratio")
        assert max(ratios) < 40
        assert max(ratios) / min(ratios) < 3.0

    def test_quadratic_at_k1(self, results):
        table, _ = results["E1"]
        k1 = [(r["D"], r["mean_time"]) for r in table.rows if r["k"] == 1]
        (d_small, t_small), (d_large, t_large) = k1[0], k1[-1]
        exponent = math.log(t_large / t_small) / math.log(d_large / d_small)
        assert 1.6 < exponent < 2.4


class TestE2Shape:
    def test_rho_squared_envelope(self, results):
        (table,) = results["E2"]
        base = next(
            r["ratio"] for r in table.rows if r["rho"] == 1.0 and r["estimate"] == "over"
        )
        for row in table.rows:
            assert row["ratio"] <= 3.0 * row["rho"] ** 2 * base

    def test_overestimates_are_benign(self, results):
        (table,) = results["E2"]
        over = [r["ratio"] for r in table.rows if r["estimate"] == "over"]
        under = [r["ratio"] for r in table.rows if r["estimate"] == "under"]
        assert max(over) < max(under)


class TestE3Shape:
    def test_phi_grows_subpolynomially(self, results):
        table, fits = results["E3"]
        for eps in {r["eps"] for r in table.rows}:
            phis = [
                (r["k"], r["phi"]) for r in table.rows if r["eps"] == eps and r["k"] >= 4
            ]
            k_lo, phi_lo = phis[0]
            k_hi, phi_hi = phis[-1]
            growth = phi_hi / phi_lo
            assert growth < (k_hi / k_lo) ** 0.75  # far below linear-in-k

    def test_polylog_fit_quality(self, results):
        _, fits = results["E3"]
        for row in fits.rows:
            assert row["r2"] > 0.8
            assert 0.5 < row["b"] < 3.5


class TestE4Shape:
    def test_measured_sum_stays_bounded(self, results):
        divergence = results["E4"][0]
        assert divergence.rows[-1]["sum_measured"] < 0.5

    def test_markov_premise_holds_for_near_balls(self, results):
        coverage = results["E4"][1]
        for row in coverage.rows:
            if row["radius"] <= 4:
                assert row["coverage_fraction"] >= 0.5

    def test_per_agent_load_fits_in_time_budget(self, results):
        loads = results["E4"][2]
        # per-agent distinct cells per annulus can never exceed annulus size.
        for row in loads.rows:
            assert row["per_agent_load"] <= row["size"]


class TestE5Shape:
    def test_naive_blows_up_at_range_bottom(self, results):
        (table,) = results["E5"]
        first, last = table.rows[0], table.rows[-1]
        assert first["naive_phi"] > 3 * first["oracle_phi"]
        assert first["naive_phi"] > last["naive_phi"]

    def test_hedged_tracks_log_not_poly(self, results):
        (table,) = results["E5"]
        for row in table.rows:
            assert row["hedged_phi"] < 10 * row["oracle_phi"]

    def test_oracle_is_flat(self, results):
        (table,) = results["E5"]
        oracle = table.column("oracle_phi")
        assert max(oracle) / min(oracle) < 2.5


class TestE6Shape:
    def test_success_monotone_in_k_and_saturates(self, results):
        success = results["E6"][0]
        rates = success.column("success_within_bound")
        assert rates[-1] > 0.95
        assert rates[0] < 0.5
        # Dominance over the proof's bound at every k.
        for row in success.rows:
            assert row["success_within_bound"] >= row["theory_lower_bound"] - 0.08

    def test_conditional_time_within_envelope(self, results):
        success = results["E6"][0]
        for row in success.rows:
            if math.isfinite(row["time_ratio"]):
                assert row["time_ratio"] <= 10.0


class TestE7Shape:
    def test_paper_ordering(self, results):
        (table,) = results["E7"]
        by_name = {r["algorithm"]: r for r in table.rows}
        known_d = next(v for k, v in by_name.items() if k.startswith("known-D"))
        a_k = next(v for k, v in by_name.items() if k.startswith("A_k"))
        uniform = next(v for k, v in by_name.items() if k.startswith("A_uniform"))
        spiral = next(v for k, v in by_name.items() if k.startswith("single spiral"))
        rw = by_name["random walk"]
        assert known_d["mean_time"] < a_k["mean_time"]
        assert a_k["mean_time"] < spiral["mean_time"]
        assert a_k["mean_time"] < uniform["mean_time"]
        assert rw["success"] < 1.0  # the random walk misses within the horizon

    def test_no_dispersion_equals_single(self, results):
        (table,) = results["E7"]
        by_name = {r["algorithm"]: r for r in table.rows}
        single = next(v for k, v in by_name.items() if k.startswith("single spiral"))
        control = next(v for k, v in by_name.items() if k.startswith("k-spiral"))
        assert single["mean_time"] == control["mean_time"]


class TestE8Shape:
    def test_mean_tracks_target(self, results):
        (table,) = results["E8"]
        for row in table.rows:
            assert abs(row["mean_distance"] - row["target"]) < 0.4 * row["target"]

    def test_median_amplification_helps(self, results):
        (table,) = results["E8"]
        for row in table.rows:
            assert row["rel_spread_median3"] < row["rel_spread"]

    def test_bits_beat_exact_odometer(self, results):
        (table,) = results["E8"]
        for row in table.rows:
            assert row["bits_used"] < row["exact_odometer_bits"]


class TestE9Shape:
    def test_barrier_never_beaten(self, results):
        (table,) = results["E9"]
        for row in table.rows:
            assert row["mean_time"] >= row["barrier"]

    def test_speedup_grows_then_saturates(self, results):
        (table,) = results["E9"]
        speedups = table.column("speedup")
        assert speedups[-1] > 4.0  # real collective gain
        efficiency = table.column("efficiency")
        assert efficiency[-1] < efficiency[0]  # saturation sets in


class TestE10Shape:
    def test_dispersion_buys_speedup(self, results):
        disp = results["E10"][2]
        rows = disp.rows
        assert rows[-1]["speedup_vs_k1"] > 2.0

    def test_budget_constant_robust(self, results):
        budget = results["E10"][3]
        phis = budget.column("phi")
        assert max(phis) / min(phis) < 4.0


class TestE11Shape:
    def test_crash_success_degrades_monotonically(self, results):
        crash, _ = results["E11"]
        for name in {r["algorithm"] for r in crash.rows}:
            rates = [r["success"] for r in crash.rows if r["algorithm"] == name]
            # Hazard grows along the rows; success can only fall (small
            # slack for common-random-number resampling noise).
            for earlier, later in zip(rates, rates[1:]):
                assert later <= earlier + 0.05

    def test_nonuniform_degrades_sublinearly_walk_falls_off_cliff(self, results):
        crash, _ = results["E11"]
        by_alg = {}
        for row in crash.rows:
            by_alg.setdefault(row["algorithm"], []).append(row)
        a_k = next(v for k, v in by_alg.items() if k.startswith("A_k"))
        walk = by_alg["random walk"]
        # At mean lifetimes 16x the optimal time, A_k still succeeds in
        # most trials while the random walk has already collapsed.
        assert a_k[1]["success"] >= 0.7
        assert walk[1]["success"] <= a_k[1]["success"] - 0.2
        # A_k dominates the walk at every hazard level.
        for a_row, w_row in zip(a_k, walk):
            assert a_row["success"] >= w_row["success"] - 0.05

    def test_speed_heterogeneity_is_benign(self, results):
        _, speed = results["E11"]
        for row in speed.rows:
            if row["algorithm"].startswith(("A_k", "A_uniform")):
                # Total edge budget is spread-invariant, so the paper's
                # constructions barely notice heterogeneity.
                assert row["success"] >= 0.9
                assert row["degradation"] < 1.6

    def test_fault_free_rows_match_unperturbed_engines(self, results):
        crash, speed = results["E11"]
        for table in (crash, speed):
            first = table.rows[0]
            assert first["degradation"] == 1.0


class TestE12Shape:
    def test_three_tables_one_per_relaxation_axis(self, results):
        mobility, arrival, count = results["E12"]
        assert len(mobility.rows) == 3 * 4  # strategies x motion settings
        assert len(arrival.rows) == 3 * 3
        assert len(count.rows) == 3 * 3

    def test_baseline_rows_anchor_vs_static_at_one(self, results):
        for table in results["E12"]:
            for name in {r["algorithm"] for r in table.rows}:
                first = next(
                    r for r in table.rows if r["algorithm"] == name
                )
                assert first["vs_static"] == 1.0

    def test_extra_targets_speed_every_strategy_up(self, results):
        _, _, count = results["E12"]
        for row in count.rows:
            if row["n_targets"] == 4:
                assert row["vs_static"] < 1.0

    def test_motion_rows_actually_move_the_numbers(self, results):
        # The one-shot harmonic degeneracy regression: every strategy's
        # drift row must differ from its static baseline (a frozen-world
        # kernel would reproduce vs_static == 1.0 exactly).
        mobility, _, _ = results["E12"]
        for name in {r["algorithm"] for r in mobility.rows}:
            rows = [r for r in mobility.rows if r["algorithm"] == name]
            assert rows[3]["mean_time"] != rows[0]["mean_time"]
