"""Tests for the lower-bound machinery (repro.analysis.lower_bounds)."""

import pytest

from repro.algorithms import SingleSpiralSearch, UniformSearch
from repro.analysis.lower_bounds import (
    adversarial_treasure,
    annulus_load_profile,
    harmonic_sum_divergence,
    visit_probability_map,
)
from repro.core.geometry import ball_size


class TestHarmonicSumDivergence:
    def test_partial_sums_increase(self):
        phi = {2: 2.0, 4: 4.0, 8: 8.0}
        sums = harmonic_sum_divergence(phi)
        values = [s for _, s in sums]
        assert values == pytest.approx([0.5, 0.75, 0.875])

    def test_log_phi_gives_harmonic_growth(self):
        import math

        phi = {2**i: math.log(2**i) for i in range(1, 20)}
        sums = harmonic_sum_divergence(phi)
        # sum of 1/(i ln 2) ~ (ln 19 + gamma)/ln2: grows beyond any constant.
        assert sums[-1][1] > 4.0

    def test_rejects_empty_and_non_positive(self):
        with pytest.raises(ValueError):
            harmonic_sum_divergence({})
        with pytest.raises(ValueError):
            harmonic_sum_divergence({2: 0.0})


class TestAnnulusLoadProfile:
    def test_profile_structure(self):
        profiles = annulus_load_profile(
            lambda k: UniformSearch(0.5), [1, 2], [2, 4, 8], cutoff=300, seed=0
        )
        assert [p.k for p in profiles] == [1, 2]
        for p in profiles:
            assert len(p.coverage) == 2
            assert p.per_agent_distinct <= 301
            assert p.total_per_agent_annulus_load <= p.per_agent_distinct

    def test_spiral_covers_inner_annuli_fully(self):
        profiles = annulus_load_profile(
            lambda k: SingleSpiralSearch(), [1], [1, 3], cutoff=100, seed=1
        )
        # A 100-step spiral covers all of B(4); annulus (1,3] fully visited.
        assert profiles[0].coverage[0].fraction == 1.0


class TestVisitProbabilityMap:
    def test_probabilities_in_unit_interval(self):
        probs = visit_probability_map(
            UniformSearch(0.5), k=2, radius=4, cutoff=200, runs=5, seed=2
        )
        assert len(probs) == ball_size(4)
        assert all(0.0 <= p <= 1.0 for p in probs.values())
        assert probs[(0, 0)] == 1.0  # the source is always visited

    def test_deterministic_spiral_gives_zero_one(self):
        probs = visit_probability_map(
            SingleSpiralSearch(), k=1, radius=3, cutoff=30, runs=3, seed=3
        )
        assert set(probs.values()) <= {0.0, 1.0}


class TestAdversarialTreasure:
    def test_places_on_requested_ring(self):
        world, prob = adversarial_treasure(
            UniformSearch(0.5), k=2, distance=5, cutoff=150, runs=6, seed=4
        )
        assert world.distance == 5
        assert 0.0 <= prob <= 1.0

    def test_adversary_picks_least_covered_cell_for_spiral(self):
        # For the deterministic spiral with a cutoff that covers only part of
        # ring 4, the adversary must pick an uncovered cell (probability 0).
        from repro.core.spiral import spiral_hit_time

        world, prob = adversarial_treasure(
            SingleSpiralSearch(), k=1, distance=4, cutoff=60, runs=2, seed=5
        )
        assert prob == 0.0
        assert spiral_hit_time(*world.treasure) > 60
